//! Integration tests of the island optimizer (`crates/island`): seed
//! determinism across repeated runs and worker counts on the real AEDB
//! problem, and the anytime-front stream through the resident service
//! (`JobEvent::AnytimeFront` epochs, monotone hypervolume, cancellation,
//! archive replay).

use aedb_repro::prelude::*;
use serve::JobError;

fn front_bits(front: &[Candidate]) -> Vec<(Vec<u64>, Vec<u64>)> {
    front
        .iter()
        .map(|c| {
            (
                c.params.iter().map(|v| v.to_bits()).collect(),
                c.objectives.iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect()
}

fn island_campaign(evals: u64, reps: usize) -> CampaignSpec {
    CampaignSpec {
        scenario: Scenario::quick(Density::D100, 2),
        algorithm: AlgorithmKind::Island,
        budget: CampaignBudget::quick(evals, reps),
    }
}

#[test]
fn island_runs_bit_reproducible_on_aedb_across_runs_and_workers() {
    // The acceptance criterion: fixed seeds ⇒ identical final archive,
    // regardless of how many workers advance the islands — on the real
    // tuning problem, not just the synthetic test functions.
    let problem =
        AedbProblem::paper(Scenario::quick(Density::D100, 2)).with_parallel_batches(false);
    let mut cfg = IslandConfig::quick(2, 60);
    cfg.workers = 1;
    let baseline = IslandOptimizer::new(cfg.clone()).run(&problem, 0xBEEF);
    let again = IslandOptimizer::new(cfg.clone()).run(&problem, 0xBEEF);
    assert_eq!(
        front_bits(&baseline.front),
        front_bits(&again.front),
        "repeated run diverged"
    );
    for workers in [2, 4] {
        cfg.workers = workers;
        let parallel = IslandOptimizer::new(cfg.clone()).run(&problem, 0xBEEF);
        assert_eq!(
            front_bits(&baseline.front),
            front_bits(&parallel.front),
            "{workers} workers diverged from sequential"
        );
        assert_eq!(baseline.evaluations, parallel.evaluations);
    }
}

#[test]
fn island_campaign_streams_monotone_anytime_front() {
    let service = SimService::in_memory();
    let handle = service.submit(JobSpec::Campaign(island_campaign(60, 1)), Priority::Normal);
    let mut epochs: Vec<(u64, u64, Vec<Vec<f64>>)> = Vec::new();
    let mut saw_generation = false;
    let output = loop {
        match handle.next_event() {
            Some(JobEvent::AnytimeFront {
                epoch,
                evaluations,
                front,
                ..
            }) => epochs.push((epoch, evaluations, front)),
            Some(JobEvent::Generation { .. }) => saw_generation = true,
            Some(JobEvent::Finished { output, .. }) => break output,
            Some(JobEvent::Failed { error, .. }) => panic!("campaign failed: {error}"),
            Some(_) => {}
            None => panic!("service dropped the job"),
        }
    };
    assert!(
        !saw_generation,
        "island campaigns stream AnytimeFront, not Generation"
    );
    assert!(epochs.len() > 1, "epoch 0 plus at least one epoch");
    assert!(epochs.windows(2).all(|w| w[0].0 + 1 == w[1].0));
    assert!(epochs.windows(2).all(|w| w[0].1 < w[1].1));

    // The streamed front's hypervolume is non-decreasing over epochs
    // (computed against one fixed reference covering every streamed
    // point). AEDB is constrained, and feasibility-first dominance allows
    // exactly one objective-space reset: the epoch where the first
    // feasible point sweeps any infeasible archive members. After that
    // the archive is feasible-only and strictly anytime.
    let all: Vec<&Vec<f64>> = epochs.iter().flat_map(|(_, _, f)| f.iter()).collect();
    let m = all[0].len();
    let reference: Vec<f64> = (0..m)
        .map(|d| all.iter().map(|p| p[d]).fold(f64::NEG_INFINITY, f64::max) + 1.0)
        .collect();
    let mut last = f64::NEG_INFINITY;
    let mut drops = 0usize;
    for (epoch, _, front) in &epochs {
        let hv = hypervolume(front, &reference);
        if hv < last - 1e-12 {
            drops += 1;
            assert!(
                drops <= 1,
                "epoch {epoch}: second hypervolume drop ({last} to {hv}) — \
                 the anytime contract allows only the feasibility sweep"
            );
        }
        last = hv;
    }

    // The final streamed front matches the terminal result's rep 0 front.
    let campaign = output.campaign().expect("campaign output");
    assert_eq!(campaign.algorithm, AlgorithmKind::Island);
    let final_front: Vec<Vec<f64>> = campaign.reps[0]
        .front
        .iter()
        .map(|c| c.objectives.clone())
        .collect();
    let streamed = &epochs.last().unwrap().2;
    for f in &final_front {
        assert!(
            streamed.iter().any(|s| s == f),
            "terminal front point {f:?} was never streamed"
        );
    }
    service.drain();
}

#[test]
fn island_campaign_replays_and_matches_direct_run() {
    let service = SimService::in_memory();
    let spec = island_campaign(60, 2);
    let handle = service.submit(JobSpec::Campaign(spec.clone()), Priority::Normal);
    let fresh = handle.wait().expect("campaign runs");
    assert!(!fresh.replayed);
    let fresh_campaign = fresh.output.campaign().expect("campaign output").clone();
    assert_eq!(fresh_campaign.reps.len(), 2);

    // The service path is bit-identical to running the campaign's
    // algorithm directly with the campaign seeds.
    let problem = AedbProblem::paper(spec.scenario.clone()).with_parallel_batches(true);
    for (rep, service_rep) in fresh_campaign.reps.iter().enumerate() {
        let direct = serve::campaign::algorithm_for(&spec.budget, AlgorithmKind::Island)
            .run(&problem, serve::campaign::rep_seed(rep));
        assert_eq!(service_rep.evaluations, direct.evaluations);
        assert_eq!(
            front_bits(&service_rep.front),
            front_bits(&direct.front),
            "rep {rep} diverged from the direct run"
        );
    }

    // Resubmission replays from the archive with no anytime stream.
    let handle = service.submit(JobSpec::Campaign(spec), Priority::Normal);
    let mut saw_anytime = false;
    let replayed = loop {
        match handle.next_event() {
            Some(JobEvent::AnytimeFront { .. }) => saw_anytime = true,
            Some(JobEvent::Finished {
                replayed, output, ..
            }) => break (replayed, output),
            Some(JobEvent::Failed { error, .. }) => panic!("replay failed: {error}"),
            Some(_) => {}
            None => panic!("service dropped the job"),
        }
    };
    assert!(replayed.0, "second submission must replay");
    assert!(!saw_anytime, "a replay simulates nothing");
    assert!(*replayed.1.campaign().expect("campaign output") == fresh_campaign);
    service.drain();
}

#[test]
fn island_campaign_cancellation_keeps_streamed_front() {
    let service = SimService::in_memory();
    let handle = service.submit(
        JobSpec::Campaign(island_campaign(2_000_000, 1)),
        Priority::Normal,
    );
    let mut best: Option<Vec<Vec<f64>>> = None;
    loop {
        match handle.next_event() {
            Some(JobEvent::AnytimeFront { front, .. }) => {
                // Proof the campaign is mid-run; cancel it. The stream has
                // already delivered the best-so-far front.
                best = Some(front);
                assert!(service.cancel(handle.id()));
            }
            Some(JobEvent::Failed { error, .. }) => {
                assert_eq!(error, JobError::Cancelled);
                break;
            }
            Some(JobEvent::Finished { .. }) => panic!("cancelled campaign finished"),
            Some(_) => {}
            None => panic!("service dropped the job"),
        }
    }
    let best = best.expect("at least one anytime epoch before cancellation");
    assert!(!best.is_empty(), "best-so-far front was streamed");
    // Nothing partial archived; the service stays healthy.
    assert_eq!(service.archived_campaigns().unwrap().len(), 0);
    let handle = service.submit(JobSpec::Campaign(island_campaign(60, 1)), Priority::High);
    handle.wait().expect("service still healthy");
    service.drain();
}
