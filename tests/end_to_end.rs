//! End-to-end integration: the full pipeline of the paper — simulator →
//! protocol → tuning problem → optimisers → archive → indicators — on
//! laptop-sized budgets.

use aedb_repro::prelude::*;

fn quick_problem() -> AedbProblem {
    AedbProblem::paper(Scenario::quick(Density::D100, 2))
}

#[test]
fn mls_tunes_aedb() {
    let problem = quick_problem();
    let mls = Mls::new(MlsConfig {
        criteria: CriteriaChoice::Aedb,
        ..MlsConfig::quick(2, 2, 40)
    });
    let result = mls.optimize(&problem, 1);
    assert_eq!(result.evaluations, 2 * 2 * 40);
    assert!(!result.front.is_empty());
    let bounds = AedbParams::bounds();
    for c in &result.front {
        assert!(c.is_feasible(), "archive holds infeasible {c:?}");
        assert!(
            bounds.contains(&c.params),
            "out-of-bounds params {:?}",
            c.params
        );
        assert_eq!(c.objectives.len(), 3);
        // coverage (negated) within physical limits
        let coverage = -c.objectives[1];
        assert!((0.0..=24.0).contains(&coverage), "coverage {coverage}");
        assert!(c.objectives[2] >= 0.0, "negative forwardings");
    }
    // at least one configuration actually disseminates
    assert!(
        result.front.iter().any(|c| -c.objectives[1] > 0.0),
        "no configuration reached any node"
    );
}

#[test]
fn three_algorithms_produce_comparable_fronts() {
    let problem = quick_problem();
    let evals = 120u64;
    let algorithms: Vec<Box<dyn MoAlgorithm>> = vec![
        Box::new(CellDe::new(CellDeConfig {
            grid_side: 4,
            max_evaluations: evals,
            ..Default::default()
        })),
        Box::new(Nsga2::new(Nsga2Config {
            population: 16,
            max_evaluations: evals,
            ..Default::default()
        })),
        Box::new(Mls::new(MlsConfig {
            criteria: CriteriaChoice::Aedb,
            ..MlsConfig::quick(2, 2, (evals as f64 * 2.4 / 4.0) as u64)
        })),
    ];
    let runs: Vec<RunResult> = algorithms.iter().map(|a| a.run(&problem, 3)).collect();

    // combined reference front (paper's normalisation protocol)
    let mut combined = AgaArchive::new(200, 5);
    for r in &runs {
        assert!(!r.front.is_empty());
        for c in &r.front {
            combined.try_insert(c.clone());
        }
    }
    let reference: Vec<Vec<f64>> = combined
        .members()
        .iter()
        .map(|c| c.objectives.clone())
        .collect();
    let norm = Normalizer::from_points(&reference).expect("non-empty reference");
    let nref = norm.apply_front(&reference);

    for (alg, run) in algorithms.iter().zip(&runs) {
        let nf = norm.apply_front(&run.objectives());
        let spread = generalized_spread(&nf, &nref);
        let igd = inverted_generational_distance(&nf, &nref);
        let hv = hypervolume(&nf, &[1.1, 1.1, 1.1]);
        assert!(spread.is_finite(), "{}: spread", alg.name());
        assert!(igd.is_finite() && igd >= 0.0, "{}: igd", alg.name());
        assert!(
            (0.0..=1.1f64.powi(3)).contains(&hv),
            "{}: hv {hv}",
            alg.name()
        );
    }
}

#[test]
fn merged_front_dominates_no_worse_than_parts() {
    let problem = quick_problem();
    let mls = Mls::new(MlsConfig {
        criteria: CriteriaChoice::Aedb,
        ..MlsConfig::quick(1, 2, 40)
    });
    let r1 = mls.optimize(&problem, 10);
    let r2 = mls.optimize(&problem, 11);

    let mut merged = AgaArchive::new(100, 5);
    for c in r1.front.iter().chain(&r2.front) {
        merged.try_insert(c.clone());
    }
    // every merged member must be non-dominated w.r.t. both run fronts
    for m in merged.members() {
        for other in r1.front.iter().chain(&r2.front) {
            assert!(
                !mopt::dominance::dominates(other, m),
                "merged member dominated by a source solution"
            );
        }
    }
}

#[test]
fn evaluation_counting_through_pipeline() {
    use mopt::problem::CountingProblem;
    let problem = CountingProblem::new(quick_problem());
    let nsga = Nsga2::new(Nsga2Config {
        population: 8,
        max_evaluations: 64,
        ..Default::default()
    });
    let r = nsga.run(&problem, 5);
    assert_eq!(r.evaluations, 64);
    assert_eq!(problem.evaluations(), 64, "problem-side count must agree");
}

#[test]
fn wilcoxon_on_real_indicator_samples() {
    // Tiny version of Table IV's machinery over real runs.
    let problem = quick_problem();
    let evals = 60u64;
    let mk_runs = |seed0: u64| -> Vec<f64> {
        (0..4)
            .map(|k| {
                let alg = Nsga2::new(Nsga2Config {
                    population: 8,
                    max_evaluations: evals,
                    ..Default::default()
                });
                let r = alg.run(&problem, seed0 + k);
                r.front.len() as f64
            })
            .collect()
    };
    let a = mk_runs(100);
    let b = mk_runs(200);
    if let Some(t) = wilcoxon_rank_sum(&a, &b) {
        assert!((0.0..=1.0).contains(&t.p_value));
    }
}

#[test]
fn tuning_problem_poses_heterogeneous_worlds() {
    // A heterogeneous dense scenario (mixed mobility + a low-power
    // stationary backbone, straight from the shared text grammar) flows
    // through the whole evaluation pipeline: Scenario::world →
    // Simulator::from_world → AedbProblem::evaluate. Deterministic, and
    // distinct from the homogeneous scenario of the same size.
    use manet::mobility::MobilityModel;

    let dense = DenseScenario::parse_spec("60@200+8:still:10dbm").expect("valid spec");
    assert_eq!(dense.n_nodes, 68);
    let scenario = Scenario::dense(dense.clone(), 2);
    let world = scenario.world(1);
    assert_eq!(world.n_nodes(), 68);
    assert_eq!(world.groups[1].mobility, MobilityModel::Stationary);
    assert_eq!(world.groups[1].tx_power_dbm, Some(10.0));

    let problem = AedbProblem::paper(scenario).with_eval_cache(false);
    let x = AedbParams::default_config().to_vec();
    let a = problem.evaluate(&x);
    let b = problem.evaluate(&x);
    assert_eq!(a, b, "heterogeneous evaluation must be deterministic");
    assert!(-a.objectives[1] > 0.0, "broadcast reached nobody");

    let homogeneous =
        AedbProblem::paper(Scenario::dense(DenseScenario::new(200, 68), 2)).with_eval_cache(false);
    assert_ne!(
        a,
        homogeneous.evaluate(&x),
        "groups must change the posed problem"
    );
}
