//! Integration tests of the resident service (`serve::SimService`):
//! lifecycle event ordering, bit-identity with the bench-harness
//! experiment path, archive replay across a service restart, cooperative
//! cancellation, and memory/disk backend parity.

use aedb_repro::prelude::*;
use bench_harness::{run_algorithm, ExperimentScale};
use serve::JobError;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_campaign(evals: u64, reps: usize) -> CampaignSpec {
    CampaignSpec {
        scenario: Scenario::quick(Density::D100, 2),
        algorithm: AlgorithmKind::Nsga2,
        budget: CampaignBudget::quick(evals, reps),
    }
}

/// Objective vectors of every repetition front, bit-comparable.
fn front_bits(reps: &[serve::campaign::RepRun]) -> Vec<Vec<Vec<u64>>> {
    reps.iter()
        .map(|r| {
            r.front
                .iter()
                .map(|c| c.objectives.iter().map(|v| v.to_bits()).collect())
                .collect()
        })
        .collect()
}

#[test]
fn job_lifecycle_events_arrive_in_order() {
    let service = SimService::in_memory();
    let handle = service.submit(JobSpec::Campaign(quick_campaign(60, 2)), Priority::Normal);
    let mut events = Vec::new();
    while let Some(ev) = handle.next_event() {
        let terminal = ev.is_terminal();
        events.push(ev);
        if terminal {
            break;
        }
    }
    assert!(
        matches!(events.first(), Some(JobEvent::Accepted { .. })),
        "first event is Accepted"
    );
    assert!(
        matches!(events.get(1), Some(JobEvent::Started { .. })),
        "second event is Started"
    );
    assert!(
        matches!(
            events.last(),
            Some(JobEvent::Finished {
                replayed: false,
                ..
            })
        ),
        "last event is a fresh Finished"
    );
    let generations = events
        .iter()
        .filter(|e| matches!(e, JobEvent::Generation { .. }))
        .count();
    assert!(generations > 0, "campaign streams generation snapshots");
    // Progress covers both repetitions, in order.
    let progress: Vec<(usize, usize)> = events
        .iter()
        .filter_map(|e| match e {
            JobEvent::Progress {
                completed, total, ..
            } => Some((*completed, *total)),
            _ => None,
        })
        .collect();
    assert_eq!(progress, vec![(1, 2), (2, 2)]);
    service.drain();
}

#[test]
fn campaign_via_service_matches_bench_path() {
    // The acceptance criterion: a campaign submitted through the service
    // is bit-identical to the bench harness running the same experiment
    // rows (rayon-sharded reps, batch parallelism off). AEDB-MLS is
    // excluded here for the same reason as in the harness's own tests:
    // its internal thread topology makes even two direct runs diverge.
    let scale = ExperimentScale {
        reps: 2,
        networks: 2,
        evals: 60,
        ..ExperimentScale::default()
    };
    let scenario = Scenario::quick(Density::D100, scale.networks);
    let service = SimService::in_memory();
    for algorithm in [AlgorithmKind::Nsga2, AlgorithmKind::CellDe] {
        let problem = AedbProblem::paper(scenario.clone()).with_parallel_batches(false);
        let bench_runs = run_algorithm(&scale, algorithm, &problem);

        let handle = service.submit(
            JobSpec::Campaign(CampaignSpec {
                scenario: scenario.clone(),
                algorithm,
                budget: scale.campaign_budget(),
            }),
            Priority::Normal,
        );
        let result = handle.wait().expect("campaign runs");
        let campaign = result.output.campaign().expect("campaign output");

        assert_eq!(campaign.reps.len(), bench_runs.len());
        for (rep, (service_rep, bench_run)) in campaign.reps.iter().zip(&bench_runs).enumerate() {
            assert_eq!(service_rep.evaluations, bench_run.evaluations);
            let service_front: Vec<Vec<u64>> = service_rep
                .front
                .iter()
                .map(|c| c.objectives.iter().map(|v| v.to_bits()).collect())
                .collect();
            let bench_front: Vec<Vec<u64>> = bench_run
                .front
                .iter()
                .map(|c| c.objectives.iter().map(|v| v.to_bits()).collect())
                .collect();
            assert_eq!(
                service_front,
                bench_front,
                "{} rep {rep} diverged from the bench path",
                algorithm.name()
            );
        }
    }
    service.drain();
}

#[test]
fn archive_replays_bit_identically_across_restart() {
    let root = temp_root("replay");
    let spec = quick_campaign(60, 2);

    // First service: fresh run, archived to disk.
    let service = SimService::on_disk(&root);
    let handle = service.submit(JobSpec::Campaign(spec.clone()), Priority::Normal);
    let fresh = handle.wait().expect("fresh campaign runs");
    assert!(!fresh.replayed);
    let fresh_campaign = fresh.output.campaign().expect("campaign output").clone();
    assert_eq!(service.archived_campaigns().unwrap().len(), 1);
    service.drain();

    // Second service on the same root — a process restart in miniature.
    let service = SimService::on_disk(&root);
    let handle = service.submit(JobSpec::Campaign(spec), Priority::Normal);
    let mut saw_generation = false;
    let replayed = loop {
        match handle.next_event() {
            Some(JobEvent::Generation { .. }) => saw_generation = true,
            Some(JobEvent::Finished {
                replayed, output, ..
            }) => break (replayed, output),
            Some(JobEvent::Failed { error, .. }) => panic!("replay failed: {error}"),
            Some(_) => {}
            None => panic!("service dropped the job"),
        }
    };
    assert!(replayed.0, "resubmission must be answered from the archive");
    assert!(
        !saw_generation,
        "a replay simulates nothing, so it streams no generations"
    );
    let replayed_campaign = replayed.1.campaign().expect("campaign output");
    assert_eq!(
        front_bits(&replayed_campaign.reps),
        front_bits(&fresh_campaign.reps),
        "replayed fronts are bit-identical to the fresh run"
    );
    assert!(*replayed_campaign == fresh_campaign);
    service.drain();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cancellation_mid_campaign_stops_the_job_not_the_service() {
    let service = SimService::in_memory();
    // A budget far too large to finish: cancellation must stop it.
    let handle = service.submit(
        JobSpec::Campaign(quick_campaign(2_000_000, 1)),
        Priority::Normal,
    );
    loop {
        match handle.next_event() {
            Some(JobEvent::Generation { .. }) => {
                // Proof the campaign is mid-run; cancel it.
                assert!(service.cancel(handle.id()));
            }
            Some(JobEvent::Failed { error, .. }) => {
                assert_eq!(error, JobError::Cancelled);
                break;
            }
            Some(JobEvent::Finished { .. }) => panic!("cancelled campaign finished"),
            Some(_) => {}
            None => panic!("service dropped the job"),
        }
    }
    // Nothing partial was archived, and the service still serves jobs.
    assert_eq!(service.archived_campaigns().unwrap().len(), 0);
    let handle = service.submit(JobSpec::Campaign(quick_campaign(60, 1)), Priority::High);
    handle
        .wait()
        .expect("service still healthy after a cancellation");
    service.drain();
}

#[test]
fn memory_and_disk_backends_agree() {
    let root = temp_root("parity");
    let spec = quick_campaign(60, 2);
    let run_on = |service: SimService| {
        let handle = service.submit(JobSpec::Campaign(spec.clone()), Priority::Normal);
        let result = handle.wait().expect("campaign runs");
        let campaign = result.output.campaign().expect("campaign output").clone();
        let archived = service.archived_campaigns().unwrap();
        service.drain();
        (campaign, archived)
    };
    let (mem, mem_keys) = run_on(SimService::in_memory());
    let (disk, disk_keys) = run_on(SimService::new(Arc::new(DiskStorage::new(&root))));
    assert!(mem == disk, "backends must not affect results");
    assert_eq!(mem_keys, disk_keys, "archive keys agree across backends");
    let _ = std::fs::remove_dir_all(&root);
}
