//! Cross-crate behavioural tests: AEDB inside the full simulator must show
//! the qualitative properties §III of the paper describes.

use aedb_repro::prelude::*;
use manet::sim::Simulator;

/// Averages an AEDB configuration over `nets` fixed networks at a density.
fn observe(density: Density, params: AedbParams, nets: usize) -> AedbOutcome {
    AedbProblem::paper(Scenario::quick(density, nets)).evaluate_full(params)
}

#[test]
fn aedb_saves_energy_versus_flooding() {
    let nets = 4;
    let density = Density::D200;
    let scenario = Scenario::quick(density, nets);
    let mut flood_cov = 0.0;
    let mut flood_energy = 0.0;
    for k in 0..nets {
        let cfg = scenario.sim_config(k);
        let n = cfg.n_nodes;
        let r = Simulator::new(cfg, Flooding::new(n, (0.0, 0.1))).run();
        flood_cov += r.broadcast.coverage() as f64 / nets as f64;
        flood_energy += r.broadcast.energy_dbm_sum / nets as f64;
    }
    let aedb = observe(density, AedbParams::default_config(), nets);
    assert!(
        aedb.energy < flood_energy,
        "AEDB energy {} must undercut flooding {}",
        aedb.energy,
        flood_energy
    );
    // Note: flooding is NOT a coverage upper bound here — its simultaneous
    // full-power forwardings collide (the broadcast storm of Ni et al.
    // 1999, the paper's motivation), so a tuned AEDB can even beat it.
    assert!(
        aedb.forwardings < flood_cov.max(1.0),
        "AEDB must forward less than flooding covers"
    );
    assert!(
        flood_cov > 20.0,
        "flooding should reach most of the 50-node net: {flood_cov}"
    );
}

#[test]
fn border_threshold_trades_coverage_for_resources() {
    // §III-A: "The higher the threshold, the higher the number of potential
    // forwarders, the coverage, the network resources"
    let base = AedbParams {
        min_delay: 0.05,
        max_delay: 0.4,
        border_threshold: -92.0,
        margin_threshold: 1.0,
        neighbors_threshold: 50.0,
    };
    let restrictive = observe(Density::D200, base, 4);
    let permissive = observe(
        Density::D200,
        AedbParams {
            border_threshold: -72.0,
            ..base
        },
        4,
    );
    assert!(
        permissive.coverage >= restrictive.coverage,
        "permissive {} vs restrictive {}",
        permissive.coverage,
        restrictive.coverage
    );
    assert!(permissive.forwardings >= restrictive.forwardings);
}

#[test]
fn neighbors_threshold_gates_power_reduction() {
    // Low neighbours threshold => dense branch active => lower tx powers
    // per forwarding (energy per forwarding drops).
    let base = AedbParams {
        min_delay: 0.05,
        max_delay: 0.4,
        border_threshold: -75.0,
        margin_threshold: 1.0,
        neighbors_threshold: 50.0, // sparse branch everywhere
    };
    let sparse_branch = observe(Density::D300, base, 4);
    let dense_branch = observe(
        Density::D300,
        AedbParams {
            neighbors_threshold: 1.0,
            ..base
        },
        4,
    );
    let per_fwd = |o: &AedbOutcome| {
        if o.forwardings > 0.0 {
            o.energy / o.forwardings
        } else {
            0.0
        }
    };
    assert!(
        per_fwd(&dense_branch) <= per_fwd(&sparse_branch) + 1e-9,
        "dense-branch per-forwarding energy {} should not exceed sparse {}",
        per_fwd(&dense_branch),
        per_fwd(&sparse_branch)
    );
}

#[test]
fn delay_drives_broadcast_time_not_much_else() {
    let base = AedbParams {
        min_delay: 0.0,
        max_delay: 0.2,
        border_threshold: -74.0,
        margin_threshold: 1.0,
        neighbors_threshold: 50.0,
    };
    let fast = observe(Density::D200, base, 4);
    let slow = observe(
        Density::D200,
        AedbParams {
            min_delay: 0.8,
            max_delay: 3.0,
            ..base
        },
        4,
    );
    assert!(
        slow.broadcast_time > fast.broadcast_time,
        "{} vs {}",
        slow.broadcast_time,
        fast.broadcast_time
    );
}

#[test]
fn density_scales_absolute_coverage() {
    let p = AedbParams {
        min_delay: 0.05,
        max_delay: 0.4,
        border_threshold: -72.0,
        margin_threshold: 1.5,
        neighbors_threshold: 50.0,
    };
    let d100 = observe(Density::D100, p, 3);
    let d300 = observe(Density::D300, p, 3);
    // denser network, more nodes reachable in absolute terms
    assert!(
        d300.coverage > d100.coverage,
        "coverage should grow with density: {} vs {}",
        d300.coverage,
        d100.coverage
    );
}

#[test]
fn broadcast_time_bounded_by_simulation_window() {
    let p = AedbParams {
        min_delay: 1.0,
        max_delay: 5.0,
        border_threshold: -70.0,
        margin_threshold: 3.0,
        neighbors_threshold: 0.0,
    };
    let o = observe(Density::D200, p, 3);
    // broadcast starts at 30 s, simulation ends at 40 s
    assert!(
        o.broadcast_time <= 10.0,
        "bt {} exceeds the window",
        o.broadcast_time
    );
}

#[test]
fn shadowing_perturbs_but_does_not_break_dissemination() {
    // Extension knob: static log-normal shadowing. Same network/protocol,
    // with and without 6 dB shadowing — metrics change but stay physical.
    let scenario = Scenario::quick(Density::D200, 1);
    let run = |sigma: f64| {
        let mut cfg = scenario.sim_config(0);
        cfg.radio.shadowing_sigma_db = sigma;
        let n = cfg.n_nodes;
        Simulator::new(cfg, Aedb::new(n, AedbParams::default_config())).run()
    };
    let clean = run(0.0);
    let shadowed = run(6.0);
    // deterministic per seed
    let shadowed2 = run(6.0);
    assert_eq!(
        shadowed.broadcast.coverage(),
        shadowed2.broadcast.coverage()
    );
    // shadowing changes the outcome…
    assert_ne!(
        (clean.broadcast.coverage(), clean.broadcast.forwardings),
        (
            shadowed.broadcast.coverage(),
            shadowed.broadcast.forwardings
        ),
        "6 dB shadowing should alter the dissemination"
    );
    // …but not the physics
    assert!(shadowed.broadcast.coverage() < 50);
    assert!(
        shadowed.broadcast.energy_dbm_sum <= shadowed.broadcast.forwardings as f64 * 16.02 + 1e-9
    );
}

#[test]
fn margin_threshold_is_nearly_inert() {
    // Table I: margin threshold has "very few"/no influence.
    let base = AedbParams {
        min_delay: 0.05,
        max_delay: 0.4,
        border_threshold: -74.0,
        margin_threshold: 0.0,
        neighbors_threshold: 50.0,
    };
    let lo = observe(Density::D200, base, 4);
    let hi = observe(
        Density::D200,
        AedbParams {
            margin_threshold: 3.0,
            ..base
        },
        4,
    );
    // coverage moves by at most a couple of nodes
    assert!(
        (lo.coverage - hi.coverage).abs() <= 6.0,
        "margin flipped coverage: {} vs {}",
        lo.coverage,
        hi.coverage
    );
}
