//! Reproducibility guarantees across the whole stack — the paper's
//! protocol ("these 10 networks are always the same for evaluating every
//! solution") depends on them.

use aedb_repro::prelude::*;

#[test]
fn fixed_networks_are_bitwise_stable() {
    let scenario = Scenario::paper(Density::D100);
    let p = AedbParams::default_config();
    let problem = AedbProblem::paper(Scenario::quick(Density::D100, 3));
    // simulate the same network twice -> identical observables
    let a = problem.simulate_one(p, 0);
    let b = problem.simulate_one(p, 0);
    assert_eq!(a, b);
    // distinct networks -> (almost surely) different observables
    let c = problem.simulate_one(p, 1);
    assert_ne!(a, c, "different seeds should give different networks");
    // the seed schedule itself is stable
    assert_eq!(scenario.network_seed(3), scenario.network_seed(3));
}

#[test]
fn nsga2_runs_are_reproducible_on_aedb() {
    let problem = AedbProblem::paper(Scenario::quick(Density::D100, 2));
    let alg = Nsga2::new(Nsga2Config {
        population: 8,
        max_evaluations: 48,
        ..Default::default()
    });
    let a = alg.run(&problem, 77);
    let b = alg.run(&problem, 77);
    assert_eq!(
        a.front
            .iter()
            .map(|c| c.objectives.clone())
            .collect::<Vec<_>>(),
        b.front
            .iter()
            .map(|c| c.objectives.clone())
            .collect::<Vec<_>>()
    );
}

#[test]
fn cellde_runs_are_reproducible_on_aedb() {
    let problem = AedbProblem::paper(Scenario::quick(Density::D100, 2));
    let alg = CellDe::new(CellDeConfig {
        grid_side: 3,
        max_evaluations: 48,
        ..Default::default()
    });
    let a = alg.run(&problem, 5);
    let b = alg.run(&problem, 5);
    assert_eq!(
        a.front
            .iter()
            .map(|c| c.objectives.clone())
            .collect::<Vec<_>>(),
        b.front
            .iter()
            .map(|c| c.objectives.clone())
            .collect::<Vec<_>>()
    );
}

#[test]
fn single_thread_mls_is_reproducible_on_aedb() {
    let problem = AedbProblem::paper(Scenario::quick(Density::D100, 2));
    let mls = Mls::new(MlsConfig {
        criteria: CriteriaChoice::Aedb,
        ..MlsConfig::quick(1, 1, 40)
    });
    let a = mls.optimize(&problem, 31);
    let b = mls.optimize(&problem, 31);
    assert_eq!(
        a.front
            .iter()
            .map(|c| c.objectives.clone())
            .collect::<Vec<_>>(),
        b.front
            .iter()
            .map(|c| c.objectives.clone())
            .collect::<Vec<_>>()
    );
}

#[test]
fn grid_deliveries_match_naive_scan_bitwise() {
    // The spatially-indexed delivery path must produce *byte-identical*
    // BroadcastMetrics and SimCounters to the full O(n) receiver scan on
    // the paper's fixed networks — same coverage set, same loss counters,
    // same floating-point sums, for every density and protocol.
    for density in [Density::D100, Density::D200, Density::D300] {
        let scenario = Scenario::paper(density);
        for k in [0usize, 4, 9] {
            let cfg = scenario.sim_config(k);
            let n = cfg.n_nodes;
            // AEDB under tuning parameters
            let params = AedbParams::default_config();
            let mut fast = Simulator::new(cfg.clone(), Aedb::new(n, params));
            let mut slow = Simulator::new(cfg.clone(), Aedb::new(n, params));
            slow.set_naive_deliveries(true);
            let (rf, rs) = (fast.run_to_end(), slow.run_to_end());
            assert_eq!(rf.broadcast, rs.broadcast, "{density} network {k} (AEDB)");
            assert_eq!(rf.counters, rs.counters, "{density} network {k} (AEDB)");
            // flooding exercises max-power, high-collision regimes
            let mut fast = Simulator::new(cfg.clone(), Flooding::new(n, (0.0, 0.1)));
            let mut slow = Simulator::new(cfg, Flooding::new(n, (0.0, 0.1)));
            slow.set_naive_deliveries(true);
            let (rf, rs) = (fast.run_to_end(), slow.run_to_end());
            assert_eq!(
                rf.broadcast, rs.broadcast,
                "{density} network {k} (flooding)"
            );
            assert_eq!(rf.counters, rs.counters, "{density} network {k} (flooding)");
        }
    }
}

#[test]
fn batch_evaluation_matches_sequential_on_fixed_networks() {
    // The whole batched pipeline — grid simulator, thread-pool fan-out,
    // quantized cache — must reproduce per-candidate evaluation exactly.
    let batched = AedbProblem::paper(Scenario::quick(Density::D200, 3));
    let sequential = AedbProblem::paper(Scenario::quick(Density::D200, 3)).with_eval_cache(false);
    let xs: Vec<Vec<f64>> = vec![
        AedbParams::default_config().to_vec(),
        vec![0.0, 0.5, -75.0, 0.5, 10.0],
        vec![0.9, 4.0, -92.0, 2.5, 45.0],
    ];
    let b = batched.evaluate_batch(&xs);
    for (x, ev) in xs.iter().zip(&b) {
        let s = sequential.evaluate(x);
        assert_eq!(ev.objectives, s.objectives);
        assert_eq!(ev.violation, s.violation);
    }
    // and a second pass is served entirely from the cache, unchanged
    let again = batched.evaluate_batch(&xs);
    assert_eq!(b, again);
    assert!(batched.cache_stats().0 >= xs.len() as u64);
}

#[test]
fn fast99_design_is_reproducible() {
    let f = Fast99::new(5, 129);
    assert_eq!(f.design(2), f.design(2));
    let g = Fast99::new(5, 129);
    assert_eq!(f.design(4), g.design(4));
}
