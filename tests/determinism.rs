//! Reproducibility guarantees across the whole stack — the paper's
//! protocol ("these 10 networks are always the same for evaluating every
//! solution") depends on them.

use aedb_repro::prelude::*;

#[test]
fn fixed_networks_are_bitwise_stable() {
    let scenario = Scenario::paper(Density::D100);
    let p = AedbParams::default_config();
    let problem = AedbProblem::paper(Scenario::quick(Density::D100, 3));
    // simulate the same network twice -> identical observables
    let a = problem.simulate_one(p, 0);
    let b = problem.simulate_one(p, 0);
    assert_eq!(a, b);
    // distinct networks -> (almost surely) different observables
    let c = problem.simulate_one(p, 1);
    assert_ne!(a, c, "different seeds should give different networks");
    // the seed schedule itself is stable
    assert_eq!(scenario.network_seed(3), scenario.network_seed(3));
}

#[test]
fn nsga2_runs_are_reproducible_on_aedb() {
    let problem = AedbProblem::paper(Scenario::quick(Density::D100, 2));
    let alg = Nsga2::new(Nsga2Config { population: 8, max_evaluations: 48, ..Default::default() });
    let a = alg.run(&problem, 77);
    let b = alg.run(&problem, 77);
    assert_eq!(
        a.front.iter().map(|c| c.objectives.clone()).collect::<Vec<_>>(),
        b.front.iter().map(|c| c.objectives.clone()).collect::<Vec<_>>()
    );
}

#[test]
fn cellde_runs_are_reproducible_on_aedb() {
    let problem = AedbProblem::paper(Scenario::quick(Density::D100, 2));
    let alg = CellDe::new(CellDeConfig { grid_side: 3, max_evaluations: 48, ..Default::default() });
    let a = alg.run(&problem, 5);
    let b = alg.run(&problem, 5);
    assert_eq!(
        a.front.iter().map(|c| c.objectives.clone()).collect::<Vec<_>>(),
        b.front.iter().map(|c| c.objectives.clone()).collect::<Vec<_>>()
    );
}

#[test]
fn single_thread_mls_is_reproducible_on_aedb() {
    let problem = AedbProblem::paper(Scenario::quick(Density::D100, 2));
    let mls = Mls::new(MlsConfig { criteria: CriteriaChoice::Aedb, ..MlsConfig::quick(1, 1, 40) });
    let a = mls.optimize(&problem, 31);
    let b = mls.optimize(&problem, 31);
    assert_eq!(
        a.front.iter().map(|c| c.objectives.clone()).collect::<Vec<_>>(),
        b.front.iter().map(|c| c.objectives.clone()).collect::<Vec<_>>()
    );
}

#[test]
fn fast99_design_is_reproducible() {
    let f = Fast99::new(5, 129);
    assert_eq!(f.design(2), f.design(2));
    let g = Fast99::new(5, 129);
    assert_eq!(f.design(4), g.design(4));
}
