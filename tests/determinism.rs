//! Reproducibility guarantees across the whole stack — the paper's
//! protocol ("these 10 networks are always the same for evaluating every
//! solution") depends on them.

use aedb_repro::prelude::*;

#[test]
fn fixed_networks_are_bitwise_stable() {
    let scenario = Scenario::paper(Density::D100);
    let p = AedbParams::default_config();
    let problem = AedbProblem::paper(Scenario::quick(Density::D100, 3));
    // simulate the same network twice -> identical observables
    let a = problem.simulate_one(p, 0);
    let b = problem.simulate_one(p, 0);
    assert_eq!(a, b);
    // distinct networks -> (almost surely) different observables
    let c = problem.simulate_one(p, 1);
    assert_ne!(a, c, "different seeds should give different networks");
    // the seed schedule itself is stable
    assert_eq!(scenario.network_seed(3), scenario.network_seed(3));
}

#[test]
fn nsga2_runs_are_reproducible_on_aedb() {
    let problem = AedbProblem::paper(Scenario::quick(Density::D100, 2));
    let alg = Nsga2::new(Nsga2Config {
        population: 8,
        max_evaluations: 48,
        ..Default::default()
    });
    let a = alg.run(&problem, 77);
    let b = alg.run(&problem, 77);
    assert_eq!(
        a.front
            .iter()
            .map(|c| c.objectives.clone())
            .collect::<Vec<_>>(),
        b.front
            .iter()
            .map(|c| c.objectives.clone())
            .collect::<Vec<_>>()
    );
}

#[test]
fn cellde_runs_are_reproducible_on_aedb() {
    let problem = AedbProblem::paper(Scenario::quick(Density::D100, 2));
    let alg = CellDe::new(CellDeConfig {
        grid_side: 3,
        max_evaluations: 48,
        ..Default::default()
    });
    let a = alg.run(&problem, 5);
    let b = alg.run(&problem, 5);
    assert_eq!(
        a.front
            .iter()
            .map(|c| c.objectives.clone())
            .collect::<Vec<_>>(),
        b.front
            .iter()
            .map(|c| c.objectives.clone())
            .collect::<Vec<_>>()
    );
}

#[test]
fn single_thread_mls_is_reproducible_on_aedb() {
    let problem = AedbProblem::paper(Scenario::quick(Density::D100, 2));
    let mls = Mls::new(MlsConfig {
        criteria: CriteriaChoice::Aedb,
        ..MlsConfig::quick(1, 1, 40)
    });
    let a = mls.optimize(&problem, 31);
    let b = mls.optimize(&problem, 31);
    assert_eq!(
        a.front
            .iter()
            .map(|c| c.objectives.clone())
            .collect::<Vec<_>>(),
        b.front
            .iter()
            .map(|c| c.objectives.clone())
            .collect::<Vec<_>>()
    );
}

#[test]
fn grid_deliveries_match_naive_scan_bitwise() {
    // The spatially-indexed delivery path must produce *byte-identical*
    // BroadcastMetrics and SimCounters to the full O(n) receiver scan on
    // the paper's fixed networks — same coverage set, same loss counters,
    // same floating-point sums, for every density and protocol.
    for density in [Density::D100, Density::D200, Density::D300] {
        let scenario = Scenario::paper(density);
        for k in [0usize, 4, 9] {
            let cfg = scenario.sim_config(k);
            let n = cfg.n_nodes;
            // AEDB under tuning parameters
            let params = AedbParams::default_config();
            let mut fast = Simulator::new(cfg.clone(), Aedb::new(n, params));
            let mut slow = Simulator::new(cfg.clone(), Aedb::new(n, params));
            slow.set_naive_deliveries(true);
            let (rf, rs) = (fast.run_to_end(), slow.run_to_end());
            assert_eq!(rf.broadcast, rs.broadcast, "{density} network {k} (AEDB)");
            assert_eq!(rf.counters, rs.counters, "{density} network {k} (AEDB)");
            // flooding exercises max-power, high-collision regimes
            let mut fast = Simulator::new(cfg.clone(), Flooding::new(n, (0.0, 0.1)));
            let mut slow = Simulator::new(cfg, Flooding::new(n, (0.0, 0.1)));
            slow.set_naive_deliveries(true);
            let (rf, rs) = (fast.run_to_end(), slow.run_to_end());
            assert_eq!(
                rf.broadcast, rs.broadcast,
                "{density} network {k} (flooding)"
            );
            assert_eq!(rf.counters, rs.counters, "{density} network {k} (flooding)");
        }
    }
}

#[test]
fn batch_evaluation_matches_sequential_on_fixed_networks() {
    // The whole batched pipeline — grid simulator, thread-pool fan-out,
    // quantized cache — must reproduce per-candidate evaluation exactly.
    let batched = AedbProblem::paper(Scenario::quick(Density::D200, 3));
    let sequential = AedbProblem::paper(Scenario::quick(Density::D200, 3)).with_eval_cache(false);
    let xs: Vec<Vec<f64>> = vec![
        AedbParams::default_config().to_vec(),
        vec![0.0, 0.5, -75.0, 0.5, 10.0],
        vec![0.9, 4.0, -92.0, 2.5, 45.0],
    ];
    let b = batched.evaluate_batch(&xs);
    for (x, ev) in xs.iter().zip(&b) {
        let s = sequential.evaluate(x);
        assert_eq!(ev.objectives, s.objectives);
        assert_eq!(ev.violation, s.violation);
    }
    // and a second pass is served entirely from the cache, unchanged
    let again = batched.evaluate_batch(&xs);
    assert_eq!(b, again);
    assert!(batched.cache_stats().0 >= xs.len() as u64);
}

#[test]
fn fast99_design_is_reproducible() {
    let f = Fast99::new(5, 129);
    assert_eq!(f.design(2), f.design(2));
    let g = Fast99::new(5, 129);
    assert_eq!(f.design(4), g.design(4));
}

#[test]
fn event_horizon_culling_never_skips_a_decodable_receiver() {
    // The PR-7 culling pin with the naive scan as oracle: a world of
    // tight stationary clusters spread over a large field is the shape
    // where the sweep's per-cell event horizon fires hardest (members
    // hug one corner of their cell, so whole cells near the edge of the
    // query disc are provably out of decode reach). If a bound were ever
    // too tight — skipping a cell that still held a decodable receiver —
    // the incremental run would lose deliveries the naive scan finds,
    // and the metrics/counters below would split.
    use manet::geometry::Vec2;
    use manet::mobility::MobilityModel;
    let mut groups: Vec<NodeGroup> = Vec::new();
    for (cx, cy) in [
        (120.0, 140.0),
        (480.0, 110.0),
        (840.0, 160.0),
        (150.0, 520.0),
        (500.0, 490.0),
        (860.0, 540.0),
        (130.0, 870.0),
        (510.0, 880.0),
    ] {
        groups.push(
            NodeGroup::new(12)
                .mobility(MobilityModel::Stationary)
                .placement(GroupPlacement::Rect {
                    min: Vec2::new(cx - 30.0, cy - 30.0),
                    max: Vec2::new(cx + 30.0, cy + 30.0),
                }),
        );
    }
    // A thin mobile population keeps the clusters connected so the
    // broadcast actually crosses the field (and keeps the test honest
    // about mixed-kind worlds).
    groups.push(NodeGroup::new(16).mobility(MobilityModel::RandomWalk {
        change_interval: 20.0,
    }));
    let mut builder = WorldSpec::builder()
        .area(1000.0, 1000.0)
        .broadcast_window(8.0, 12.0)
        .seed(7);
    for g in groups {
        builder = builder.group(g);
    }
    let world = builder.build().expect("valid world");
    let n = world.n_nodes();
    let run = |mode: DeliveryMode| {
        let mut sim = Simulator::from_world(&world, Flooding::new(n, (0.0, 0.1)));
        sim.set_delivery_mode(mode);
        let report = sim.run_to_end();
        (report, sim.sweep_stats())
    };
    let (inc, sweep) = run(DeliveryMode::Incremental);
    let (naive, _) = run(DeliveryMode::Naive);
    assert!(
        sweep.cells_culled > 0,
        "scenario must actually exercise the event horizon (visited {})",
        sweep.cells_visited
    );
    assert_eq!(inc.broadcast, naive.broadcast, "culling lost a receiver");
    assert_eq!(inc.counters, naive.counters, "culling lost a receiver");
}

#[test]
fn sharded_halo_never_drops_a_receiver_at_stripe_edges() {
    // The sharded delivery pin: a dense stationary line of nodes spanning
    // the full field width guarantees that *every* stripe boundary has
    // senders whose decode discs (and interference/half-duplex reach)
    // cross into neighbouring stripes. If a worker's gather radius were
    // ever short of decode-plus-gating reach, a receiver just across a
    // stripe edge would lose a delivery — or an interferer just outside
    // the stripe would be missed, flipping a capture decision — and the
    // run would split from the naive full-scan oracle below. Stationary
    // worlds are also the worst case for batch growth (no mobility events
    // ever force a flush), so this exercises the batch-cap flush path.
    use manet::geometry::Vec2;
    use manet::mobility::MobilityModel;
    let mut builder = WorldSpec::builder()
        .area(1200.0, 300.0)
        .broadcast_window(6.0, 10.0)
        .seed(11)
        // A horizontal band across the whole width: every grid column is
        // populated, so each stripe edge is straddled by radio reach.
        .group(
            NodeGroup::new(90)
                .mobility(MobilityModel::Stationary)
                .placement(GroupPlacement::Rect {
                    min: Vec2::new(0.0, 120.0),
                    max: Vec2::new(1200.0, 180.0),
                }),
        );
    // A few mobile walkers add mid-run re-anchors and grid refreshes.
    builder = builder.group(NodeGroup::new(10).mobility(MobilityModel::RandomWalk {
        change_interval: 20.0,
    }));
    let world = builder.build().expect("valid world");
    let n = world.n_nodes();
    let naive = {
        let mut sim = Simulator::from_world(&world, Flooding::new(n, (0.0, 0.1)));
        sim.set_delivery_mode(DeliveryMode::Naive);
        sim.run_to_end()
    };
    for shards in [1usize, 2, 3, 7] {
        let mut sim = Simulator::from_world(&world, Flooding::new(n, (0.0, 0.1)));
        sim.set_delivery_shards(shards);
        assert_eq!(sim.delivery_shards(), shards);
        let report = sim.run_to_end();
        assert_eq!(
            report.broadcast, naive.broadcast,
            "halo dropped a receiver at {shards} shards"
        );
        assert_eq!(
            report.counters, naive.counters,
            "halo dropped a receiver at {shards} shards"
        );
    }
}
