//! Property-based fuzzing of the scenario text grammar
//! (`manet::world::DenseScenario::parse_spec` / `spec_string`): every
//! syntactically valid spec parses and its canonical form is a parse
//! fixed point; arbitrary byte soup and mutated specs error without ever
//! panicking.

use aedb_repro::prelude::*;
use proptest::prelude::*;

/// One grammar modifier drawn from the full surface, canonical-order
/// slot by slot (the parser itself accepts any order — pinned by the
/// `manet::world` unit tests). Floats go through `Display`, which is
/// shortest-round-trip, so `parse(format(v)) == v` exactly.
fn mobility_mod() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just(":still".to_string()),
        (0.5f64..50.0).prop_map(|i| format!(":walk{i}")),
        (0.0f64..10.0).prop_map(|p| format!(":rwp{p}")),
    ]
}

fn speed_mod() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        (0.0f64..5.0, 0.0f64..5.0).prop_map(|(a, b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            format!(":speed{lo}-{hi}")
        }),
    ]
}

fn placement_mod(n: usize) -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        (
            0.0f64..200.0,
            0.0f64..200.0,
            0.001f64..300.0,
            0.001f64..300.0
        )
            .prop_map(|(x0, y0, dx, dy)| format!(":rect{x0}x{y0}-{}x{}", x0 + dx, y0 + dy)),
        prop::collection::vec((0.0f64..500.0, 0.0f64..500.0), n).prop_map(|pts| {
            let body: Vec<String> = pts.into_iter().map(|(x, y)| format!("{x}x{y}")).collect();
            format!(":at{}", body.join("-"))
        }),
    ]
}

fn power_mod() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        (-10.0f64..30.0).prop_map(|p| format!(":{p}dbm")),
    ]
}

/// `n` followed by its modifier suffixes — a head tail or a `+` group.
fn group_str() -> impl Strategy<Value = String> {
    (1usize..4).prop_flat_map(|n| {
        (
            Just(n),
            mobility_mod(),
            speed_mod(),
            placement_mod(n),
            power_mod(),
        )
            .prop_map(|(n, mob, spd, plc, pwr)| format!("{n}{mob}{spd}{plc}{pwr}"))
    })
}

/// A whole syntactically valid spec: `n@density[@sigma]` head (with its
/// own modifiers) plus up to three `+` groups.
fn valid_spec() -> impl Strategy<Value = String> {
    (
        group_str(),
        1u32..1000,
        prop::option::of(0.1f64..10.0),
        prop::collection::vec(group_str(), 0..3),
    )
        .prop_map(|(head, per_km2, sigma, groups)| {
            // The head's count is its leading digits; splice the density
            // (and optional sigma) in between count and modifiers.
            let digits = head.chars().take_while(char::is_ascii_digit).count();
            let mut out = format!("{}@{per_km2}", &head[..digits]);
            if let Some(s) = sigma {
                out.push_str(&format!("@{s}"));
            }
            out.push_str(&head[digits..]);
            for g in groups {
                out.push('+');
                out.push_str(&g);
            }
            out
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn valid_specs_parse_and_canonical_form_is_a_fixed_point(spec in valid_spec()) {
        let d = DenseScenario::parse_spec(&spec)
            .unwrap_or_else(|e| panic!("generated spec must parse: {e}"));
        let canonical = d.spec_string();
        let reparsed = DenseScenario::parse_spec(&canonical)
            .unwrap_or_else(|e| panic!("canonical form must parse: {e}"));
        // parse(spec_string(d)) == d, and spec_string is a fixed point.
        prop_assert_eq!(&reparsed, &d);
        prop_assert_eq!(reparsed.spec_string(), canonical);
        prop_assert!(d.n_nodes > 0 && d.per_km2 > 0);
        // Each parsed scenario compiles to a structurally valid world as
        // long as its placements fit the density-scaled field; either
        // outcome is fine, panicking is not.
        let _ = d.world_spec(0).validate();
    }

    #[test]
    fn arbitrary_input_never_panics(
        codes in prop::collection::vec(0u32..0xD800, 0usize..80),
    ) {
        let s: String = codes.into_iter().filter_map(char::from_u32).collect();
        let _ = DenseScenario::parse_spec(&s);
    }

    #[test]
    fn mutated_specs_never_panic(
        spec in valid_spec(),
        pos in 0usize..10_000,
        ch in prop_oneof![
            Just('+'), Just(':'), Just('@'), Just('x'), Just('-'), Just('.'),
            (0u32..128).prop_map(|c| char::from_u32(c).expect("ascii")),
        ],
    ) {
        // Splice a random character into a valid spec: still no panics,
        // and whatever parses round-trips.
        let mut s = spec;
        let at = pos % (s.len() + 1);
        let at = (0..=at).rev().find(|&i| s.is_char_boundary(i)).unwrap_or(0);
        s.insert(at, ch);
        if let Ok(d) = DenseScenario::parse_spec(&s) {
            prop_assert_eq!(DenseScenario::parse_spec(&d.spec_string()).unwrap(), d);
        }
    }
}
