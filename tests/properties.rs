//! Cross-crate property-based tests (proptest): invariants of the archive,
//! dominance relation, indicators, operators and the simulator geometry
//! under randomised inputs.

use aedb_repro::prelude::*;
use mopt::dominance::{constrained_dominance, pareto_dominance, DominanceOrd};
use mopt::indicators::hypervolume;
use mopt::ops::blx_alpha_step;
use proptest::prelude::*;

fn objective_vec(m: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dominance_is_antisymmetric(a in objective_vec(3), b in objective_vec(3)) {
        let ab = pareto_dominance(&a, &b);
        let ba = pareto_dominance(&b, &a);
        match ab {
            DominanceOrd::Dominates => prop_assert_eq!(ba, DominanceOrd::DominatedBy),
            DominanceOrd::DominatedBy => prop_assert_eq!(ba, DominanceOrd::Dominates),
            DominanceOrd::Indifferent => prop_assert_eq!(ba, DominanceOrd::Indifferent),
        }
    }

    #[test]
    fn dominance_is_irreflexive(a in objective_vec(4)) {
        prop_assert_eq!(pareto_dominance(&a, &a), DominanceOrd::Indifferent);
    }

    #[test]
    fn archive_members_mutually_nondominated(
        points in prop::collection::vec(objective_vec(2), 1..60),
        cap in 2usize..20,
    ) {
        let mut archive = AgaArchive::new(cap, 4);
        for p in &points {
            archive.try_insert(Candidate::evaluated(vec![], p.clone(), 0.0));
        }
        prop_assert!(archive.len() <= cap);
        let ms = archive.members();
        for i in 0..ms.len() {
            for j in 0..ms.len() {
                if i != j {
                    prop_assert_ne!(
                        constrained_dominance(&ms[j], &ms[i]),
                        DominanceOrd::Dominates
                    );
                }
            }
        }
    }

    #[test]
    fn archive_never_loses_global_best_per_objective(
        points in prop::collection::vec(objective_vec(2), 1..50),
    ) {
        // insert all, track the running non-dominated minimum of each axis
        let mut archive = AgaArchive::new(8, 3);
        for p in &points {
            archive.try_insert(Candidate::evaluated(vec![], p.clone(), 0.0));
        }
        for d in 0..2 {
            let global = points.iter().map(|p| p[d]).fold(f64::INFINITY, f64::min);
            let archived = archive.members().iter()
                .map(|c| c.objectives[d]).fold(f64::INFINITY, f64::min);
            // AGA property (i): extremes of every objective are retained
            prop_assert!(archived <= global + 1e-9,
                "axis {}: archive best {} vs global {}", d, archived, global);
        }
    }

    #[test]
    fn hypervolume_monotone_under_union(
        a in prop::collection::vec(objective_vec(2), 1..12),
        b in prop::collection::vec(objective_vec(2), 1..12),
    ) {
        let r = [150.0, 150.0];
        let hv_a = hypervolume(&a, &r);
        let mut ab = a.clone();
        ab.extend(b.iter().cloned());
        let hv_ab = hypervolume(&ab, &r);
        prop_assert!(hv_ab >= hv_a - 1e-9, "{hv_ab} < {hv_a}");
    }

    #[test]
    fn hypervolume_3d_consistent_with_monte_carlo_bound(
        pts in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3), 1..10),
    ) {
        let r = [1.0, 1.0, 1.0];
        let hv = hypervolume(&pts, &r);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&hv));
        // lower bound: largest single-point box
        let best = pts.iter()
            .map(|p| (1.0 - p[0]).max(0.0) * (1.0 - p[1]).max(0.0) * (1.0 - p[2]).max(0.0))
            .fold(0.0f64, f64::max);
        prop_assert!(hv >= best - 1e-9);
    }

    #[test]
    fn blx_step_stays_in_theoretical_interval(
        sp in -50.0f64..50.0,
        tp in -50.0f64..50.0,
        alpha in 0.01f64..0.99,
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let v = blx_alpha_step(sp, tp, alpha, &mut rng);
        let phi = alpha * (sp - tp).abs();
        prop_assert!(v >= sp - 2.0 * phi - 1e-9);
        prop_assert!(v <= sp + phi + 1e-9);
    }

    #[test]
    fn field_reflection_always_inside(
        x in -10_000.0f64..10_000.0,
        y in -10_000.0f64..10_000.0,
        w in 1.0f64..2000.0,
        h in 1.0f64..2000.0,
    ) {
        let field = manet::geometry::Field::new(w, h);
        let p = field.reflect(manet::geometry::Vec2::new(x, y));
        prop_assert!(field.contains(p), "{:?} escaped {}x{}", p, w, h);
    }

    #[test]
    fn radio_range_inversion_round_trips(
        tx in -10.0f64..20.0,
        rx in -96.0f64..-40.0,
    ) {
        let pl = manet::radio::PathLoss::ns3_default();
        prop_assume!(tx > rx);
        let d = pl.range_for(tx, rx);
        let back = pl.rx_dbm(tx, d);
        // exact except at the clamp region below the reference distance
        if d > 1.0 {
            prop_assert!((back - rx).abs() < 1e-6, "d={d} back={back} rx={rx}");
        }
    }

    #[test]
    fn bounds_clamp_idempotent(
        vals in prop::collection::vec(-1e6f64..1e6, 5),
    ) {
        let b = AedbParams::bounds();
        let mut x = vals.clone();
        b.clamp(&mut x);
        prop_assert!(b.contains(&x));
        let mut y = x.clone();
        b.clamp(&mut y);
        prop_assert_eq!(x, y);
    }

    #[test]
    fn wilcoxon_p_value_in_unit_interval(
        a in prop::collection::vec(-10.0f64..10.0, 2..30),
        b in prop::collection::vec(-10.0f64..10.0, 2..30),
    ) {
        if let Some(r) = wilcoxon_rank_sum(&a, &b) {
            prop_assert!((0.0..=1.0).contains(&r.p_value), "p = {}", r.p_value);
        }
    }
}

proptest! {
    // simulator cases are costlier — fewer cases
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn simulation_invariants_hold_for_random_configs(
        min_delay in 0.0f64..1.0,
        delay_span in 0.0f64..4.0,
        border in -95.0f64..-70.0,
        margin in 0.0f64..3.0,
        neighbors in 0.0f64..50.0,
        seed in 0u64..50,
    ) {
        let params = AedbParams {
            min_delay,
            max_delay: min_delay + delay_span,
            border_threshold: border,
            margin_threshold: margin,
            neighbors_threshold: neighbors,
        };
        let scenario = Scenario::quick(Density::D100, 1);
        let mut cfg = scenario.sim_config(0);
        cfg.seed = seed; // random network
        let n = cfg.n_nodes;
        let report = Simulator::new(cfg, Aedb::new(n, params)).run();
        let b = &report.broadcast;
        prop_assert!(b.coverage() < n);
        prop_assert!(b.forwardings <= n, "more forwardings than nodes");
        prop_assert!(b.broadcast_time() >= 0.0 && b.broadcast_time() <= 10.0);
        // every forwarding transmits at most the default power
        prop_assert!(b.energy_dbm_sum <= b.forwardings as f64 * 16.02 + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn threshold_band_matches_db_test_at_exact_threshold_distances(
        tx_dbm in -20.0f64..30.0,
        threshold_dbm in -110.0f64..-40.0,
        // relative offsets straddling the exact inverted threshold, down
        // to a fraction of the band width
        offset in -1e-7f64..1e-7,
    ) {
        // The log-free receive test's soundness contract at the sharpest
        // possible inputs: distances within ±1e-7 (relative) of the exact
        // decode threshold — 100x the uncertainty band — must classify
        // identically to the dB-domain comparison whenever the fast
        // squared-distance compare claims certainty.
        let pl = manet::radio::PathLoss::ns3_default();
        prop_assume!(tx_dbm > threshold_dbm);
        let (lo2, hi2) = pl.threshold_band_sq(tx_dbm, threshold_dbm);
        let d_star = pl.range_for(tx_dbm, threshold_dbm);
        let d = d_star * (1.0 + offset);
        let d2 = d * d;
        let db_says = pl.rx_dbm(tx_dbm, d) >= threshold_dbm;
        if d2 <= lo2 {
            prop_assert!(db_says, "lo bound unsound: d={d} d*={d_star}");
        } else if d2 > hi2 {
            prop_assert!(!db_says, "hi bound unsound: d={d} d*={d_star}");
        }
        // exactly at the threshold distance itself
        let d2s = d_star * d_star;
        let db_at = pl.rx_dbm(tx_dbm, d_star) >= threshold_dbm;
        if d2s <= lo2 {
            prop_assert!(db_at);
        } else if d2s > hi2 {
            prop_assert!(!db_at);
        }
    }

    #[test]
    fn spatial_window_interference_sums_match_flat_window(
        side in 300.0f64..3000.0,
        n_frames in 1usize..120,
        n_prunes in 0usize..6,
        seed in 0u64..10_000,
    ) {
        // Random transmission traces through both active-window
        // structures: the flat insertion-order scan and the spatialised
        // gather (sorted by seq) must see the same contributing frames in
        // the same order and accumulate bit-identical interference sums.
        use manet::events::{ActiveWindow, SpatialActiveWindow};
        use manet::geometry::{Field, Vec2};
        use manet::grid::CellGeometry;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};

        let mut rng = SmallRng::seed_from_u64(seed);
        let field = Field::new(side, side);
        let radio = manet::radio::RadioConfig::paper();
        // a coarse frame-window cell, like the simulator's
        let cell = radio
            .interference_floor_range(radio.default_tx_dbm)
            .min(side);
        let mut flat: ActiveWindow<(Vec2, f64, f64)> = ActiveWindow::new(2);
        let mut spatial: SpatialActiveWindow<(Vec2, f64, f64)> =
            SpatialActiveWindow::new(CellGeometry::new(field, cell), 2);

        let durations = [0.0004, 0.0041];
        let mut t = 0.0f64;
        let mut max_gate: f64 = 0.0;
        for k in 0..n_frames {
            t += rng.gen_range(0.0..0.01);
            let lane = rng.gen_range(0..2usize);
            let pos = Vec2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
            let tx_dbm = rng.gen_range(-10.0..16.02);
            let gate = radio.interference_floor_range(tx_dbm);
            max_gate = max_gate.max(gate);
            let end = t + durations[lane];
            flat.insert(lane, end, (pos, tx_dbm, gate * gate));
            spatial.insert(lane, end, pos, (pos, tx_dbm, gate * gate));
            if n_prunes > 0 && k % (n_frames / n_prunes + 1) == 0 {
                let cutoff = t - rng.gen_range(0.0..0.005);
                flat.prune(cutoff);
                spatial.prune(cutoff);
            }
            prop_assert_eq!(flat.len(), spatial.len());
        }

        // interference sums at random receiver positions: iterate the
        // flat window in insertion order vs the sorted spatial gather
        let pl = radio.path_loss;
        let floor = radio.rx_sensitivity_dbm - manet::radio::INTERFERENCE_FLOOR_DB;
        let mut scratch: Vec<(u64, (Vec2, f64, f64))> = Vec::new();
        for _ in 0..8 {
            let rpos = Vec2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
            let mut flat_sum = 0.0;
            let mut flat_terms = 0u32;
            for &(pos, tx_dbm, gate_r2) in flat.iter() {
                let d2 = pos.distance_sq(rpos);
                if d2 > gate_r2 {
                    continue;
                }
                let rx = pl.rx_dbm(tx_dbm, d2.sqrt());
                if rx >= floor {
                    flat_sum += manet::radio::dbm_to_mw(rx);
                    flat_terms += 1;
                }
            }
            scratch.clear();
            spatial.gather_into(rpos, max_gate + 1.0, &mut scratch);
            scratch.sort_unstable_by_key(|&(seq, _)| seq);
            let mut spatial_sum = 0.0;
            let mut spatial_terms = 0u32;
            for &(_, (pos, tx_dbm, gate_r2)) in &scratch {
                let d2 = pos.distance_sq(rpos);
                if d2 > gate_r2 {
                    continue;
                }
                let rx = pl.rx_dbm(tx_dbm, d2.sqrt());
                if rx >= floor {
                    spatial_sum += manet::radio::dbm_to_mw(rx);
                    spatial_terms += 1;
                }
            }
            prop_assert_eq!(flat_terms, spatial_terms);
            prop_assert!(
                flat_sum.to_bits() == spatial_sum.to_bits(),
                "interference sums must be bit-identical: {} vs {}",
                flat_sum,
                spatial_sum
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn delivery_modes_agree_with_receivers_at_exact_decode_range(
        seed in 0u64..10_000,
        n_ring in 3usize..10,
        scale_idx in 0usize..5,
    ) {
        // Receivers placed *exactly* at the decode-threshold distance (and
        // at ±1e-9 relative nudges — inside the log-free test's fallback
        // band) from a stationary source: the sharpest inputs for the
        // squared-distance decode compare. Every delivery mode must agree
        // bit-for-bit on who decodes.
        let scale = [1.0 - 1e-9, 1.0 - 1e-12, 1.0, 1.0 + 1e-12, 1.0 + 1e-9][scale_idx];
        let mut c = SimConfig::paper(1 + n_ring, seed);
        c.mobility = manet::mobility::MobilityModel::Stationary;
        c.broadcast_time = 2.0;
        c.end_time = 4.0;
        let radio = c.radio;
        let d_star = radio
            .path_loss
            .range_for(radio.default_tx_dbm, radio.rx_sensitivity_dbm);
        let center = manet::geometry::Vec2::new(250.0, 250.0);
        let mut pts = vec![center];
        for k in 0..n_ring {
            let theta = k as f64 / n_ring as f64 * std::f64::consts::TAU;
            let p = center + manet::geometry::Vec2::from_angle(theta) * (d_star * scale);
            pts.push(p);
        }
        prop_assume!(pts.iter().all(|p| c.field.contains(*p)));
        c.placement = manet::sim::Placement::Explicit(pts);
        let n = c.n_nodes;
        let run = |mode: DeliveryMode| {
            let mut sim = Simulator::new(c.clone(), Flooding::new(n, (0.0, 0.1)));
            sim.set_delivery_mode(mode);
            sim.run_to_end()
        };
        let inc = run(DeliveryMode::Incremental);
        let reb = run(DeliveryMode::HorizonRebuild);
        let naive = run(DeliveryMode::Naive);
        prop_assert_eq!(&inc.broadcast, &reb.broadcast);
        prop_assert_eq!(&inc.counters, &reb.counters);
        prop_assert_eq!(&inc.broadcast, &naive.broadcast);
        prop_assert_eq!(&inc.counters, &naive.counters);
    }

    #[test]
    fn delivery_modes_agree_on_random_mobility_traces(
        n in 5usize..36,
        seed in 0u64..10_000,
        mobility_kind in 0usize..3,
        sigma_idx in 0usize..3,
        field_side in 200.0f64..700.0,
    ) {
        // Random mobility traces across all three delivery paths: the
        // incremental event-driven grid, the horizon-rebuild grid and the
        // naive scan must report identical metrics AND counters. Shadowed
        // configs are included: the +4σ bounded tail lives inside the
        // propagation model itself (see manet::radio::SHADOW_TAIL_SIGMAS,
        // whose clipped-mass error budget is asserted in the radio tests),
        // so shadowing changes *what* is simulated, never how the paths
        // relate — equality stays bit-exact.
        let mut c = SimConfig::paper(n, seed);
        c.field = manet::geometry::Field::new(field_side, field_side);
        c.mobility = match mobility_kind {
            0 => manet::mobility::MobilityModel::RandomWalk { change_interval: 5.0 },
            1 => manet::mobility::MobilityModel::RandomWaypoint { pause: 1.0 },
            _ => manet::mobility::MobilityModel::Stationary,
        };
        c.radio.shadowing_sigma_db = [0.0, 4.0, 6.0][sigma_idx];
        // Shortened protocol: enough beaconing to build neighbour tables,
        // then the broadcast — keeps 30 random sims per suite run cheap.
        c.broadcast_time = 3.0;
        c.end_time = 6.0;
        let run = |mode: DeliveryMode| {
            let mut sim = Simulator::new(c.clone(), Flooding::new(n, (0.0, 0.1)));
            sim.set_delivery_mode(mode);
            sim.run_to_end()
        };
        let inc = run(DeliveryMode::Incremental);
        let reb = run(DeliveryMode::HorizonRebuild);
        let naive = run(DeliveryMode::Naive);
        prop_assert_eq!(&inc.broadcast, &reb.broadcast);
        prop_assert_eq!(&inc.counters, &reb.counters);
        prop_assert_eq!(&inc.broadcast, &naive.broadcast);
        prop_assert_eq!(&inc.counters, &naive.counters);
    }

    #[test]
    fn delivery_modes_agree_with_nodes_on_cell_boundaries(
        seed in 0u64..10_000,
        cols in 2usize..5,
        rows in 2usize..5,
        moving in 0usize..2,
    ) {
        // Nodes placed *exactly* on grid-cell boundary multiples (corners
        // and edges of the spatial index's cells): the bucketing of a
        // boundary coordinate and the snapshot filter at the exact decode
        // radius are the fenceposts the SoA query must get right. Both a
        // frozen lattice and a lattice that immediately walks off its
        // boundaries must keep all three delivery paths bit-identical.
        let mut probe = SimConfig::paper(1, 0);
        probe.mobility = manet::mobility::MobilityModel::Stationary;
        let cell = Simulator::new(probe, SourceOnly).grid_cell_size();
        let mut c = SimConfig::paper(cols * rows, seed);
        c.mobility = if moving == 1 {
            manet::mobility::MobilityModel::RandomWalk { change_interval: 5.0 }
        } else {
            manet::mobility::MobilityModel::Stationary
        };
        c.broadcast_time = 3.0;
        c.end_time = 6.0;
        let pts: Vec<manet::geometry::Vec2> = (0..rows)
            .flat_map(|r| {
                (0..cols).map(move |q| {
                    manet::geometry::Vec2::new(q as f64 * cell, r as f64 * cell)
                })
            })
            .collect();
        prop_assume!(pts.iter().all(|p| c.field.contains(*p)));
        c.placement = manet::sim::Placement::Explicit(pts);
        let n = c.n_nodes;
        let run = |mode: DeliveryMode| {
            let mut sim = Simulator::new(c.clone(), Flooding::new(n, (0.0, 0.1)));
            sim.set_delivery_mode(mode);
            sim.run_to_end()
        };
        let inc = run(DeliveryMode::Incremental);
        let reb = run(DeliveryMode::HorizonRebuild);
        let naive = run(DeliveryMode::Naive);
        prop_assert_eq!(&inc.broadcast, &reb.broadcast);
        prop_assert_eq!(&inc.counters, &reb.counters);
        prop_assert_eq!(&inc.broadcast, &naive.broadcast);
        prop_assert_eq!(&inc.counters, &naive.counters);
    }

    #[test]
    fn delivery_modes_agree_when_segments_change_at_query_time(
        seed in 0u64..10_000,
        ci_idx in 0usize..3,
        n in 10usize..30,
    ) {
        // Frame-end times aligned *exactly* with mobility re-draw
        // instants: data_duration == change_interval (both exact binary
        // fractions) and zero forwarding jitter put every data-frame
        // delivery query at the precise boundary between two kinematic
        // segments — the event-order tie the snapshot lanes must resolve
        // identically to the mobility structs in every delivery mode.
        let ci = [0.5, 1.0, 2.0][ci_idx];
        let mut c = SimConfig::paper(n, seed);
        c.mobility = manet::mobility::MobilityModel::RandomWalk { change_interval: ci };
        c.radio.data_duration = ci;
        c.broadcast_time = 3.0;
        c.end_time = 7.0;
        let run = |mode: DeliveryMode| {
            let mut sim = Simulator::new(c.clone(), Flooding::new(n, (0.0, 0.0)));
            sim.set_delivery_mode(mode);
            sim.run_to_end()
        };
        let inc = run(DeliveryMode::Incremental);
        let reb = run(DeliveryMode::HorizonRebuild);
        let naive = run(DeliveryMode::Naive);
        prop_assert_eq!(&inc.broadcast, &reb.broadcast);
        prop_assert_eq!(&inc.counters, &reb.counters);
        prop_assert_eq!(&inc.broadcast, &naive.broadcast);
        prop_assert_eq!(&inc.counters, &naive.counters);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn heterogeneous_worlds_agree_across_delivery_modes(
        seed in 0u64..10_000,
        n_walk in 8usize..24,
        n_other in 2usize..10,
        other_kind in 0usize..2,
        power_idx in 0usize..3,
        field_side in 250.0f64..600.0,
    ) {
        // The WorldSpec tentpole guarantee: heterogeneous populations —
        // mixed mobility models AND two radio power classes in one world —
        // keep all three delivery paths bit-identical. Per-group powers
        // flow through the per-transmission threshold precomputation and
        // per-node mobility through the snapshot's kind lane, so nothing
        // in the parity argument is mode-specific.
        use manet::mobility::MobilityModel;
        use manet::world::{NodeGroup, WorldSpec};
        let other_mobility = [
            MobilityModel::Stationary,
            MobilityModel::RandomWaypoint { pause: 1.0 },
        ][other_kind];
        let other_power = [10.0, 5.0, 16.02][power_idx];
        let run = |mode: DeliveryMode| {
            let spec = WorldSpec::builder()
                .area(field_side, field_side)
                .seed(seed)
                .group(NodeGroup::new(n_walk).mobility(MobilityModel::RandomWalk {
                    change_interval: 5.0,
                }))
                .group(
                    NodeGroup::new(n_other)
                        .mobility(other_mobility)
                        .tx_power_dbm(other_power),
                )
                // Shortened protocol: enough beaconing to build neighbour
                // tables, then the broadcast.
                .broadcast_window(3.0, 6.0)
                .delivery_mode(mode)
                .build()
                .expect("valid spec");
            let n = spec.n_nodes();
            Simulator::from_world(&spec, Flooding::new(n, (0.0, 0.1))).run()
        };
        let inc = run(DeliveryMode::Incremental);
        let reb = run(DeliveryMode::HorizonRebuild);
        let naive = run(DeliveryMode::Naive);
        prop_assert_eq!(&inc.broadcast, &reb.broadcast);
        prop_assert_eq!(&inc.counters, &reb.counters);
        prop_assert_eq!(&inc.broadcast, &naive.broadcast);
        prop_assert_eq!(&inc.counters, &naive.counters);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sharded_delivery_bit_identical_across_shard_counts(
        seed in 0u64..10_000,
        n_band in 24usize..60,
        n_walk in 6usize..16,
        power_idx in 0usize..3,
        shadowed_i in 0usize..2,
        width in 600.0f64..1400.0,
    ) {
        // The space-sharding guarantee: any shard count reproduces the
        // sequential incremental run bit-for-bit — same metrics, same
        // counters — with the naive full scan as an independent oracle.
        // The generated worlds are adversarial for the halo/merge logic:
        // a stationary band spanning every grid column (so each stripe
        // boundary is straddled by decode and interference reach, and no
        // mobility event ever forces a flush — the batch-cap path runs),
        // a mobile population whose mid-run re-anchors and grid refreshes
        // land between batches, a second transmit-power class, and
        // optionally shadowed links.
        use manet::geometry::Vec2;
        use manet::mobility::MobilityModel;
        use manet::world::{NodeGroup, WorldSpec};
        let shadowed = shadowed_i == 1;
        let other_power = [10.0, 5.0, 16.02][power_idx];
        let build = || {
            let mut radio = manet::RadioConfig::paper();
            if !shadowed {
                radio.shadowing_sigma_db = 0.0;
            }
            WorldSpec::builder()
                .area(width, 300.0)
                .radio(radio)
                .seed(seed)
                .group(
                    NodeGroup::new(n_band)
                        .mobility(MobilityModel::Stationary)
                        .placement(GroupPlacement::Rect {
                            min: Vec2::new(0.0, 120.0),
                            max: Vec2::new(width, 180.0),
                        }),
                )
                .group(
                    NodeGroup::new(n_walk)
                        .mobility(MobilityModel::RandomWalk { change_interval: 5.0 })
                        .tx_power_dbm(other_power),
                )
                .broadcast_window(3.0, 6.0)
                .build()
                .expect("valid spec")
        };
        let run = |mode: DeliveryMode, shards: usize| {
            let spec = build();
            let n = spec.n_nodes();
            let mut sim = Simulator::from_world(&spec, Flooding::new(n, (0.0, 0.1)));
            sim.set_delivery_mode(mode);
            sim.set_delivery_shards(shards);
            sim.run_to_end()
        };
        let sequential = run(DeliveryMode::Incremental, 1);
        let naive = run(DeliveryMode::Naive, 1);
        prop_assert_eq!(&sequential.broadcast, &naive.broadcast);
        prop_assert_eq!(&sequential.counters, &naive.counters);
        for shards in [2usize, 3, 7] {
            let sharded = run(DeliveryMode::Incremental, shards);
            prop_assert!(
                sequential.broadcast == sharded.broadcast
                    && sequential.counters == sharded.counters,
                "diverged at {} shards", shards
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scenario_grammar_round_trips(
        head_n in 1usize..5_000,
        per_km2 in 1u32..800,
        sigma_idx in 0usize..4,
        tail_count in 0usize..3,
        tail_ns in prop::collection::vec(1usize..500, 2),
        tail_mobs in prop::collection::vec(0usize..5, 2),
        tail_ps in prop::collection::vec(0usize..4, 2),
    ) {
        // parse(format(spec)) == spec over the grammar-expressible space:
        // arbitrary head density/sigma plus up to two extra groups with
        // random mobility modifiers and power classes.
        use manet::mobility::MobilityModel;
        use manet::world::NodeGroup;
        let sigma = [0.0, 2.5, 4.0, 6.25][sigma_idx];
        let mut d = DenseScenario::new(per_km2, head_n);
        if sigma > 0.0 {
            d = d.with_shadowing(sigma);
        }
        for i in 0..tail_count {
            let (n, mob_idx, p_idx) = (tail_ns[i], tail_mobs[i], tail_ps[i]);
            let mut g = NodeGroup::new(n).mobility(match mob_idx {
                0 => MobilityModel::RandomWalk { change_interval: 20.0 },
                1 => MobilityModel::RandomWalk { change_interval: 7.5 },
                2 => MobilityModel::RandomWaypoint { pause: 0.0 },
                3 => MobilityModel::RandomWaypoint { pause: 3.25 },
                _ => MobilityModel::Stationary,
            });
            if let Some(p) = [None, Some(10.0), Some(0.25), Some(-3.5)][p_idx] {
                g = g.tx_power_dbm(p);
            }
            d = d.with_group(g);
        }
        let text = d.spec_string();
        let parsed = DenseScenario::parse_spec(&text)
            .expect("canonical spec text must parse");
        prop_assert_eq!(&parsed, &d);
        // formatting is canonical: a second trip is a fixed point
        prop_assert_eq!(parsed.spec_string(), text);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_sweep_bit_identical_to_scalar_filter(
        seed in 0u64..100_000,
        n in 1usize..64,
        cell in 20.0f64..80.0,
        n_queries in 2usize..6,
    ) {
        // The PR-7 tentpole pin, posed directly on the filter pair (the
        // full-simulation version lives in the delivery-mode agreement
        // suites above): on random kinematic snapshots mixing all three
        // SegmentKinds — with some nodes placed exactly on cell
        // boundaries — the batched lane sweep must return the *bit-exact*
        // survivors, positions and squared distances of the scalar
        // per-candidate filter, across a sequence of queries with
        // mid-sweep segment re-anchoring (grid moves + bound
        // invalidation) between them.
        use manet::geometry::{Field, Vec2};
        use manet::mobility::{KinematicSegment, SegmentKind};
        use manet::snapshot::KinematicSnapshot;
        use manet::sweep::DeliverySweep;
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};

        let mut rng = SmallRng::seed_from_u64(seed);
        let side = 400.0;
        let field = Field::new(side, side);
        // A segment anchored at `p` at time `t0`, of a random kind; the
        // waypoint leg is physically constructed (velocity = displacement,
        // arrival from a real speed) so the event-horizon speed bound sees
        // the same data shapes the simulator produces.
        let make_segment = |rng: &mut SmallRng, p: Vec2, t0: f64| {
            match rng.gen_range(0u32..3) {
                0 => KinematicSegment {
                    kind: SegmentKind::Still,
                    origin: p,
                    velocity: Vec2::new(0.0, 0.0),
                    t0,
                    arrival: f64::INFINITY,
                    dest: p,
                },
                1 => KinematicSegment {
                    kind: SegmentKind::Walk,
                    origin: p,
                    velocity: Vec2::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0)),
                    t0,
                    arrival: f64::INFINITY,
                    dest: p,
                },
                _ => {
                    let dest = Vec2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
                    let speed = rng.gen_range(0.5..2.0);
                    KinematicSegment {
                        kind: SegmentKind::Waypoint,
                        origin: p,
                        velocity: dest - p,
                        t0,
                        arrival: t0 + p.distance(dest) / speed,
                        dest,
                    }
                }
            }
        };
        // Half the placements are snapped to an exact cell-boundary
        // multiple — the coordinates where a float disagreement between
        // the two filters' cell walks would surface.
        let place = |rng: &mut SmallRng| {
            let coord = |rng: &mut SmallRng| {
                if rng.gen_bool(0.5) {
                    (rng.gen_range(0.0..side / cell).floor() * cell).min(side)
                } else {
                    rng.gen_range(0.0..side)
                }
            };
            Vec2::new(coord(rng), coord(rng))
        };
        let starts: Vec<Vec2> = (0..n).map(|_| place(&mut rng)).collect();
        let segs: Vec<KinematicSegment> =
            starts.iter().map(|&p| make_segment(&mut rng, p, 0.0)).collect();
        let mut snap = KinematicSnapshot::new(field);
        snap.rebuild(field, segs.iter().copied());
        let mut grid = SpatialGrid::new(field, cell);
        grid.rebuild(n, 0.0, |i| starts[i]);
        let mut sweep = DeliverySweep::new();
        sweep.reset(grid.geometry().n_cells(), n);

        let scalar = |grid: &SpatialGrid,
                      snap: &KinematicSnapshot,
                      center: Vec2,
                      t: f64,
                      radius: f64| {
            let r2 = radius * radius;
            let mut out: Vec<(usize, Vec2, f64)> = Vec::new();
            grid.for_each_in_cells(center, radius + manet::GRID_BUCKET_SLACK_M, |i| {
                let p = snap.position(i, t);
                let d2 = p.distance_sq(center);
                if d2 <= r2 {
                    out.push((i, p, d2));
                }
            });
            out.sort_unstable_by_key(|&(i, _, _)| i);
            out
        };

        let mut got: Vec<(usize, Vec2, f64)> = Vec::new();
        for q in 0..n_queries {
            let t = q as f64 * 1.5;
            let center = place(&mut rng);
            let radius = rng.gen_range(10.0..150.0);
            got.clear();
            sweep.filter_into(
                &grid,
                &snap,
                center,
                t,
                radius,
                manet::GRID_BUCKET_SLACK_M,
                &mut got,
            );
            let want = scalar(&grid, &snap, center, t, radius);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.0, w.0);
                prop_assert_eq!(g.1.x.to_bits(), w.1.x.to_bits());
                prop_assert_eq!(g.1.y.to_bits(), w.1.y.to_bits());
                prop_assert_eq!(g.2.to_bits(), w.2.to_bits());
            }
            // Mid-sweep re-anchoring: a few nodes get fresh segments at
            // the query time, anchored at their exact current position,
            // with the same grid-move + bound-invalidation discipline the
            // simulator follows (update, then invalidate the new cell).
            for _ in 0..rng.gen_range(0usize..4).min(n) {
                let i = rng.gen_range(0..n);
                let p = snap.position(i, t);
                snap.set(i, make_segment(&mut rng, p, t));
                grid.update_node(i, p);
                sweep.invalidate_cell(grid.node_cell(i));
            }
        }
    }

    #[test]
    fn archive_capacity_never_exceeded_mid_stream(
        points in prop::collection::vec(objective_vec(3), 1..120),
        cap in 1usize..8,
    ) {
        // The bound must hold after EVERY insert, not just at the end —
        // eviction runs inside try_insert, never lazily.
        let mut archive = AgaArchive::new(cap, 3);
        for p in &points {
            archive.try_insert(Candidate::evaluated(vec![], p.clone(), 0.0));
            prop_assert!(archive.len() <= cap);
            prop_assert!(!archive.is_empty());
        }
    }

    #[test]
    fn hypervolume_of_a_single_point_is_its_box(
        p2 in objective_vec(2),
        p3 in objective_vec(3),
        margin in 0.5f64..20.0,
    ) {
        // One point a fixed margin inside the reference dominates exactly
        // a hypercube of side `margin`.
        let r2: Vec<f64> = p2.iter().map(|v| v + margin).collect();
        let hv2 = hypervolume(std::slice::from_ref(&p2), &r2);
        prop_assert!((hv2 - margin.powi(2)).abs() < 1e-9 * margin.powi(2));
        let r3: Vec<f64> = p3.iter().map(|v| v + margin).collect();
        let hv3 = hypervolume(std::slice::from_ref(&p3), &r3);
        prop_assert!((hv3 - margin.powi(3)).abs() < 1e-9 * margin.powi(3));
    }

    #[test]
    fn hypervolume_degenerate_fronts_are_safe(
        front in prop::collection::vec(objective_vec(3), 1..12),
    ) {
        // objective_vec draws from [-100, 100), so 200-per-axis is a
        // reference every point is strictly inside.
        let reference = vec![200.0; 3];
        let hv = hypervolume(&front, &reference);
        prop_assert!(hv.is_finite() && hv >= 0.0);
        // duplicating every point changes nothing
        let mut doubled = front.clone();
        doubled.extend(front.iter().cloned());
        prop_assert!((hypervolume(&doubled, &reference) - hv).abs() <= 1e-9 * hv.max(1.0));
        // a point on the reference boundary contributes nothing
        let mut with_boundary = front.clone();
        with_boundary.push(reference.clone());
        prop_assert!((hypervolume(&with_boundary, &reference) - hv).abs() <= 1e-9 * hv.max(1.0));
        // the empty front has zero hypervolume
        let empty: Vec<Vec<f64>> = Vec::new();
        prop_assert_eq!(hypervolume(&empty, &reference), 0.0);
    }
}
