//! # aedb-repro — reproduction of *"A Parallel Multi-objective Local Search
//! for AEDB Protocol Tuning"* (Iturriaga, Ruiz, Nesmachnow, Dorronsoro,
//! Bouvry; IPDPS Workshops 2013)
//!
//! This façade crate re-exports the whole system so examples and downstream
//! users need a single dependency:
//!
//! * [`manet`] — discrete-event MANET simulator (the ns-3 substitute),
//! * [`aedb`] — the AEDB broadcast protocol and its tuning problem,
//! * [`mopt`] — multi-objective optimisation substrate (dominance, AGA
//!   archive, quality indicators, operators, statistics),
//! * [`moea`] — the NSGA-II and CellDE baselines,
//! * [`mls`] — AEDB-MLS, the paper's parallel multi-objective local search,
//! * [`fast99`] — the FAST99 global sensitivity analysis.
//!
//! ## Quickstart
//!
//! ```no_run
//! use aedb_repro::prelude::*;
//!
//! // The tuning problem: density 100 dev/km², the paper's 10 fixed networks.
//! let problem = AedbProblem::paper(Scenario::paper(Density::D100));
//!
//! // AEDB-MLS with a laptop-sized budget (2 populations × 2 threads).
//! let mls = Mls::new(MlsConfig::quick(2, 2, 250));
//! let result = mls.optimize(&problem, 42);
//!
//! for c in &result.front {
//!     let p = AedbParams::from_vec(&c.params);
//!     println!("{:?} -> energy {:.1} dBm, coverage {:.1}, forwardings {:.1}",
//!              p, c.objectives[0], -c.objectives[1], c.objectives[2]);
//! }
//! ```

pub use aedb;
pub use aedb_mls as mls;
pub use fast99;
pub use manet;
pub use moea;
pub use mopt;

/// One-stop imports for examples and quick experiments.
pub mod prelude {
    pub use aedb::params::AedbParams;
    pub use aedb::problem::{AedbOutcome, AedbProblem};
    pub use aedb::protocol::Aedb;
    pub use aedb::scenario::{Density, Scenario};
    pub use aedb_mls::criteria::SearchCriteria;
    pub use aedb_mls::hybrid::{CellDeMls, CellDeMlsConfig};
    pub use aedb_mls::mls::{AcceptanceRule, ArchiveKind, CriteriaChoice, Mls, MlsConfig, MlsResult};
    pub use fast99::{Fast99, Indices};
    pub use manet::protocol::{Flooding, Protocol, ProtocolApi, SourceOnly};
    pub use manet::sim::{SimConfig, SimReport, Simulator};
    pub use moea::cellde::{CellDe, CellDeConfig};
    pub use moea::nsga2::{Nsga2, Nsga2Config};
    pub use mopt::algorithm::{MoAlgorithm, RunResult};
    pub use mopt::archive::AgaArchive;
    pub use mopt::indicators::{
        generalized_spread, hypervolume, inverted_generational_distance, Normalizer,
    };
    pub use mopt::problem::{Evaluation, Problem};
    pub use mopt::solution::{Bounds, Candidate};
    pub use mopt::stats::{boxplot, wilcoxon_rank_sum};
}
