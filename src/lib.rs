//! # aedb-repro — reproduction of *"A Parallel Multi-objective Local Search
//! for AEDB Protocol Tuning"* (Iturriaga, Ruiz, Nesmachnow, Dorronsoro,
//! Bouvry; IPDPS Workshops 2013)
//!
//! This façade crate re-exports the whole system so examples and downstream
//! users need a single dependency:
//!
//! * [`manet`] — discrete-event MANET simulator (the ns-3 substitute) with
//!   an incremental, reusable core: delivery queries go through a uniform
//!   grid maintained by per-node cell-crossing events (O(1) moves instead
//!   of horizon rebuilds — see [`manet::sim::DeliveryMode`]), interference
//!   tracking is O(active-set), shadowed scenarios use a bounded-tail
//!   (+4σ) finite-range query, and a simulator instance can be
//!   [`reset`](manet::sim::Simulator::reset) across runs without
//!   reallocating,
//! * [`aedb`] — the AEDB broadcast protocol and its tuning problem, with
//!   batched (candidate × network) evaluation and a quantized evaluation
//!   cache,
//! * [`mopt`] — multi-objective optimisation substrate (dominance, AGA
//!   archive, quality indicators, operators, statistics) and the
//!   [`Problem`](mopt::problem::Problem) trait with its batched
//!   [`evaluate_batch`](mopt::problem::Problem::evaluate_batch) entry
//!   point,
//! * [`moea`] — the NSGA-II, MOCell and CellDE baselines, feeding whole
//!   generations to the problem at once,
//! * [`island`] — the asynchronous island-model optimizer: steady-state
//!   islands with bounded elite archives, ring migration and a
//!   deterministic epoch-merged anytime archive whose front improves
//!   monotonically and can be streamed mid-run,
//! * [`mls`] — AEDB-MLS, the paper's parallel multi-objective local search,
//! * [`fast99`] — the FAST99 global sensitivity analysis,
//! * [`serve`] — the resident simulation service: submit simulate or
//!   campaign jobs to a [`SimService`](serve::SimService), stream progress
//!   events, cancel, and replay archived campaigns across restarts,
//! * [`store`] — the pluggable [`Storage`](store::Storage) trait behind the
//!   service's campaign archive and the AEDB eval cache (disk and
//!   in-memory backends).
//!
//! ## Quickstart
//!
//! Evaluate AEDB configurations against the paper's fixed networks — one
//! at a time or as a batch (the batch fans the candidate × network
//! product over all cores and caches repeated configurations):
//!
//! ```
//! use aedb_repro::prelude::*;
//!
//! // Density 100 dev/km², 2 fixed networks (10 in the paper's protocol).
//! let problem = AedbProblem::paper(Scenario::quick(Density::D100, 2));
//!
//! let defaults = AedbParams::default_config().to_vec();
//! let eager = vec![0.0, 0.2, -70.0, 1.0, 50.0];
//! let batch = problem.evaluate_batch(&[defaults.clone(), eager]);
//!
//! // Minimisation form: [energy_dbm, -coverage, forwardings]; the 2 s
//! // broadcast-time constraint is a violation scalar.
//! assert_eq!(batch.len(), 2);
//! assert_eq!(batch[0], problem.evaluate(&defaults)); // cached, identical
//! assert!(batch.iter().all(|ev| ev.objectives.len() == 3 && ev.violation >= 0.0));
//! ```
//!
//! Scenarios themselves are declarative: a
//! [`WorldSpec`](manet::world::WorldSpec) describes a whole world — field,
//! radio, and any number of node groups with their own mobility, placement
//! and power class — and compiles into the simulator through one call:
//!
//! ```
//! use aedb_repro::prelude::*;
//! use manet::mobility::MobilityModel;
//!
//! // 40 random-walk handsets plus 4 stationary 10 dBm sinks.
//! let spec = WorldSpec::builder()
//!     .area(400.0, 400.0)
//!     .seed(7)
//!     .group(NodeGroup::new(40))
//!     .group(NodeGroup::new(4)
//!         .mobility(MobilityModel::Stationary)
//!         .tx_power_dbm(10.0))
//!     .build()
//!     .expect("valid spec");
//! let n = spec.n_nodes();
//! let report = Simulator::from_world(&spec, Flooding::new(n, (0.0, 0.1))).run();
//! assert_eq!(report.n_nodes, 44);
//! ```
//!
//! A full optimisation run (laptop-sized budget; the paper uses
//! 8 populations × 12 threads × 250 evaluations per density):
//!
//! ```no_run
//! use aedb_repro::prelude::*;
//!
//! let problem = AedbProblem::paper(Scenario::paper(Density::D100));
//! let mls = Mls::new(MlsConfig::quick(2, 2, 250));
//! let result = mls.optimize(&problem, 42);
//!
//! for c in &result.front {
//!     let p = AedbParams::from_vec(&c.params);
//!     println!("{:?} -> energy {:.1} dBm, coverage {:.1}, forwardings {:.1}",
//!              p, c.objectives[0], -c.objectives[1], c.objectives[2]);
//! }
//! ```

pub use aedb;
pub use aedb_mls as mls;
pub use fast99;
pub use island;
pub use manet;
pub use moea;
pub use mopt;
pub use serve;
pub use store;

/// One-stop imports for examples and quick experiments.
pub mod prelude {
    pub use aedb::params::AedbParams;
    pub use aedb::problem::{AedbOutcome, AedbProblem};
    pub use aedb::protocol::Aedb;
    pub use aedb::scenario::{DenseScenario, Density, Scenario};
    pub use aedb_mls::criteria::SearchCriteria;
    pub use aedb_mls::hybrid::{CellDeMls, CellDeMlsConfig};
    pub use aedb_mls::mls::{
        AcceptanceRule, ArchiveKind, CriteriaChoice, Mls, MlsConfig, MlsResult,
    };
    pub use fast99::{Fast99, Indices};
    pub use island::{AnytimeArchive, IslandConfig, IslandOptimizer};
    pub use manet::grid::SpatialGrid;
    pub use manet::protocol::{Flooding, Protocol, ProtocolApi, SourceOnly};
    pub use manet::sim::{DeliveryMode, SimConfig, SimReport, Simulator};
    pub use manet::world::{GroupPlacement, NodeGroup, WorldSpec};
    pub use moea::cellde::{CellDe, CellDeConfig};
    pub use moea::mocell::{MoCell, MoCellConfig};
    pub use moea::nsga2::{Nsga2, Nsga2Config};
    pub use mopt::algorithm::{MoAlgorithm, RunResult};
    pub use mopt::archive::AgaArchive;
    pub use mopt::indicators::{
        generalized_spread, hypervolume, inverted_generational_distance, Normalizer,
    };
    pub use mopt::problem::{Evaluation, Problem};
    pub use mopt::solution::{Bounds, Candidate};
    pub use mopt::stats::{boxplot, wilcoxon_rank_sum};
    pub use serve::campaign::{AlgorithmKind, CampaignBudget, CampaignSpec};
    pub use serve::{
        JobEvent, JobHandle, JobResult, JobSpec, Priority, ProtocolSpec, SimService, SimulateSpec,
    };
    pub use store::{DiskStorage, MemoryStorage, Storage};
}
