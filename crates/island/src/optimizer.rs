//! The island optimizer: epoch loop, worker scheduling, global merge.

use crate::anytime::AnytimeArchive;
use crate::config::IslandConfig;
use crate::island::Island;
use crate::migration::migrate_ring;
use mopt::algorithm::{MoAlgorithm, NoProgress, RunObserver, RunResult};
use mopt::problem::Problem;
use std::time::Instant;

/// The asynchronous island-model optimizer. See the [crate docs](crate)
/// for the epoch/migration/deterministic-merge contract.
#[derive(Debug, Clone, Default)]
pub struct IslandOptimizer {
    /// Algorithm parameters.
    pub config: IslandConfig,
}

impl IslandOptimizer {
    /// Creates the optimizer with the given configuration.
    pub fn new(config: IslandConfig) -> Self {
        Self { config }
    }
}

/// Advances each island by its quota, fanning islands over `workers`
/// threads. Every island is a pure function of its own state during the
/// epoch, so the partitioning (and the worker count itself) cannot change
/// results — only wall time.
fn advance_islands(
    islands: &mut [Island],
    quotas: &[u64],
    problem: &dyn Problem,
    cfg: &IslandConfig,
    workers: usize,
) {
    let n = islands.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 || n <= 1 {
        for (isl, &q) in islands.iter_mut().zip(quotas) {
            isl.run_epoch(problem, cfg, q);
        }
        return;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (isls, qs) in islands.chunks_mut(chunk).zip(quotas.chunks(chunk)) {
            scope.spawn(move || {
                for (isl, &q) in isls.iter_mut().zip(qs) {
                    isl.run_epoch(problem, cfg, q);
                }
            });
        }
    });
}

impl MoAlgorithm for IslandOptimizer {
    fn name(&self) -> &'static str {
        "Island"
    }

    fn run(&self, problem: &dyn Problem, seed: u64) -> RunResult {
        self.run_observed(problem, seed, &NoProgress)
    }

    /// The observer is called once per epoch with `(epoch, evaluations,
    /// anytime archive members)` — the pool is already the mutually
    /// non-dominated global front. Cancellation is honoured at epoch
    /// boundaries: the run returns the sanitized best-so-far front.
    fn run_observed(
        &self,
        problem: &dyn Problem,
        seed: u64,
        observer: &dyn RunObserver,
    ) -> RunResult {
        let start = Instant::now();
        let cfg = &self.config;
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.workers
        };
        let mut islands: Vec<Island> = (0..cfg.islands.max(1))
            .map(|i| Island::new(i, seed, cfg))
            .collect();
        let mut evals: u64 = 0;

        // Initial populations, drawn and batch-evaluated in island-index
        // order; clamped so tiny budgets stay exact.
        for isl in islands.iter_mut() {
            let quota = (cfg.max_evaluations - evals).min(cfg.population.max(1) as u64);
            isl.init(problem, quota as usize);
            evals += quota;
        }

        let mut global = AnytimeArchive::new();
        for isl in &islands {
            global.merge(isl.archive.members());
        }
        let mut epoch: u64 = 0;
        observer.on_generation(epoch, evals, global.members());

        while evals < cfg.max_evaluations && !observer.cancelled() {
            // Quotas fixed up front, in island-index order, so the budget
            // split is independent of worker timing.
            let mut remaining = cfg.max_evaluations - evals;
            let quotas: Vec<u64> = islands
                .iter()
                .map(|isl| {
                    if isl.population.is_empty() {
                        return 0;
                    }
                    let q = remaining.min(cfg.epoch_evals.max(1));
                    remaining -= q;
                    q
                })
                .collect();
            let spent: u64 = quotas.iter().sum();
            if spent == 0 {
                break; // every island is empty: the budget can't be spent
            }
            advance_islands(&mut islands, &quotas, problem, cfg, workers);
            evals += spent;
            epoch += 1;
            if cfg.migration_every > 0 && epoch.is_multiple_of(cfg.migration_every) {
                migrate_ring(&mut islands, cfg.migration_count);
            }
            for isl in &islands {
                global.merge(isl.archive.members());
            }
            observer.on_generation(epoch, evals, global.members());
        }

        let result = RunResult {
            front: global.into_members(),
            evaluations: evals,
            elapsed: start.elapsed(),
        };
        result.sanitize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mopt::indicators::hypervolume;
    use mopt::problem::test_problems::{ConstrainedSchaffer, Schaffer, Zdt1};
    use mopt::solution::Candidate;
    use std::sync::Mutex;

    fn front_bits(r: &RunResult) -> Vec<(Vec<u64>, Vec<u64>)> {
        r.front
            .iter()
            .map(|c| {
                (
                    c.params.iter().map(|v| v.to_bits()).collect(),
                    c.objectives.iter().map(|v| v.to_bits()).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn deterministic_given_seed() {
        let alg = IslandOptimizer::new(IslandConfig::quick(3, 600));
        let p = Schaffer::new();
        let a = alg.run(&p, 42);
        let b = alg.run(&p, 42);
        assert_eq!(front_bits(&a), front_bits(&b));
        assert_eq!(a.evaluations, b.evaluations);
        let c = alg.run(&p, 43);
        assert_ne!(front_bits(&a), front_bits(&c), "seed must matter");
    }

    #[test]
    fn bit_identical_across_worker_counts() {
        let p = Zdt1::new(5);
        let mut cfg = IslandConfig::quick(4, 800);
        cfg.workers = 1;
        let sequential = IslandOptimizer::new(cfg.clone()).run(&p, 9);
        for workers in [2, 3, 4, 16] {
            cfg.workers = workers;
            let parallel = IslandOptimizer::new(cfg.clone()).run(&p, 9);
            assert_eq!(
                front_bits(&sequential),
                front_bits(&parallel),
                "{workers} workers diverged from sequential"
            );
            assert_eq!(sequential.evaluations, parallel.evaluations);
        }
    }

    #[test]
    fn evaluation_budget_respected_exactly() {
        let alg = IslandOptimizer::new(IslandConfig::quick(3, 777));
        let r = alg.run(&Schaffer::new(), 9);
        assert_eq!(r.evaluations, 777);
    }

    #[test]
    fn observed_run_matches_plain_run() {
        struct Recorder(Mutex<Vec<(u64, u64, usize)>>);
        impl RunObserver for Recorder {
            fn on_generation(&self, epoch: u64, evaluations: u64, pool: &[Candidate]) {
                self.0
                    .lock()
                    .unwrap()
                    .push((epoch, evaluations, pool.len()));
            }
        }
        let alg = IslandOptimizer::new(IslandConfig::quick(2, 400));
        let p = Schaffer::new();
        let plain = alg.run(&p, 42);
        let rec = Recorder(Mutex::new(Vec::new()));
        let observed = alg.run_observed(&p, 42, &rec);
        assert_eq!(front_bits(&plain), front_bits(&observed));
        assert_eq!(plain.evaluations, observed.evaluations);
        let events = rec.0.into_inner().unwrap();
        assert!(events.len() > 1, "epoch 0 plus the loop");
        assert_eq!(events[0].0, 0);
        assert!(events.windows(2).all(|w| w[0].0 + 1 == w[1].0));
        assert!(events.windows(2).all(|w| w[0].1 < w[1].1));
        assert_eq!(events.last().unwrap().1, 400);
    }

    #[test]
    fn cancellation_at_epoch_boundary_returns_best_so_far() {
        struct CancelAfter(std::sync::atomic::AtomicU64);
        impl RunObserver for CancelAfter {
            fn on_generation(&self, _e: u64, _v: u64, _p: &[Candidate]) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            fn cancelled(&self) -> bool {
                self.0.load(std::sync::atomic::Ordering::Relaxed) >= 3
            }
        }
        let alg = IslandOptimizer::new(IslandConfig::quick(2, 1_000_000));
        let obs = CancelAfter(std::sync::atomic::AtomicU64::new(0));
        let r = alg.run_observed(&Schaffer::new(), 7, &obs);
        assert!(!r.front.is_empty(), "best-so-far front survives");
        assert!(
            r.evaluations < 1_000_000,
            "stopped early: {}",
            r.evaluations
        );
    }

    #[test]
    fn anytime_front_hypervolume_is_monotone_over_epochs() {
        struct Fronts(Mutex<Vec<Vec<Vec<f64>>>>);
        impl RunObserver for Fronts {
            fn on_generation(&self, _e: u64, _v: u64, pool: &[Candidate]) {
                self.0
                    .lock()
                    .unwrap()
                    .push(pool.iter().map(|c| c.objectives.clone()).collect());
            }
        }
        let alg = IslandOptimizer::new(IslandConfig::quick(3, 1200));
        let rec = Fronts(Mutex::new(Vec::new()));
        alg.run_observed(&Zdt1::new(6), 5, &rec);
        let fronts = rec.0.into_inner().unwrap();
        assert!(fronts.len() > 3);
        let mut last = f64::NEG_INFINITY;
        for (epoch, front) in fronts.iter().enumerate() {
            let hv = hypervolume(front, &[11.0, 11.0]);
            assert!(
                hv >= last,
                "epoch {epoch}: hypervolume dropped from {last} to {hv}"
            );
            last = hv;
        }
        assert!(last > 0.0);
    }

    #[test]
    fn front_is_feasible_and_mutually_nondominated() {
        use mopt::dominance::{constrained_dominance, DominanceOrd};
        let alg = IslandOptimizer::new(IslandConfig::quick(3, 1500));
        let r = alg.run(&ConstrainedSchaffer::new(), 5);
        assert!(r.front.iter().all(|c| c.is_feasible()));
        for i in 0..r.front.len() {
            for j in 0..r.front.len() {
                if i != j {
                    assert_ne!(
                        constrained_dominance(&r.front[j], &r.front[i]),
                        DominanceOrd::Dominates
                    );
                }
            }
        }
    }

    #[test]
    fn migration_disabled_still_runs() {
        let mut cfg = IslandConfig::quick(2, 300);
        cfg.migration_every = 0;
        let r = IslandOptimizer::new(cfg).run(&Schaffer::new(), 3);
        assert_eq!(r.evaluations, 300);
        assert!(!r.front.is_empty());
    }

    #[test]
    fn tiny_budget_smaller_than_one_population() {
        let mut cfg = IslandConfig::quick(4, 0);
        cfg.max_evaluations = 5; // smaller than one island's population
        let r = IslandOptimizer::new(cfg).run(&Schaffer::new(), 1);
        assert_eq!(r.evaluations, 5);
    }

    #[test]
    fn converges_on_zdt1() {
        let alg = IslandOptimizer::new(IslandConfig::quick(4, 4000));
        let r = alg.run(&Zdt1::new(8), 3);
        let hv = hypervolume(&r.objectives(), &[1.1, 1.1]);
        assert!(hv > 0.4, "hv = {hv}");
    }
}
