//! Ring migration of archive elites between islands.

use crate::island::Island;
use mopt::solution::Candidate;

/// Migrates `count` elites along the ring: island `i` receives the first
/// `count` archive members of island `(i−1) mod N`, taken from
/// **pre-migration snapshots** so the result is independent of the order
/// in which islands are processed. Incoming elites are offered to the
/// receiver's archive and overwrite the tail of its population (the spots
/// least likely to hold that island's own elites), consuming no RNG.
///
/// Runs serially at epoch boundaries — part of the crate's determinism
/// contract (see the [crate docs](crate)).
pub fn migrate_ring(islands: &mut [Island], count: usize) {
    let n = islands.len();
    if n < 2 || count == 0 {
        return;
    }
    let snapshots: Vec<Vec<Candidate>> = islands
        .iter()
        .map(|isl| isl.archive.members().iter().take(count).cloned().collect())
        .collect();
    for (i, island) in islands.iter_mut().enumerate() {
        let src = (i + n - 1) % n;
        let pop_len = island.population.len();
        for (k, elite) in snapshots[src].iter().enumerate() {
            island.archive.try_insert(elite.clone());
            if pop_len > 0 {
                island.population[pop_len - 1 - (k % pop_len)] = elite.clone();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IslandConfig;
    use mopt::problem::test_problems::Schaffer;

    fn islands(n: usize, cfg: &IslandConfig) -> Vec<Island> {
        (0..n)
            .map(|i| {
                let mut isl = Island::new(i, 11, cfg);
                isl.init(&Schaffer::new(), cfg.population);
                isl
            })
            .collect()
    }

    #[test]
    fn elites_travel_one_ring_step() {
        let cfg = IslandConfig::quick(3, 600);
        let mut isls = islands(3, &cfg);
        let sent: Vec<Vec<Vec<f64>>> = isls
            .iter()
            .map(|isl| {
                isl.archive
                    .members()
                    .iter()
                    .take(2)
                    .map(|c| c.objectives.clone())
                    .collect()
            })
            .collect();
        migrate_ring(&mut isls, 2);
        for (i, isl) in isls.iter().enumerate() {
            let src = (i + 3 - 1) % 3;
            for elite in &sent[src] {
                assert!(
                    isl.population.iter().any(|c| &c.objectives == elite)
                        || isl.archive.members().iter().any(|c| &c.objectives == elite),
                    "island {i} never received an elite from island {src}"
                );
            }
        }
    }

    #[test]
    fn single_island_and_zero_count_are_no_ops() {
        let cfg = IslandConfig::quick(1, 200);
        let mut one = islands(1, &cfg);
        let before: Vec<Vec<f64>> = one[0].population.iter().map(|c| c.params.clone()).collect();
        migrate_ring(&mut one, 3);
        let after: Vec<Vec<f64>> = one[0].population.iter().map(|c| c.params.clone()).collect();
        assert_eq!(before, after);

        let cfg = IslandConfig::quick(2, 400);
        let mut two = islands(2, &cfg);
        let before: Vec<Vec<f64>> = two[1].population.iter().map(|c| c.params.clone()).collect();
        migrate_ring(&mut two, 0);
        let after: Vec<Vec<f64>> = two[1].population.iter().map(|c| c.params.clone()).collect();
        assert_eq!(before, after);
    }
}
