//! One island: a steady-state population plus its bounded elite archive.

use crate::config::IslandConfig;
use mopt::archive::AgaArchive;
use mopt::dominance::{constrained_dominance, DominanceOrd};
use mopt::ops::{binary_tournament, polynomial_mutation, sbx_crossover, uniform_init};
use mopt::problem::Problem;
use mopt::solution::Candidate;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An island's state. Between epoch boundaries an island touches nothing
/// but itself (population, archive, own RNG), which is what lets any
/// worker schedule advance islands concurrently without changing results.
#[derive(Debug)]
pub struct Island {
    /// Ring position (also the RNG stream selector).
    pub index: usize,
    /// Steady-state population.
    pub population: Vec<Candidate>,
    /// Bounded elite archive (the island's migration currency).
    pub archive: AgaArchive,
    /// The island's private RNG stream.
    pub rng: SmallRng,
}

impl Island {
    /// Derives island `index`'s RNG seed from the run seed — a
    /// splitmix-style odd-multiplier hash, so neighbouring islands get
    /// uncorrelated streams and the mapping is stable across versions.
    pub fn seed_for(run_seed: u64, index: usize) -> u64 {
        run_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1)
    }

    /// A fresh, empty island.
    pub fn new(index: usize, run_seed: u64, cfg: &IslandConfig) -> Self {
        Self {
            index,
            population: Vec::with_capacity(cfg.population),
            archive: AgaArchive::new(cfg.archive_capacity.max(1), cfg.archive_bisections),
            rng: SmallRng::seed_from_u64(Self::seed_for(run_seed, index)),
        }
    }

    /// Draws and evaluates the initial population (`n` individuals, batch
    /// evaluated), seeding the archive. `n` may be clamped below the
    /// configured population when the run budget is nearly spent.
    pub fn init(&mut self, problem: &dyn Problem, n: usize) {
        let bounds = problem.bounds();
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| uniform_init(bounds, &mut self.rng))
            .collect();
        self.population = problem.make_candidates(xs);
        for c in &self.population {
            self.archive.try_insert(c.clone());
        }
    }

    /// Advances the steady-state loop by exactly `quota` evaluations:
    /// each step selects two parents by binary tournament, produces one
    /// SBX + polynomial-mutation offspring, evaluates it immediately,
    /// offers it to the archive and lets it contest a death-tournament
    /// slot in the population (the loser is replaced unless it dominates
    /// the offspring).
    pub fn run_epoch(&mut self, problem: &dyn Problem, cfg: &IslandConfig, quota: u64) {
        if self.population.is_empty() {
            return;
        }
        let bounds = problem.bounds();
        let pm = cfg.mutation_prob.unwrap_or(1.0 / bounds.len() as f64);
        for _ in 0..quota {
            let p1 = binary_tournament(&self.population, &mut self.rng);
            let p2 = binary_tournament(&self.population, &mut self.rng);
            let (mut child, _twin) = sbx_crossover(
                &self.population[p1].params,
                &self.population[p2].params,
                cfg.crossover_eta,
                cfg.crossover_prob,
                bounds,
                &mut self.rng,
            );
            polynomial_mutation(&mut child, cfg.mutation_eta, pm, bounds, &mut self.rng);
            let child = problem.make_candidate(child);
            self.archive.try_insert(child.clone());
            let slot = death_slot(&self.population, &mut self.rng);
            if constrained_dominance(&self.population[slot], &child) != DominanceOrd::Dominates {
                self.population[slot] = child;
            }
        }
    }
}

/// Reverse binary tournament: of two random members, the *dominated* one
/// is put up for replacement (ties broken at random).
fn death_slot<R: Rng>(pop: &[Candidate], rng: &mut R) -> usize {
    let a = rng.gen_range(0..pop.len());
    let b = rng.gen_range(0..pop.len());
    match constrained_dominance(&pop[a], &pop[b]) {
        DominanceOrd::Dominates => b,
        DominanceOrd::DominatedBy => a,
        DominanceOrd::Indifferent => {
            if rng.gen::<bool>() {
                a
            } else {
                b
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mopt::problem::test_problems::Schaffer;

    #[test]
    fn seeds_differ_per_island_and_are_stable() {
        let s: Vec<u64> = (0..4).map(|i| Island::seed_for(42, i)).collect();
        for i in 0..s.len() {
            for j in 0..s.len() {
                if i != j {
                    assert_ne!(s[i], s[j]);
                }
            }
        }
        assert_eq!(
            s,
            (0..4)
                .map(|i| Island::seed_for(42, i))
                .collect::<Vec<u64>>()
        );
    }

    #[test]
    fn epoch_consumes_exactly_the_quota() {
        use mopt::problem::CountingProblem;
        let cfg = IslandConfig::quick(1, 1000);
        let problem = CountingProblem::new(Schaffer::new());
        let mut isl = Island::new(0, 5, &cfg);
        isl.init(&problem, cfg.population);
        assert_eq!(problem.evaluations(), cfg.population as u64);
        isl.run_epoch(&problem, &cfg, 17);
        assert_eq!(problem.evaluations(), cfg.population as u64 + 17);
    }

    #[test]
    fn empty_island_survives_an_epoch() {
        let cfg = IslandConfig::quick(1, 100);
        let mut isl = Island::new(0, 1, &cfg);
        isl.run_epoch(&Schaffer::new(), &cfg, 5); // no population: no-op
        assert!(isl.archive.is_empty());
    }

    #[test]
    fn archive_collects_elites() {
        let cfg = IslandConfig::quick(1, 1000);
        let mut isl = Island::new(0, 9, &cfg);
        isl.init(&Schaffer::new(), cfg.population);
        isl.run_epoch(&Schaffer::new(), &cfg, 100);
        assert!(!isl.archive.is_empty());
        assert!(isl.archive.len() <= cfg.archive_capacity);
    }
}
