//! Asynchronous island-model multi-objective optimizer with a live,
//! deterministic **anytime archive**.
//!
//! The paper's MOEAs (NSGA-II, MOCell, CellDE) are synchronous: the whole
//! population waits at every generation barrier and a campaign only yields
//! a front at the very end. This crate runs N **islands** instead, each a
//! steady-state loop — binary-tournament selection, SBX crossover +
//! polynomial mutation ([`mopt::ops`]), immediate evaluation, death-slot
//! replacement — feeding a per-island bounded Pareto archive
//! ([`mopt::archive::AgaArchive`]). Elites migrate on a ring, and a global
//! unbounded anytime archive accumulates every island's elites, so the
//! best-so-far front improves continuously and can be streamed while the
//! run is in flight.
//!
//! ## The epoch / migration / deterministic-merge contract
//!
//! Island runs are **bit-reproducible for a fixed seed regardless of
//! worker count or timing**. The contract that makes this true:
//!
//! * Time is divided into **epochs**. Within an epoch, island `i` advances
//!   by a pre-computed evaluation quota as a *pure function* of its
//!   epoch-start state and its own RNG ([`Island::seed_for`] derives a
//!   per-island stream from `(run seed, island index)`); islands share no
//!   mutable state mid-epoch, so any worker schedule computes the same
//!   islands.
//! * **Migration** happens only at epoch boundaries (every
//!   [`IslandConfig::migration_every`] epochs), serially in island-index
//!   order, from pre-migration archive snapshots: island `i` receives the
//!   first [`IslandConfig::migration_count`] members of island
//!   `(i−1) mod N`'s archive — a ring.
//! * The **global merge** into the [`AnytimeArchive`] also runs serially
//!   in island-index order at each epoch boundary. The anytime archive is
//!   dominance-only and unbounded, so its hypervolume against any fixed
//!   reference point is **non-decreasing over epochs** (points are only
//!   ever removed when a dominating point arrives).
//!
//! [`IslandConfig::workers`] is therefore a pure throughput knob: the
//! determinism tests pin that 1, 2 and N workers produce bit-identical
//! final archives.
//!
//! Cancellation (via [`mopt::algorithm::RunObserver::cancelled`]) is
//! honoured at epoch boundaries and returns the sanitized best-so-far
//! anytime front — every run is an anytime computation.
//!
//! ```
//! use island::{IslandConfig, IslandOptimizer};
//! use mopt::algorithm::MoAlgorithm;
//! use mopt::problem::test_problems::Schaffer;
//!
//! let alg = IslandOptimizer::new(IslandConfig::quick(2, 400));
//! let a = alg.run(&Schaffer::new(), 7);
//! let b = alg.run(&Schaffer::new(), 7);
//! assert_eq!(a.front.len(), b.front.len()); // deterministic
//! assert!(!a.front.is_empty());
//! ```

#![warn(missing_docs)]

pub mod anytime;
pub mod config;
pub mod island;
pub mod migration;
pub mod optimizer;

pub use anytime::AnytimeArchive;
pub use config::IslandConfig;
pub use island::Island;
pub use migration::migrate_ring;
pub use optimizer::IslandOptimizer;
