//! Configuration of the island optimizer.

/// Parameters of an [`IslandOptimizer`](crate::IslandOptimizer) run.
///
/// Everything except [`workers`](Self::workers) affects the search
/// trajectory; `workers` is a pure execution knob (see the
/// [crate docs](crate) for the determinism contract).
#[derive(Debug, Clone)]
pub struct IslandConfig {
    /// Number of islands (ring length).
    pub islands: usize,
    /// Steady-state population per island.
    pub population: usize,
    /// Capacity of each island's bounded elite archive.
    pub archive_capacity: usize,
    /// Adaptive-grid bisections of each island archive (PAES default: 5).
    pub archive_bisections: u32,
    /// Evaluations each island performs per epoch (the synchronisation
    /// granularity; smaller = finer anytime stream, more merge overhead).
    pub epoch_evals: u64,
    /// Migrate every this many epochs (`0` disables migration).
    pub migration_every: u64,
    /// Elites sent to the ring neighbour at each migration.
    pub migration_count: usize,
    /// Total evaluation budget across all islands.
    pub max_evaluations: u64,
    /// SBX crossover probability.
    pub crossover_prob: f64,
    /// SBX distribution index.
    pub crossover_eta: f64,
    /// Polynomial-mutation probability per variable; `None` = `1/n`.
    pub mutation_prob: Option<f64>,
    /// Polynomial-mutation distribution index.
    pub mutation_eta: f64,
    /// Worker threads advancing islands within an epoch; `0` = one per
    /// available core. Never affects results.
    pub workers: usize,
}

impl Default for IslandConfig {
    fn default() -> Self {
        Self {
            islands: 4,
            population: 20,
            archive_capacity: 50,
            archive_bisections: 5,
            epoch_evals: 40,
            migration_every: 2,
            migration_count: 2,
            max_evaluations: 25_000,
            crossover_prob: 0.9,
            crossover_eta: 20.0,
            mutation_prob: None,
            mutation_eta: 20.0,
            workers: 0,
        }
    }
}

impl IslandConfig {
    /// A reduced configuration for tests and interactive runs: small
    /// populations scaled to the budget, fine-grained epochs.
    pub fn quick(islands: usize, max_evaluations: u64) -> Self {
        let islands = islands.max(1);
        let population = (max_evaluations / (islands as u64 * 10)).clamp(8, 20) as usize;
        Self {
            islands,
            population,
            archive_capacity: 2 * population,
            epoch_evals: population as u64,
            max_evaluations,
            ..Self::default()
        }
    }
}
