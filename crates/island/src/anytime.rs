//! The global anytime archive: an unbounded, dominance-only
//! non-dominated set.
//!
//! Per-island archives are bounded ([`mopt::archive::AgaArchive`]) and may
//! evict non-dominated members for density reasons — which can *decrease*
//! hypervolume. The global reduction must not: the anytime front a client
//! streams has to improve monotonically, so this archive only ever removes
//! a member when a dominating (or feasibility-superior) candidate arrives.
//! Against any fixed reference point its hypervolume is therefore
//! non-decreasing over merges (pinned by the optimizer test-suite).

use mopt::dominance::{constrained_dominance, DominanceOrd};
use mopt::solution::Candidate;

/// An unbounded non-dominated set with deterministic insertion semantics.
#[derive(Debug, Clone, Default)]
pub struct AnytimeArchive {
    members: Vec<Candidate>,
}

impl AnytimeArchive {
    /// An empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The current non-dominated set.
    pub fn members(&self) -> &[Candidate] {
        &self.members
    }

    /// Consumes the archive, returning its members.
    pub fn into_members(self) -> Vec<Candidate> {
        self.members
    }

    /// Objective vectors of the current front (streaming payload).
    pub fn objectives(&self) -> Vec<Vec<f64>> {
        self.members.iter().map(|c| c.objectives.clone()).collect()
    }

    /// Offers a candidate. Rejected iff an existing member dominates it or
    /// holds an identical (objectives, violation) point; members dominated
    /// by the newcomer are removed. Returns whether it was added.
    pub fn insert(&mut self, c: Candidate) -> bool {
        let mut doomed = Vec::new();
        for (i, m) in self.members.iter().enumerate() {
            match constrained_dominance(m, &c) {
                DominanceOrd::Dominates => return false,
                DominanceOrd::DominatedBy => doomed.push(i),
                DominanceOrd::Indifferent => {
                    if m.objectives == c.objectives && m.violation == c.violation {
                        return false;
                    }
                }
            }
        }
        for &i in doomed.iter().rev() {
            self.members.swap_remove(i);
        }
        self.members.push(c);
        true
    }

    /// Offers every candidate in order; returns how many were added. Merge
    /// order is part of the determinism contract — the optimizer always
    /// merges island archives in island-index order.
    pub fn merge<'a, I: IntoIterator<Item = &'a Candidate>>(&mut self, iter: I) -> usize {
        iter.into_iter()
            .filter(|c| self.insert((*c).clone()))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(obj: &[f64]) -> Candidate {
        Candidate::evaluated(vec![], obj.to_vec(), 0.0)
    }

    #[test]
    fn unbounded_keeps_every_non_dominated_point() {
        let mut a = AnytimeArchive::new();
        for i in 0..200 {
            let x = i as f64;
            assert!(a.insert(cand(&[x, 199.0 - x])));
        }
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn dominated_and_duplicate_points_rejected() {
        let mut a = AnytimeArchive::new();
        assert!(a.insert(cand(&[1.0, 1.0])));
        assert!(!a.insert(cand(&[2.0, 2.0])), "dominated");
        assert!(!a.insert(cand(&[1.0, 1.0])), "duplicate");
        assert!(a.insert(cand(&[0.5, 2.0])));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn newcomer_sweeps_dominated_members() {
        let mut a = AnytimeArchive::new();
        a.insert(cand(&[2.0, 2.0]));
        a.insert(cand(&[3.0, 1.5]));
        assert!(a.insert(cand(&[1.0, 1.0])));
        assert_eq!(a.len(), 1);
        assert_eq!(a.members()[0].objectives, vec![1.0, 1.0]);
    }

    #[test]
    fn feasible_point_replaces_infeasible_front() {
        let mut a = AnytimeArchive::new();
        a.insert(Candidate::evaluated(vec![], vec![0.0, 0.0], 2.0));
        assert!(a.insert(cand(&[9.0, 9.0])));
        assert_eq!(a.len(), 1);
        assert!(a.members()[0].is_feasible());
    }

    #[test]
    fn merge_counts_additions() {
        let mut a = AnytimeArchive::new();
        let batch = vec![cand(&[1.0, 3.0]), cand(&[2.0, 2.0]), cand(&[2.5, 2.5])];
        assert_eq!(a.merge(&batch), 2); // third is dominated by the second
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn hypervolume_non_decreasing_under_inserts() {
        use mopt::indicators::hypervolume;
        let reference = [10.0, 10.0];
        let mut a = AnytimeArchive::new();
        let mut last = 0.0;
        let points = [
            [5.0, 5.0],
            [7.0, 7.0], // dominated: no change
            [2.0, 8.0],
            [8.0, 2.0],
            [1.0, 1.0], // sweeps everything
            [0.5, 9.5],
        ];
        for p in points {
            a.insert(cand(&p));
            let hv = hypervolume(&a.objectives(), &reference);
            assert!(hv >= last, "hv dropped: {hv} < {last}");
            last = hv;
        }
    }
}
