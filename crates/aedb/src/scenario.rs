//! Evaluation scenarios — Table II of the paper.
//!
//! Three network densities (100, 200, 300 devices/km²) on a 500 m × 500 m
//! field give 25, 50 and 75 devices respectively (the coverage axes of the
//! paper's Figure 6 — up to 25/50/80 — confirm that reading). Each density
//! is evaluated on **10 fixed networks**: the same 10 seeds for every
//! candidate configuration.

use manet::geometry::Field;
use manet::mobility::MobilityModel;
use manet::radio::RadioConfig;
use manet::sim::SimConfig;
use serde::{Deserialize, Serialize};

/// The three densities studied in the paper (devices per km²).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Density {
    /// 100 devices/km² → 25 nodes on the 0.25 km² field.
    D100,
    /// 200 devices/km² → 50 nodes.
    D200,
    /// 300 devices/km² → 75 nodes.
    D300,
}

impl Density {
    /// All densities, sparsest first (the order of the paper's tables).
    pub const ALL: [Density; 3] = [Density::D100, Density::D200, Density::D300];

    /// Devices per square kilometre.
    pub fn per_km2(self) -> u32 {
        match self {
            Density::D100 => 100,
            Density::D200 => 200,
            Density::D300 => 300,
        }
    }

    /// Node count on the paper's 500 m × 500 m field.
    pub fn n_nodes(self) -> usize {
        (self.per_km2() as usize) / 4
    }

    /// Parses `100 | 200 | 300`.
    pub fn from_per_km2(d: u32) -> Option<Self> {
        match d {
            100 => Some(Density::D100),
            200 => Some(Density::D200),
            300 => Some(Density::D300),
            _ => None,
        }
    }
}

impl std::fmt::Display for Density {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} dev/km²", self.per_km2())
    }
}

/// A full evaluation scenario: density plus the fixed network seeds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Network density.
    pub density: Density,
    /// Number of fixed networks the fitness is averaged over (paper: 10).
    pub n_networks: usize,
    /// Base seed; network `k` uses seed `base_seed + k`.
    pub base_seed: u64,
}

impl Scenario {
    /// The paper's scenario for a density: 10 fixed networks.
    pub fn paper(density: Density) -> Self {
        Self {
            density,
            n_networks: 10,
            base_seed: 1000 * density.per_km2() as u64,
        }
    }

    /// A reduced scenario (fewer networks) for tests and quick runs.
    pub fn quick(density: Density, n_networks: usize) -> Self {
        Self {
            density,
            n_networks,
            base_seed: 1000 * density.per_km2() as u64,
        }
    }

    /// The seed of evaluation network `k` (`k < n_networks`).
    pub fn network_seed(&self, k: usize) -> u64 {
        debug_assert!(k < self.n_networks);
        self.base_seed + k as u64
    }

    /// The simulator configuration of evaluation network `k` — Table II
    /// verbatim: 500 m field, random walk at [0,2] m/s with 20 s direction
    /// changes, 16.02 dBm default power, broadcast at 30 s, end at 40 s.
    pub fn sim_config(&self, k: usize) -> SimConfig {
        SimConfig {
            field: Field::paper(),
            n_nodes: self.density.n_nodes(),
            speed_range: (0.0, 2.0),
            mobility: MobilityModel::RandomWalk {
                change_interval: 20.0,
            },
            radio: RadioConfig::paper(),
            beacon_interval: 1.0,
            neighbor_expiry: 2.5,
            broadcast_time: 30.0,
            end_time: 40.0,
            source: 0,
            seed: self.network_seed(k),
            placement: manet::sim::Placement::UniformRandom,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densities_map_to_node_counts() {
        assert_eq!(Density::D100.n_nodes(), 25);
        assert_eq!(Density::D200.n_nodes(), 50);
        assert_eq!(Density::D300.n_nodes(), 75);
    }

    #[test]
    fn parse_round_trip() {
        for d in Density::ALL {
            assert_eq!(Density::from_per_km2(d.per_km2()), Some(d));
        }
        assert_eq!(Density::from_per_km2(42), None);
    }

    #[test]
    fn paper_scenario_matches_table_ii() {
        let s = Scenario::paper(Density::D200);
        assert_eq!(s.n_networks, 10);
        let c = s.sim_config(0);
        assert_eq!(c.n_nodes, 50);
        assert_eq!(c.field.width, 500.0);
        assert_eq!(c.speed_range, (0.0, 2.0));
        assert_eq!(c.radio.default_tx_dbm, 16.02);
        assert_eq!(c.broadcast_time, 30.0);
        assert_eq!(c.end_time, 40.0);
        assert!(
            matches!(c.mobility, MobilityModel::RandomWalk { change_interval } if change_interval == 20.0)
        );
    }

    #[test]
    fn network_seeds_are_fixed_and_distinct() {
        let s = Scenario::paper(Density::D100);
        let seeds: Vec<u64> = (0..10).map(|k| s.network_seed(k)).collect();
        let again: Vec<u64> = (0..10).map(|k| s.network_seed(k)).collect();
        assert_eq!(seeds, again);
        let mut dedup = seeds.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        // different densities use different networks
        let s2 = Scenario::paper(Density::D300);
        assert_ne!(s.network_seed(0), s2.network_seed(0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Density::D100.to_string(), "100 dev/km²");
    }
}
