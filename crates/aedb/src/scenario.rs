//! Evaluation scenarios — Table II of the paper.
//!
//! Three network densities (100, 200, 300 devices/km²) on a 500 m × 500 m
//! field give 25, 50 and 75 devices respectively (the coverage axes of the
//! paper's Figure 6 — up to 25/50/80 — confirm that reading). Each density
//! is evaluated on **10 fixed networks**: the same 10 seeds for every
//! candidate configuration.

use manet::geometry::Field;
use manet::mobility::MobilityModel;
use manet::radio::RadioConfig;
use manet::sim::SimConfig;
use manet::world::WorldSpec;
use serde::{Deserialize, Serialize};

// The dense-scenario spec (and the scenario text grammar it shares with
// every CLI) lives beside the `WorldSpec` API it compiles into; re-exported
// here because the tuning problem and the bench harness historically
// address it as `aedb::scenario::DenseScenario`.
pub use manet::world::{DenseScenario, NodeGroup, SpecError};

/// The three densities studied in the paper (devices per km²).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Density {
    /// 100 devices/km² → 25 nodes on the 0.25 km² field.
    D100,
    /// 200 devices/km² → 50 nodes.
    D200,
    /// 300 devices/km² → 75 nodes.
    D300,
}

impl Density {
    /// All densities, sparsest first (the order of the paper's tables).
    pub const ALL: [Density; 3] = [Density::D100, Density::D200, Density::D300];

    /// Devices per square kilometre.
    pub fn per_km2(self) -> u32 {
        match self {
            Density::D100 => 100,
            Density::D200 => 200,
            Density::D300 => 300,
        }
    }

    /// Node count on the paper's 500 m × 500 m field.
    pub fn n_nodes(self) -> usize {
        (self.per_km2() as usize) / 4
    }

    /// Parses `100 | 200 | 300`.
    pub fn from_per_km2(d: u32) -> Option<Self> {
        match d {
            100 => Some(Density::D100),
            200 => Some(Density::D200),
            300 => Some(Density::D300),
            _ => None,
        }
    }

    /// The paper density closest to an arbitrary `per_km2` (used to label
    /// beyond-paper dense scenarios in the experiment tables).
    pub fn nearest(per_km2: u32) -> Self {
        *Density::ALL
            .iter()
            .min_by_key(|d| d.per_km2().abs_diff(per_km2))
            .expect("ALL is non-empty")
    }
}

impl std::fmt::Display for Density {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} dev/km²", self.per_km2())
    }
}

/// A full evaluation scenario: density plus the fixed network seeds, with
/// an optional beyond-paper [`DenseScenario`] override so the tuning
/// problem itself can be posed at 10⁴-node scale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Network density (for dense scenarios: the nearest paper density,
    /// used for table labels).
    pub density: Density,
    /// Number of fixed networks the fitness is averaged over (paper: 10).
    pub n_networks: usize,
    /// Base seed; network `k` uses seed `base_seed + k`.
    pub base_seed: u64,
    /// When set, networks are generated from this dense scenario (scaled
    /// field, explicit node count, optional shadowing) instead of the
    /// paper's 500 m field.
    pub dense: Option<DenseScenario>,
}

impl Scenario {
    /// The paper's scenario for a density: 10 fixed networks.
    pub fn paper(density: Density) -> Self {
        Self {
            density,
            n_networks: 10,
            base_seed: 1000 * density.per_km2() as u64,
            dense: None,
        }
    }

    /// A reduced scenario (fewer networks) for tests and quick runs.
    pub fn quick(density: Density, n_networks: usize) -> Self {
        Self {
            density,
            n_networks,
            base_seed: 1000 * density.per_km2() as u64,
            dense: None,
        }
    }

    /// A beyond-paper scenario: the tuning problem posed over `n_networks`
    /// fixed networks of a [`DenseScenario`] (hundreds to 10⁴ nodes).
    pub fn dense(dense: DenseScenario, n_networks: usize) -> Self {
        Self {
            density: Density::nearest(dense.per_km2),
            n_networks,
            base_seed: dense.base_seed,
            dense: Some(dense),
        }
    }

    /// Whether this scenario is a beyond-paper dense campaign (a
    /// [`DenseScenario`] override is set). Dense networks are hundreds to
    /// 10⁴ nodes, so a *single* candidate evaluation is already seconds of
    /// simulation — the shape where the evaluation pipeline fans the
    /// network axis of one candidate across the thread pool.
    pub fn is_dense(&self) -> bool {
        self.dense.is_some()
    }

    /// Human-readable label (density, or the dense spec when present).
    pub fn label(&self) -> String {
        match &self.dense {
            Some(d) => d.to_string(),
            None => self.density.to_string(),
        }
    }

    /// The seed of evaluation network `k` (`k < n_networks`).
    pub fn network_seed(&self, k: usize) -> u64 {
        debug_assert!(k < self.n_networks);
        self.base_seed + k as u64
    }

    /// Compiles evaluation network `k` into a [`WorldSpec`] — the single
    /// path every evaluation takes into the simulator
    /// (`Simulator::from_world`), covering heterogeneous dense scenarios
    /// the flat [`sim_config`](Self::sim_config) cannot express. For
    /// homogeneous scenarios the compiled world is exactly
    /// `sim_config(k).to_world()`, so the tuning problem's networks are
    /// bit-identical to the historical `SimConfig` pipeline.
    pub fn world(&self, k: usize) -> WorldSpec {
        if let Some(d) = &self.dense {
            let mut w = d.world_spec(0);
            w.seed = self.network_seed(k);
            return w;
        }
        self.sim_config(k).to_world()
    }

    /// The simulator configuration of evaluation network `k` — Table II
    /// verbatim (500 m field, random walk at [0,2] m/s with 20 s direction
    /// changes, 16.02 dBm default power, broadcast at 30 s, end at 40 s),
    /// or the dense override's scaled field when one is set. Panics for
    /// heterogeneous dense scenarios — those only compile through
    /// [`world`](Self::world).
    pub fn sim_config(&self, k: usize) -> SimConfig {
        if let Some(d) = &self.dense {
            let mut c = d.sim_config(0);
            c.seed = self.network_seed(k);
            return c;
        }
        SimConfig {
            field: Field::paper(),
            n_nodes: self.density.n_nodes(),
            speed_range: (0.0, 2.0),
            mobility: MobilityModel::RandomWalk {
                change_interval: 20.0,
            },
            radio: RadioConfig::paper(),
            beacon_interval: 1.0,
            neighbor_expiry: 2.5,
            broadcast_time: 30.0,
            end_time: 40.0,
            source: 0,
            seed: self.network_seed(k),
            placement: manet::sim::Placement::UniformRandom,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densities_map_to_node_counts() {
        assert_eq!(Density::D100.n_nodes(), 25);
        assert_eq!(Density::D200.n_nodes(), 50);
        assert_eq!(Density::D300.n_nodes(), 75);
    }

    #[test]
    fn parse_round_trip() {
        for d in Density::ALL {
            assert_eq!(Density::from_per_km2(d.per_km2()), Some(d));
        }
        assert_eq!(Density::from_per_km2(42), None);
    }

    #[test]
    fn paper_scenario_matches_table_ii() {
        let s = Scenario::paper(Density::D200);
        assert_eq!(s.n_networks, 10);
        let c = s.sim_config(0);
        assert_eq!(c.n_nodes, 50);
        assert_eq!(c.field.width, 500.0);
        assert_eq!(c.speed_range, (0.0, 2.0));
        assert_eq!(c.radio.default_tx_dbm, 16.02);
        assert_eq!(c.broadcast_time, 30.0);
        assert_eq!(c.end_time, 40.0);
        assert!(
            matches!(c.mobility, MobilityModel::RandomWalk { change_interval } if change_interval == 20.0)
        );
    }

    #[test]
    fn network_seeds_are_fixed_and_distinct() {
        let s = Scenario::paper(Density::D100);
        let seeds: Vec<u64> = (0..10).map(|k| s.network_seed(k)).collect();
        let again: Vec<u64> = (0..10).map(|k| s.network_seed(k)).collect();
        assert_eq!(seeds, again);
        let mut dedup = seeds.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        // different densities use different networks
        let s2 = Scenario::paper(Density::D300);
        assert_ne!(s.network_seed(0), s2.network_seed(0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Density::D100.to_string(), "100 dev/km²");
        assert_eq!(
            DenseScenario::new(200, 500).to_string(),
            "500 nodes @ 200 dev/km²"
        );
        assert_eq!(
            DenseScenario::new(200, 1000)
                .with_shadowing(4.0)
                .to_string(),
            "1000 nodes @ 200 dev/km² (σ=4 dB)"
        );
    }

    #[test]
    fn nearest_density_labels_dense_scenarios() {
        assert_eq!(Density::nearest(150), Density::D100);
        assert_eq!(Density::nearest(250), Density::D200);
        assert_eq!(Density::nearest(400), Density::D300);
    }

    #[test]
    fn dense_scenario_posed_as_tuning_problem() {
        let d = DenseScenario::new(200, 500).with_shadowing(4.0);
        let s = Scenario::dense(d.clone(), 4);
        assert_eq!(s.n_networks, 4);
        assert_eq!(s.label(), d.to_string());
        let c = s.sim_config(2);
        assert_eq!(c.n_nodes, 500);
        assert_eq!(c.seed, d.base_seed + 2);
        assert_eq!(c.radio.shadowing_sigma_db, 4.0);
        // scaled field holds the density, physical setup stays Table II
        assert!((c.field.area() - 2.5e6).abs() < 1.0);
        assert_eq!(c.radio.default_tx_dbm, 16.02);
        assert_eq!(c.broadcast_time, 30.0);
        // distinct fixed networks
        assert_ne!(s.sim_config(0).seed, s.sim_config(1).seed);
    }

    #[test]
    fn xl_presets_reach_ten_thousand_nodes() {
        assert!(DenseScenario::XL_PRESETS
            .iter()
            .any(|d| d.n_nodes >= 10_000));
        for d in DenseScenario::SHADOWED_PRESETS {
            assert!(d.shadowing_sigma_db > 0.0);
            assert_eq!(d.per_km2, 200, "shadowed presets pin the 200/km² claim");
        }
    }
}
