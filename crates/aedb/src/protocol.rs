//! The AEDB state machine — a faithful transcription of Fig. 1 of the
//! paper onto the [`manet::Protocol`] trait.
//!
//! Per-node behaviour on the broadcast message `m`:
//!
//! 1. **First reception**: record the received power `p` as `pmin`; if it
//!    already exceeds the border threshold the node is inside the senders'
//!    core area and drops `m`; otherwise it waits a random delay drawn
//!    from the configured delay interval.
//! 2. **Duplicates while waiting**: `pmin` tracks the *strongest* copy
//!    received (lines 11–14 update it when `p > pmin` — despite its name,
//!    a node learns it is well covered when *any* copy arrives strongly).
//! 3. **Delay expiry**: re-test `pmin` against the border threshold; if
//!    still in the forwarding area, estimate the transmission power:
//!    * count the *potential forwarders* — live neighbours whose beacons
//!      arrive at or below the border threshold (by beacon-power
//!      reciprocity these are exactly the nodes that would land in this
//!      node's forwarding area);
//!    * **dense** (count > neighbors threshold): shrink the range to the
//!      potential forwarder *closest to the border threshold* (the
//!      strongest-beacon member of the forwarding area), deliberately
//!      dropping farther one-hop neighbours;
//!    * **sparse** (otherwise): discard the node `m` was heard from and
//!      reach the *furthest* remaining neighbour (weakest beacon);
//!    * add the margin threshold and clamp to the node's power class
//!      (the default power in the paper's homogeneous worlds).
//! 4. Transmit `m` at the estimated power.
//!
//! Beacons carry their transmit power ([`NeighborEntry::tx_dbm`]), so the
//! path-loss inference `tx − rx` stays exact when neighbours belong to
//! different transmit-power classes (heterogeneous `WorldSpec` groups).

use crate::params::AedbParams;
use manet::neighbor::NeighborEntry;
use manet::protocol::{Protocol, ProtocolApi};
use manet::sim::NodeId;

/// Per-node protocol state for the broadcast message.
#[derive(Debug, Clone, Copy, Default)]
struct NodeState {
    received: bool,
    waiting: bool,
    done: bool,
    /// Strongest received copy so far (dBm); see module docs.
    pmin: f64,
    /// The node the message was last heard from (discarded from the
    /// neighbour list in the sparse branch).
    heard_from: NodeId,
}

/// The AEDB protocol with a fixed parameter configuration.
#[derive(Debug, Clone)]
pub struct Aedb {
    params: AedbParams,
    nodes: Vec<NodeState>,
    /// Scratch for the neighbour table of the node currently deciding —
    /// filled through [`ProtocolApi::neighbors_into`] so the per-forward
    /// power estimate allocates nothing after warm-up.
    neighbor_scratch: Vec<NeighborEntry>,
}

impl Aedb {
    /// Creates the protocol for `n` nodes with configuration `params`.
    pub fn new(n: usize, params: AedbParams) -> Self {
        Self {
            params,
            nodes: vec![NodeState::default(); n],
            neighbor_scratch: Vec::new(),
        }
    }

    /// Re-arms the protocol for a new run, reusing the per-node state
    /// buffer (the batched evaluation pipeline resets one protocol
    /// instance thousands of times per generation).
    pub fn reset(&mut self, n: usize, params: AedbParams) {
        self.params = params;
        self.nodes.clear();
        self.nodes.resize(n, NodeState::default());
    }

    /// The configuration in use.
    pub fn params(&self) -> AedbParams {
        self.params
    }

    /// Estimates the transmit power (dBm) for `node`, implementing lines
    /// 19–24 of Fig. 1. Exposed for unit tests.
    fn estimate_tx_power(&mut self, node: NodeId, api: &mut dyn ProtocolApi) -> f64 {
        let p = &self.params;
        // The node's own power class: the conservative fallback and the
        // hard cap. Equals `default_tx_dbm` in the paper's homogeneous
        // worlds; a low-power group caps lower.
        let max_tx = api.node_tx_dbm(node);
        let sensitivity = api.rx_sensitivity_dbm();
        let neighbors = &mut self.neighbor_scratch;
        api.neighbors_into(node, neighbors);
        // Required power to make a neighbour decode us: each beacon
        // carries its own transmit power, so `tx − rx` is that link's
        // observed path loss (exact even across heterogeneous power
        // classes) and we must emit at sensitivity + loss (+ margin).
        let needed = |e: &NeighborEntry| sensitivity + (e.tx_dbm - e.rx_dbm) + p.margin_threshold;
        // The potential forwarders — live neighbours whose beacons arrive
        // at or below the border threshold — reduced in one pass (count +
        // strongest beacon) instead of collecting them.
        let mut n_potential = 0usize;
        let mut strongest: Option<&NeighborEntry> = None;
        for e in neighbors.iter().filter(|e| e.rx_dbm <= p.border_threshold) {
            n_potential += 1;
            if strongest.is_none_or(|s| e.rx_dbm > s.rx_dbm) {
                strongest = Some(e);
            }
        }
        let tx = if n_potential as f64 > p.neighbors_threshold && n_potential > 0 {
            // Dense: reach only the forwarding-area node closest to the
            // border threshold (strongest beacon among the potential
            // forwarders).
            needed(strongest.expect("n_potential > 0"))
        } else {
            // Sparse: keep connectivity — reach the furthest neighbour,
            // excluding the node we heard the message from.
            let heard = self.nodes[node].heard_from;
            let weakest = neighbors.iter().filter(|e| e.id != heard).fold(
                None::<&NeighborEntry>,
                |acc, e| {
                    if acc.is_none_or(|w| e.rx_dbm < w.rx_dbm) {
                        Some(e)
                    } else {
                        acc
                    }
                },
            );
            match weakest {
                Some(w) => needed(w),
                // No usable neighbour information: be conservative.
                None => max_tx,
            }
        };
        tx.min(max_tx)
    }
}

impl Protocol for Aedb {
    fn on_start(&mut self, node: NodeId, api: &mut dyn ProtocolApi) {
        let st = &mut self.nodes[node];
        st.received = true;
        st.done = true;
        st.heard_from = node; // nothing to discard
        let tx = self.estimate_tx_power(node, api);
        api.transmit(node, tx);
    }

    fn on_receive(&mut self, node: NodeId, from: NodeId, rx_dbm: f64, api: &mut dyn ProtocolApi) {
        let border = self.params.border_threshold;
        let st = &mut self.nodes[node];
        if !st.received {
            // Lines 1–9: first copy.
            st.received = true;
            st.pmin = rx_dbm;
            st.heard_from = from;
            if st.pmin > border {
                st.done = true; // drop: inside someone's core area
                return;
            }
            st.waiting = true;
            let (lo, hi) = self.params.delay_interval();
            let delay = lo + api.rand() * (hi - lo).max(0.0);
            api.set_timer(node, delay, 0);
        } else if st.waiting {
            // Lines 10–15: refresh pmin with stronger copies.
            if rx_dbm > st.pmin {
                st.pmin = rx_dbm;
                st.heard_from = from;
            }
        }
    }

    fn on_timer(&mut self, node: NodeId, _tag: u64, api: &mut dyn ProtocolApi) {
        let border = self.params.border_threshold;
        {
            let st = &mut self.nodes[node];
            if !st.waiting || st.done {
                return;
            }
            st.waiting = false;
            st.done = true;
            if st.pmin > border {
                return; // lines 16–17: drop after the wait
            }
        }
        // Lines 18–25: estimate power and forward.
        let tx = self.estimate_tx_power(node, api);
        api.transmit(node, tx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scripted ProtocolApi for unit-testing the state machine without a
    /// full simulation.
    struct FakeApi {
        now: f64,
        timers: Vec<(NodeId, f64, u64)>,
        transmissions: Vec<(NodeId, f64)>,
        neighbors: Vec<NeighborEntry>,
        rand_value: f64,
    }

    impl FakeApi {
        fn new() -> Self {
            Self {
                now: 0.0,
                timers: vec![],
                transmissions: vec![],
                neighbors: vec![],
                rand_value: 0.5,
            }
        }

        fn with_neighbors(rx: &[(NodeId, f64)]) -> Self {
            let mut api = Self::new();
            api.neighbors = rx
                .iter()
                .map(|&(id, rx_dbm)| NeighborEntry {
                    id,
                    rx_dbm,
                    tx_dbm: 16.02,
                    last_seen: 0.0,
                })
                .collect();
            api
        }
    }

    impl ProtocolApi for FakeApi {
        fn now(&self) -> f64 {
            self.now
        }
        fn set_timer(&mut self, node: NodeId, delay: f64, tag: u64) {
            self.timers.push((node, delay, tag));
        }
        fn transmit(&mut self, node: NodeId, tx_dbm: f64) {
            self.transmissions.push((node, tx_dbm));
        }
        fn neighbors(&self, _node: NodeId) -> Vec<NeighborEntry> {
            self.neighbors.clone()
        }
        fn default_tx_dbm(&self) -> f64 {
            16.02
        }
        fn rx_sensitivity_dbm(&self) -> f64 {
            -96.0
        }
        fn rand(&mut self) -> f64 {
            self.rand_value
        }
    }

    fn params() -> AedbParams {
        AedbParams {
            min_delay: 0.2,
            max_delay: 1.0,
            border_threshold: -80.0,
            margin_threshold: 1.0,
            neighbors_threshold: 2.0,
        }
    }

    #[test]
    fn strong_first_copy_is_dropped() {
        let mut aedb = Aedb::new(4, params());
        let mut api = FakeApi::new();
        // -70 dBm > border (-80): node is deep inside coverage -> drop.
        aedb.on_receive(1, 0, -70.0, &mut api);
        assert!(api.timers.is_empty());
        assert!(api.transmissions.is_empty());
        assert!(aedb.nodes[1].done);
    }

    #[test]
    fn weak_copy_schedules_delay_in_interval() {
        let mut aedb = Aedb::new(4, params());
        let mut api = FakeApi::new();
        api.rand_value = 0.5;
        aedb.on_receive(1, 0, -85.0, &mut api);
        assert_eq!(api.timers.len(), 1);
        let (_, delay, _) = api.timers[0];
        // delay = 0.2 + 0.5*(1.0-0.2) = 0.6
        assert!((delay - 0.6).abs() < 1e-12);
        assert!(aedb.nodes[1].waiting);
    }

    #[test]
    fn stronger_duplicate_updates_pmin_and_cancels_forward() {
        let mut aedb = Aedb::new(4, params());
        let mut api = FakeApi::with_neighbors(&[(0, -85.0), (2, -85.0)]);
        aedb.on_receive(1, 0, -85.0, &mut api); // waits
        aedb.on_receive(1, 2, -75.0, &mut api); // strong duplicate
        assert_eq!(aedb.nodes[1].pmin, -75.0);
        aedb.on_timer(1, 0, &mut api);
        // pmin (-75) > border (-80): dropped at line 16
        assert!(api.transmissions.is_empty());
    }

    #[test]
    fn weaker_duplicate_does_not_downgrade_pmin() {
        let mut aedb = Aedb::new(4, params());
        let mut api = FakeApi::with_neighbors(&[(0, -85.0)]);
        aedb.on_receive(1, 0, -82.0, &mut api);
        aedb.on_receive(1, 2, -90.0, &mut api);
        assert_eq!(aedb.nodes[1].pmin, -82.0);
        aedb.on_timer(1, 0, &mut api);
        assert_eq!(api.transmissions.len(), 1);
    }

    #[test]
    fn sparse_branch_reaches_furthest_excluding_sender() {
        let mut aedb = Aedb::new(4, params());
        // one potential forwarder (-85 <= border -80) — not above the
        // neighbors threshold (2), so sparse branch.
        let mut api = FakeApi::with_neighbors(&[(0, -60.0), (2, -85.0), (3, -75.0)]);
        aedb.on_receive(1, 0, -85.0, &mut api);
        aedb.on_timer(1, 0, &mut api);
        assert_eq!(api.transmissions.len(), 1);
        let (_, tx) = api.transmissions[0];
        // furthest neighbour excluding sender 0: node 2 at -85 dBm beacon.
        // needed = -96 + (16.02 − (−85)) + 1 = 6.02
        assert!((tx - 6.02).abs() < 1e-9, "tx = {tx}");
    }

    #[test]
    fn dense_branch_reaches_closest_potential_forwarder() {
        let mut p = params();
        p.neighbors_threshold = 1.0; // two potential forwarders > 1
        let mut aedb = Aedb::new(5, p);
        let mut api = FakeApi::with_neighbors(&[(0, -60.0), (2, -85.0), (3, -92.0)]);
        aedb.on_receive(1, 0, -85.0, &mut api);
        aedb.on_timer(1, 0, &mut api);
        let (_, tx) = api.transmissions[0];
        // potential forwarders at −85, −92; strongest (closest to border) −85
        // needed = −96 + (16.02 + 85) + 1 = 6.02
        assert!((tx - 6.02).abs() < 1e-9, "tx = {tx}");
    }

    #[test]
    fn power_clamped_to_default() {
        let mut aedb = Aedb::new(4, params());
        // single very far neighbour (−95.9): raw estimate would exceed default
        let mut api = FakeApi::with_neighbors(&[(2, -95.9)]);
        aedb.on_receive(1, 0, -85.0, &mut api);
        aedb.on_timer(1, 0, &mut api);
        let (_, tx) = api.transmissions[0];
        assert_eq!(tx, 16.02);
    }

    #[test]
    fn no_neighbors_uses_default_power() {
        let mut aedb = Aedb::new(4, params());
        let mut api = FakeApi::new();
        aedb.on_receive(1, 0, -85.0, &mut api);
        aedb.on_timer(1, 0, &mut api);
        assert_eq!(api.transmissions, vec![(1, 16.02)]);
    }

    #[test]
    fn source_transmits_immediately() {
        let mut aedb = Aedb::new(4, params());
        let mut api = FakeApi::with_neighbors(&[(1, -70.0), (2, -88.0)]);
        aedb.on_start(0, &mut api);
        assert_eq!(api.transmissions.len(), 1);
        assert!(api.timers.is_empty());
    }

    #[test]
    fn duplicate_after_done_is_ignored() {
        let mut aedb = Aedb::new(4, params());
        let mut api = FakeApi::with_neighbors(&[(0, -85.0)]);
        aedb.on_receive(1, 0, -85.0, &mut api);
        aedb.on_timer(1, 0, &mut api);
        let sent = api.transmissions.len();
        aedb.on_receive(1, 3, -85.0, &mut api);
        aedb.on_timer(1, 0, &mut api); // stale timer
        assert_eq!(api.transmissions.len(), sent, "must not forward twice");
    }

    #[test]
    fn zero_delay_interval_fires_with_zero_delay() {
        let mut p = params();
        p.min_delay = 0.0;
        p.max_delay = 0.0;
        let mut aedb = Aedb::new(2, p);
        let mut api = FakeApi::new();
        aedb.on_receive(1, 0, -85.0, &mut api);
        assert_eq!(api.timers[0].1, 0.0);
    }

    #[test]
    fn margin_increases_power() {
        let tx_with_margin = |margin: f64| {
            let mut p = params();
            p.margin_threshold = margin;
            let mut aedb = Aedb::new(3, p);
            let mut api = FakeApi::with_neighbors(&[(2, -85.0)]);
            aedb.on_receive(1, 0, -85.0, &mut api);
            aedb.on_timer(1, 0, &mut api);
            api.transmissions[0].1
        };
        assert!(tx_with_margin(3.0) > tx_with_margin(0.0));
        assert!((tx_with_margin(3.0) - tx_with_margin(0.0) - 3.0).abs() < 1e-9);
    }
}
