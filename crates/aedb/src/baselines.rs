//! Baseline dissemination protocols from the broadcast-storm literature the
//! paper builds on (§I–§II): plain flooding lives in `manet::protocol`;
//! here are the classic mitigations of Ni et al. 1999 and the fixed
//! distance-based scheme AEDB descends from. They let examples and
//! experiments position AEDB's trade-offs against its ancestors, and they
//! exercise the same simulator/protocol interfaces as AEDB itself.

use manet::protocol::{Protocol, ProtocolApi};
use manet::sim::NodeId;

/// Probabilistic broadcasting: re-broadcast the first copy with probability
/// `p` after a random jitter (Ni et al. 1999; optimised by Abdou et al.
/// 2011, cited as [1] in the paper).
#[derive(Debug, Clone)]
pub struct Probabilistic {
    seen: Vec<bool>,
    /// Forwarding probability `p ∈ [0, 1]`.
    pub probability: f64,
    /// Jitter interval (s) before the forwarding decision fires.
    pub jitter: (f64, f64),
}

impl Probabilistic {
    /// Creates the protocol for `n` nodes.
    pub fn new(n: usize, probability: f64, jitter: (f64, f64)) -> Self {
        assert!((0.0..=1.0).contains(&probability));
        assert!(jitter.0 >= 0.0 && jitter.1 >= jitter.0);
        Self {
            seen: vec![false; n],
            probability,
            jitter,
        }
    }
}

impl Protocol for Probabilistic {
    fn on_start(&mut self, node: NodeId, api: &mut dyn ProtocolApi) {
        self.seen[node] = true;
        let p = api.node_tx_dbm(node);
        api.transmit(node, p);
    }

    fn on_receive(&mut self, node: NodeId, _from: NodeId, _rx: f64, api: &mut dyn ProtocolApi) {
        if self.seen[node] {
            return;
        }
        self.seen[node] = true;
        if api.rand() < self.probability {
            let (lo, hi) = self.jitter;
            let d = lo + api.rand() * (hi - lo).max(0.0);
            api.set_timer(node, d, 0);
        }
    }

    fn on_timer(&mut self, node: NodeId, _tag: u64, api: &mut dyn ProtocolApi) {
        let p = api.node_tx_dbm(node);
        api.transmit(node, p);
    }
}

/// Counter-based broadcasting (Ni et al. 1999): wait a random assessment
/// delay counting duplicate copies; forward only if fewer than
/// `counter_threshold` copies were overheard.
#[derive(Debug, Clone)]
pub struct CounterBased {
    state: Vec<CbState>,
    /// Maximum overheard copies before suppressing the forward.
    pub counter_threshold: u32,
    /// Assessment delay interval (s).
    pub delay: (f64, f64),
}

#[derive(Debug, Clone, Copy, Default)]
struct CbState {
    seen: bool,
    count: u32,
    decided: bool,
}

impl CounterBased {
    /// Creates the protocol for `n` nodes.
    pub fn new(n: usize, counter_threshold: u32, delay: (f64, f64)) -> Self {
        assert!(counter_threshold >= 1);
        assert!(delay.0 >= 0.0 && delay.1 >= delay.0);
        Self {
            state: vec![CbState::default(); n],
            counter_threshold,
            delay,
        }
    }
}

impl Protocol for CounterBased {
    fn on_start(&mut self, node: NodeId, api: &mut dyn ProtocolApi) {
        self.state[node].seen = true;
        self.state[node].decided = true;
        let p = api.node_tx_dbm(node);
        api.transmit(node, p);
    }

    fn on_receive(&mut self, node: NodeId, _from: NodeId, _rx: f64, api: &mut dyn ProtocolApi) {
        let st = &mut self.state[node];
        st.count += 1;
        if st.seen {
            return;
        }
        st.seen = true;
        let (lo, hi) = self.delay;
        let d = lo + api.rand() * (hi - lo).max(0.0);
        api.set_timer(node, d, 0);
    }

    fn on_timer(&mut self, node: NodeId, _tag: u64, api: &mut dyn ProtocolApi) {
        let threshold = self.counter_threshold;
        let st = &mut self.state[node];
        if st.decided {
            return;
        }
        st.decided = true;
        if st.count < threshold {
            let p = api.node_tx_dbm(node);
            api.transmit(node, p);
        }
    }
}

/// Fixed distance-based broadcasting — the EDB ancestor of AEDB: forward
/// (at **full power**) only if the strongest received copy is below the
/// border threshold. AEDB adds the adaptive power reduction and the
/// density switch on top of this rule.
#[derive(Debug, Clone)]
pub struct DistanceBased {
    state: Vec<DbState>,
    /// Received-power border of the forwarding area (dBm).
    pub border_threshold: f64,
    /// Forwarding delay interval (s).
    pub delay: (f64, f64),
}

#[derive(Debug, Clone, Copy, Default)]
struct DbState {
    seen: bool,
    waiting: bool,
    done: bool,
    pmin: f64,
}

impl DistanceBased {
    /// Creates the protocol for `n` nodes.
    pub fn new(n: usize, border_threshold: f64, delay: (f64, f64)) -> Self {
        assert!(delay.0 >= 0.0 && delay.1 >= delay.0);
        Self {
            state: vec![DbState::default(); n],
            border_threshold,
            delay,
        }
    }
}

impl Protocol for DistanceBased {
    fn on_start(&mut self, node: NodeId, api: &mut dyn ProtocolApi) {
        self.state[node].seen = true;
        self.state[node].done = true;
        let p = api.node_tx_dbm(node);
        api.transmit(node, p);
    }

    fn on_receive(&mut self, node: NodeId, _from: NodeId, rx: f64, api: &mut dyn ProtocolApi) {
        let border = self.border_threshold;
        let st = &mut self.state[node];
        if !st.seen {
            st.seen = true;
            st.pmin = rx;
            if rx > border {
                st.done = true;
                return;
            }
            st.waiting = true;
            let (lo, hi) = self.delay;
            let d = lo + api.rand() * (hi - lo).max(0.0);
            api.set_timer(node, d, 0);
        } else if st.waiting && rx > st.pmin {
            st.pmin = rx;
        }
    }

    fn on_timer(&mut self, node: NodeId, _tag: u64, api: &mut dyn ProtocolApi) {
        let border = self.border_threshold;
        let st = &mut self.state[node];
        if !st.waiting || st.done {
            return;
        }
        st.waiting = false;
        st.done = true;
        if st.pmin <= border {
            let p = api.node_tx_dbm(node);
            api.transmit(node, p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Density, Scenario};
    use manet::sim::Simulator;

    fn run<P: Protocol>(make: impl Fn(usize) -> P, seed_offset: u64) -> manet::sim::SimReport {
        let scenario = Scenario::quick(Density::D200, 1);
        let mut cfg = scenario.sim_config(0);
        cfg.seed += seed_offset;
        let n = cfg.n_nodes;
        Simulator::new(cfg, make(n)).run()
    }

    #[test]
    fn probabilistic_zero_never_forwards() {
        let r = run(|n| Probabilistic::new(n, 0.0, (0.0, 0.1)), 0);
        assert_eq!(r.broadcast.forwardings, 0);
    }

    #[test]
    fn probabilistic_one_is_flooding() {
        let r1 = run(|n| Probabilistic::new(n, 1.0, (0.0, 0.1)), 0);
        // every covered node forwards exactly once
        assert_eq!(r1.broadcast.forwardings, r1.broadcast.coverage());
    }

    #[test]
    fn probabilistic_scales_with_p() {
        let lo = run(|n| Probabilistic::new(n, 0.2, (0.0, 0.2)), 0);
        let hi = run(|n| Probabilistic::new(n, 0.9, (0.0, 0.2)), 0);
        assert!(hi.broadcast.forwardings >= lo.broadcast.forwardings);
    }

    #[test]
    fn counter_based_suppresses_in_dense_network() {
        let flood = run(|n| CounterBased::new(n, u32::MAX, (0.0, 0.3)), 0);
        let cb = run(|n| CounterBased::new(n, 3, (0.0, 0.3)), 0);
        assert!(
            cb.broadcast.forwardings < flood.broadcast.forwardings,
            "{} vs {}",
            cb.broadcast.forwardings,
            flood.broadcast.forwardings
        );
        // suppression should not destroy coverage in a dense network
        assert!(cb.broadcast.coverage() as f64 >= 0.5 * flood.broadcast.coverage() as f64);
    }

    #[test]
    fn distance_based_restrictive_border_forwards_less() {
        let permissive = run(|n| DistanceBased::new(n, -72.0, (0.0, 0.3)), 0);
        let restrictive = run(|n| DistanceBased::new(n, -93.0, (0.0, 0.3)), 0);
        assert!(restrictive.broadcast.forwardings <= permissive.broadcast.forwardings);
    }

    #[test]
    fn distance_based_always_full_power() {
        let r = run(|n| DistanceBased::new(n, -80.0, (0.0, 0.3)), 0);
        let f = r.broadcast.forwardings as f64;
        assert!((r.broadcast.energy_dbm_sum - f * 16.02).abs() < 1e-6);
    }

    #[test]
    fn aedb_uses_less_energy_than_its_ancestor() {
        // AEDB = distance-based + adaptive power: same border, less energy.
        use crate::params::AedbParams;
        use crate::protocol::Aedb;
        let border = -80.0;
        let db = run(|n| DistanceBased::new(n, border, (0.0, 0.4)), 0);
        let aedb = run(
            |n| {
                Aedb::new(
                    n,
                    AedbParams {
                        min_delay: 0.0,
                        max_delay: 0.4,
                        border_threshold: border,
                        margin_threshold: 1.0,
                        neighbors_threshold: 50.0,
                    },
                )
            },
            0,
        );
        if aedb.broadcast.forwardings > 0 && db.broadcast.forwardings > 0 {
            let per_fwd_aedb = aedb.broadcast.energy_dbm_sum / aedb.broadcast.forwardings as f64;
            let per_fwd_db = db.broadcast.energy_dbm_sum / db.broadcast.forwardings as f64;
            assert!(
                per_fwd_aedb < per_fwd_db,
                "AEDB per-forwarding energy {per_fwd_aedb} should undercut EDB {per_fwd_db}"
            );
        }
    }
}
