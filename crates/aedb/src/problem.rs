//! The AEDB tuning problem — Eq. 1 of the paper.
//!
//! ```text
//! F(s) = [ min energy(s), max coverage(s), min forwardings(s) ]
//!        subject to broadcast_time(s) < 2 s
//! ```
//!
//! where every quantity is the average over 10 fixed simulated networks.
//! Internally the objectives are stored in minimisation form:
//! `[energy, −coverage, forwardings]`; the constraint becomes the
//! violation `max(0, bt − 2)`.

use crate::params::{AedbParams, N_PARAMS};
use crate::protocol::Aedb;
use crate::scenario::Scenario;
use manet::sim::Simulator;
use mopt::problem::{Evaluation, Problem};
use mopt::solution::Bounds;
use rayon::prelude::*;

/// Broadcast-time constraint limit (s): "any solution that takes longer
/// than 2 seconds is no longer valid".
pub const BT_LIMIT: f64 = 2.0;

/// The four raw observables of one configuration, averaged over the
/// scenario's networks (the sensitivity analysis needs all four).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AedbOutcome {
    /// Σ of forwarding transmit powers (dBm), averaged.
    pub energy: f64,
    /// Devices reached (count), averaged.
    pub coverage: f64,
    /// Forwarding transmissions (count), averaged.
    pub forwardings: f64,
    /// Dissemination duration (s), averaged.
    pub broadcast_time: f64,
}

/// The tuning problem for one density scenario.
///
/// Evaluation simulates the candidate on every fixed network of the
/// scenario (optionally in parallel via rayon — the inner loop of the
/// paper, which dominates runtime) and averages the metrics.
pub struct AedbProblem {
    scenario: Scenario,
    bounds: Bounds,
    parallel: bool,
}

impl AedbProblem {
    /// Paper-faithful problem: Table III bounds, 10 fixed networks,
    /// sequential simulation (the algorithms parallelise above this).
    pub fn paper(scenario: Scenario) -> Self {
        Self { scenario, bounds: AedbParams::bounds(), parallel: false }
    }

    /// Enables rayon across the scenario's networks for callers that
    /// evaluate one candidate at a time (sensitivity analysis, examples).
    pub fn with_parallel_sims(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Replaces the search-space bounds (the sensitivity analysis uses the
    /// wider §III-B domains).
    pub fn with_bounds(mut self, bounds: Bounds) -> Self {
        assert_eq!(bounds.len(), N_PARAMS);
        self.bounds = bounds;
        self
    }

    /// The scenario being optimised.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Simulates `params` on network `k` and returns its raw observables.
    pub fn simulate_one(&self, params: AedbParams, k: usize) -> AedbOutcome {
        let config = self.scenario.sim_config(k);
        let n = config.n_nodes;
        let report = Simulator::new(config, Aedb::new(n, params)).run();
        AedbOutcome {
            energy: report.broadcast.energy_dbm_sum,
            coverage: report.broadcast.coverage() as f64,
            forwardings: report.broadcast.forwardings as f64,
            broadcast_time: report.broadcast.broadcast_time(),
        }
    }

    /// Full evaluation: averages the observables over all networks.
    pub fn evaluate_full(&self, params: AedbParams) -> AedbOutcome {
        let n = self.scenario.n_networks;
        let fold = |acc: AedbOutcome, o: AedbOutcome| AedbOutcome {
            energy: acc.energy + o.energy,
            coverage: acc.coverage + o.coverage,
            forwardings: acc.forwardings + o.forwardings,
            broadcast_time: acc.broadcast_time + o.broadcast_time,
        };
        let zero = AedbOutcome { energy: 0.0, coverage: 0.0, forwardings: 0.0, broadcast_time: 0.0 };
        // Parallel path collects first and folds in index order so the
        // floating-point sum is bit-identical to the sequential path.
        let sum = if self.parallel {
            (0..n)
                .into_par_iter()
                .map(|k| self.simulate_one(params, k))
                .collect::<Vec<_>>()
                .into_iter()
                .fold(zero, fold)
        } else {
            (0..n).map(|k| self.simulate_one(params, k)).fold(zero, fold)
        };
        let d = n as f64;
        AedbOutcome {
            energy: sum.energy / d,
            coverage: sum.coverage / d,
            forwardings: sum.forwardings / d,
            broadcast_time: sum.broadcast_time / d,
        }
    }
}

impl Problem for AedbProblem {
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    fn n_objectives(&self) -> usize {
        3
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let params = AedbParams::from_vec(x);
        let o = self.evaluate_full(params);
        Evaluation::with_violation(
            vec![o.energy, -o.coverage, o.forwardings],
            (o.broadcast_time - BT_LIMIT).max(0.0),
        )
    }

    fn objective_names(&self) -> Vec<String> {
        vec!["energy_dbm".into(), "neg_coverage".into(), "forwardings".into()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Density;

    fn quick_problem() -> AedbProblem {
        AedbProblem::paper(Scenario::quick(Density::D100, 2))
    }

    #[test]
    fn evaluation_has_three_objectives_and_violation() {
        let p = quick_problem();
        let ev = p.evaluate(&AedbParams::default_config().to_vec());
        assert_eq!(ev.objectives.len(), 3);
        assert!(ev.objectives.iter().all(|v| v.is_finite()));
        assert!(ev.violation >= 0.0);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let p = quick_problem();
        let x = AedbParams::default_config().to_vec();
        let a = p.evaluate(&x);
        let b = p.evaluate(&x);
        assert_eq!(a.objectives, b.objectives);
        assert_eq!(a.violation, b.violation);
    }

    #[test]
    fn parallel_matches_sequential() {
        let x = AedbParams::default_config().to_vec();
        let seq = AedbProblem::paper(Scenario::quick(Density::D100, 4)).evaluate(&x);
        let par = AedbProblem::paper(Scenario::quick(Density::D100, 4))
            .with_parallel_sims(true)
            .evaluate(&x);
        assert_eq!(seq.objectives, par.objectives);
    }

    #[test]
    fn permissive_config_reaches_nodes() {
        // A high border threshold (−70 dBm) gives a large forwarding area:
        // only nodes receiving *above* it (closer than ~20 m to a sender)
        // drop, so dissemination spreads.
        let p = quick_problem();
        let params = AedbParams {
            min_delay: 0.0,
            max_delay: 0.2,
            border_threshold: -70.0,
            margin_threshold: 1.0,
            neighbors_threshold: 50.0,
        };
        let o = p.evaluate_full(params);
        assert!(o.coverage > 5.0, "coverage = {}", o.coverage);
        assert!(o.broadcast_time < BT_LIMIT);
    }

    #[test]
    fn restrictive_border_suppresses_forwarding() {
        // border −95 dBm: essentially every reception is stronger, so
        // almost everyone drops — few forwardings, low energy.
        let p = quick_problem();
        let params = AedbParams {
            min_delay: 0.0,
            max_delay: 0.2,
            border_threshold: -95.0,
            margin_threshold: 1.0,
            neighbors_threshold: 50.0,
        };
        let o = p.evaluate_full(params);
        let permissive = AedbParams { border_threshold: -70.0, ..params };
        let op = p.evaluate_full(permissive);
        assert!(o.forwardings <= op.forwardings, "{} vs {}", o.forwardings, op.forwardings);
        assert!(o.coverage <= op.coverage);
    }

    #[test]
    fn long_delays_violate_bt_constraint_more_often() {
        let p = quick_problem();
        let slow = AedbParams {
            min_delay: 1.0,
            max_delay: 5.0,
            border_threshold: -70.0,
            margin_threshold: 1.0,
            neighbors_threshold: 50.0,
        };
        let fast = AedbParams { min_delay: 0.0, max_delay: 0.1, ..slow };
        let o_slow = p.evaluate_full(slow);
        let o_fast = p.evaluate_full(fast);
        assert!(o_slow.broadcast_time > o_fast.broadcast_time);
    }

    #[test]
    fn coverage_maximisation_encoded_as_negation() {
        let p = quick_problem();
        let params = AedbParams::default_config();
        let o = p.evaluate_full(params);
        let ev = p.evaluate(&params.to_vec());
        assert_eq!(ev.objectives[1], -o.coverage);
    }
}

#[cfg(test)]
mod perf_probe {
    use super::*;
    use crate::scenario::Density;

    #[test]
    fn timing_probe() {
        let p = AedbProblem::paper(Scenario::paper(Density::D300));
        let t0 = std::time::Instant::now();
        let _ = p.evaluate(&AedbParams::default_config().to_vec());
        eprintln!("D300 full eval (10 nets, 75 nodes): {:?}", t0.elapsed());
        let p = AedbProblem::paper(Scenario::paper(Density::D100));
        let t0 = std::time::Instant::now();
        let _ = p.evaluate(&AedbParams::default_config().to_vec());
        eprintln!("D100 full eval (10 nets, 25 nodes): {:?}", t0.elapsed());
    }
}
