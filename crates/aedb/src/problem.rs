//! The AEDB tuning problem — Eq. 1 of the paper.
//!
//! ```text
//! F(s) = [ min energy(s), max coverage(s), min forwardings(s) ]
//!        subject to broadcast_time(s) < 2 s
//! ```
//!
//! where every quantity is the average over 10 fixed simulated networks.
//! Internally the objectives are stored in minimisation form:
//! `[energy, −coverage, forwardings]`; the constraint becomes the
//! violation `max(0, bt − 2)`.

use crate::params::{AedbParams, N_PARAMS};
use crate::protocol::Aedb;
use crate::scenario::Scenario;
use manet::sim::Simulator;
use mopt::problem::{Evaluation, Problem};
use mopt::solution::Bounds;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use store::{DiskStorage, Storage};

/// Broadcast-time constraint limit (s): "any solution that takes longer
/// than 2 seconds is no longer valid".
pub const BT_LIMIT: f64 = 2.0;

/// Lattice resolution of the evaluation cache: each decision variable is
/// snapped to this many steps across its bound range (~1e-6 relative),
/// far below any step the optimisers take, so only genuinely repeated
/// configurations collide.
const CACHE_STEPS: f64 = (1u64 << 20) as f64;

/// Quantized decision vector — the evaluation-cache key.
type CacheKey = [u64; N_PARAMS];

/// A global pool of reusable simulators: the batched pipeline runs
/// thousands of simulations per generation through the same handful of
/// pre-allocated event queues / tables / scratch buffers. The pool is
/// process-wide (not thread-local) so reuse survives across batches even
/// when the thread pool recreates its workers; it never holds more
/// simulators than the peak number of concurrent simulations.
static SIM_POOL: Mutex<Vec<Simulator<Aedb>>> = Mutex::new(Vec::new());

/// The four raw observables of one configuration, averaged over the
/// scenario's networks (the sensitivity analysis needs all four).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AedbOutcome {
    /// Σ of forwarding transmit powers (dBm), averaged.
    pub energy: f64,
    /// Devices reached (count), averaged.
    pub coverage: f64,
    /// Forwarding transmissions (count), averaged.
    pub forwardings: f64,
    /// Dissemination duration (s), averaged.
    pub broadcast_time: f64,
}

/// The tuning problem for one density scenario.
///
/// Evaluation simulates the candidate on every fixed network of the
/// scenario (the inner loop of the paper, which dominates runtime) and
/// averages the metrics. The batched entry point
/// [`Problem::evaluate_batch`] fans the whole (candidate × network)
/// product out over a thread pool at once — the unit of parallelism the
/// optimisers feed a generation at a time — and a quantized-parameter
/// cache dedupes repeated configurations across generations.
pub struct AedbProblem {
    scenario: Scenario,
    bounds: Bounds,
    parallel: bool,
    /// Whether [`Problem::evaluate_batch`] fans its jobs over the thread
    /// pool (`true` by default). Turned off when a caller shards *whole
    /// repetitions* across the pool instead (`bench::runner`), so the two
    /// levels of parallelism do not multiply.
    parallel_batches: bool,
    /// Evaluation memo keyed by quantized decision vectors; `None`
    /// disables caching (perf baselines).
    cache: Option<Mutex<HashMap<CacheKey, Evaluation>>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// When set, the cache is loaded from this storage slot on
    /// construction and flushed back on drop — repeated experiments start
    /// warm. The slot is any [`Storage`] backend plus the `(namespace,
    /// key)` the serialized cache lives under; the historical
    /// [`with_eval_cache_path`](Self::with_eval_cache_path) binds a
    /// [`DiskStorage`] slot that maps to exactly the given file.
    cache_store: Option<CacheSlot>,
}

/// Where a persisted evaluation cache lives: a storage backend plus the
/// namespaced key of the serialized cache document.
#[derive(Clone)]
struct CacheSlot {
    storage: Arc<dyn Storage>,
    namespace: String,
    key: String,
}

impl AedbProblem {
    /// Paper-faithful problem: Table III bounds, 10 fixed networks,
    /// sequential per-candidate simulation at paper scale (batch
    /// evaluation and the algorithms parallelise above this). Dense
    /// campaigns additionally fan the network axis of a *single* candidate
    /// across the pool — see
    /// [`evaluate_full`](Self::evaluate_full) — because one dense
    /// candidate is already seconds of simulation.
    ///
    /// The quantized evaluation cache is **enabled** by default: decision
    /// vectors are snapped to a `2^20`-step lattice per variable, so two
    /// vectors closer than ~1e-6 of a bound range share one simulated
    /// result. That dedupes the exact repeats optimisers produce
    /// (elitism, archive re-injection) at the cost of a deliberate
    /// approximation for near-identical vectors; callers needing strict
    /// per-vector evaluation (e.g. parity baselines) should opt out via
    /// [`with_eval_cache(false)`](Self::with_eval_cache).
    pub fn paper(scenario: Scenario) -> Self {
        Self {
            scenario,
            bounds: AedbParams::bounds(),
            parallel: false,
            parallel_batches: true,
            cache: Some(Mutex::new(HashMap::new())),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_store: None,
        }
    }

    /// Enables the thread pool across the scenario's networks for callers
    /// that evaluate one candidate at a time (sensitivity analysis,
    /// examples). Batch evaluation always parallelises.
    pub fn with_parallel_sims(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Enables/disables the quantized evaluation cache (on by default).
    pub fn with_eval_cache(mut self, on: bool) -> Self {
        self.cache = if on {
            Some(Mutex::new(HashMap::new()))
        } else {
            None
        };
        self
    }

    /// Enables/disables the thread-pool fan-out inside
    /// [`Problem::evaluate_batch`] (on by default). `bench::runner` turns
    /// it off when it shards whole repetitions across the pool, so the
    /// outer and inner parallelism do not multiply into oversubscription.
    /// Results are bit-identical either way.
    pub fn with_parallel_batches(mut self, on: bool) -> Self {
        self.parallel_batches = on;
        self
    }

    /// Backs the quantized evaluation cache with a file: entries found at
    /// `path` (and matching this problem's [fingerprint](Self::cache_fingerprint))
    /// are loaded now, and the full cache is flushed back on drop — so
    /// repeated experiments over the same scenario start warm. Enables the
    /// cache if it was disabled. Load/flush failures are silent (a cold
    /// cache is always correct); call
    /// [`flush_eval_cache`](Self::flush_eval_cache) for an explicit,
    /// error-reporting flush.
    ///
    /// This is the historical single-file entry point, now a thin binding
    /// of [`with_eval_cache_storage`](Self::with_eval_cache_storage) to a
    /// [`DiskStorage`] slot that maps to exactly `path` — the on-disk
    /// location and format are unchanged. Paths whose file name is not a
    /// storage-safe token (see [`store::validate_component`]) fall back to
    /// an unpersisted in-memory cache.
    pub fn with_eval_cache_path(mut self, path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        let root = path
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .unwrap_or(Path::new("."));
        let Some(key) = path.file_name().and_then(|n| n.to_str()) else {
            // No usable file name: keep the cache, skip persistence.
            if self.cache.is_none() {
                self.cache = Some(Mutex::new(HashMap::new()));
            }
            return self;
        };
        // Empty namespace = the root directory itself, so the cache file
        // lands at `path` verbatim.
        self.with_eval_cache_storage(Arc::new(DiskStorage::new(root)), "", key)
    }

    /// Backs the quantized evaluation cache with an arbitrary [`Storage`]
    /// slot: the serialized cache document lives under
    /// `(namespace, key)` on `storage`. Entries matching this problem's
    /// [fingerprint](Self::cache_fingerprint) are loaded now and the full
    /// cache is flushed back on drop, exactly like
    /// [`with_eval_cache_path`](Self::with_eval_cache_path) — that method
    /// *is* this one specialised to a single-file disk slot. The resident
    /// simulation service uses this to pool eval caches from every
    /// campaign in one backend (disk, memory, or whatever else implements
    /// the trait), so they outlive any one process.
    pub fn with_eval_cache_storage(
        mut self,
        storage: Arc<dyn Storage>,
        namespace: impl Into<String>,
        key: impl Into<String>,
    ) -> Self {
        if self.cache.is_none() {
            self.cache = Some(Mutex::new(HashMap::new()));
        }
        let slot = CacheSlot {
            storage,
            namespace: namespace.into(),
            key: key.into(),
        };
        if let Ok(Some(bytes)) = slot.storage.get(&slot.namespace, &slot.key) {
            let loaded = Self::parse_cache(&bytes, self.cache_fingerprint());
            let cache = self.cache.as_ref().expect("cache enabled above");
            cache.lock().extend(loaded);
        }
        self.cache_store = Some(slot);
        self
    }

    /// Identity of the cached mapping: any change to the scenario (its
    /// networks, density, dense override), the bounds the quantization
    /// lattice is anchored to, or the lattice itself must invalidate a
    /// persisted cache file.
    pub fn cache_fingerprint(&self) -> u64 {
        let mut text = format!(
            "{:?}|nets={}|steps={}",
            self.scenario, self.scenario.n_networks, CACHE_STEPS
        );
        for i in 0..self.bounds.len() {
            let (lo, hi) = self.bounds.get(i);
            text.push_str(&format!("|{lo:e}..{hi:e}"));
        }
        // FNV-1a, stable across runs and platforms
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Writes the current cache contents to the configured storage slot
    /// (no-op without [`with_eval_cache_path`](Self::with_eval_cache_path)
    /// / [`with_eval_cache_storage`](Self::with_eval_cache_storage)).
    /// Format: a header line `aedb-eval-cache v1 <fingerprint>` followed
    /// by one entry per line — the quantized key and the f64 bit patterns
    /// of the objectives and violation in hex, so persisted evaluations
    /// round-trip bit-exactly. Atomic replacement (a crash mid-write must
    /// never leave a truncated document behind) is the [`Storage::put`]
    /// contract, not re-implemented here.
    pub fn flush_eval_cache(&self) -> std::io::Result<()> {
        let (Some(slot), Some(cache)) = (&self.cache_store, &self.cache) else {
            return Ok(());
        };
        let mut out = String::new();
        out.push_str(&format!(
            "aedb-eval-cache v1 {:016x}\n",
            self.cache_fingerprint()
        ));
        for (key, ev) in cache.lock().iter() {
            for k in key {
                out.push_str(&format!("{k:x} "));
            }
            out.push_str(&format!("{}", ev.objectives.len()));
            for o in &ev.objectives {
                out.push_str(&format!(" {:016x}", o.to_bits()));
            }
            out.push_str(&format!(" {:016x}\n", ev.violation.to_bits()));
        }
        slot.storage.put(&slot.namespace, &slot.key, out.as_bytes())
    }

    /// Parses one whitespace token as the hex bit pattern of an `f64`,
    /// rejecting anything but exactly 16 hex digits (defence in depth
    /// against truncated files: a cut-off token must not reinterpret as a
    /// tiny denormal).
    fn parse_f64_bits(tok: Option<&str>) -> Option<f64> {
        let t = tok?;
        if t.len() != 16 {
            return None;
        }
        u64::from_str_radix(t, 16).ok().map(f64::from_bits)
    }

    /// Parses a serialized cache document (the format
    /// [`flush_eval_cache`](Self::flush_eval_cache) writes) against the
    /// expected fingerprint. Any mismatch or malformation degrades to
    /// fewer entries, never an error — a cold cache is always correct.
    fn parse_cache(bytes: &[u8], fingerprint: u64) -> Vec<(CacheKey, Evaluation)> {
        let text = String::from_utf8_lossy(bytes);
        let mut lines = text.lines();
        let header = lines.next().unwrap_or_default();
        let mut parts = header.split_whitespace();
        if parts.next() != Some("aedb-eval-cache")
            || parts.next() != Some("v1")
            || parts.next().and_then(|h| u64::from_str_radix(h, 16).ok()) != Some(fingerprint)
        {
            // Different problem (or a stale/foreign document): a cold
            // start is the correct behaviour, and the flush on drop will
            // replace it.
            return Vec::new();
        }
        let mut entries = Vec::new();
        for line in lines {
            let mut tok = line.split_whitespace();
            let mut key = [0u64; N_PARAMS];
            let mut ok = true;
            for k in key.iter_mut() {
                match tok.next().and_then(|t| u64::from_str_radix(t, 16).ok()) {
                    Some(v) => *k = v,
                    None => ok = false,
                }
            }
            let n_obj = tok.next().and_then(|t| t.parse::<usize>().ok());
            let Some(n_obj) = n_obj else { continue };
            let mut objectives = Vec::with_capacity(n_obj);
            for _ in 0..n_obj {
                match Self::parse_f64_bits(tok.next()) {
                    Some(v) => objectives.push(v),
                    None => ok = false,
                }
            }
            let violation = Self::parse_f64_bits(tok.next());
            let (true, Some(violation), None) = (ok, violation, tok.next()) else {
                continue; // malformed line: skip, never fail the run
            };
            entries.push((
                key,
                Evaluation {
                    objectives,
                    violation,
                },
            ));
        }
        entries
    }

    /// Replaces the search-space bounds (the sensitivity analysis uses the
    /// wider §III-B domains). The quantization lattice is anchored to the
    /// bounds, so any cached evaluations keyed on the old lattice —
    /// including entries loaded from a
    /// [`with_eval_cache_path`](Self::with_eval_cache_path) /
    /// [`with_eval_cache_storage`](Self::with_eval_cache_storage) slot
    /// before this call — are dropped and the slot (whose fingerprint
    /// covers the bounds) is re-read under the new fingerprint.
    pub fn with_bounds(mut self, bounds: Bounds) -> Self {
        assert_eq!(bounds.len(), N_PARAMS);
        self.bounds = bounds;
        if let Some(cache) = &self.cache {
            cache.lock().clear();
        }
        if let Some(slot) = self.cache_store.take() {
            self = self.with_eval_cache_storage(slot.storage, slot.namespace, slot.key);
        }
        self
    }

    /// The scenario being optimised.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// `(hits, misses)` of the evaluation cache so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Snaps `x` onto the cache lattice: per variable, the index of its
    /// `CACHE_STEPS`-step cell within the bound range. Out-of-range values
    /// clamp to the edge cells.
    fn quantize(&self, x: &[f64]) -> CacheKey {
        let mut key = [0u64; N_PARAMS];
        for (i, k) in key.iter_mut().enumerate() {
            let (lo, hi) = self.bounds.get(i);
            let span = hi - lo;
            let t = if span > 0.0 {
                ((x[i] - lo) / span).clamp(0.0, 1.0)
            } else {
                0.0
            };
            *k = (t * CACHE_STEPS).round() as u64;
        }
        key
    }

    fn cached(&self, key: &CacheKey) -> Option<Evaluation> {
        let hit = self.cache.as_ref()?.lock().get(key).cloned();
        match &hit {
            Some(_) => self.cache_hits.fetch_add(1, Ordering::Relaxed),
            None => self.cache_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn store(&self, key: CacheKey, ev: &Evaluation) {
        if let Some(cache) = &self.cache {
            cache.lock().insert(key, ev.clone());
        }
    }

    /// Simulates `params` on network `k` and returns its raw observables.
    /// Runs on a simulator checked out of the process-wide pool: after
    /// warm-up a simulation performs no heap allocation beyond the report.
    /// Networks compile through the declarative [`Scenario::world`] path,
    /// so heterogeneous dense scenarios (mixed mobility / power classes)
    /// pose the tuning problem exactly like homogeneous ones.
    pub fn simulate_one(&self, params: AedbParams, k: usize) -> AedbOutcome {
        let world = self.scenario.world(k);
        let n = world.n_nodes();
        // Bind the checkout first: `match SIM_POOL.lock().pop()` would
        // hold the guard across the arms and self-deadlock on the push.
        let checked_out = SIM_POOL.lock().pop();
        let report = match checked_out {
            Some(mut sim) => {
                sim.reset_world_with(&world, |p| p.reset(n, params));
                let report = sim.run_to_end();
                SIM_POOL.lock().push(sim);
                report
            }
            None => {
                let mut sim = Simulator::from_world(&world, Aedb::new(n, params));
                let report = sim.run_to_end();
                SIM_POOL.lock().push(sim);
                report
            }
        };
        AedbOutcome {
            energy: report.broadcast.energy_dbm_sum,
            coverage: report.broadcast.coverage() as f64,
            forwardings: report.broadcast.forwardings as f64,
            broadcast_time: report.broadcast.broadcast_time(),
        }
    }

    fn average(outcomes: impl Iterator<Item = AedbOutcome>, n: usize) -> AedbOutcome {
        let fold = |acc: AedbOutcome, o: AedbOutcome| AedbOutcome {
            energy: acc.energy + o.energy,
            coverage: acc.coverage + o.coverage,
            forwardings: acc.forwardings + o.forwardings,
            broadcast_time: acc.broadcast_time + o.broadcast_time,
        };
        let zero = AedbOutcome {
            energy: 0.0,
            coverage: 0.0,
            forwardings: 0.0,
            broadcast_time: 0.0,
        };
        let sum = outcomes.fold(zero, fold);
        let d = n as f64;
        AedbOutcome {
            energy: sum.energy / d,
            coverage: sum.coverage / d,
            forwardings: sum.forwardings / d,
            broadcast_time: sum.broadcast_time / d,
        }
    }

    /// Whether a lone candidate's networks should fan out over the thread
    /// pool: always when [`with_parallel_sims`](Self::with_parallel_sims)
    /// asked for it, and **automatically for dense campaigns** — there a
    /// single candidate is hundreds-to-10⁴-node simulations, so leaving
    /// nine cores idle per candidate dominates end-to-end time. Gated on
    /// `parallel_batches` so callers that shard whole repetitions across
    /// the pool (`bench::runner`) keep a single layer of parallelism.
    fn parallel_single_candidate(&self) -> bool {
        self.parallel
            || (self.parallel_batches && self.scenario.is_dense() && self.scenario.n_networks > 1)
    }

    /// Full evaluation: averages the observables over all networks —
    /// fanned across the thread pool when
    /// [`parallel_single_candidate`](Self::parallel_single_candidate)
    /// applies (the per-network parallelism *inside one candidate* that
    /// dense 10⁴-node campaigns need).
    pub fn evaluate_full(&self, params: AedbParams) -> AedbOutcome {
        let n = self.scenario.n_networks;
        // Parallel path collects first and folds in index order so the
        // floating-point sum is bit-identical to the sequential path.
        if self.parallel_single_candidate() {
            let outcomes: Vec<AedbOutcome> = (0..n)
                .into_par_iter()
                .map(|k| self.simulate_one(params, k))
                .collect();
            Self::average(outcomes.into_iter(), n)
        } else {
            Self::average((0..n).map(|k| self.simulate_one(params, k)), n)
        }
    }

    fn outcome_to_evaluation(o: AedbOutcome) -> Evaluation {
        Evaluation::with_violation(
            vec![o.energy, -o.coverage, o.forwardings],
            (o.broadcast_time - BT_LIMIT).max(0.0),
        )
    }
}

impl Drop for AedbProblem {
    /// Flushes the disk-backed evaluation cache, if one was configured —
    /// best-effort: persistence is an optimisation, never a correctness
    /// requirement, so failures are swallowed here (use
    /// [`flush_eval_cache`](Self::flush_eval_cache) to observe them).
    fn drop(&mut self) {
        let _ = self.flush_eval_cache();
    }
}

impl Problem for AedbProblem {
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    fn n_objectives(&self) -> usize {
        3
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let key = self.quantize(x);
        if let Some(hit) = self.cached(&key) {
            return hit;
        }
        let params = AedbParams::from_vec(x);
        let ev = Self::outcome_to_evaluation(self.evaluate_full(params));
        self.store(key, &ev);
        ev
    }

    /// Batched evaluation: dedupes candidates through the quantized cache,
    /// then fans the remaining (candidate × network) product out over the
    /// thread pool in one parallel scope. With small populations this
    /// exposes `candidates × networks` units of work instead of
    /// per-candidate `networks` — in the degenerate dense-campaign shape
    /// of a *single* fresh candidate, the scope **is** the network axis of
    /// that one candidate, so even a batch of one keeps every core busy.
    /// Per-network outcomes are folded in network order so each result is
    /// bit-identical to a per-candidate [`evaluate`](Problem::evaluate)
    /// call.
    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<Evaluation> {
        let n_nets = self.scenario.n_networks;
        let mut results: Vec<Option<Evaluation>> = Vec::with_capacity(xs.len());
        // Unique uncached configurations in first-occurrence order.
        let mut fresh: Vec<(CacheKey, AedbParams)> = Vec::new();
        let mut fresh_index: HashMap<CacheKey, usize> = HashMap::new();
        let mut result_source: Vec<usize> = Vec::with_capacity(xs.len()); // index into `fresh`
        for x in xs {
            let key = self.quantize(x);
            if let Some(hit) = self.cached(&key) {
                results.push(Some(hit));
                result_source.push(usize::MAX);
            } else {
                // In-batch dedupe is part of the cache contract; with the
                // cache disabled every vector simulates independently.
                let idx = if self.cache.is_some() {
                    *fresh_index.entry(key).or_insert_with(|| {
                        fresh.push((key, AedbParams::from_vec(x)));
                        fresh.len() - 1
                    })
                } else {
                    fresh.push((key, AedbParams::from_vec(x)));
                    fresh.len() - 1
                };
                results.push(None);
                result_source.push(idx);
            }
        }
        // One parallel scope over the whole (candidate × network) product
        // (sequential when an outer layer already owns the thread pool).
        let jobs = fresh.len() * n_nets;
        let outcomes: Vec<AedbOutcome> = if self.parallel_batches {
            (0..jobs)
                .into_par_iter()
                .map(|j| self.simulate_one(fresh[j / n_nets].1, j % n_nets))
                .collect()
        } else {
            (0..jobs)
                .map(|j| self.simulate_one(fresh[j / n_nets].1, j % n_nets))
                .collect()
        };
        let fresh_evals: Vec<Evaluation> = fresh
            .iter()
            .enumerate()
            .map(|(ci, (key, _))| {
                let per_net = outcomes[ci * n_nets..(ci + 1) * n_nets].iter().copied();
                let ev = Self::outcome_to_evaluation(Self::average(per_net, n_nets));
                self.store(*key, &ev);
                ev
            })
            .collect();
        results
            .into_iter()
            .zip(result_source)
            .map(|(cached, src)| cached.unwrap_or_else(|| fresh_evals[src].clone()))
            .collect()
    }

    fn objective_names(&self) -> Vec<String> {
        vec![
            "energy_dbm".into(),
            "neg_coverage".into(),
            "forwardings".into(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Density;

    fn quick_problem() -> AedbProblem {
        AedbProblem::paper(Scenario::quick(Density::D100, 2))
    }

    #[test]
    fn evaluation_has_three_objectives_and_violation() {
        let p = quick_problem();
        let ev = p.evaluate(&AedbParams::default_config().to_vec());
        assert_eq!(ev.objectives.len(), 3);
        assert!(ev.objectives.iter().all(|v| v.is_finite()));
        assert!(ev.violation >= 0.0);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let p = quick_problem();
        let x = AedbParams::default_config().to_vec();
        let a = p.evaluate(&x);
        let b = p.evaluate(&x);
        assert_eq!(a.objectives, b.objectives);
        assert_eq!(a.violation, b.violation);
    }

    #[test]
    fn parallel_matches_sequential() {
        let x = AedbParams::default_config().to_vec();
        let seq = AedbProblem::paper(Scenario::quick(Density::D100, 4)).evaluate(&x);
        let par = AedbProblem::paper(Scenario::quick(Density::D100, 4))
            .with_parallel_sims(true)
            .evaluate(&x);
        assert_eq!(seq.objectives, par.objectives);
    }

    #[test]
    fn permissive_config_reaches_nodes() {
        // A high border threshold (−70 dBm) gives a large forwarding area:
        // only nodes receiving *above* it (closer than ~20 m to a sender)
        // drop, so dissemination spreads. Averaged over 4 networks because
        // individual 25-node placements can be badly partitioned.
        let p = AedbProblem::paper(Scenario::quick(Density::D100, 4));
        let params = AedbParams {
            min_delay: 0.0,
            max_delay: 0.2,
            border_threshold: -70.0,
            margin_threshold: 1.0,
            neighbors_threshold: 50.0,
        };
        let o = p.evaluate_full(params);
        assert!(o.coverage > 5.0, "coverage = {}", o.coverage);
        assert!(o.broadcast_time < BT_LIMIT);
    }

    #[test]
    fn restrictive_border_suppresses_forwarding() {
        // border −95 dBm: essentially every reception is stronger, so
        // almost everyone drops — few forwardings, low energy.
        let p = quick_problem();
        let params = AedbParams {
            min_delay: 0.0,
            max_delay: 0.2,
            border_threshold: -95.0,
            margin_threshold: 1.0,
            neighbors_threshold: 50.0,
        };
        let o = p.evaluate_full(params);
        let permissive = AedbParams {
            border_threshold: -70.0,
            ..params
        };
        let op = p.evaluate_full(permissive);
        assert!(
            o.forwardings <= op.forwardings,
            "{} vs {}",
            o.forwardings,
            op.forwardings
        );
        assert!(o.coverage <= op.coverage);
    }

    #[test]
    fn long_delays_violate_bt_constraint_more_often() {
        let p = quick_problem();
        let slow = AedbParams {
            min_delay: 1.0,
            max_delay: 5.0,
            border_threshold: -70.0,
            margin_threshold: 1.0,
            neighbors_threshold: 50.0,
        };
        let fast = AedbParams {
            min_delay: 0.0,
            max_delay: 0.1,
            ..slow
        };
        let o_slow = p.evaluate_full(slow);
        let o_fast = p.evaluate_full(fast);
        assert!(o_slow.broadcast_time > o_fast.broadcast_time);
    }

    #[test]
    fn batch_matches_per_candidate_evaluation() {
        // The batched (candidate × network) pipeline must be bit-identical
        // to sequential per-candidate evaluation — objectives *and*
        // constraint violations. Caches disabled on the reference problem
        // so it really recomputes.
        let batch_problem = AedbProblem::paper(Scenario::quick(Density::D100, 3));
        let reference =
            AedbProblem::paper(Scenario::quick(Density::D100, 3)).with_eval_cache(false);
        let xs: Vec<Vec<f64>> = vec![
            AedbParams::default_config().to_vec(),
            vec![0.0, 0.2, -70.0, 1.0, 50.0],
            vec![1.0, 5.0, -95.0, 0.0, 0.0], // slow delays: likely violating
            vec![0.5, 2.5, -82.0, 2.0, 25.0],
        ];
        let batch = batch_problem.evaluate_batch(&xs);
        assert_eq!(batch.len(), xs.len());
        for (x, ev) in xs.iter().zip(&batch) {
            let single = reference.evaluate(x);
            assert_eq!(
                ev.objectives, single.objectives,
                "objectives diverge at {x:?}"
            );
            assert_eq!(
                ev.violation, single.violation,
                "violation diverges at {x:?}"
            );
        }
    }

    #[test]
    fn batch_cache_hits_return_identical_results() {
        let p = AedbProblem::paper(Scenario::quick(Density::D100, 2));
        let x = AedbParams::default_config().to_vec();
        let y = vec![0.0, 0.2, -70.0, 1.0, 50.0];
        // Duplicates inside one batch simulate once; repeats across calls
        // hit the cache and must return the very same evaluation.
        let first = p.evaluate_batch(&[x.clone(), y.clone(), x.clone()]);
        assert_eq!(first[0], first[2]);
        let (h0, m0) = p.cache_stats();
        assert_eq!(h0, 0, "first batch cannot hit");
        assert_eq!(m0, 3, "all three lookups miss (dedupe happens after)");
        let second = p.evaluate_batch(&[y.clone(), x.clone()]);
        assert_eq!(second[0], first[1]);
        assert_eq!(second[1], first[0]);
        let (h1, _) = p.cache_stats();
        assert_eq!(h1, 2, "second batch is fully cached");
        // the per-candidate path shares the same cache
        assert_eq!(p.evaluate(&x), first[0]);
        assert_eq!(p.cache_stats().0, 3);
    }

    #[test]
    fn quantization_dedupes_only_negligible_differences() {
        let p = AedbProblem::paper(Scenario::quick(Density::D100, 1));
        let x = AedbParams::default_config().to_vec();
        let mut nudged = x.clone();
        nudged[0] += 1e-9; // far below one lattice step
        assert_eq!(p.quantize(&x), p.quantize(&nudged));
        let mut moved = x.clone();
        moved[0] += 1e-2; // thousands of steps away
        assert_ne!(p.quantize(&x), p.quantize(&moved));
    }

    fn temp_cache_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "aedb-eval-cache-test-{tag}-{}.txt",
            std::process::id()
        ))
    }

    #[test]
    fn disk_cache_round_trips_bit_exactly() {
        let path = temp_cache_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let x = AedbParams::default_config().to_vec();
        let y = vec![0.0, 0.2, -70.0, 1.0, 50.0];
        let first = {
            let p =
                AedbProblem::paper(Scenario::quick(Density::D100, 2)).with_eval_cache_path(&path);
            let evs = p.evaluate_batch(&[x.clone(), y.clone()]);
            assert_eq!(p.cache_stats(), (0, 2), "cold cache cannot hit");
            evs
            // drop flushes
        };
        assert!(path.exists(), "drop must flush the cache file");
        let p = AedbProblem::paper(Scenario::quick(Density::D100, 2)).with_eval_cache_path(&path);
        assert_eq!(
            p.evaluate(&x),
            first[0],
            "warm-started eval must be bit-exact"
        );
        assert_eq!(p.evaluate(&y), first[1]);
        assert_eq!(
            p.cache_stats(),
            (2, 0),
            "warm cache serves without simulating"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disk_cache_ignores_foreign_fingerprints() {
        let path = temp_cache_path("fingerprint");
        let _ = std::fs::remove_file(&path);
        let x = AedbParams::default_config().to_vec();
        {
            let p =
                AedbProblem::paper(Scenario::quick(Density::D100, 2)).with_eval_cache_path(&path);
            let _ = p.evaluate(&x);
        }
        // Different scenario (more networks) => different mapping: the
        // persisted entries must not leak in.
        let p = AedbProblem::paper(Scenario::quick(Density::D100, 3)).with_eval_cache_path(&path);
        let _ = p.evaluate(&x);
        assert_eq!(p.cache_stats().0, 0, "foreign cache file must be ignored");
        // ... and garbage files must not break construction.
        std::fs::write(&path, "not a cache file\n1 2 3\n").unwrap();
        let p = AedbProblem::paper(Scenario::quick(Density::D100, 2)).with_eval_cache_path(&path);
        let _ = p.evaluate(&x);
        assert_eq!(p.cache_stats().0, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disk_cache_invalidated_when_bounds_change_the_lattice() {
        // with_bounds after with_eval_cache_path re-anchors the
        // quantization lattice: entries persisted (and already loaded)
        // under the old bounds must not be reinterpreted on the new one.
        let path = temp_cache_path("bounds");
        let _ = std::fs::remove_file(&path);
        let x = AedbParams::default_config().to_vec();
        {
            let p =
                AedbProblem::paper(Scenario::quick(Density::D100, 2)).with_eval_cache_path(&path);
            let _ = p.evaluate(&x);
        }
        let mut pairs = AedbParams::bounds().as_slice().to_vec();
        pairs[0] = (0.0, 10.0);
        let wider = mopt::solution::Bounds::new(pairs);
        let p = AedbProblem::paper(Scenario::quick(Density::D100, 2))
            .with_eval_cache_path(&path)
            .with_bounds(wider);
        let _ = p.evaluate(&x);
        assert_eq!(
            p.cache_stats().0,
            0,
            "entries keyed on the old lattice must not survive with_bounds"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn storage_backed_cache_round_trips_on_memory_backend() {
        // The generalised slot: same warm-start semantics as the disk
        // file, on a backend that never touches the filesystem.
        use store::MemoryStorage;
        let storage: Arc<dyn store::Storage> = Arc::new(MemoryStorage::new());
        let x = AedbParams::default_config().to_vec();
        let first =
            {
                let p = AedbProblem::paper(Scenario::quick(Density::D100, 2))
                    .with_eval_cache_storage(storage.clone(), "eval-cache", "test-slot");
                let ev = p.evaluate(&x);
                p.flush_eval_cache().unwrap();
                ev
            };
        assert!(
            storage.get("eval-cache", "test-slot").unwrap().is_some(),
            "flush must write the slot"
        );
        let p = AedbProblem::paper(Scenario::quick(Density::D100, 2)).with_eval_cache_storage(
            storage.clone(),
            "eval-cache",
            "test-slot",
        );
        assert_eq!(p.evaluate(&x), first, "warm-started eval must be bit-exact");
        assert_eq!(p.cache_stats(), (1, 0), "served from storage, no sim");
    }

    #[test]
    fn sequential_batches_match_parallel_batches() {
        let xs: Vec<Vec<f64>> = vec![
            AedbParams::default_config().to_vec(),
            vec![0.0, 0.2, -70.0, 1.0, 50.0],
            vec![0.5, 2.5, -82.0, 2.0, 25.0],
        ];
        let par = AedbProblem::paper(Scenario::quick(Density::D100, 3)).evaluate_batch(&xs);
        let seq = AedbProblem::paper(Scenario::quick(Density::D100, 3))
            .with_parallel_batches(false)
            .evaluate_batch(&xs);
        assert_eq!(par, seq);
    }

    #[test]
    fn dense_single_candidate_fans_networks_bit_identically() {
        // The per-network parallelism *inside one candidate*: a dense
        // scenario evaluates a lone candidate across the pool by default,
        // and the result must be bit-identical to the fully sequential
        // path (outcomes are folded in network index order either way).
        use crate::scenario::DenseScenario;
        let dense = DenseScenario::new(200, 500);
        let x = AedbParams::default_config().to_vec();
        let par = AedbProblem::paper(Scenario::dense(dense.clone(), 3));
        assert!(
            par.parallel_single_candidate(),
            "dense campaigns parallelise single candidates by default"
        );
        let seq =
            AedbProblem::paper(Scenario::dense(dense.clone(), 3)).with_parallel_batches(false);
        assert!(
            !seq.parallel_single_candidate(),
            "repetition-sharded callers keep one layer of parallelism"
        );
        let a = par.evaluate(&x);
        let b = seq.evaluate(&x);
        assert_eq!(a.objectives, b.objectives);
        assert_eq!(a.violation, b.violation);
        // ... and the batch-of-one shape agrees too.
        let c =
            AedbProblem::paper(Scenario::dense(dense, 3)).evaluate_batch(std::slice::from_ref(&x));
        assert_eq!(c[0], a);
    }

    #[test]
    fn paper_scale_single_candidate_stays_sequential() {
        // Paper-scale problems keep the historical sequential single-
        // candidate path unless with_parallel_sims opts in: thousands of
        // 25–75-node simulations parallelise better one layer up.
        let p = AedbProblem::paper(Scenario::quick(Density::D100, 2));
        assert!(!p.parallel_single_candidate());
        assert!(p.with_parallel_sims(true).parallel_single_candidate());
    }

    #[test]
    fn dense_scenario_problem_evaluates() {
        // The tuning problem posed at beyond-paper scale: a 500-node dense
        // network (shadowed) evaluated through the same pipeline.
        use crate::scenario::DenseScenario;
        let scenario = Scenario::dense(DenseScenario::new(200, 500).with_shadowing(4.0), 1);
        let p = AedbProblem::paper(scenario);
        let ev = p.evaluate(&AedbParams::default_config().to_vec());
        assert_eq!(ev.objectives.len(), 3);
        assert!(ev.objectives.iter().all(|v| v.is_finite()));
        assert!(-ev.objectives[1] >= 0.0, "coverage is a count");
    }

    #[test]
    fn coverage_maximisation_encoded_as_negation() {
        let p = quick_problem();
        let params = AedbParams::default_config();
        let o = p.evaluate_full(params);
        let ev = p.evaluate(&params.to_vec());
        assert_eq!(ev.objectives[1], -o.coverage);
    }
}

#[cfg(test)]
mod perf_probe {
    use super::*;
    use crate::scenario::Density;

    #[test]
    fn timing_probe() {
        let p = AedbProblem::paper(Scenario::paper(Density::D300));
        let t0 = std::time::Instant::now();
        let _ = p.evaluate(&AedbParams::default_config().to_vec());
        eprintln!("D300 full eval (10 nets, 75 nodes): {:?}", t0.elapsed());
        let p = AedbProblem::paper(Scenario::paper(Density::D100));
        let t0 = std::time::Instant::now();
        let _ = p.evaluate(&AedbParams::default_config().to_vec());
        eprintln!("D100 full eval (10 nets, 25 nodes): {:?}", t0.elapsed());
    }
}
