//! The AEDB tuning problem — Eq. 1 of the paper.
//!
//! ```text
//! F(s) = [ min energy(s), max coverage(s), min forwardings(s) ]
//!        subject to broadcast_time(s) < 2 s
//! ```
//!
//! where every quantity is the average over 10 fixed simulated networks.
//! Internally the objectives are stored in minimisation form:
//! `[energy, −coverage, forwardings]`; the constraint becomes the
//! violation `max(0, bt − 2)`.

use crate::params::{AedbParams, N_PARAMS};
use crate::protocol::Aedb;
use crate::scenario::Scenario;
use manet::sim::Simulator;
use mopt::problem::{Evaluation, Problem};
use mopt::solution::Bounds;
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Broadcast-time constraint limit (s): "any solution that takes longer
/// than 2 seconds is no longer valid".
pub const BT_LIMIT: f64 = 2.0;

/// Lattice resolution of the evaluation cache: each decision variable is
/// snapped to this many steps across its bound range (~1e-6 relative),
/// far below any step the optimisers take, so only genuinely repeated
/// configurations collide.
const CACHE_STEPS: f64 = (1u64 << 20) as f64;

/// Quantized decision vector — the evaluation-cache key.
type CacheKey = [u64; N_PARAMS];

/// A global pool of reusable simulators: the batched pipeline runs
/// thousands of simulations per generation through the same handful of
/// pre-allocated event queues / tables / scratch buffers. The pool is
/// process-wide (not thread-local) so reuse survives across batches even
/// when the thread pool recreates its workers; it never holds more
/// simulators than the peak number of concurrent simulations.
static SIM_POOL: Mutex<Vec<Simulator<Aedb>>> = Mutex::new(Vec::new());

/// The four raw observables of one configuration, averaged over the
/// scenario's networks (the sensitivity analysis needs all four).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AedbOutcome {
    /// Σ of forwarding transmit powers (dBm), averaged.
    pub energy: f64,
    /// Devices reached (count), averaged.
    pub coverage: f64,
    /// Forwarding transmissions (count), averaged.
    pub forwardings: f64,
    /// Dissemination duration (s), averaged.
    pub broadcast_time: f64,
}

/// The tuning problem for one density scenario.
///
/// Evaluation simulates the candidate on every fixed network of the
/// scenario (the inner loop of the paper, which dominates runtime) and
/// averages the metrics. The batched entry point
/// [`Problem::evaluate_batch`] fans the whole (candidate × network)
/// product out over a thread pool at once — the unit of parallelism the
/// optimisers feed a generation at a time — and a quantized-parameter
/// cache dedupes repeated configurations across generations.
pub struct AedbProblem {
    scenario: Scenario,
    bounds: Bounds,
    parallel: bool,
    /// Evaluation memo keyed by quantized decision vectors; `None`
    /// disables caching (perf baselines).
    cache: Option<Mutex<HashMap<CacheKey, Evaluation>>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl AedbProblem {
    /// Paper-faithful problem: Table III bounds, 10 fixed networks,
    /// sequential per-candidate simulation (batch evaluation and the
    /// algorithms parallelise above this).
    ///
    /// The quantized evaluation cache is **enabled** by default: decision
    /// vectors are snapped to a `2^20`-step lattice per variable, so two
    /// vectors closer than ~1e-6 of a bound range share one simulated
    /// result. That dedupes the exact repeats optimisers produce
    /// (elitism, archive re-injection) at the cost of a deliberate
    /// approximation for near-identical vectors; callers needing strict
    /// per-vector evaluation (e.g. parity baselines) should opt out via
    /// [`with_eval_cache(false)`](Self::with_eval_cache).
    pub fn paper(scenario: Scenario) -> Self {
        Self {
            scenario,
            bounds: AedbParams::bounds(),
            parallel: false,
            cache: Some(Mutex::new(HashMap::new())),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    /// Enables the thread pool across the scenario's networks for callers
    /// that evaluate one candidate at a time (sensitivity analysis,
    /// examples). Batch evaluation always parallelises.
    pub fn with_parallel_sims(mut self, on: bool) -> Self {
        self.parallel = on;
        self
    }

    /// Enables/disables the quantized evaluation cache (on by default).
    pub fn with_eval_cache(mut self, on: bool) -> Self {
        self.cache = if on {
            Some(Mutex::new(HashMap::new()))
        } else {
            None
        };
        self
    }

    /// Replaces the search-space bounds (the sensitivity analysis uses the
    /// wider §III-B domains).
    pub fn with_bounds(mut self, bounds: Bounds) -> Self {
        assert_eq!(bounds.len(), N_PARAMS);
        self.bounds = bounds;
        self
    }

    /// The scenario being optimised.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// `(hits, misses)` of the evaluation cache so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Snaps `x` onto the cache lattice: per variable, the index of its
    /// `CACHE_STEPS`-step cell within the bound range. Out-of-range values
    /// clamp to the edge cells.
    fn quantize(&self, x: &[f64]) -> CacheKey {
        let mut key = [0u64; N_PARAMS];
        for (i, k) in key.iter_mut().enumerate() {
            let (lo, hi) = self.bounds.get(i);
            let span = hi - lo;
            let t = if span > 0.0 {
                ((x[i] - lo) / span).clamp(0.0, 1.0)
            } else {
                0.0
            };
            *k = (t * CACHE_STEPS).round() as u64;
        }
        key
    }

    fn cached(&self, key: &CacheKey) -> Option<Evaluation> {
        let hit = self.cache.as_ref()?.lock().get(key).cloned();
        match &hit {
            Some(_) => self.cache_hits.fetch_add(1, Ordering::Relaxed),
            None => self.cache_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn store(&self, key: CacheKey, ev: &Evaluation) {
        if let Some(cache) = &self.cache {
            cache.lock().insert(key, ev.clone());
        }
    }

    /// Simulates `params` on network `k` and returns its raw observables.
    /// Runs on a simulator checked out of the process-wide pool: after
    /// warm-up a simulation performs no heap allocation beyond the report.
    pub fn simulate_one(&self, params: AedbParams, k: usize) -> AedbOutcome {
        let config = self.scenario.sim_config(k);
        let n = config.n_nodes;
        // Bind the checkout first: `match SIM_POOL.lock().pop()` would
        // hold the guard across the arms and self-deadlock on the push.
        let checked_out = SIM_POOL.lock().pop();
        let report = match checked_out {
            Some(mut sim) => {
                sim.reset_with(config, |p| p.reset(n, params));
                let report = sim.run_to_end();
                SIM_POOL.lock().push(sim);
                report
            }
            None => {
                let mut sim = Simulator::new(config, Aedb::new(n, params));
                let report = sim.run_to_end();
                SIM_POOL.lock().push(sim);
                report
            }
        };
        AedbOutcome {
            energy: report.broadcast.energy_dbm_sum,
            coverage: report.broadcast.coverage() as f64,
            forwardings: report.broadcast.forwardings as f64,
            broadcast_time: report.broadcast.broadcast_time(),
        }
    }

    fn average(outcomes: impl Iterator<Item = AedbOutcome>, n: usize) -> AedbOutcome {
        let fold = |acc: AedbOutcome, o: AedbOutcome| AedbOutcome {
            energy: acc.energy + o.energy,
            coverage: acc.coverage + o.coverage,
            forwardings: acc.forwardings + o.forwardings,
            broadcast_time: acc.broadcast_time + o.broadcast_time,
        };
        let zero = AedbOutcome {
            energy: 0.0,
            coverage: 0.0,
            forwardings: 0.0,
            broadcast_time: 0.0,
        };
        let sum = outcomes.fold(zero, fold);
        let d = n as f64;
        AedbOutcome {
            energy: sum.energy / d,
            coverage: sum.coverage / d,
            forwardings: sum.forwardings / d,
            broadcast_time: sum.broadcast_time / d,
        }
    }

    /// Full evaluation: averages the observables over all networks.
    pub fn evaluate_full(&self, params: AedbParams) -> AedbOutcome {
        let n = self.scenario.n_networks;
        // Parallel path collects first and folds in index order so the
        // floating-point sum is bit-identical to the sequential path.
        if self.parallel {
            let outcomes: Vec<AedbOutcome> = (0..n)
                .into_par_iter()
                .map(|k| self.simulate_one(params, k))
                .collect();
            Self::average(outcomes.into_iter(), n)
        } else {
            Self::average((0..n).map(|k| self.simulate_one(params, k)), n)
        }
    }

    fn outcome_to_evaluation(o: AedbOutcome) -> Evaluation {
        Evaluation::with_violation(
            vec![o.energy, -o.coverage, o.forwardings],
            (o.broadcast_time - BT_LIMIT).max(0.0),
        )
    }
}

impl Problem for AedbProblem {
    fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    fn n_objectives(&self) -> usize {
        3
    }

    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let key = self.quantize(x);
        if let Some(hit) = self.cached(&key) {
            return hit;
        }
        let params = AedbParams::from_vec(x);
        let ev = Self::outcome_to_evaluation(self.evaluate_full(params));
        self.store(key, &ev);
        ev
    }

    /// Batched evaluation: dedupes candidates through the quantized cache,
    /// then fans the remaining (candidate × network) product out over the
    /// thread pool in one parallel scope. With small populations this
    /// exposes `candidates × networks` units of work instead of
    /// per-candidate `networks`, keeping every core busy; per-network
    /// outcomes are folded in network order so each result is bit-identical
    /// to a per-candidate [`evaluate`](Problem::evaluate) call.
    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<Evaluation> {
        let n_nets = self.scenario.n_networks;
        let mut results: Vec<Option<Evaluation>> = Vec::with_capacity(xs.len());
        // Unique uncached configurations in first-occurrence order.
        let mut fresh: Vec<(CacheKey, AedbParams)> = Vec::new();
        let mut fresh_index: HashMap<CacheKey, usize> = HashMap::new();
        let mut result_source: Vec<usize> = Vec::with_capacity(xs.len()); // index into `fresh`
        for x in xs {
            let key = self.quantize(x);
            if let Some(hit) = self.cached(&key) {
                results.push(Some(hit));
                result_source.push(usize::MAX);
            } else {
                // In-batch dedupe is part of the cache contract; with the
                // cache disabled every vector simulates independently.
                let idx = if self.cache.is_some() {
                    *fresh_index.entry(key).or_insert_with(|| {
                        fresh.push((key, AedbParams::from_vec(x)));
                        fresh.len() - 1
                    })
                } else {
                    fresh.push((key, AedbParams::from_vec(x)));
                    fresh.len() - 1
                };
                results.push(None);
                result_source.push(idx);
            }
        }
        // One parallel scope over the whole (candidate × network) product.
        let jobs = fresh.len() * n_nets;
        let outcomes: Vec<AedbOutcome> = (0..jobs)
            .into_par_iter()
            .map(|j| self.simulate_one(fresh[j / n_nets].1, j % n_nets))
            .collect();
        let fresh_evals: Vec<Evaluation> = fresh
            .iter()
            .enumerate()
            .map(|(ci, (key, _))| {
                let per_net = outcomes[ci * n_nets..(ci + 1) * n_nets].iter().copied();
                let ev = Self::outcome_to_evaluation(Self::average(per_net, n_nets));
                self.store(*key, &ev);
                ev
            })
            .collect();
        results
            .into_iter()
            .zip(result_source)
            .map(|(cached, src)| cached.unwrap_or_else(|| fresh_evals[src].clone()))
            .collect()
    }

    fn objective_names(&self) -> Vec<String> {
        vec![
            "energy_dbm".into(),
            "neg_coverage".into(),
            "forwardings".into(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Density;

    fn quick_problem() -> AedbProblem {
        AedbProblem::paper(Scenario::quick(Density::D100, 2))
    }

    #[test]
    fn evaluation_has_three_objectives_and_violation() {
        let p = quick_problem();
        let ev = p.evaluate(&AedbParams::default_config().to_vec());
        assert_eq!(ev.objectives.len(), 3);
        assert!(ev.objectives.iter().all(|v| v.is_finite()));
        assert!(ev.violation >= 0.0);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let p = quick_problem();
        let x = AedbParams::default_config().to_vec();
        let a = p.evaluate(&x);
        let b = p.evaluate(&x);
        assert_eq!(a.objectives, b.objectives);
        assert_eq!(a.violation, b.violation);
    }

    #[test]
    fn parallel_matches_sequential() {
        let x = AedbParams::default_config().to_vec();
        let seq = AedbProblem::paper(Scenario::quick(Density::D100, 4)).evaluate(&x);
        let par = AedbProblem::paper(Scenario::quick(Density::D100, 4))
            .with_parallel_sims(true)
            .evaluate(&x);
        assert_eq!(seq.objectives, par.objectives);
    }

    #[test]
    fn permissive_config_reaches_nodes() {
        // A high border threshold (−70 dBm) gives a large forwarding area:
        // only nodes receiving *above* it (closer than ~20 m to a sender)
        // drop, so dissemination spreads. Averaged over 4 networks because
        // individual 25-node placements can be badly partitioned.
        let p = AedbProblem::paper(Scenario::quick(Density::D100, 4));
        let params = AedbParams {
            min_delay: 0.0,
            max_delay: 0.2,
            border_threshold: -70.0,
            margin_threshold: 1.0,
            neighbors_threshold: 50.0,
        };
        let o = p.evaluate_full(params);
        assert!(o.coverage > 5.0, "coverage = {}", o.coverage);
        assert!(o.broadcast_time < BT_LIMIT);
    }

    #[test]
    fn restrictive_border_suppresses_forwarding() {
        // border −95 dBm: essentially every reception is stronger, so
        // almost everyone drops — few forwardings, low energy.
        let p = quick_problem();
        let params = AedbParams {
            min_delay: 0.0,
            max_delay: 0.2,
            border_threshold: -95.0,
            margin_threshold: 1.0,
            neighbors_threshold: 50.0,
        };
        let o = p.evaluate_full(params);
        let permissive = AedbParams {
            border_threshold: -70.0,
            ..params
        };
        let op = p.evaluate_full(permissive);
        assert!(
            o.forwardings <= op.forwardings,
            "{} vs {}",
            o.forwardings,
            op.forwardings
        );
        assert!(o.coverage <= op.coverage);
    }

    #[test]
    fn long_delays_violate_bt_constraint_more_often() {
        let p = quick_problem();
        let slow = AedbParams {
            min_delay: 1.0,
            max_delay: 5.0,
            border_threshold: -70.0,
            margin_threshold: 1.0,
            neighbors_threshold: 50.0,
        };
        let fast = AedbParams {
            min_delay: 0.0,
            max_delay: 0.1,
            ..slow
        };
        let o_slow = p.evaluate_full(slow);
        let o_fast = p.evaluate_full(fast);
        assert!(o_slow.broadcast_time > o_fast.broadcast_time);
    }

    #[test]
    fn batch_matches_per_candidate_evaluation() {
        // The batched (candidate × network) pipeline must be bit-identical
        // to sequential per-candidate evaluation — objectives *and*
        // constraint violations. Caches disabled on the reference problem
        // so it really recomputes.
        let batch_problem = AedbProblem::paper(Scenario::quick(Density::D100, 3));
        let reference =
            AedbProblem::paper(Scenario::quick(Density::D100, 3)).with_eval_cache(false);
        let xs: Vec<Vec<f64>> = vec![
            AedbParams::default_config().to_vec(),
            vec![0.0, 0.2, -70.0, 1.0, 50.0],
            vec![1.0, 5.0, -95.0, 0.0, 0.0], // slow delays: likely violating
            vec![0.5, 2.5, -82.0, 2.0, 25.0],
        ];
        let batch = batch_problem.evaluate_batch(&xs);
        assert_eq!(batch.len(), xs.len());
        for (x, ev) in xs.iter().zip(&batch) {
            let single = reference.evaluate(x);
            assert_eq!(
                ev.objectives, single.objectives,
                "objectives diverge at {x:?}"
            );
            assert_eq!(
                ev.violation, single.violation,
                "violation diverges at {x:?}"
            );
        }
    }

    #[test]
    fn batch_cache_hits_return_identical_results() {
        let p = AedbProblem::paper(Scenario::quick(Density::D100, 2));
        let x = AedbParams::default_config().to_vec();
        let y = vec![0.0, 0.2, -70.0, 1.0, 50.0];
        // Duplicates inside one batch simulate once; repeats across calls
        // hit the cache and must return the very same evaluation.
        let first = p.evaluate_batch(&[x.clone(), y.clone(), x.clone()]);
        assert_eq!(first[0], first[2]);
        let (h0, m0) = p.cache_stats();
        assert_eq!(h0, 0, "first batch cannot hit");
        assert_eq!(m0, 3, "all three lookups miss (dedupe happens after)");
        let second = p.evaluate_batch(&[y.clone(), x.clone()]);
        assert_eq!(second[0], first[1]);
        assert_eq!(second[1], first[0]);
        let (h1, _) = p.cache_stats();
        assert_eq!(h1, 2, "second batch is fully cached");
        // the per-candidate path shares the same cache
        assert_eq!(p.evaluate(&x), first[0]);
        assert_eq!(p.cache_stats().0, 3);
    }

    #[test]
    fn quantization_dedupes_only_negligible_differences() {
        let p = AedbProblem::paper(Scenario::quick(Density::D100, 1));
        let x = AedbParams::default_config().to_vec();
        let mut nudged = x.clone();
        nudged[0] += 1e-9; // far below one lattice step
        assert_eq!(p.quantize(&x), p.quantize(&nudged));
        let mut moved = x.clone();
        moved[0] += 1e-2; // thousands of steps away
        assert_ne!(p.quantize(&x), p.quantize(&moved));
    }

    #[test]
    fn coverage_maximisation_encoded_as_negation() {
        let p = quick_problem();
        let params = AedbParams::default_config();
        let o = p.evaluate_full(params);
        let ev = p.evaluate(&params.to_vec());
        assert_eq!(ev.objectives[1], -o.coverage);
    }
}

#[cfg(test)]
mod perf_probe {
    use super::*;
    use crate::scenario::Density;

    #[test]
    fn timing_probe() {
        let p = AedbProblem::paper(Scenario::paper(Density::D300));
        let t0 = std::time::Instant::now();
        let _ = p.evaluate(&AedbParams::default_config().to_vec());
        eprintln!("D300 full eval (10 nets, 75 nodes): {:?}", t0.elapsed());
        let p = AedbProblem::paper(Scenario::paper(Density::D100));
        let t0 = std::time::Instant::now();
        let _ = p.evaluate(&AedbParams::default_config().to_vec());
        eprintln!("D100 full eval (10 nets, 25 nodes): {:?}", t0.elapsed());
    }
}
