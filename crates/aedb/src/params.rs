//! The five AEDB parameters, their semantics (§III) and search domains.
//!
//! | parameter            | domain (Table III) | role                                    |
//! |----------------------|--------------------|-----------------------------------------|
//! | `min_delay`          | [0, 1] s           | lower edge of the forwarding delay      |
//! | `max_delay`          | [0, 5] s           | upper edge of the forwarding delay      |
//! | `border_threshold`   | [−95, −70] dBm     | received-power border of the forwarding area |
//! | `margin_threshold`   | [0, 3] dBm         | mobility safety margin on estimated power |
//! | `neighbors_threshold`| [0, 50] devices    | density switch for power reduction      |
//!
//! The sensitivity analysis (§III-B) explores deliberately wider ranges;
//! [`AedbParams::sensitivity_bounds`] reproduces them.

use mopt::Bounds;
use serde::{Deserialize, Serialize};

/// A complete AEDB configuration (one point of the search space).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AedbParams {
    /// Lower edge of the random forwarding delay (s).
    pub min_delay: f64,
    /// Upper edge of the random forwarding delay (s).
    pub max_delay: f64,
    /// Received-power border of the forwarding area (dBm): a node whose
    /// strongest copy of the message arrived *above* this threshold is too
    /// close to the senders and drops the message.
    pub border_threshold: f64,
    /// Safety margin (dB) added to the estimated transmit power to absorb
    /// node mobility between beacons.
    pub margin_threshold: f64,
    /// Minimum number of potential forwarders in the forwarding area
    /// required before the node shrinks its range (discarding the farthest
    /// one-hop neighbours to save energy).
    pub neighbors_threshold: f64,
}

/// Number of decision variables.
pub const N_PARAMS: usize = 5;

impl AedbParams {
    /// The optimisation domains of Table III.
    pub fn bounds() -> Bounds {
        Bounds::new(vec![
            (0.0, 1.0),     // min delay (s)
            (0.0, 5.0),     // max delay (s)
            (-95.0, -70.0), // border threshold (dBm)
            (0.0, 3.0),     // margin threshold (dBm)
            (0.0, 50.0),    // neighbors threshold (devices)
        ])
    }

    /// The wider domains used by the sensitivity analysis (§III-B):
    /// `min_delay ∈ [0,5]`, `max_delay ∈ [0,5]`,
    /// `border_threshold ∈ [−95, 0]` (the paper lists the magnitude range
    /// `[0, 95]`), `margin_threshold ∈ [0, 16.2]`,
    /// `neighbors_threshold ∈ [0, 100]`.
    pub fn sensitivity_bounds() -> Bounds {
        Bounds::new(vec![
            (0.0, 5.0),
            (0.0, 5.0),
            (-95.0, 0.0),
            (0.0, 16.2),
            (0.0, 100.0),
        ])
    }

    /// Parameter names in decision-vector order.
    pub fn names() -> [&'static str; N_PARAMS] {
        [
            "min_delay",
            "max_delay",
            "border_threshold",
            "margin_threshold",
            "neighbors_threshold",
        ]
    }

    /// Builds a configuration from a decision vector
    /// `[min_delay, max_delay, border, margin, neighbors]`.
    pub fn from_vec(x: &[f64]) -> Self {
        assert_eq!(
            x.len(),
            N_PARAMS,
            "AEDB decision vector must have 5 entries"
        );
        Self {
            min_delay: x[0],
            max_delay: x[1],
            border_threshold: x[2],
            margin_threshold: x[3],
            neighbors_threshold: x[4],
        }
    }

    /// The decision vector of this configuration.
    pub fn to_vec(self) -> Vec<f64> {
        vec![
            self.min_delay,
            self.max_delay,
            self.border_threshold,
            self.margin_threshold,
            self.neighbors_threshold,
        ]
    }

    /// The effective delay interval `[lo, hi]`: parameters are free during
    /// the search, so `max_delay` may come out below `min_delay`; the
    /// protocol draws from the ordered interval.
    pub fn delay_interval(self) -> (f64, f64) {
        if self.max_delay >= self.min_delay {
            (self.min_delay, self.max_delay)
        } else {
            (self.max_delay, self.min_delay)
        }
    }

    /// A reasonable hand-tuned default (mid-range delays, permissive
    /// border) used by examples.
    pub fn default_config() -> Self {
        Self {
            min_delay: 0.1,
            max_delay: 0.8,
            border_threshold: -88.0,
            margin_threshold: 1.0,
            neighbors_threshold: 12.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_vec() {
        let p = AedbParams::default_config();
        let v = p.to_vec();
        assert_eq!(AedbParams::from_vec(&v), p);
        assert_eq!(v.len(), N_PARAMS);
    }

    #[test]
    fn bounds_match_table_iii() {
        let b = AedbParams::bounds();
        assert_eq!(b.len(), 5);
        assert_eq!(b.get(0), (0.0, 1.0));
        assert_eq!(b.get(1), (0.0, 5.0));
        assert_eq!(b.get(2), (-95.0, -70.0));
        assert_eq!(b.get(3), (0.0, 3.0));
        assert_eq!(b.get(4), (0.0, 50.0));
    }

    #[test]
    fn sensitivity_bounds_are_wider() {
        let b = AedbParams::bounds();
        let s = AedbParams::sensitivity_bounds();
        for i in 0..N_PARAMS {
            let (lo, hi) = b.get(i);
            let (slo, shi) = s.get(i);
            assert!(
                slo <= lo && shi >= hi,
                "param {i}: [{slo},{shi}] vs [{lo},{hi}]"
            );
        }
    }

    #[test]
    fn delay_interval_orders() {
        let mut p = AedbParams::default_config();
        p.min_delay = 0.9;
        p.max_delay = 0.2;
        assert_eq!(p.delay_interval(), (0.2, 0.9));
        p.max_delay = 1.5;
        assert_eq!(p.delay_interval(), (0.9, 1.5));
    }

    #[test]
    fn default_config_in_bounds() {
        let b = AedbParams::bounds();
        assert!(b.contains(&AedbParams::default_config().to_vec()));
    }

    #[test]
    #[should_panic(expected = "5 entries")]
    fn wrong_arity_panics() {
        let _ = AedbParams::from_vec(&[1.0, 2.0]);
    }
}
