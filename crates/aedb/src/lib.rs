//! # aedb — the Adaptive Enhanced Distance-Based broadcasting protocol and
//! its multi-objective tuning problem
//!
//! Implements §III of *"A Parallel Multi-objective Local Search for AEDB
//! Protocol Tuning"*:
//!
//! * [`params`] — the five tunable protocol parameters with the search
//!   domains of Table III and the wider sensitivity-analysis domains of
//!   §III-B,
//! * [`protocol`] — the AEDB state machine of Fig. 1 implemented over the
//!   [`manet`] simulator's [`Protocol`](manet::Protocol) trait (border
//!   threshold test, random forwarding delay, density-adaptive
//!   transmission-power estimation with the margin threshold),
//! * [`scenario`] — the evaluation scenarios of Table II (three densities
//!   on a 500 m × 500 m field, 10 fixed networks each),
//! * [`problem`] — the optimisation problem `F(s)` of Eq. 1: minimise
//!   energy, maximise coverage, minimise forwardings, subject to a 2 s
//!   broadcast-time constraint, each averaged over the 10 networks.

pub mod baselines;
pub mod params;
pub mod problem;
pub mod protocol;
pub mod scenario;

pub use params::AedbParams;
pub use problem::{AedbOutcome, AedbProblem};
pub use protocol::Aedb;
pub use scenario::{Density, Scenario};
