//! The AEDB-MLS engine: Fig. 3/Fig. 4 of the paper.
//!
//! Topology per run:
//!
//! ```text
//!   ┌ population 0 ─ RwLock<Vec<Candidate>> ┐        ┌───────────────┐
//!   │ worker 0.0  worker 0.1 … worker 0.T   │──msg──▶│ archive thread │
//!   └───────────────────────────────────────┘◀─msg───│  (AGA, Eq.·§IV-A)
//!   ┌ population 1 … (P populations)        │        └───────────────┘
//! ```
//!
//! Workers of one population collaborate through the shared population
//! vector (each slot holds its owner's current solution; reference
//! solutions `t` for the BLX-α move are read from random slots). All
//! workers collaborate globally *only* through the archive manager thread,
//! which owns the Adaptive Grid Archive: `Submit` messages offer feasible
//! solutions, `Sample` messages draw random elites for the periodic
//! population reinitialisation. This mirrors the paper's hybrid
//! message-passing + shared-memory model and its non-hierarchical,
//! peer-only schema (no worker is a master).

use crate::criteria::SearchCriteria;
use crossbeam::channel::{bounded, unbounded, Sender};
use mopt::archive::{AgaArchive, CrowdingArchive, EliteArchive};
use mopt::dominance::{constrained_dominance, DominanceOrd};
use mopt::ops::{blx_alpha_step, uniform_init};
use mopt::problem::Problem;
use mopt::solution::Candidate;
use parking_lot::RwLock;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Which search criteria the local search uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CriteriaChoice {
    /// The paper's three AEDB groups (§IV-B); requires ≥ 5 parameters.
    Aedb,
    /// One group containing every parameter (generic problems).
    AllParams,
    /// Explicit custom groups.
    Custom(SearchCriteria),
}

impl CriteriaChoice {
    fn resolve(&self, n_params: usize) -> SearchCriteria {
        let c = match self {
            CriteriaChoice::Aedb => SearchCriteria::aedb(),
            CriteriaChoice::AllParams => SearchCriteria::all_params(n_params),
            CriteriaChoice::Custom(c) => c.clone(),
        };
        assert!(
            c.max_param_index() < n_params,
            "criteria reference parameter {} but the problem has {}",
            c.max_param_index(),
            n_params
        );
        c
    }
}

/// AEDB-MLS parameters.
#[derive(Debug, Clone)]
pub struct MlsConfig {
    /// Number of distributed populations (paper: 8).
    pub n_populations: usize,
    /// Local-search threads per population (paper: 12).
    pub threads_per_population: usize,
    /// Evaluations each thread performs (paper: 250; total = P·T·E).
    pub evals_per_thread: u64,
    /// Iterations between population reinitialisations from the archive
    /// (paper's tuned value: 50).
    pub reset_iterations: u64,
    /// BLX-α perturbation magnitude (paper's tuned value: 0.2).
    pub alpha: f64,
    /// External archive capacity.
    pub archive_capacity: usize,
    /// AGA grid bisections per objective.
    pub archive_bisections: u32,
    /// Search-criteria selection.
    pub criteria: CriteriaChoice,
    /// Move-acceptance rule (ablation; the paper uses
    /// [`AcceptanceRule::AnyFeasible`]).
    pub acceptance: AcceptanceRule,
    /// Whether populations are periodically reinitialised from the archive
    /// (ablation; the paper enables this).
    pub reinit: bool,
    /// Elite-archive strategy (ablation; the paper uses AGA).
    pub archive_kind: ArchiveKind,
}

/// Acceptance rule of the local-search move (§IV Fig. 3 lines 9–12 accept
/// *any* feasible move; the hill-climbing variant is an ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptanceRule {
    /// Accept every feasible perturbation (the paper's rule).
    AnyFeasible,
    /// Accept a feasible perturbation only when the incumbent does not
    /// dominate it (greedier; trades exploration for convergence).
    NonDominated,
}

/// Which bounded elite archive the manager thread maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchiveKind {
    /// Adaptive Grid Archiving (PAES) — the paper's choice.
    Aga,
    /// Crowding-distance truncation (jMetal's CrowdingArchive).
    Crowding,
}

impl Default for MlsConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl MlsConfig {
    /// The paper's experimental configuration (§V): 8 populations × 12
    /// threads × 250 evaluations = 24 000 evaluations, `α = 0.2`,
    /// reset every 50 iterations.
    pub fn paper() -> Self {
        Self {
            n_populations: 8,
            threads_per_population: 12,
            evals_per_thread: 250,
            reset_iterations: 50,
            alpha: 0.2,
            archive_capacity: 100,
            archive_bisections: 5,
            criteria: CriteriaChoice::Aedb,
            acceptance: AcceptanceRule::AnyFeasible,
            reinit: true,
            archive_kind: ArchiveKind::Aga,
        }
    }

    /// A reduced configuration for tests and quick experiments.
    pub fn quick(n_populations: usize, threads: usize, evals_per_thread: u64) -> Self {
        Self {
            n_populations,
            threads_per_population: threads,
            evals_per_thread,
            reset_iterations: 25,
            alpha: 0.2,
            archive_capacity: 100,
            archive_bisections: 5,
            criteria: CriteriaChoice::AllParams,
            acceptance: AcceptanceRule::AnyFeasible,
            reinit: true,
            archive_kind: ArchiveKind::Aga,
        }
    }

    /// Total evaluation budget of a run.
    pub fn total_evaluations(&self) -> u64 {
        self.n_populations as u64 * self.threads_per_population as u64 * self.evals_per_thread
    }
}

/// Messages workers send to the archive manager.
enum ArchiveMsg {
    /// Offer a solution to the elite archive.
    Submit(Candidate),
    /// Request a random elite for reinitialisation.
    Sample(Sender<Option<Candidate>>),
}

/// The AEDB-MLS optimiser.
#[derive(Debug, Clone, Default)]
pub struct Mls {
    /// Algorithm parameters.
    pub config: MlsConfig,
}

impl Mls {
    /// Creates the optimiser with the given configuration.
    pub fn new(config: MlsConfig) -> Self {
        assert!(config.n_populations >= 1);
        assert!(config.threads_per_population >= 1);
        assert!(config.evals_per_thread >= 1);
        assert!(config.alpha > 0.0 && config.alpha < 1.0);
        assert!(config.reset_iterations >= 1);
        Self { config }
    }

    /// Runs the search. Thread interleaving makes multi-thread runs
    /// non-deterministic in general; a `1 population × 1 thread`
    /// configuration is fully deterministic for a given seed.
    ///
    /// Every worker's starting point is drawn up front and evaluated
    /// through the problem's **batched** pipeline
    /// ([`Problem::evaluate_batch`]) before the worker threads spawn —
    /// on expensive simulation problems the whole multi-start
    /// initialisation fans out across cores (and dedupes via the
    /// problem's cache) instead of trickling in one evaluation per
    /// worker.
    pub fn optimize(&self, problem: &dyn Problem, seed: u64) -> crate::mls::MlsResult {
        let cfg = &self.config;
        let total = cfg.n_populations * cfg.threads_per_population;
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xBA7C_41D5_EED0_0113);
        let xs: Vec<Vec<f64>> = (0..total)
            .map(|_| uniform_init(problem.bounds(), &mut rng))
            .collect();
        let init = problem.make_candidates(xs);
        self.optimize_impl(problem, seed, &init, init.len() as u64)
    }

    /// Like [`optimize`](Self::optimize), but workers start from the given
    /// evaluated solutions (round-robin) instead of random points — the
    /// hook the paper's future work needs ("include AEDB-MLS in
    /// [CellDE] as a local search for fine tuning the solutions"). Each
    /// worker takes one seed round-robin (already-evaluated seeds are not
    /// re-simulated) and submits it to the archive as its starting point;
    /// when `seeds` is empty all workers initialise randomly.
    pub fn optimize_from(
        &self,
        problem: &dyn Problem,
        seed: u64,
        seeds: &[Candidate],
    ) -> crate::mls::MlsResult {
        self.optimize_impl(problem, seed, seeds, 0)
    }

    /// Shared engine behind [`optimize`](Self::optimize) /
    /// [`optimize_from`](Self::optimize_from); `pre_evals` counts
    /// evaluations already spent producing `seeds` (the batched
    /// initialisation) so result bookkeeping stays exact.
    fn optimize_impl(
        &self,
        problem: &dyn Problem,
        seed: u64,
        seeds: &[Candidate],
        pre_evals: u64,
    ) -> crate::mls::MlsResult {
        let start = Instant::now();
        let cfg = &self.config;
        let n_params = problem.bounds().len();
        let criteria = cfg.criteria.resolve(n_params);
        let evals = AtomicU64::new(0);

        let (tx, rx) = unbounded::<ArchiveMsg>();
        let populations: Vec<RwLock<Vec<Candidate>>> = (0..cfg.n_populations)
            .map(|_| RwLock::new(vec![Candidate::new(vec![]); cfg.threads_per_population]))
            .collect();
        let barriers: Vec<Barrier> = (0..cfg.n_populations)
            .map(|_| Barrier::new(cfg.threads_per_population))
            .collect();

        let archive_capacity = cfg.archive_capacity;
        let archive_bisections = cfg.archive_bisections;
        let archive_kind = cfg.archive_kind;
        let mut archive_out: Option<Vec<Candidate>> = None;

        std::thread::scope(|scope| {
            // Archive manager: the message-passing hub of §IV.
            let archive_handle = scope.spawn(move || {
                let mut archive: Box<dyn EliteArchive> = match archive_kind {
                    ArchiveKind::Aga => {
                        Box::new(AgaArchive::new(archive_capacity, archive_bisections))
                    }
                    ArchiveKind::Crowding => Box::new(CrowdingArchive::new(archive_capacity)),
                };
                let mut sample_rng = SmallRng::seed_from_u64(seed ^ 0xA5C4_17E5_0C1A_1BEDu64);
                while let Ok(msg) = rx.recv() {
                    match msg {
                        ArchiveMsg::Submit(c) => {
                            archive.offer(c);
                        }
                        ArchiveMsg::Sample(reply) => {
                            let s = archive.sample_random(&mut sample_rng);
                            let _ = reply.send(s);
                        }
                    }
                }
                archive.into_contents()
            });

            // Worker threads.
            for p in 0..cfg.n_populations {
                for k in 0..cfg.threads_per_population {
                    let tx = tx.clone();
                    let population = &populations[p];
                    let barrier = &barriers[p];
                    let criteria = criteria.clone();
                    let evals = &evals;
                    let worker_seed =
                        seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul((p * 1024 + k + 1) as u64));
                    let idx = p * cfg.threads_per_population + k;
                    let start_from = seeds
                        .get(idx % seeds.len().max(1))
                        .filter(|_| !seeds.is_empty())
                        .cloned();
                    scope.spawn(move || {
                        worker_loop(
                            problem,
                            cfg,
                            &criteria,
                            population,
                            barrier,
                            k,
                            tx,
                            evals,
                            worker_seed,
                            start_from,
                        );
                    });
                }
            }
            drop(tx); // workers hold the remaining clones

            archive_out = Some(archive_handle.join().expect("archive thread panicked"));
        });

        let front = archive_out.expect("archive thread did not return");
        MlsResult {
            front,
            evaluations: pre_evals + evals.load(Ordering::Relaxed),
            elapsed: start.elapsed(),
        }
    }
}

/// Result of an AEDB-MLS run (front + bookkeeping).
#[derive(Debug, Clone)]
pub struct MlsResult {
    /// Non-dominated archive contents at termination.
    pub front: Vec<Candidate>,
    /// Total evaluations performed.
    pub evaluations: u64,
    /// Wall-clock duration.
    pub elapsed: std::time::Duration,
}

/// One local-search procedure — the paper's Fig. 3, line for line.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    problem: &dyn Problem,
    cfg: &MlsConfig,
    criteria: &SearchCriteria,
    population: &RwLock<Vec<Candidate>>,
    barrier: &Barrier,
    slot: usize,
    tx: Sender<ArchiveMsg>,
    evals: &AtomicU64,
    seed: u64,
    start_from: Option<Candidate>,
) {
    let bounds = problem.bounds();
    let mut rng = SmallRng::seed_from_u64(seed);

    // Lines 1–3: initialise (randomly, or from a provided seed solution
    // when running as a refinement stage), evaluate, archive. A seed that
    // already carries objectives is not re-simulated and costs nothing.
    let mut s = match start_from {
        Some(c) if c.is_evaluated() => c,
        Some(c) => {
            evals.fetch_add(1, Ordering::Relaxed);
            problem.make_candidate(c.params)
        }
        None => {
            evals.fetch_add(1, Ordering::Relaxed);
            problem.make_candidate(uniform_init(bounds, &mut rng))
        }
    };
    let _ = tx.send(ArchiveMsg::Submit(s.clone()));
    population.write()[slot] = s.clone();

    // Line 4: wait until the local population is fully initialised.
    barrier.wait();

    let mut my_evals: u64 = 1;
    let mut iter: u64 = 0;
    // Line 5: stopping condition = per-thread evaluation budget (§V).
    while my_evals < cfg.evals_per_thread {
        iter += 1;

        // Line 6: random reference solution from the local population.
        let t = {
            let pop = population.read();
            pop[rng.gen_range(0..pop.len())].clone()
        };

        // Lines 7: the search operator — pick a criterion, BLX-α each of
        // its parameters (Eq. 2).
        let group = criteria.pick(&mut rng);
        let mut x = s.params.clone();
        for &pidx in group {
            let (lo, hi) = bounds.get(pidx);
            let tp = if pidx < t.params.len() {
                t.params[pidx]
            } else {
                x[pidx]
            };
            if (x[pidx] - tp).abs() > 0.0 {
                x[pidx] = blx_alpha_step(x[pidx], tp, cfg.alpha, &mut rng);
            } else {
                // Absorbing state (s == t in this coordinate): domain-scaled
                // minimal kick so the walk cannot freeze. Implementation
                // choice — the paper leaves this case unspecified.
                let phi = cfg.alpha * 0.01 * (hi - lo);
                let rho: f64 = rng.gen();
                x[pidx] += phi * (3.0 * rho - 2.0);
            }
        }
        bounds.clamp(&mut x);

        // Line 8: evaluate.
        let cand = problem.make_candidate(x);
        my_evals += 1;
        evals.fetch_add(1, Ordering::Relaxed);

        // Lines 9–12: accept feasible moves (the paper accepts *all* of
        // them; the NonDominated rule is an ablation) and share them.
        if cand.is_feasible() {
            let accept = match cfg.acceptance {
                AcceptanceRule::AnyFeasible => true,
                AcceptanceRule::NonDominated => {
                    !s.is_evaluated() || constrained_dominance(&s, &cand) != DominanceOrd::Dominates
                }
            };
            let _ = tx.send(ArchiveMsg::Submit(cand.clone()));
            if accept {
                s = cand;
                population.write()[slot] = s.clone();
            }
        }

        // Lines 13–16: periodic reinitialisation from the archive.
        if cfg.reinit
            && iter.is_multiple_of(cfg.reset_iterations)
            && my_evals < cfg.evals_per_thread
        {
            let (rtx, rrx) = bounded(1);
            if tx.send(ArchiveMsg::Sample(rtx)).is_ok() {
                if let Ok(Some(elite)) = rrx.recv() {
                    s = elite;
                    population.write()[slot] = s.clone();
                }
            }
            barrier.wait();
        }
    }
    // Final barrier is unnecessary: threads only read the shared
    // population, and stragglers sampling a finished thread's slot is the
    // intended behaviour.
}

impl crate::mls::MlsResult {
    /// Objective vectors of the front.
    pub fn objectives(&self) -> Vec<Vec<f64>> {
        self.front.iter().map(|c| c.objectives.clone()).collect()
    }
}

impl mopt::algorithm::MoAlgorithm for Mls {
    fn name(&self) -> &'static str {
        "AEDB-MLS"
    }

    fn run(&self, problem: &dyn Problem, seed: u64) -> mopt::algorithm::RunResult {
        let r = self.optimize(problem, seed);
        mopt::algorithm::RunResult {
            front: r.front,
            evaluations: r.evaluations,
            elapsed: r.elapsed,
        }
        .sanitize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mopt::dominance::{constrained_dominance, DominanceOrd};
    use mopt::indicators::hypervolume;
    use mopt::problem::test_problems::{ConstrainedSchaffer, Schaffer, Zdt1};

    #[test]
    fn budget_is_exact() {
        let mls = Mls::new(MlsConfig::quick(2, 3, 40));
        let r = mls.optimize(&Schaffer::new(), 1);
        assert_eq!(r.evaluations, 2 * 3 * 40);
        assert_eq!(r.evaluations, mls.config.total_evaluations());
    }

    #[test]
    fn converges_on_schaffer() {
        let mls = Mls::new(MlsConfig::quick(2, 4, 150));
        let r = mls.optimize(&Schaffer::new(), 7);
        assert!(!r.front.is_empty());
        let inside = r
            .front
            .iter()
            .filter(|c| c.params[0] > -1.0 && c.params[0] < 3.0)
            .count();
        assert!(
            inside * 10 >= r.front.len() * 8,
            "{}/{}",
            inside,
            r.front.len()
        );
    }

    #[test]
    fn zdt1_beats_random_search_at_equal_budget() {
        // Fig. 3 accepts *every* feasible move, so AEDB-MLS has no hill
        // climbing pressure beyond the archive (the paper's own results
        // show it losing to the MOEAs on IGD/HV). It must still clearly
        // beat pure random sampling at the same evaluation budget.
        use mopt::archive::AgaArchive;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        // Single-threaded so the outcome is deterministic regardless of
        // scheduler interleaving (multi-thread runs are legitimately
        // non-deterministic and are covered by other tests).
        let problem = Zdt1::new(6);
        let budget = 3200;
        let mls = Mls::new(MlsConfig::quick(1, 1, budget));
        let r = mls.optimize(&problem, 3);
        let hv_mls = hypervolume(&r.objectives(), &[1.1, 1.1]);

        let mut rng = SmallRng::seed_from_u64(3);
        let mut archive = AgaArchive::new(100, 5);
        for _ in 0..budget {
            let c = problem.make_candidate(uniform_init(problem.bounds(), &mut rng));
            archive.try_insert(c);
        }
        let rand_front: Vec<Vec<f64>> = archive
            .members()
            .iter()
            .map(|c| c.objectives.clone())
            .collect();
        let hv_rand = hypervolume(&rand_front, &[1.1, 1.1]);
        assert!(hv_mls > hv_rand, "mls {hv_mls} vs random {hv_rand}");
        assert!(hv_mls > 0.1, "hv = {hv_mls}");
    }

    #[test]
    fn feasible_only_acceptance() {
        let mls = Mls::new(MlsConfig::quick(2, 2, 200));
        let r = mls.optimize(&ConstrainedSchaffer::new(), 11);
        // the archive may hold an infeasible seed only if nothing feasible
        // was ever found — impossible here
        assert!(r.front.iter().all(|c| c.is_feasible()));
    }

    #[test]
    fn front_is_mutually_nondominated() {
        let mls = Mls::new(MlsConfig::quick(1, 2, 150));
        let r = mls.optimize(&Schaffer::new(), 23);
        for i in 0..r.front.len() {
            for j in 0..r.front.len() {
                if i != j {
                    assert_ne!(
                        constrained_dominance(&r.front[j], &r.front[i]),
                        DominanceOrd::Dominates
                    );
                }
            }
        }
    }

    #[test]
    fn single_thread_is_deterministic() {
        let mls = Mls::new(MlsConfig::quick(1, 1, 120));
        let p = Schaffer::new();
        let a = mls.optimize(&p, 99);
        let b = mls.optimize(&p, 99);
        assert_eq!(
            a.front
                .iter()
                .map(|c| c.objectives.clone())
                .collect::<Vec<_>>(),
            b.front
                .iter()
                .map(|c| c.objectives.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn archive_capacity_respected() {
        let mut cfg = MlsConfig::quick(2, 2, 300);
        cfg.archive_capacity = 10;
        let mls = Mls::new(cfg);
        let r = mls.optimize(&Zdt1::new(4), 5);
        assert!(r.front.len() <= 10);
    }

    #[test]
    fn paper_config_totals_24000() {
        assert_eq!(MlsConfig::paper().total_evaluations(), 24_000);
    }

    #[test]
    fn custom_criteria_respected() {
        // restrict moves to parameter 0 only: parameter 1 stays at its
        // initial random value forever (reset draws come from the archive,
        // whose members also never moved in param 1 beyond initial values)
        let cfg = MlsConfig {
            criteria: CriteriaChoice::Custom(SearchCriteria::new(vec![vec![0]])),
            ..MlsConfig::quick(1, 1, 50)
        };
        let mls = Mls::new(cfg);
        let r = mls.optimize(&Zdt1::new(2), 31);
        assert!(!r.front.is_empty());
    }

    #[test]
    fn nondominated_acceptance_still_converges() {
        let cfg = MlsConfig {
            acceptance: AcceptanceRule::NonDominated,
            ..MlsConfig::quick(1, 2, 200)
        };
        let mls = Mls::new(cfg);
        let r = mls.optimize(&Schaffer::new(), 13);
        assert!(!r.front.is_empty());
        assert_eq!(r.evaluations, 400);
        let inside = r
            .front
            .iter()
            .filter(|c| c.params[0] > -1.0 && c.params[0] < 3.0)
            .count();
        assert!(
            inside * 10 >= r.front.len() * 8,
            "{}/{}",
            inside,
            r.front.len()
        );
    }

    #[test]
    fn reinit_disabled_runs_to_budget() {
        let cfg = MlsConfig {
            reinit: false,
            ..MlsConfig::quick(2, 2, 120)
        };
        let mls = Mls::new(cfg);
        let r = mls.optimize(&Zdt1::new(4), 17);
        assert_eq!(r.evaluations, 2 * 2 * 120);
        assert!(!r.front.is_empty());
    }

    #[test]
    fn crowding_archive_variant_bounded_and_nondominated() {
        let cfg = MlsConfig {
            archive_kind: ArchiveKind::Crowding,
            archive_capacity: 12,
            ..MlsConfig::quick(1, 2, 200)
        };
        let mls = Mls::new(cfg);
        let r = mls.optimize(&Zdt1::new(4), 19);
        assert!(r.front.len() <= 12);
        for i in 0..r.front.len() {
            for j in 0..r.front.len() {
                if i != j {
                    assert_ne!(
                        constrained_dominance(&r.front[j], &r.front[i]),
                        DominanceOrd::Dominates
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "criteria reference parameter")]
    fn criteria_arity_checked() {
        let cfg = MlsConfig {
            criteria: CriteriaChoice::Aedb,
            ..MlsConfig::quick(1, 1, 10)
        };
        let mls = Mls::new(cfg);
        let _ = mls.optimize(&Schaffer::new(), 1); // Schaffer has 1 param
    }
}
