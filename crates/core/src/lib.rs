//! # aedb-mls — the parallel multi-objective local search (the paper's
//! contribution)
//!
//! AEDB-MLS (§IV) is a **multi-start population-based local search**:
//!
//! * `P` distributed populations × `T` threads per population; every
//!   thread runs the iterative local-search procedure of Fig. 3 on its own
//!   current solution,
//! * a move perturbs the solution with the **BLX-α step of Eq. 2**, scaled
//!   by the distance to a random *reference* solution `t` drawn from the
//!   same population (shared memory),
//! * which parameters are perturbed is decided by one of three **search
//!   criteria** distilled from the FAST99 sensitivity analysis (§IV-B),
//! * every feasible perturbed solution replaces the current one and is
//!   offered to a **distributed external archive** maintained with
//!   Adaptive Grid Archiving (message passing),
//! * every `reset_iterations` iterations the population is thrown away and
//!   re-seeded with random archive members (restart + collaboration),
//! * each thread stops after `evals_per_thread` evaluations — the paper
//!   runs 8 populations × 12 threads × 250 evaluations = 24 000.
//!
//! The crate mirrors the paper's *hybrid parallel model*: crossbeam
//! channels connect workers to the archive manager (the message-passing
//! tier that an MPI cluster provided in the original), while threads of
//! one population share their population vector behind a
//! `parking_lot::RwLock` (the shared-memory tier).

pub mod criteria;
pub mod hybrid;
pub mod mls;

pub use criteria::SearchCriteria;
pub use hybrid::{CellDeMls, CellDeMlsConfig};
pub use mls::{CriteriaChoice, Mls, MlsConfig, MlsResult};
