//! Search criteria — §IV-B of the paper.
//!
//! The FAST99 sensitivity analysis (§III-B, Table I) showed which
//! parameters drive which objectives; the local-search operator exploits
//! that by perturbing only a targeted subset per move:
//!
//! 1. **energy / forwardings** → `border_threshold`, `neighbors_threshold`,
//! 2. **coverage** → `neighbors_threshold`,
//! 3. **broadcast-time constraint** → `min_delay`, `max_delay`.
//!
//! Each iteration one criterion is picked uniformly at random. The type is
//! generic over parameter indices so AEDB-MLS can serve as a local-search
//! component for any problem (the paper positions it as reusable inside
//! other metaheuristics); [`SearchCriteria::aedb`] encodes the paper's
//! groups for the 5-parameter AEDB decision vector
//! `[min_delay, max_delay, border, margin, neighbors]`.

use rand::Rng;

/// The set of parameter groups the local search can perturb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchCriteria {
    groups: Vec<Vec<usize>>,
}

impl SearchCriteria {
    /// Builds criteria from explicit parameter-index groups.
    ///
    /// # Panics
    /// Panics if `groups` is empty or any group is empty.
    pub fn new(groups: Vec<Vec<usize>>) -> Self {
        assert!(!groups.is_empty(), "need at least one search criterion");
        assert!(
            groups.iter().all(|g| !g.is_empty()),
            "criteria groups must be non-empty"
        );
        Self { groups }
    }

    /// The paper's three AEDB criteria (§IV-B).
    pub fn aedb() -> Self {
        Self::new(vec![
            vec![2, 4], // energy & forwardings: border + neighbors thresholds
            vec![4],    // coverage: neighbors threshold
            vec![0, 1], // broadcast-time constraint: min/max delay
        ])
    }

    /// A single all-parameters criterion for generic problems with `n`
    /// decision variables.
    pub fn all_params(n: usize) -> Self {
        assert!(n > 0);
        Self::new(vec![(0..n).collect()])
    }

    /// Number of criteria.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no criteria (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The parameter indices of criterion `i`.
    pub fn group(&self, i: usize) -> &[usize] {
        &self.groups[i]
    }

    /// Picks a criterion uniformly at random and returns its indices.
    pub fn pick<R: Rng>(&self, rng: &mut R) -> &[usize] {
        &self.groups[rng.gen_range(0..self.groups.len())]
    }

    /// Largest parameter index referenced (for arity checks).
    pub fn max_param_index(&self) -> usize {
        self.groups.iter().flatten().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn aedb_criteria_match_section_iv_b() {
        let c = SearchCriteria::aedb();
        assert_eq!(c.len(), 3);
        assert_eq!(c.group(0), &[2, 4]);
        assert_eq!(c.group(1), &[4]);
        assert_eq!(c.group(2), &[0, 1]);
        assert_eq!(c.max_param_index(), 4);
    }

    #[test]
    fn all_params_single_group() {
        let c = SearchCriteria::all_params(3);
        assert_eq!(c.len(), 1);
        assert_eq!(c.group(0), &[0, 1, 2]);
    }

    #[test]
    fn pick_covers_all_groups() {
        let c = SearchCriteria::aedb();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let g = c.pick(&mut rng);
            match g {
                [2, 4] => seen[0] = true,
                [4] => seen[1] = true,
                [0, 1] => seen[2] = true,
                other => panic!("unexpected group {other:?}"),
            }
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_criteria_panic() {
        let _ = SearchCriteria::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_group_panics() {
        let _ = SearchCriteria::new(vec![vec![0], vec![]]);
    }
}
