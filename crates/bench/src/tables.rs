//! Minimal aligned-ASCII table printing for the experiment binaries.

/// A simple text table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let sep: String = width
            .iter()
            .map(|w| format!("+{}", "-".repeat(w + 2)))
            .collect::<String>()
            + "+\n";
        out.push_str(&sep);
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                let pad = width[i] - c.chars().count();
                line.push_str(&format!("| {}{} ", c, " ".repeat(pad)));
            }
            line.push_str("|\n");
            line
        };
        out.push_str(&fmt_row(&self.header));
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out.push_str(&sep);
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with `p` decimals.
pub fn f(v: f64, p: usize) -> String {
    if v.is_finite() {
        format!("{v:.p$}")
    } else {
        "∞".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["x", "1.5"]);
        t.row(vec!["longer-name", "2"]);
        let s = t.render();
        assert!(s.contains("| name        | value |"), "{s}");
        assert!(s.contains("| longer-name | 2     |"), "{s}");
        // every line same width
        let widths: Vec<usize> = s.lines().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{widths:?}");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        let s = t.render();
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(f64::INFINITY, 2), "∞");
    }
}
