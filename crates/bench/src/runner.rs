//! Runs the three algorithms under the paper's protocol (N independent
//! seeded repetitions per density) at a configurable scale.
//!
//! Parallelism lives at the **repetition** level (the ROADMAP's "shard
//! whole repetitions/densities" item): every (density × algorithm ×
//! repetition) job is an independent unit fanned over the thread pool,
//! and the per-density problem is built with
//! [`AedbProblem::with_parallel_batches`]`(false)` so the batched
//! evaluator inside each repetition does not multiply the outer
//! parallelism into oversubscription. Seeds are per-repetition, so the
//! sharded schedule is bit-identical to the historical sequential loop.

use crate::scale::ExperimentScale;
use aedb::problem::AedbProblem;
use aedb::scenario::{Density, Scenario};
use mopt::algorithm::{MoAlgorithm, RunResult};
use mopt::problem::Problem;
use rayon::prelude::*;

// The campaign vocabulary — which algorithm, instantiated how, seeded how
// — moved to `serve::campaign` so the resident service and this harness
// share one definition (a campaign submitted through `SimService` is
// bit-identical to the harness rows by construction). Re-exported here
// because the experiment binaries historically import it from `runner`.
pub use serve::campaign::{rep_seed, AlgorithmKind};

/// Instantiates an algorithm scaled to the experiment budget.
///
/// Delegates to [`serve::campaign::algorithm_for`] via
/// [`ExperimentScale::campaign_budget`]:
///
/// * MOEAs receive `scale.evals` evaluations (paper: 10 000),
/// * AEDB-MLS receives `scale.mls_evals()` = 2.4× that (paper: 24 000,
///   §VI: "it performs 2.4 times more evaluations"), split over the
///   paper's 8 × 12 thread topology at `--paper` scale and a 2 × 2
///   topology otherwise.
pub fn algorithms_for(scale: &ExperimentScale, kind: AlgorithmKind) -> Box<dyn MoAlgorithm> {
    serve::campaign::algorithm_for(&scale.campaign_budget(), kind)
}

/// Runs `scale.reps` seeded repetitions of `kind` on `problem`, sharding
/// whole repetitions across the thread pool. When `problem` parallelises
/// its own batches, prefer handing it
/// [`AedbProblem::with_parallel_batches`]`(false)` so only one layer owns
/// the pool.
pub fn run_algorithm(
    scale: &ExperimentScale,
    kind: AlgorithmKind,
    problem: &dyn Problem,
) -> Vec<RunResult> {
    (0..scale.reps)
        .into_par_iter()
        .map(|rep| algorithms_for(scale, kind).run(problem, rep_seed(rep)))
        .collect()
}

/// All repetitions of all algorithms for one density.
pub struct DensityResults {
    /// The density simulated.
    pub density: Density,
    /// Per algorithm: the repetition results.
    pub runs: Vec<(AlgorithmKind, Vec<RunResult>)>,
}

impl DensityResults {
    /// Runs the full per-density protocol: every (algorithm × repetition)
    /// job fans out over the thread pool at once.
    pub fn collect(scale: &ExperimentScale, density: Density) -> Self {
        Self::collect_all(scale, &[density])
            .pop()
            .expect("one density in, one result out")
    }

    /// Runs the protocol for several densities in one parallel scope —
    /// the widest shard: (density × algorithm × repetition) jobs all
    /// compete for the pool, so a slow density cannot serialise the rest.
    pub fn collect_all(scale: &ExperimentScale, densities: &[Density]) -> Vec<Self> {
        // One problem per density, shared by its jobs; inner batch
        // parallelism off — the repetition jobs already saturate the pool.
        let problems: Vec<AedbProblem> = densities
            .iter()
            .map(|&d| {
                AedbProblem::paper(Scenario::quick(d, scale.networks)).with_parallel_batches(false)
            })
            .collect();
        let jobs: Vec<(usize, AlgorithmKind, usize)> = (0..densities.len())
            .flat_map(|di| {
                AlgorithmKind::ALL
                    .iter()
                    .flat_map(move |&kind| (0..scale.reps).map(move |rep| (di, kind, rep)))
            })
            .collect();
        let problems_ref = &problems;
        let results: Vec<RunResult> = jobs
            .into_par_iter()
            .map(|(di, kind, rep)| {
                algorithms_for(scale, kind).run(&problems_ref[di], rep_seed(rep))
            })
            .collect();
        // Regroup the flat results: jobs were emitted density-major,
        // algorithm-major, repetition-minor.
        let mut it = results.into_iter();
        densities
            .iter()
            .map(|&density| {
                let runs = AlgorithmKind::ALL
                    .iter()
                    .map(|&kind| (kind, it.by_ref().take(scale.reps).collect()))
                    .collect();
                DensityResults { density, runs }
            })
            .collect()
    }

    /// The repetition results of one algorithm.
    pub fn of(&self, kind: AlgorithmKind) -> &[RunResult] {
        &self
            .runs
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("algorithm missing")
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mopt::problem::test_problems::Zdt1;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale {
            reps: 2,
            networks: 2,
            evals: 60,
            ..ExperimentScale::default()
        }
    }

    #[test]
    fn algorithms_scale_budgets() {
        let scale = tiny_scale();
        // 5 variables so the AEDB-specific search criteria are valid
        for kind in AlgorithmKind::ALL {
            let alg = algorithms_for(&scale, kind);
            let r = alg.run(&Zdt1::new(5), 5);
            let budget = if kind == AlgorithmKind::Mls {
                scale.mls_evals()
            } else {
                scale.evals
            };
            assert!(
                r.evaluations <= budget + 4,
                "{}: {} evals vs budget {budget}",
                kind.name(),
                r.evaluations
            );
        }
    }

    #[test]
    fn mls_gets_2_4x_budget() {
        let scale = tiny_scale();
        let mls = algorithms_for(&scale, AlgorithmKind::Mls);
        let r = mls.run(&Zdt1::new(5), 1);
        assert_eq!(r.evaluations, scale.mls_evals() / 4 * 4);
    }

    #[test]
    fn density_results_shape() {
        let scale = tiny_scale();
        let d = DensityResults::collect(&scale, Density::D100);
        assert_eq!(d.runs.len(), 3);
        for (kind, runs) in &d.runs {
            assert_eq!(runs.len(), 2, "{}", kind.name());
            for r in runs {
                assert!(
                    !r.front.is_empty(),
                    "{} produced an empty front",
                    kind.name()
                );
            }
        }
        assert_eq!(d.of(AlgorithmKind::Mls).len(), 2);
    }

    #[test]
    fn sharded_reps_match_sequential_schedule() {
        // Sharding whole repetitions over the pool must reproduce the
        // historical sequential loop exactly: same per-rep seeds, fresh
        // algorithm instance per run.
        let scale = tiny_scale();
        let problem = Zdt1::new(5);
        // MLS is excluded: its *internal* 2x2 thread topology makes even
        // two identical sequential runs diverge (pre-existing behaviour),
        // so there is no sequential reference to compare against.
        for kind in [AlgorithmKind::CellDe, AlgorithmKind::Nsga2] {
            let sharded = run_algorithm(&scale, kind, &problem);
            let sequential: Vec<_> = (0..scale.reps)
                .map(|rep| algorithms_for(&scale, kind).run(&problem, 0xBEEF + 97 * rep as u64))
                .collect();
            assert_eq!(sharded.len(), sequential.len());
            for (a, b) in sharded.iter().zip(&sequential) {
                let objs = |r: &RunResult| {
                    r.front
                        .iter()
                        .map(|c| c.objectives.clone())
                        .collect::<Vec<_>>()
                };
                assert_eq!(objs(a), objs(b), "{} shard diverged", kind.name());
                assert_eq!(a.evaluations, b.evaluations);
            }
        }
    }

    #[test]
    fn collect_all_groups_by_density() {
        let scale = tiny_scale();
        let all = DensityResults::collect_all(&scale, &[Density::D100, Density::D200]);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].density, Density::D100);
        assert_eq!(all[1].density, Density::D200);
        for d in &all {
            assert_eq!(d.runs.len(), 3);
            for (kind, runs) in &d.runs {
                assert_eq!(runs.len(), scale.reps, "{}", kind.name());
            }
        }
    }

    #[test]
    fn names_stable() {
        assert_eq!(AlgorithmKind::CellDe.name(), "CellDE");
        assert_eq!(AlgorithmKind::Nsga2.name(), "NSGAII");
        assert_eq!(AlgorithmKind::Mls.name(), "AEDB-MLS");
    }
}
