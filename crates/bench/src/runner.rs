//! Runs the three algorithms under the paper's protocol (N independent
//! seeded repetitions per density) at a configurable scale.

use crate::scale::ExperimentScale;
use aedb::problem::AedbProblem;
use aedb::scenario::{Density, Scenario};
use aedb_mls::mls::{CriteriaChoice, Mls, MlsConfig};
use moea::cellde::{CellDe, CellDeConfig};
use moea::nsga2::{Nsga2, Nsga2Config};
use mopt::algorithm::{MoAlgorithm, RunResult};
use mopt::problem::Problem;

/// The three compared algorithms, in the paper's table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// CellDE (Durillo et al. 2008).
    CellDe,
    /// NSGA-II (Deb et al. 2002).
    Nsga2,
    /// AEDB-MLS — the paper's contribution.
    Mls,
}

impl AlgorithmKind {
    /// All three, in Table IV's row/column order.
    pub const ALL: [AlgorithmKind; 3] = [
        AlgorithmKind::CellDe,
        AlgorithmKind::Nsga2,
        AlgorithmKind::Mls,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::CellDe => "CellDE",
            AlgorithmKind::Nsga2 => "NSGAII",
            AlgorithmKind::Mls => "AEDB-MLS",
        }
    }
}

/// Instantiates an algorithm scaled to the experiment budget.
///
/// * MOEAs receive `scale.evals` evaluations (paper: 10 000),
/// * AEDB-MLS receives `scale.mls_evals()` = 2.4× that (paper: 24 000,
///   §VI: "it performs 2.4 times more evaluations"), split over the
///   paper's 8 × 12 thread topology at `--paper` scale and a 2 × 2
///   topology otherwise.
pub fn algorithms_for(scale: &ExperimentScale, kind: AlgorithmKind) -> Box<dyn MoAlgorithm> {
    match kind {
        AlgorithmKind::Nsga2 => {
            let population = if scale.paper {
                100
            } else {
                (scale.evals / 10).clamp(8, 40) as usize
            };
            Box::new(Nsga2::new(Nsga2Config {
                population,
                max_evaluations: scale.evals,
                ..Nsga2Config::default()
            }))
        }
        AlgorithmKind::CellDe => {
            let side = if scale.paper { 10 } else { 5 };
            Box::new(CellDe::new(CellDeConfig {
                grid_side: side,
                max_evaluations: scale.evals,
                ..CellDeConfig::default()
            }))
        }
        AlgorithmKind::Mls => {
            let cfg = if scale.paper {
                MlsConfig {
                    criteria: CriteriaChoice::Aedb,
                    ..MlsConfig::paper()
                }
            } else {
                let per_thread = (scale.mls_evals() / 4).max(10);
                MlsConfig {
                    criteria: CriteriaChoice::Aedb,
                    ..MlsConfig::quick(2, 2, per_thread)
                }
            };
            Box::new(Mls::new(cfg))
        }
    }
}

/// Runs `scale.reps` seeded repetitions of `kind` on `problem`.
pub fn run_algorithm(
    scale: &ExperimentScale,
    kind: AlgorithmKind,
    problem: &dyn Problem,
) -> Vec<RunResult> {
    let alg = algorithms_for(scale, kind);
    (0..scale.reps)
        .map(|rep| alg.run(problem, 0xBEEF + 97 * rep as u64))
        .collect()
}

/// All repetitions of all algorithms for one density.
pub struct DensityResults {
    /// The density simulated.
    pub density: Density,
    /// Per algorithm: the repetition results.
    pub runs: Vec<(AlgorithmKind, Vec<RunResult>)>,
}

impl DensityResults {
    /// Runs the full per-density protocol.
    pub fn collect(scale: &ExperimentScale, density: Density) -> Self {
        let problem = AedbProblem::paper(Scenario::quick(density, scale.networks));
        let runs = AlgorithmKind::ALL
            .iter()
            .map(|&kind| (kind, run_algorithm(scale, kind, &problem)))
            .collect();
        Self { density, runs }
    }

    /// The repetition results of one algorithm.
    pub fn of(&self, kind: AlgorithmKind) -> &[RunResult] {
        &self
            .runs
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("algorithm missing")
            .1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mopt::problem::test_problems::Zdt1;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale {
            reps: 2,
            networks: 2,
            evals: 60,
            ..ExperimentScale::default()
        }
    }

    #[test]
    fn algorithms_scale_budgets() {
        let scale = tiny_scale();
        // 5 variables so the AEDB-specific search criteria are valid
        for kind in AlgorithmKind::ALL {
            let alg = algorithms_for(&scale, kind);
            let r = alg.run(&Zdt1::new(5), 5);
            let budget = if kind == AlgorithmKind::Mls {
                scale.mls_evals()
            } else {
                scale.evals
            };
            assert!(
                r.evaluations <= budget + 4,
                "{}: {} evals vs budget {budget}",
                kind.name(),
                r.evaluations
            );
        }
    }

    #[test]
    fn mls_gets_2_4x_budget() {
        let scale = tiny_scale();
        let mls = algorithms_for(&scale, AlgorithmKind::Mls);
        let r = mls.run(&Zdt1::new(5), 1);
        assert_eq!(r.evaluations, scale.mls_evals() / 4 * 4);
    }

    #[test]
    fn density_results_shape() {
        let scale = tiny_scale();
        let d = DensityResults::collect(&scale, Density::D100);
        assert_eq!(d.runs.len(), 3);
        for (kind, runs) in &d.runs {
            assert_eq!(runs.len(), 2, "{}", kind.name());
            for r in runs {
                assert!(
                    !r.front.is_empty(),
                    "{} produced an empty front",
                    kind.name()
                );
            }
        }
        assert_eq!(d.of(AlgorithmKind::Mls).len(), 2);
    }

    #[test]
    fn names_stable() {
        assert_eq!(AlgorithmKind::CellDe.name(), "CellDE");
        assert_eq!(AlgorithmKind::Nsga2.name(), "NSGAII");
        assert_eq!(AlgorithmKind::Mls.name(), "AEDB-MLS");
    }
}
