//! Experiment scaling: paper-faithful or reduced budgets, parsed from CLI
//! flags shared by all `exp_*` binaries.

use aedb::scenario::Density;

/// Scale knobs of an experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Independent repetitions per algorithm (paper: 30).
    pub reps: usize,
    /// Fixed evaluation networks per fitness computation (paper: 10).
    pub networks: usize,
    /// Evaluation budget per run for the MOEAs (paper: 10 000; the MLS
    /// budget is 2.4× this, matching §VI's "2.4 times more evaluations").
    pub evals: u64,
    /// Densities to run.
    pub densities: Vec<Density>,
    /// Whether full paper scale was requested.
    pub paper: bool,
    /// FAST99 samples per parameter (sensitivity experiment only).
    pub fast_samples: usize,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self {
            reps: 3,
            networks: 5,
            evals: 240,
            densities: vec![Density::D100],
            paper: false,
            fast_samples: 129,
        }
    }
}

impl ExperimentScale {
    /// The paper's full protocol.
    pub fn paper() -> Self {
        Self {
            reps: 30,
            networks: 10,
            evals: 10_000,
            densities: Density::ALL.to_vec(),
            paper: true,
            fast_samples: 1001,
        }
    }

    /// Parses flags from `std::env::args`:
    /// `--paper`, `--reps N`, `--evals N`, `--networks N`,
    /// `--densities 100,200,300`, `--fast-samples N`.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit iterator of arguments (testable).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut scale = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--paper" => scale = Self::paper(),
                "--reps" => scale.reps = expect_num(&mut it, "--reps") as usize,
                "--evals" => scale.evals = expect_num(&mut it, "--evals"),
                "--networks" => scale.networks = expect_num(&mut it, "--networks") as usize,
                "--fast-samples" => {
                    scale.fast_samples = expect_num(&mut it, "--fast-samples") as usize
                }
                "--densities" => {
                    let v = it.next().unwrap_or_else(|| panic!("--densities needs a value"));
                    scale.densities = v
                        .split(',')
                        .map(|d| {
                            Density::from_per_km2(d.trim().parse().unwrap_or(0))
                                .unwrap_or_else(|| panic!("unknown density {d}"))
                        })
                        .collect();
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --paper | --reps N --evals N --networks N \
                         --densities 100,200,300 --fast-samples N"
                    );
                    std::process::exit(0);
                }
                other => eprintln!("warning: ignoring unknown flag {other}"),
            }
        }
        scale
    }

    /// MLS evaluation budget: 2.4× the MOEA budget, as in the paper
    /// (24 000 vs 10 000).
    pub fn mls_evals(&self) -> u64 {
        (self.evals as f64 * 2.4).round() as u64
    }
}

fn expect_num<I: Iterator<Item = String>>(it: &mut I, flag: &str) -> u64 {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{flag} needs a numeric value"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ExperimentScale {
        ExperimentScale::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick() {
        let s = parse(&[]);
        assert!(!s.paper);
        assert_eq!(s.densities, vec![Density::D100]);
        assert!(s.evals <= 1000);
    }

    #[test]
    fn paper_flag_sets_protocol() {
        let s = parse(&["--paper"]);
        assert!(s.paper);
        assert_eq!(s.reps, 30);
        assert_eq!(s.networks, 10);
        assert_eq!(s.evals, 10_000);
        assert_eq!(s.mls_evals(), 24_000);
        assert_eq!(s.densities.len(), 3);
    }

    #[test]
    fn individual_flags() {
        let s = parse(&["--reps", "7", "--evals", "500", "--densities", "200,300"]);
        assert_eq!(s.reps, 7);
        assert_eq!(s.evals, 500);
        assert_eq!(s.densities, vec![Density::D200, Density::D300]);
    }

    #[test]
    fn mls_budget_ratio() {
        let s = parse(&["--evals", "1000"]);
        assert_eq!(s.mls_evals(), 2400);
    }

    #[test]
    #[should_panic(expected = "numeric")]
    fn bad_number_panics() {
        let _ = parse(&["--reps", "x"]);
    }
}
