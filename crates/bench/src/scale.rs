//! Experiment scaling: paper-faithful or reduced budgets, parsed from CLI
//! flags shared by all `exp_*` binaries — plus the beyond-paper
//! [`DenseScenario`]s (hundreds of nodes) that the simulator's spatial
//! grid makes tractable.
//!
//! # The `bench-scale-v6` artifact schema
//!
//! `exp_scale` writes `BENCH_scale.json` with `"schema": "bench-scale-v6"`
//! so the performance trajectory stays machine-readable across PRs (and so
//! CI can fail on regressions — see `scripts/check_bench_regression.py`).
//! The prose reference — including how the regression gate consumes the
//! calibration workload, `host_parallelism` and the RSS/ceiling semantics
//! — is `docs/BENCH_SCHEMA.md`; the table below is the field list.
//! The artifact is emitted by [`ScaleArtifact`] in this module — the one
//! place the field list lives, so the schema checker
//! (`scripts/check_bench_schema.py`) and the emitter cannot silently
//! drift apart. A top-level `calibration` object records the wall time of
//! a fixed reference workload (the 500@200 preset, full protocol,
//! min-of-3) measured in the same job, which turns per-row absolute wall
//! times into runner-speed-independent ratios the regression gate can
//! hold ceilings against, and a top-level `host_parallelism` records
//! `std::thread::available_parallelism()` of the measuring host so
//! shard-speedup floors can be gated on runners that actually have the
//! cores (`min_host_parallelism` in `scripts/perf_floors.json`). Per
//! scenario row ([`ScaleRow`]):
//!
//! | field | meaning |
//! |---|---|
//! | `spec` | the scenario in the canonical shared grammar ([`DenseScenario::spec_string`]) — also the row key the perf gate matches floors against |
//! | `nodes`, `per_km2`, `shadowing_sigma_db` | the [`DenseScenario`] (nodes = total across groups) |
//! | `beacons_per_sec`, `coverage` | workload sanity numbers (identical across modes, asserted in-run) |
//! | `incremental_s`, `rebuild_s`, `naive_s` | end-to-end wall time per delivery mode (`naive_s` is `null` above the naive cap) |
//! | `shards`, `sharded_s` | **new in v6**: shard count and end-to-end wall time of the space-sharded incremental run (`Simulator::set_delivery_shards`); both `null` when sharding was not measured, both present otherwise |
//! | `incremental_filter_s`, `incremental_outcome_s` | candidate-filter vs receive-outcome split of the incremental query (`Simulator::query_profile`) |
//! | `incremental_interference_s` | interference+capture share of `incremental_outcome_s` (the phase the spatialised active window optimises; always ≤ the outcome time) |
//! | `rebuild_filter_s`, `rebuild_outcome_s` | the same split for the horizon-rebuild baseline, whose verbatim single-loop shape has no finer split |
//! | `incremental_bucket_ops`, `rebuild_bucket_ops` | grid-maintenance bucket membership writes per mode |
//! | `sweep_cells_visited`, `sweep_cells_culled` | **new in v5**: non-empty cells the incremental run's batched sweep reached, and how many the event horizon skipped whole ([`manet::SweepStats`]; culled ≤ visited) |
//! | `sweep_batched_candidates`, `sweep_scalar_candidates` | **new in v5**: candidates evaluated by full-width chunk kernels vs the scalar fallback (mixed-kind chunks + per-query tails) |
//! | `peak_rss_bytes` | process peak RSS high-water mark when the row finished ([`peak_rss_bytes`]) |
//! | `speedup_rebuild_over_incremental`, `speedup_naive_over_incremental`, `speedup_sharded_over_incremental` | the headline ratios CI's perf gate checks against committed floors — derived by the emitter from the wall-time columns, never hand-set (`speedup_sharded_over_incremental` = `incremental_s / sharded_s`, `null` when unsharded) |
//!
//! The trailing `batched_eval` object records one batched AEDB evaluation
//! posed directly on the first dense scenario. v5 → v6 added the
//! `shards`/`sharded_s` columns, the derived sharded speedup and the
//! top-level `host_parallelism`; v4 → v5 added the four
//! sweep counters and moved emission into [`ScaleArtifact`]; v3 → v4
//! added `spec`, the `calibration` object and the absolute-ceiling gate
//! contract; v2 → v3 added `incremental_interference_s` and the
//! regression-gate (speedup floor) contract; v1 → v2 added the
//! filter/outcome split and `peak_rss_bytes`.

use aedb::scenario::Density;
use manet::SweepStats;
use std::fmt::Write as _;

// The dense scenarios now live beside the tuning problem (so `AedbProblem`
// itself can be posed at 10⁴-node scale); re-exported here because the
// experiment binaries and benches address them through `bench::scale`.
pub use aedb::scenario::DenseScenario;

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where that interface does not exist.
/// The value is a process-lifetime high-water mark — monotone across
/// scenarios — which is exactly what the scale experiment records per row:
/// "how much memory had this run needed by the time the row finished".
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Schema identifier written by [`ScaleArtifact::to_json`]; bump it here
/// (and in `scripts/check_bench_schema.py`) when the field list changes.
pub const SCALE_SCHEMA: &str = "bench-scale-v6";

/// One scenario row of the scale artifact — the measured columns of the
/// v6 schema (see the module docs for the field table). The speedup
/// columns are *derived* from the wall times at emission, so they cannot
/// disagree with the ratios they summarise.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Canonical scenario spec text (the perf gate's row key).
    pub spec: String,
    /// Total devices across all groups.
    pub nodes: usize,
    /// Devices per km².
    pub per_km2: u32,
    /// Log-normal shadowing σ (dB); 0 = disabled.
    pub shadowing_sigma_db: f64,
    /// Beacon rate of the workload (identical across modes).
    pub beacons_per_sec: f64,
    /// Broadcast coverage (identical across modes, asserted in-run).
    pub coverage: usize,
    /// End-to-end wall time of the incremental delivery mode.
    pub incremental_s: f64,
    /// End-to-end wall time of the horizon-rebuild baseline.
    pub rebuild_s: f64,
    /// End-to-end wall time of the naive O(n²) scan; `None` above the cap.
    pub naive_s: Option<f64>,
    /// Shard count of the space-sharded incremental run; `None` when
    /// sharding was not measured for this row.
    pub shards: Option<usize>,
    /// End-to-end wall time of the sharded incremental run; present
    /// exactly when `shards` is.
    pub sharded_s: Option<f64>,
    /// Candidate-filter share of the incremental query.
    pub incremental_filter_s: f64,
    /// Receive-outcome share of the incremental query.
    pub incremental_outcome_s: f64,
    /// Interference+capture share of `incremental_outcome_s`.
    pub incremental_interference_s: f64,
    /// Candidate-filter share of the rebuild query.
    pub rebuild_filter_s: f64,
    /// Receive-outcome share of the rebuild query.
    pub rebuild_outcome_s: f64,
    /// Grid bucket membership writes, incremental mode.
    pub incremental_bucket_ops: u64,
    /// Grid bucket membership writes, rebuild mode.
    pub rebuild_bucket_ops: u64,
    /// Batched-sweep work counters from the incremental run.
    pub sweep: SweepStats,
    /// Process peak RSS when the row finished.
    pub peak_rss_bytes: Option<u64>,
}

/// A batched AEDB evaluation posed directly on a dense scenario.
#[derive(Debug, Clone, Copy)]
pub struct BatchedEval {
    /// Nodes of the dense scenario evaluated.
    pub nodes: usize,
    /// Candidate configurations in the batch.
    pub candidates: usize,
    /// Fixed evaluation networks per candidate.
    pub networks: usize,
    /// Wall time of the whole batch.
    pub seconds: f64,
}

/// The whole `BENCH_scale.json` artifact; [`write`](Self::write) is the
/// single emission path shared by `exp_scale` and the schema docs above.
#[derive(Debug, Clone)]
pub struct ScaleArtifact {
    /// Wall time of the fixed calibration workload (500@200 full
    /// protocol, min-of-3) measured in the same job.
    pub calibration_seconds: f64,
    /// `std::thread::available_parallelism()` of the measuring host —
    /// the gate key for shard-speedup floors (`min_host_parallelism`).
    pub host_parallelism: usize,
    /// One row per dense scenario, in run order.
    pub rows: Vec<ScaleRow>,
    /// The trailing batched-evaluation record.
    pub batched_eval: BatchedEval,
}

/// JSON number: finite values with 6 decimals, else `null` (matches what
/// the schema checker accepts for nullable columns).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

fn json_opt(v: Option<f64>) -> String {
    v.map_or("null".into(), json_num)
}

impl ScaleArtifact {
    /// Renders the artifact as the v6 JSON document.
    pub fn to_json(&self) -> String {
        let mut rows = String::new();
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                rows.push_str(",\n");
            }
            let _ = write!(
                rows,
                "    {{\"spec\": \"{}\", \
                 \"nodes\": {}, \"per_km2\": {}, \"shadowing_sigma_db\": {}, \
                 \"beacons_per_sec\": {}, \"coverage\": {},\n     \
                 \"incremental_s\": {}, \"rebuild_s\": {}, \"naive_s\": {},\n     \
                 \"shards\": {}, \"sharded_s\": {},\n     \
                 \"incremental_filter_s\": {}, \"incremental_outcome_s\": {},\n     \
                 \"incremental_interference_s\": {},\n     \
                 \"rebuild_filter_s\": {}, \"rebuild_outcome_s\": {},\n     \
                 \"incremental_bucket_ops\": {}, \"rebuild_bucket_ops\": {},\n     \
                 \"sweep_cells_visited\": {}, \"sweep_cells_culled\": {},\n     \
                 \"sweep_batched_candidates\": {}, \"sweep_scalar_candidates\": {},\n     \
                 \"peak_rss_bytes\": {},\n     \
                 \"speedup_rebuild_over_incremental\": {}, \
                 \"speedup_naive_over_incremental\": {}, \
                 \"speedup_sharded_over_incremental\": {}}}",
                r.spec,
                r.nodes,
                r.per_km2,
                json_num(r.shadowing_sigma_db),
                json_num(r.beacons_per_sec),
                r.coverage,
                json_num(r.incremental_s),
                json_num(r.rebuild_s),
                json_opt(r.naive_s),
                r.shards.map_or("null".into(), |s| s.to_string()),
                json_opt(r.sharded_s),
                json_num(r.incremental_filter_s),
                json_num(r.incremental_outcome_s),
                json_num(r.incremental_interference_s),
                json_num(r.rebuild_filter_s),
                json_num(r.rebuild_outcome_s),
                r.incremental_bucket_ops,
                r.rebuild_bucket_ops,
                r.sweep.cells_visited,
                r.sweep.cells_culled,
                r.sweep.batched_candidates,
                r.sweep.scalar_candidates,
                r.peak_rss_bytes.map_or("null".into(), |b| b.to_string()),
                json_num(r.rebuild_s / r.incremental_s),
                json_opt(r.naive_s.map(|n| n / r.incremental_s)),
                json_opt(r.sharded_s.map(|s| r.incremental_s / s)),
            );
        }
        let b = &self.batched_eval;
        format!(
            "{{\n  \"schema\": \"{SCALE_SCHEMA}\",\n  \
             \"calibration\": {{\"workload\": \"500@200 full protocol, min of 3\", \
             \"seconds\": {}}},\n  \
             \"host_parallelism\": {},\n  \
             \"scenarios\": [\n{rows}\n  ],\n  \
             \"batched_eval\": {{\"nodes\": {}, \"candidates\": {}, \
             \"networks\": {}, \"seconds\": {}}}\n}}\n",
            json_num(self.calibration_seconds),
            self.host_parallelism,
            b.nodes,
            b.candidates,
            b.networks,
            json_num(b.seconds),
        )
    }

    /// Writes the artifact to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Scale knobs of an experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Independent repetitions per algorithm (paper: 30).
    pub reps: usize,
    /// Fixed evaluation networks per fitness computation (paper: 10).
    pub networks: usize,
    /// Evaluation budget per run for the MOEAs (paper: 10 000; the MLS
    /// budget is 2.4× this, matching §VI's "2.4 times more evaluations").
    pub evals: u64,
    /// Densities to run.
    pub densities: Vec<Density>,
    /// Whether full paper scale was requested.
    pub paper: bool,
    /// FAST99 samples per parameter (sensitivity experiment only).
    pub fast_samples: usize,
    /// Beyond-paper dense scenarios (`--dense nodes@density,...`); the
    /// scale experiments iterate these.
    pub dense: Vec<DenseScenario>,
    /// Delivery shard count for the sharded scale runs (`--shards N`);
    /// `0` means auto — the runner picks from the host's available
    /// parallelism.
    pub shards: usize,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self {
            reps: 3,
            networks: 5,
            evals: 240,
            densities: vec![Density::D100],
            paper: false,
            fast_samples: 129,
            dense: vec![DenseScenario::PRESETS[0].clone()],
            shards: 0,
        }
    }
}

impl ExperimentScale {
    /// The paper's full protocol.
    pub fn paper() -> Self {
        Self {
            reps: 30,
            networks: 10,
            evals: 10_000,
            densities: Density::ALL.to_vec(),
            paper: true,
            fast_samples: 1001,
            dense: DenseScenario::PRESETS.to_vec(),
            shards: 0,
        }
    }

    /// Parses flags from `std::env::args`:
    /// `--paper`, `--reps N`, `--evals N`, `--networks N`,
    /// `--densities 100,200,300`, `--fast-samples N`, `--shards N`.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit iterator of arguments (testable).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut scale = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--paper" => scale = Self::paper(),
                "--reps" => scale.reps = expect_num(&mut it, "--reps") as usize,
                "--evals" => scale.evals = expect_num(&mut it, "--evals"),
                "--networks" => scale.networks = expect_num(&mut it, "--networks") as usize,
                "--fast-samples" => {
                    scale.fast_samples = expect_num(&mut it, "--fast-samples") as usize
                }
                "--shards" => scale.shards = expect_num(&mut it, "--shards") as usize,
                "--densities" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| panic!("--densities needs a value"));
                    scale.densities = v
                        .split(',')
                        .map(|d| {
                            Density::from_per_km2(d.trim().parse().unwrap_or(0))
                                .unwrap_or_else(|| panic!("unknown density {d}"))
                        })
                        .collect();
                }
                "--dense" => {
                    let v = it.next().unwrap_or_else(|| panic!("--dense needs a value"));
                    scale.dense = v.split(',').map(parse_dense_spec).collect();
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --paper | --reps N --evals N --networks N \
                         --densities 100,200,300 \
                         --dense 500@200,2000@200@4,500@200+50:still:10dbm \
                         (nodes@density[@shadowing_db][+n[:still|:walkI|:rwpP][:POWERdbm]...]) \
                         --fast-samples N --shards N (0 = auto from host parallelism)"
                    );
                    std::process::exit(0);
                }
                other => eprintln!("warning: ignoring unknown flag {other}"),
            }
        }
        scale
    }

    /// MLS evaluation budget: 2.4× the MOEA budget, as in the paper
    /// (24 000 vs 10 000).
    pub fn mls_evals(&self) -> u64 {
        (self.evals as f64 * 2.4).round() as u64
    }

    /// The campaign budget these scale knobs denote — the bridge into
    /// the resident service's vocabulary
    /// ([`serve::campaign::CampaignBudget`]); `algorithms_for` routes
    /// through this, so harness rows and service campaigns are
    /// constructed identically.
    pub fn campaign_budget(&self) -> serve::campaign::CampaignBudget {
        serve::campaign::CampaignBudget {
            paper: self.paper,
            evals: self.evals,
            reps: self.reps,
        }
    }
}

fn expect_num<I: Iterator<Item = String>>(it: &mut I, flag: &str) -> u64 {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{flag} needs a numeric value"))
}

/// Parses one `--dense` component through the **shared scenario grammar**
/// ([`DenseScenario::parse_spec`] in `manet::world`): the historical
/// `nodes@density[@sigma]` form (e.g. `2000@200@4` = 2000 nodes at
/// 200 dev/km² under 4 dB log-normal shadowing), optionally extended with
/// heterogeneous `+n[:still|:walkI|:rwpP][:POWERdbm]` groups (e.g.
/// `500@200+50:still:10dbm`). Malformed specs — wrong component counts (a
/// trailing `@` included), empty or non-numeric fields, unknown modifiers
/// — are rejected with a usage error instead of being silently
/// part-parsed; the strictness (and its wording) lives in the one shared
/// parser, this wrapper only keeps the bench usage message.
fn parse_dense_spec(spec: &str) -> DenseScenario {
    DenseScenario::parse_spec(spec).unwrap_or_else(|e| {
        panic!(
            "--dense wants nodes@density[@sigma][+group...], got {:?}: {}",
            e.spec, e.detail
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ExperimentScale {
        ExperimentScale::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick() {
        let s = parse(&[]);
        assert!(!s.paper);
        assert_eq!(s.densities, vec![Density::D100]);
        assert!(s.evals <= 1000);
    }

    #[test]
    fn paper_flag_sets_protocol() {
        let s = parse(&["--paper"]);
        assert!(s.paper);
        assert_eq!(s.reps, 30);
        assert_eq!(s.networks, 10);
        assert_eq!(s.evals, 10_000);
        assert_eq!(s.mls_evals(), 24_000);
        assert_eq!(s.densities.len(), 3);
    }

    #[test]
    fn individual_flags() {
        let s = parse(&["--reps", "7", "--evals", "500", "--densities", "200,300"]);
        assert_eq!(s.reps, 7);
        assert_eq!(s.evals, 500);
        assert_eq!(s.densities, vec![Density::D200, Density::D300]);
    }

    #[test]
    fn shards_flag_defaults_to_auto() {
        assert_eq!(parse(&[]).shards, 0, "0 = auto-pick from host cores");
        assert_eq!(parse(&["--paper"]).shards, 0);
        assert_eq!(parse(&["--shards", "2"]).shards, 2);
    }

    #[test]
    fn mls_budget_ratio() {
        let s = parse(&["--evals", "1000"]);
        assert_eq!(s.mls_evals(), 2400);
    }

    #[test]
    #[should_panic(expected = "numeric")]
    fn bad_number_panics() {
        let _ = parse(&["--reps", "x"]);
    }

    #[test]
    fn dense_scenarios_hold_density_while_scaling() {
        let d = DenseScenario::new(200, 500);
        let field = d.field();
        // 500 nodes at 200/km² need 2.5 km² => side ≈ 1581 m
        assert!((field.area() - 2.5e6).abs() < 1.0, "area {}", field.area());
        assert!((field.width - 1581.14).abs() < 0.1);
        let c = d.sim_config(0);
        assert_eq!(c.n_nodes, 500);
        assert_eq!(c.radio.default_tx_dbm, 16.02);
        // fixed networks: seeds deterministic and distinct
        assert_eq!(d.sim_config(3).seed, d.sim_config(3).seed);
        assert_ne!(d.sim_config(0).seed, d.sim_config(1).seed);
    }

    #[test]
    fn dense_presets_meet_scale_floor() {
        for p in DenseScenario::PRESETS {
            assert!(p.per_km2 >= 200, "{p}");
            assert!(p.n_nodes >= 500, "{p}");
        }
    }

    #[test]
    fn dense_flag_parses() {
        let s = parse(&["--dense", "600@250, 800@300"]);
        assert_eq!(s.dense.len(), 2);
        assert_eq!(s.dense[0].n_nodes, 600);
        assert_eq!(s.dense[0].per_km2, 250);
        assert_eq!(s.dense[0].shadowing_sigma_db, 0.0);
        assert_eq!(s.dense[1].n_nodes, 800);
        assert_eq!(s.dense[1].per_km2, 300);
    }

    #[test]
    #[should_panic(expected = "expected 2 or 3 @-separated components")]
    fn dense_flag_rejects_trailing_at() {
        // the historical parser silently ignored the empty 4th component
        let _ = parse(&["--dense", "2000@200@4@"]);
    }

    #[test]
    #[should_panic(expected = "expected 2 or 3 @-separated components")]
    fn dense_flag_rejects_extra_components() {
        let _ = parse(&["--dense", "2000@200@4@9"]);
    }

    #[test]
    #[should_panic(expected = "bad density")]
    fn dense_flag_rejects_empty_density() {
        let _ = parse(&["--dense", "2000@"]);
    }

    #[test]
    #[should_panic(expected = "bad node count")]
    fn dense_flag_rejects_non_numeric_nodes() {
        let _ = parse(&["--dense", "many@200"]);
    }

    #[test]
    #[should_panic(expected = "bad shadowing sigma")]
    fn dense_flag_rejects_bad_sigma() {
        let _ = parse(&["--dense", "2000@200@x"]);
    }

    #[test]
    fn dense_flag_parses_heterogeneous_groups() {
        // The bench flag is a thin wrapper over the shared grammar: group
        // syntax flows straight through to heterogeneous DenseScenarios.
        let s = parse(&["--dense", "500@200+50:still:10dbm"]);
        assert_eq!(s.dense.len(), 1);
        let d = &s.dense[0];
        assert_eq!(d.n_nodes, 550);
        assert_eq!(d.groups.len(), 2);
        assert_eq!(d.groups[1].tx_power_dbm, Some(10.0));
        assert_eq!(d.spec_string(), "500@200+50:still:10dbm");
    }

    #[test]
    #[should_panic(expected = "unknown group modifier")]
    fn dense_flag_rejects_unknown_modifier() {
        let _ = parse(&["--dense", "500@200+50:hover"]);
    }

    #[test]
    fn dense_flag_parses_shadowing() {
        let s = parse(&["--dense", "2000@200@4, 10000@400"]);
        assert_eq!(s.dense.len(), 2);
        assert_eq!(s.dense[0].shadowing_sigma_db, 4.0);
        assert_eq!(s.dense[0].n_nodes, 2000);
        assert_eq!(s.dense[1].shadowing_sigma_db, 0.0);
        assert_eq!(s.dense[1].n_nodes, 10_000);
        let c = s.dense[0].sim_config(0);
        assert_eq!(c.radio.shadowing_sigma_db, 4.0);
    }

    #[test]
    fn bounded_tail_grid_beats_naive_on_shadowed_dense() {
        // Acceptance: shadowed scenarios no longer fall back to the naive
        // scan — the bounded-tail grid query must be ≥ 2× faster than the
        // naive path at 200 dev/km² (it is ~4.5× in practice, so the
        // timing assertion has real margin). Shortened window: the ratio
        // is duration-invariant and the debug build is slow.
        use manet::protocol::Flooding;
        use manet::sim::{DeliveryMode, Simulator};
        let d = DenseScenario::new(200, 1000).with_shadowing(4.0);
        let mut cfg = d.sim_config(0);
        cfg.broadcast_time = 8.0;
        cfg.end_time = 10.0;
        let n = cfg.n_nodes;
        // min-of-2 per mode: cargo test runs sibling tests concurrently,
        // so a single sample can absorb a scheduling hiccup; the minimum
        // is the robust estimator of the un-contended cost.
        let run = |mode: DeliveryMode| {
            let mut best: Option<(f64, manet::sim::SimReport)> = None;
            for _ in 0..2 {
                let mut sim = Simulator::new(cfg.clone(), Flooding::new(n, (0.0, 0.1)));
                sim.set_delivery_mode(mode);
                let t0 = std::time::Instant::now();
                let report = sim.run_to_end();
                let t = t0.elapsed().as_secs_f64();
                if best.as_ref().is_none_or(|(b, _)| t < *b) {
                    best = Some((t, report));
                }
            }
            best.expect("two runs recorded")
        };
        let (t_grid, r_grid) = run(DeliveryMode::Incremental);
        let (t_naive, r_naive) = run(DeliveryMode::Naive);
        assert_eq!(r_grid.broadcast, r_naive.broadcast, "paths must agree");
        assert_eq!(r_grid.counters, r_naive.counters, "paths must agree");
        assert!(
            t_naive >= 2.0 * t_grid,
            "bounded-tail grid must be >= 2x naive on shadowed 200 dev/km²: \
             grid {t_grid:.3}s vs naive {t_naive:.3}s"
        );
    }

    #[test]
    fn incremental_not_slower_than_rebuild_end_to_end() {
        // The PR-3 regression lock: after the SoA-snapshot query overhaul,
        // `Incremental` must be at least as fast as `HorizonRebuild`
        // end-to-end (speedup_rebuild_over_incremental ≥ 1.0 — it had
        // silently regressed to 0.61–0.96× when only grid *maintenance*
        // was incremental). Shortened window + min-of-3 per mode (the
        // minimum is the robust estimator of the un-contended cost under
        // concurrent sibling tests); release `exp_scale` records the
        // full-protocol version of this claim in `BENCH_scale.json`.
        use manet::protocol::Flooding;
        use manet::sim::{DeliveryMode, Simulator};
        let d = DenseScenario::new(400, 2000);
        let mut cfg = d.sim_config(0);
        cfg.broadcast_time = 6.0;
        cfg.end_time = 8.0;
        let n = cfg.n_nodes;
        let run = |mode: DeliveryMode| {
            let mut best: Option<(f64, manet::sim::SimReport)> = None;
            for _ in 0..3 {
                let mut sim = Simulator::new(cfg.clone(), Flooding::new(n, (0.0, 0.1)));
                sim.set_delivery_mode(mode);
                let t0 = std::time::Instant::now();
                let report = sim.run_to_end();
                let t = t0.elapsed().as_secs_f64();
                if best.as_ref().is_none_or(|(b, _)| t < *b) {
                    best = Some((t, report));
                }
            }
            best.expect("three runs recorded")
        };
        let (t_inc, r_inc) = run(DeliveryMode::Incremental);
        let (t_reb, r_reb) = run(DeliveryMode::HorizonRebuild);
        assert_eq!(r_inc.broadcast, r_reb.broadcast, "modes must agree");
        assert_eq!(r_inc.counters, r_reb.counters, "modes must agree");
        eprintln!(
            "speedup_rebuild_over_incremental = {:.3} \
             (incremental {t_inc:.3}s, rebuild {t_reb:.3}s)",
            t_reb / t_inc
        );
        // The hard wall-clock floor only holds reliably under the release
        // profile; in debug builds (CI's `test` job, contended runners,
        // debug_asserts on the hot path) it would be a timing flake. The
        // release-profile claim is enforced every CI run by the
        // bench-smoke perf gate (scripts/check_bench_regression.py) with
        // an explicit tolerance — parity above stays asserted everywhere.
        assert!(
            cfg!(debug_assertions) || t_reb >= t_inc,
            "Incremental regressed below HorizonRebuild again: \
             incremental {t_inc:.3}s vs rebuild {t_reb:.3}s \
             (speedup {:.2}x < 1.0)",
            t_reb / t_inc
        );
    }

    #[test]
    fn peak_rss_is_reported_on_linux() {
        // The scale artifact records peak RSS per row; on Linux the
        // /proc-based reading must exist, be monotone and be plausibly
        // sized (this test process certainly uses more than 1 MB).
        if !cfg!(target_os = "linux") {
            return;
        }
        let a = peak_rss_bytes().expect("VmHWM available on Linux");
        assert!(a > 1 << 20, "peak RSS {a} implausibly small");
        let _ballast = vec![0u8; 8 << 20];
        let b = peak_rss_bytes().expect("VmHWM available on Linux");
        assert!(b >= a, "high-water mark must be monotone");
    }

    #[test]
    fn xl_preset_runs_end_to_end_shortened() {
        // The 10⁴-node XL preset is exercised end-to-end (full protocol)
        // by exp_scale in release; here a shortened window proves the
        // preset wiring (field scaling, seeds, incremental default) works.
        use manet::protocol::Flooding;
        use manet::sim::Simulator;
        let d = DenseScenario::XL_PRESETS[1].clone();
        assert_eq!(d.n_nodes, 10_000);
        let mut cfg = d.sim_config(0);
        cfg.broadcast_time = 0.5;
        cfg.end_time = 1.0;
        let n = cfg.n_nodes;
        let report = Simulator::new(cfg, Flooding::new(n, (0.0, 0.1))).run();
        assert_eq!(report.n_nodes, 10_000);
        assert!(report.counters.beacons_sent >= 5_000);
        assert!(report.broadcast.coverage() > 100);
    }

    #[test]
    fn dense_simulation_is_tractable() {
        // A full 500-node broadcast simulation must run end to end — the
        // workload the spatial grid exists for.
        use aedb::params::AedbParams;
        use aedb::protocol::Aedb;
        use manet::sim::Simulator;
        let d = DenseScenario::new(200, 500);
        let cfg = d.sim_config(0);
        let n = cfg.n_nodes;
        let report = Simulator::new(cfg, Aedb::new(n, AedbParams::default_config())).run();
        assert_eq!(report.n_nodes, 500);
        assert!(report.counters.beacons_sent > 10_000);
    }
}
