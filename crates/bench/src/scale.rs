//! Experiment scaling: paper-faithful or reduced budgets, parsed from CLI
//! flags shared by all `exp_*` binaries — plus the beyond-paper
//! [`DenseScenario`]s (hundreds of nodes) that the simulator's spatial
//! grid makes tractable.

use aedb::scenario::Density;
use manet::geometry::Field;
use manet::sim::SimConfig;

/// A beyond-paper evaluation scenario: an areal density plus an explicit
/// node count. The field grows so that `area = n_nodes / per_km2`,
/// holding the density (and therefore the local connectivity structure)
/// fixed while the network scales — the regime where the simulator's
/// spatial grid turns an O(n²) beacon interval into a near-O(n) one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseScenario {
    /// Devices per square kilometre.
    pub per_km2: u32,
    /// Total devices.
    pub n_nodes: usize,
    /// Base seed; network `k` uses `base_seed + k`.
    pub base_seed: u64,
}

impl DenseScenario {
    /// Scale-up presets: paper densities, 10–20× the paper's node counts.
    pub const PRESETS: [DenseScenario; 3] = [
        DenseScenario {
            per_km2: 200,
            n_nodes: 500,
            base_seed: 7_200_500,
        },
        DenseScenario {
            per_km2: 300,
            n_nodes: 750,
            base_seed: 7_300_750,
        },
        DenseScenario {
            per_km2: 400,
            n_nodes: 1000,
            base_seed: 7_401_000,
        },
    ];

    /// A scenario with the given density and node count.
    pub fn new(per_km2: u32, n_nodes: usize) -> Self {
        assert!(per_km2 > 0 && n_nodes > 0);
        Self {
            per_km2,
            n_nodes,
            base_seed: 7_000_000 + per_km2 as u64 * 10_000 + n_nodes as u64,
        }
    }

    /// The square field holding `n_nodes` at `per_km2` devices/km².
    pub fn field(&self) -> Field {
        let area_km2 = self.n_nodes as f64 / self.per_km2 as f64;
        let side_m = (area_km2 * 1e6).sqrt();
        Field::new(side_m, side_m)
    }

    /// Simulator configuration of network `k`: Table II's physical setup
    /// (radio, mobility, timing — inherited from [`SimConfig::paper`] so
    /// the scale experiments can never drift from the paper protocol) on
    /// the scaled field.
    pub fn sim_config(&self, k: usize) -> SimConfig {
        let mut c = SimConfig::paper(self.n_nodes, self.base_seed + k as u64);
        c.field = self.field();
        c
    }
}

impl std::fmt::Display for DenseScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} nodes @ {} dev/km²", self.n_nodes, self.per_km2)
    }
}

/// Scale knobs of an experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Independent repetitions per algorithm (paper: 30).
    pub reps: usize,
    /// Fixed evaluation networks per fitness computation (paper: 10).
    pub networks: usize,
    /// Evaluation budget per run for the MOEAs (paper: 10 000; the MLS
    /// budget is 2.4× this, matching §VI's "2.4 times more evaluations").
    pub evals: u64,
    /// Densities to run.
    pub densities: Vec<Density>,
    /// Whether full paper scale was requested.
    pub paper: bool,
    /// FAST99 samples per parameter (sensitivity experiment only).
    pub fast_samples: usize,
    /// Beyond-paper dense scenarios (`--dense nodes@density,...`); the
    /// scale experiments iterate these.
    pub dense: Vec<DenseScenario>,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self {
            reps: 3,
            networks: 5,
            evals: 240,
            densities: vec![Density::D100],
            paper: false,
            fast_samples: 129,
            dense: vec![DenseScenario::PRESETS[0]],
        }
    }
}

impl ExperimentScale {
    /// The paper's full protocol.
    pub fn paper() -> Self {
        Self {
            reps: 30,
            networks: 10,
            evals: 10_000,
            densities: Density::ALL.to_vec(),
            paper: true,
            fast_samples: 1001,
            dense: DenseScenario::PRESETS.to_vec(),
        }
    }

    /// Parses flags from `std::env::args`:
    /// `--paper`, `--reps N`, `--evals N`, `--networks N`,
    /// `--densities 100,200,300`, `--fast-samples N`.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit iterator of arguments (testable).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut scale = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--paper" => scale = Self::paper(),
                "--reps" => scale.reps = expect_num(&mut it, "--reps") as usize,
                "--evals" => scale.evals = expect_num(&mut it, "--evals"),
                "--networks" => scale.networks = expect_num(&mut it, "--networks") as usize,
                "--fast-samples" => {
                    scale.fast_samples = expect_num(&mut it, "--fast-samples") as usize
                }
                "--densities" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| panic!("--densities needs a value"));
                    scale.densities = v
                        .split(',')
                        .map(|d| {
                            Density::from_per_km2(d.trim().parse().unwrap_or(0))
                                .unwrap_or_else(|| panic!("unknown density {d}"))
                        })
                        .collect();
                }
                "--dense" => {
                    let v = it.next().unwrap_or_else(|| panic!("--dense needs a value"));
                    scale.dense = v
                        .split(',')
                        .map(|spec| {
                            let (nodes, density) =
                                spec.trim().split_once('@').unwrap_or_else(|| {
                                    panic!("--dense wants nodes@density, got {spec}")
                                });
                            DenseScenario::new(
                                density
                                    .trim()
                                    .parse()
                                    .unwrap_or_else(|_| panic!("bad density {density}")),
                                nodes
                                    .trim()
                                    .parse()
                                    .unwrap_or_else(|_| panic!("bad node count {nodes}")),
                            )
                        })
                        .collect();
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --paper | --reps N --evals N --networks N \
                         --densities 100,200,300 --dense 500@200,750@300 --fast-samples N"
                    );
                    std::process::exit(0);
                }
                other => eprintln!("warning: ignoring unknown flag {other}"),
            }
        }
        scale
    }

    /// MLS evaluation budget: 2.4× the MOEA budget, as in the paper
    /// (24 000 vs 10 000).
    pub fn mls_evals(&self) -> u64 {
        (self.evals as f64 * 2.4).round() as u64
    }
}

fn expect_num<I: Iterator<Item = String>>(it: &mut I, flag: &str) -> u64 {
    it.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{flag} needs a numeric value"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ExperimentScale {
        ExperimentScale::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_quick() {
        let s = parse(&[]);
        assert!(!s.paper);
        assert_eq!(s.densities, vec![Density::D100]);
        assert!(s.evals <= 1000);
    }

    #[test]
    fn paper_flag_sets_protocol() {
        let s = parse(&["--paper"]);
        assert!(s.paper);
        assert_eq!(s.reps, 30);
        assert_eq!(s.networks, 10);
        assert_eq!(s.evals, 10_000);
        assert_eq!(s.mls_evals(), 24_000);
        assert_eq!(s.densities.len(), 3);
    }

    #[test]
    fn individual_flags() {
        let s = parse(&["--reps", "7", "--evals", "500", "--densities", "200,300"]);
        assert_eq!(s.reps, 7);
        assert_eq!(s.evals, 500);
        assert_eq!(s.densities, vec![Density::D200, Density::D300]);
    }

    #[test]
    fn mls_budget_ratio() {
        let s = parse(&["--evals", "1000"]);
        assert_eq!(s.mls_evals(), 2400);
    }

    #[test]
    #[should_panic(expected = "numeric")]
    fn bad_number_panics() {
        let _ = parse(&["--reps", "x"]);
    }

    #[test]
    fn dense_scenarios_hold_density_while_scaling() {
        let d = DenseScenario::new(200, 500);
        let field = d.field();
        // 500 nodes at 200/km² need 2.5 km² => side ≈ 1581 m
        assert!((field.area() - 2.5e6).abs() < 1.0, "area {}", field.area());
        assert!((field.width - 1581.14).abs() < 0.1);
        let c = d.sim_config(0);
        assert_eq!(c.n_nodes, 500);
        assert_eq!(c.radio.default_tx_dbm, 16.02);
        // fixed networks: seeds deterministic and distinct
        assert_eq!(d.sim_config(3).seed, d.sim_config(3).seed);
        assert_ne!(d.sim_config(0).seed, d.sim_config(1).seed);
    }

    #[test]
    fn dense_presets_meet_scale_floor() {
        for p in DenseScenario::PRESETS {
            assert!(p.per_km2 >= 200, "{p}");
            assert!(p.n_nodes >= 500, "{p}");
        }
    }

    #[test]
    fn dense_flag_parses() {
        let s = parse(&["--dense", "600@250, 800@300"]);
        assert_eq!(s.dense.len(), 2);
        assert_eq!(s.dense[0].n_nodes, 600);
        assert_eq!(s.dense[0].per_km2, 250);
        assert_eq!(s.dense[1].n_nodes, 800);
        assert_eq!(s.dense[1].per_km2, 300);
    }

    #[test]
    fn dense_simulation_is_tractable() {
        // A full 500-node broadcast simulation must run end to end — the
        // workload the spatial grid exists for.
        use aedb::params::AedbParams;
        use aedb::protocol::Aedb;
        use manet::sim::Simulator;
        let d = DenseScenario::new(200, 500);
        let cfg = d.sim_config(0);
        let n = cfg.n_nodes;
        let report = Simulator::new(cfg, Aedb::new(n, AedbParams::default_config())).run();
        assert_eq!(report.n_nodes, 500);
        assert!(report.counters.beacons_sent > 10_000);
    }
}
