//! # bench-harness — regenerates every table and figure of the paper
//!
//! One binary per artifact (see `src/bin/`):
//!
//! | binary            | paper artifact                                         |
//! |-------------------|--------------------------------------------------------|
//! | `exp_config`      | Tables II & III (scenario + variable domains)          |
//! | `exp_sensitivity` | Figure 2 + Table I (FAST99 sensitivity analysis)       |
//! | `exp_fronts`      | Figure 6 (Pareto fronts, AEDB-MLS vs Reference)        |
//! | `exp_metrics`     | Table IV + Figure 7 (Wilcoxon + boxplots of indicators)|
//! | `exp_domination`  | §VI domination counts                                  |
//! | `exp_timing`      | §VI runtime / speed-up analysis                        |
//! | `exp_param_study` | §V α / reset-condition configuration study             |
//! | `exp_all`         | everything above in sequence                           |
//!
//! Every binary accepts `--paper` (full protocol: 30 repetitions, 24 000
//! evaluations, 10 networks, all three densities — hours of CPU) and quick
//! flags (`--reps`, `--evals`, `--networks`, `--densities`); defaults are
//! laptop-friendly reductions that preserve the comparisons' shape.

pub mod experiments;
pub mod fronts;
pub mod runner;
pub mod scale;
pub mod tables;

pub use fronts::{front_metrics, merge_fronts, FrontMetrics};
pub use runner::{algorithms_for, run_algorithm, AlgorithmKind, DensityResults};
pub use scale::ExperimentScale;
