//! Experiment drivers — one function per paper artifact. The `exp_*`
//! binaries are thin wrappers so `exp_all` can chain them in-process.

use crate::fronts::{front_metrics, merge_candidate_sets, merge_fronts, objectives_of};
use crate::runner::{AlgorithmKind, DensityResults};
use crate::scale::ExperimentScale;
use crate::tables::{f, Table};
use aedb::params::AedbParams;
use aedb::problem::AedbProblem;
use aedb::scenario::{Density, Scenario};
use aedb_mls::mls::{CriteriaChoice, Mls, MlsConfig};
use fast99::Fast99;
use mopt::dominance::count_dominated_by;
use mopt::indicators::hypervolume;
use mopt::indicators::Normalizer;
use mopt::stats::{boxplot, compare_samples, Comparison};

/// Table II + Table III: the experimental configuration, printed from the
/// code constants so drift between documentation and implementation is
/// impossible.
pub fn exp_config() {
    println!("== Table II: configuration of the simulated networks ==");
    let mut t = Table::new(vec!["parameter", "value"]);
    let c = Scenario::paper(Density::D100).sim_config(0);
    t.row(vec![
        "devices/km²".to_string(),
        "100, 200, 300 (25/50/75 nodes)".to_string(),
    ]);
    t.row(vec![
        "speed".to_string(),
        format!("[{}, {}] m/s", c.speed_range.0, c.speed_range.1),
    ]);
    t.row(vec![
        "area".to_string(),
        format!("{} m × {} m", c.field.width, c.field.height),
    ]);
    t.row(vec![
        "default trans. power".to_string(),
        format!("{} dBm", c.radio.default_tx_dbm),
    ]);
    t.row(vec![
        "dir. & speed change".to_string(),
        match c.mobility {
            manet::mobility::MobilityModel::RandomWalk { change_interval } => {
                format!("every {change_interval} s (random walk)")
            }
            _ => "non-paper mobility".to_string(),
        },
    ]);
    t.row(vec![
        "warm-up / broadcast / end".to_string(),
        format!("{} s / {} s / {} s", 30, 30, 40),
    ]);
    t.row(vec![
        "fixed networks per evaluation".to_string(),
        "10".to_string(),
    ]);
    t.print();

    println!("\n== Table III: domain of the variables ==");
    let mut t = Table::new(vec!["variable", "domain"]);
    let b = AedbParams::bounds();
    let units = ["s", "s", "dBm", "dBm", "devices"];
    for (i, name) in AedbParams::names().iter().enumerate() {
        let (lo, hi) = b.get(i);
        t.row(vec![name.to_string(), format!("[{lo}, {hi}] {}", units[i])]);
    }
    t.print();
}

/// Figure 2 + Table I: FAST99 sensitivity analysis of the four objectives
/// with respect to the five parameters, per density.
pub fn exp_sensitivity(scale: &ExperimentScale) {
    let outputs = ["broadcast_time", "coverage", "forwardings", "energy"];
    for &density in &scale.densities {
        println!("\n== Figure 2: FAST99 sensitivity — {density} ==");
        println!(
            "   ({} samples/parameter × 5 parameters × {} networks per evaluation)",
            scale.fast_samples, scale.networks
        );
        let problem = AedbProblem::paper(Scenario::quick(density, scale.networks))
            .with_bounds(AedbParams::sensitivity_bounds());
        let bounds = AedbParams::sensitivity_bounds();
        let fast = Fast99::new(5, scale.fast_samples);

        // indices[output][param], plus effect-direction correlations
        let mut indices = vec![vec![]; outputs.len()];
        let mut direction = vec![vec![0.0f64; 5]; outputs.len()];
        for target in 0..5 {
            let design = fast.design(target);
            let mut outs: Vec<Vec<f64>> = vec![Vec::with_capacity(design.len()); outputs.len()];
            let mut xs: Vec<f64> = Vec::with_capacity(design.len());
            for u in &design {
                let x = bounds.from_unit(u);
                let o = problem.evaluate_full(AedbParams::from_vec(&x));
                outs[0].push(o.broadcast_time);
                outs[1].push(o.coverage);
                outs[2].push(o.forwardings);
                outs[3].push(o.energy);
                xs.push(u[target]);
            }
            for (oi, ys) in outs.iter().enumerate() {
                indices[oi].push(fast.indices(target, ys));
                direction[oi][target] = pearson(&xs, ys);
            }
        }

        for (oi, oname) in outputs.iter().enumerate() {
            println!("\n-- influence on {oname} --");
            let mut t = Table::new(vec![
                "parameter",
                "main effect",
                "interactions",
                "direction",
            ]);
            for (pi, pname) in AedbParams::names().iter().enumerate() {
                let idx = indices[oi][pi];
                t.row(vec![
                    pname.to_string(),
                    f(idx.first_order, 3),
                    f(idx.interaction(), 3),
                    arrow(direction[oi][pi]).to_string(),
                ]);
            }
            t.print();
        }

        // Morris elementary-effects cross-check (cheap screening; ranks
        // should agree with FAST99 on the dominant parameters).
        {
            use fast99::Morris;
            let morris = Morris::new(5, (scale.fast_samples / 16).clamp(6, 30));
            println!(
                "\n-- Morris screening cross-check ({} evaluations) --",
                morris.total_evaluations()
            );
            let mut stats_per_output: Vec<Vec<fast99::EffectStats>> = Vec::new();
            // one pass evaluating all four outputs along shared trajectories
            let mut cache: Vec<(Vec<f64>, [f64; 4])> = Vec::new();
            for oi in 0..4 {
                let st = morris.analyze(|u| {
                    if let Some((_, ys)) = cache.iter().find(|(k, _)| k.as_slice() == u) {
                        return ys[oi];
                    }
                    let x = bounds.from_unit(u);
                    let o = problem.evaluate_full(AedbParams::from_vec(&x));
                    let ys = [o.broadcast_time, o.coverage, o.forwardings, o.energy];
                    cache.push((u.to_vec(), ys));
                    ys[oi]
                });
                stats_per_output.push(st);
            }
            let mut t = Table::new(vec![
                "parameter",
                "μ* bt",
                "μ* coverage",
                "μ* forwardings",
                "μ* energy",
            ]);
            for (pi, pname) in AedbParams::names().iter().enumerate() {
                t.row(vec![
                    pname.to_string(),
                    f(stats_per_output[0][pi].mu_star, 2),
                    f(stats_per_output[1][pi].mu_star, 2),
                    f(stats_per_output[2][pi].mu_star, 2),
                    f(stats_per_output[3][pi].mu_star, 2),
                ]);
            }
            t.print();
        }

        println!("\n== Table I: summary for {density} (arrows = effect of increasing the parameter; yes/few/no = interaction strength) ==");
        let mut t = Table::new(vec![
            "parameter",
            "coverage",
            "forwardings",
            "energy used",
            "broadcast time",
        ]);
        for (pi, pname) in AedbParams::names().iter().enumerate() {
            let cell = |oi: usize| {
                format!(
                    "{} {}",
                    arrow(direction[oi][pi]),
                    interaction_label(indices[oi][pi].interaction())
                )
            };
            // table column order: coverage, forwardings, energy, bt
            t.row(vec![pname.to_string(), cell(1), cell(2), cell(3), cell(0)]);
        }
        t.print();
    }
}

fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        sxy += (a - mx) * (b - my);
        sxx += (a - mx) * (a - mx);
        syy += (b - my) * (b - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

fn arrow(corr: f64) -> char {
    if corr > 0.08 {
        '△'
    } else if corr < -0.08 {
        '▽'
    } else {
        '·'
    }
}

fn interaction_label(inter: f64) -> &'static str {
    if inter > 0.35 {
        "yes"
    } else if inter > 0.15 {
        "few"
    } else if inter > 0.05 {
        "very few"
    } else {
        "no"
    }
}

/// Figure 6: the AEDB-MLS front vs the Reference front (merged MOEAs), per
/// density. Prints the 3-D points (energy, coverage, forwardings).
pub fn exp_fronts(scale: &ExperimentScale) -> Vec<(Density, DensityResults)> {
    // All densities in one shard: (density × algorithm × repetition)
    // jobs fan over the pool together.
    let collected = DensityResults::collect_all(scale, &scale.densities);
    let mut all = Vec::new();
    for results in collected {
        let density = results.density;
        println!("\n== Figure 6: Pareto fronts — {density} ==");
        let mls = merge_fronts(results.of(AlgorithmKind::Mls), 100);
        let reference = merge_candidate_sets(
            &[
                &merge_fronts(results.of(AlgorithmKind::CellDe), 100),
                &merge_fronts(results.of(AlgorithmKind::Nsga2), 100),
            ],
            100,
        );
        for (name, front) in [("Reference", &reference), ("AEDB-MLS", &mls)] {
            println!("\n-- {name} front ({} points) --", front.len());
            let mut t = Table::new(vec!["energy (dBm)", "coverage (devices)", "forwardings"]);
            let mut rows: Vec<&mopt::solution::Candidate> = front.iter().collect();
            rows.sort_by(|a, b| a.objectives[0].total_cmp(&b.objectives[0]));
            for c in rows {
                t.row(vec![
                    f(c.objectives[0], 2),
                    f(-c.objectives[1], 2),
                    f(c.objectives[2], 2),
                ]);
            }
            t.print();
        }
        all.push((density, results));
    }
    all
}

/// Table IV + Figure 7: indicator distributions over the independent runs
/// and pairwise Wilcoxon comparisons.
pub fn exp_metrics(scale: &ExperimentScale, prefetched: Option<&[(Density, DensityResults)]>) {
    let owned;
    let data: &[(Density, DensityResults)] = match prefetched {
        Some(d) => d,
        None => {
            owned = DensityResults::collect_all(scale, &scale.densities)
                .into_iter()
                .map(|r| (r.density, r))
                .collect::<Vec<_>>();
            &owned
        }
    };
    // metric samples[density][algorithm][metric] -> Vec<f64> over runs
    let mut samples: Vec<Vec<[Vec<f64>; 3]>> = Vec::new();
    for (density, results) in data {
        // Normalisation front: best of all three algorithms (paper §VI).
        let merged: Vec<_> = AlgorithmKind::ALL
            .iter()
            .map(|&k| merge_fronts(results.of(k), 100))
            .collect();
        let combined = merge_candidate_sets(
            &merged.iter().map(|m| m.as_slice()).collect::<Vec<_>>(),
            300,
        );
        let reference = objectives_of(&combined);
        println!(
            "\n== Figure 7: indicator distributions — {density} (reference front: {} points) ==",
            reference.len()
        );
        let mut per_alg = Vec::new();
        for &kind in &AlgorithmKind::ALL {
            let mut spread = Vec::new();
            let mut igd = Vec::new();
            let mut hv = Vec::new();
            for run in results.of(kind) {
                let m = front_metrics(&run.objectives(), &reference);
                spread.push(m.spread);
                igd.push(m.igd);
                hv.push(m.hv);
            }
            per_alg.push([spread, igd, hv]);
        }
        let metric_names = ["spread", "IGD", "HV"];
        for (mi, mname) in metric_names.iter().enumerate() {
            let mut t = Table::new(vec![
                "algorithm",
                "min",
                "q1",
                "median",
                "q3",
                "max",
                "mean",
            ]);
            for (ai, &kind) in AlgorithmKind::ALL.iter().enumerate() {
                if let Some(b) = boxplot(&per_alg[ai][mi]) {
                    t.row(vec![
                        kind.name().to_string(),
                        f(b.min, 4),
                        f(b.q1, 4),
                        f(b.median, 4),
                        f(b.q3, 4),
                        f(b.max, 4),
                        f(b.mean, 4),
                    ]);
                }
            }
            println!("-- {mname} --");
            t.print();
        }
        samples.push(per_alg);
    }

    // Table IV: pairwise Wilcoxon per metric; the three symbols per cell
    // are the three densities in order.
    println!("\n== Table IV: pairwise Wilcoxon rank-sum comparisons (95%) ==");
    println!(
        "   cell = row algorithm vs column algorithm; one symbol per density {:?}",
        data.iter().map(|(d, _)| d.per_km2()).collect::<Vec<_>>()
    );
    let metric_names = ["Spread", "Inverted generational distance", "Hypervolume"];
    let smaller_better = [true, true, false];
    for (mi, mname) in metric_names.iter().enumerate() {
        println!("\n-- {mname} --");
        let mut t = Table::new(vec!["", "NSGAII", "AEDB-MLS"]);
        for (ri, row_kind) in [AlgorithmKind::CellDe, AlgorithmKind::Nsga2]
            .iter()
            .enumerate()
        {
            let mut cells = vec![row_kind.name().to_string()];
            for col_kind in [AlgorithmKind::Nsga2, AlgorithmKind::Mls].iter().skip(ri) {
                let mut syms = String::new();
                for per_alg in &samples {
                    let a = &per_alg[idx_of(*row_kind)][mi];
                    let b = &per_alg[idx_of(*col_kind)][mi];
                    let cmp = compare_samples(a, b, smaller_better[mi], 0.05);
                    syms.push(cmp.symbol());
                }
                cells.push(syms);
            }
            if ri == 1 {
                cells.insert(1, String::new()); // NSGAII row: skip NSGAII column
            }
            t.row(cells);
        }
        t.print();
    }
    let _ = Comparison::NoDifference; // silence unused when densities empty
}

fn idx_of(kind: AlgorithmKind) -> usize {
    AlgorithmKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("kind in ALL")
}

/// §VI domination counts: how many Reference points are dominated by some
/// AEDB-MLS point and vice versa (paper: 13/54, 11/40, 15/17).
pub fn exp_domination(scale: &ExperimentScale, prefetched: Option<&[(Density, DensityResults)]>) {
    let owned;
    let data: &[(Density, DensityResults)] = match prefetched {
        Some(d) => d,
        None => {
            owned = DensityResults::collect_all(scale, &scale.densities)
                .into_iter()
                .map(|r| (r.density, r))
                .collect::<Vec<_>>();
            &owned
        }
    };
    println!("\n== §VI: mutual domination between the AEDB-MLS front and the Reference front ==");
    let mut t = Table::new(vec![
        "density",
        "ref points dominated by MLS",
        "MLS points dominated by ref",
        "|MLS front|",
        "|ref front|",
    ]);
    for (density, results) in data {
        let mls = merge_fronts(results.of(AlgorithmKind::Mls), 100);
        let reference = merge_candidate_sets(
            &[
                &merge_fronts(results.of(AlgorithmKind::CellDe), 100),
                &merge_fronts(results.of(AlgorithmKind::Nsga2), 100),
            ],
            100,
        );
        let ref_dominated = count_dominated_by(&reference, &mls);
        let mls_dominated = count_dominated_by(&mls, &reference);
        t.row(vec![
            density.to_string(),
            ref_dominated.to_string(),
            mls_dominated.to_string(),
            mls.len().to_string(),
            reference.len().to_string(),
        ]);
    }
    t.print();
}

/// §VI runtime analysis: wall-clock per algorithm plus the projected
/// speed-up on the paper's 8-node × 12-core platform.
pub fn exp_timing(scale: &ExperimentScale, prefetched: Option<&[(Density, DensityResults)]>) {
    let owned;
    let data: &[(Density, DensityResults)] = match prefetched {
        Some(d) => d,
        None => {
            owned = DensityResults::collect_all(scale, &scale.densities)
                .into_iter()
                .map(|r| (r.density, r))
                .collect::<Vec<_>>();
            &owned
        }
    };
    println!("\n== §VI: execution time ==");
    let mut t = Table::new(vec![
        "density",
        "algorithm",
        "evals/run",
        "mean wall time",
        "time/eval (ms)",
    ]);
    let mut mls_per_eval = Vec::new();
    let mut ea_per_eval = Vec::new();
    for (density, results) in data {
        let density = *density;
        for &kind in &AlgorithmKind::ALL {
            let runs = results.of(kind);
            let mean_t =
                runs.iter().map(|r| r.elapsed.as_secs_f64()).sum::<f64>() / runs.len() as f64;
            let mean_e = runs.iter().map(|r| r.evaluations).sum::<u64>() / runs.len() as u64;
            let per_eval = 1000.0 * mean_t / mean_e.max(1) as f64;
            if kind == AlgorithmKind::Mls {
                mls_per_eval.push(per_eval);
            } else {
                ea_per_eval.push(per_eval);
            }
            t.row(vec![
                density.to_string(),
                kind.name().to_string(),
                mean_e.to_string(),
                format!("{:.2} s", mean_t),
                f(per_eval, 3),
            ]);
        }
    }
    t.print();
    if !mls_per_eval.is_empty() && !ea_per_eval.is_empty() {
        let mls = mls_per_eval.iter().sum::<f64>() / mls_per_eval.len() as f64;
        let ea = ea_per_eval.iter().sum::<f64>() / ea_per_eval.len() as f64;
        // The paper's platform ran the 96 MLS threads concurrently while
        // each MOEA run was a single sequential process. With the 2.4×
        // evaluation ratio the ideal wall-clock speed-up is 96/2.4 = 40;
        // the paper measured "over 38 times faster".
        let projected = (ea / mls) * 96.0 / 2.4;
        println!(
            "\nper-eval cost ratio EA/MLS = {:.2}; projected wall-clock speed-up on the \
             paper's 8×12-core platform = {:.1}× (paper reports >38×, 2.4× more evaluations)",
            ea / mls,
            projected
        );
    }
}

/// Ablation study of the AEDB-MLS design choices DESIGN.md calls out:
/// the paper's configuration vs (a) hill-climbing acceptance instead of
/// accept-any-feasible, (b) no archive reinitialisation, (c) a crowding
/// archive instead of AGA, (d) a single all-parameters criterion instead
/// of the sensitivity-derived groups. All at equal budgets on the
/// sparsest network, scored with normalised HV / IGD / spread against the
/// study-wide combined front.
pub fn exp_ablation(scale: &ExperimentScale) {
    use aedb_mls::mls::{AcceptanceRule, ArchiveKind};
    println!("\n== Ablation: AEDB-MLS design choices (density 100) ==");
    let problem = AedbProblem::paper(Scenario::quick(Density::D100, scale.networks));
    let per_thread = (scale.mls_evals() / 4).max(10);
    let base = MlsConfig {
        criteria: CriteriaChoice::Aedb,
        ..MlsConfig::quick(2, 2, per_thread)
    };
    let variants: Vec<(&str, MlsConfig)> = vec![
        ("paper (baseline)", base.clone()),
        (
            "acceptance: non-dominated",
            MlsConfig {
                acceptance: AcceptanceRule::NonDominated,
                ..base.clone()
            },
        ),
        (
            "no reinitialisation",
            MlsConfig {
                reinit: false,
                ..base.clone()
            },
        ),
        (
            "crowding archive",
            MlsConfig {
                archive_kind: ArchiveKind::Crowding,
                ..base.clone()
            },
        ),
        (
            "criteria: all-params",
            MlsConfig {
                criteria: CriteriaChoice::AllParams,
                ..base.clone()
            },
        ),
    ];
    // run everything first to build a common reference front
    let mut results: Vec<(&str, Vec<mopt::algorithm::RunResult>)> = Vec::new();
    for (name, cfg) in &variants {
        let mls = Mls::new(cfg.clone());
        let rr: Vec<mopt::algorithm::RunResult> = (0..scale.reps)
            .map(|rep| {
                let r = mls.optimize(&problem, 0xAB1A + 13 * rep as u64);
                mopt::algorithm::RunResult {
                    front: r.front,
                    evaluations: r.evaluations,
                    elapsed: r.elapsed,
                }
            })
            .collect();
        results.push((name, rr));
    }
    let all: Vec<mopt::algorithm::RunResult> = results
        .iter()
        .flat_map(|(_, rr)| rr.iter().cloned())
        .collect();
    let reference = objectives_of(&merge_fronts(&all, 300));
    let mut t = Table::new(vec![
        "variant",
        "mean HV",
        "mean IGD",
        "mean spread",
        "mean |front|",
    ]);
    for (name, rr) in &results {
        let ms: Vec<crate::fronts::FrontMetrics> = rr
            .iter()
            .map(|r| front_metrics(&r.objectives(), &reference))
            .collect();
        let mean = |get: fn(&crate::fronts::FrontMetrics) -> f64| {
            ms.iter().map(get).sum::<f64>() / ms.len().max(1) as f64
        };
        let mean_sz =
            rr.iter().map(|r| r.front.len()).sum::<usize>() as f64 / rr.len().max(1) as f64;
        t.row(vec![
            name.to_string(),
            f(mean(|m| m.hv), 4),
            f(mean(|m| m.igd), 4),
            f(mean(|m| m.spread), 4),
            f(mean_sz, 1),
        ]);
    }
    t.print();
}

/// The paper's §VII future work, validated: CellDE alone vs the
/// CellDE+MLS hybrid (AEDB-MLS as a refinement local search) vs AEDB-MLS
/// alone, at equal total evaluation budgets.
pub fn exp_hybrid(scale: &ExperimentScale) {
    use aedb_mls::hybrid::{CellDeMls, CellDeMlsConfig};
    use moea::cellde::{CellDe, CellDeConfig};
    use mopt::algorithm::MoAlgorithm;
    println!("\n== §VII future work: CellDE + AEDB-MLS hybrid (density 100) ==");
    let problem = AedbProblem::paper(Scenario::quick(Density::D100, scale.networks));
    let budget = scale.evals;
    let algorithms: Vec<Box<dyn MoAlgorithm>> = vec![
        Box::new(CellDe::new(CellDeConfig {
            grid_side: 5,
            max_evaluations: budget,
            ..Default::default()
        })),
        Box::new(CellDeMls::new(CellDeMlsConfig::quick(budget))),
        Box::new(moea::mocell::MoCell::new(
            moea::mocell::MoCellConfig::quick(5, budget),
        )),
        Box::new(Mls::new(MlsConfig {
            criteria: CriteriaChoice::Aedb,
            ..MlsConfig::quick(2, 2, (budget / 4).max(10))
        })),
    ];
    let mut all_runs: Vec<(String, Vec<mopt::algorithm::RunResult>)> = Vec::new();
    for alg in &algorithms {
        let rr: Vec<mopt::algorithm::RunResult> = (0..scale.reps)
            .map(|rep| alg.run(&problem, 0x99 + 7 * rep as u64))
            .collect();
        all_runs.push((alg.name().to_string(), rr));
    }
    let flat: Vec<mopt::algorithm::RunResult> = all_runs
        .iter()
        .flat_map(|(_, rr)| rr.iter().cloned())
        .collect();
    let reference = objectives_of(&merge_fronts(&flat, 300));
    let mut t = Table::new(vec![
        "algorithm",
        "mean HV",
        "mean IGD",
        "mean spread",
        "mean evals",
    ]);
    for (name, rr) in &all_runs {
        let ms: Vec<crate::fronts::FrontMetrics> = rr
            .iter()
            .map(|r| front_metrics(&r.objectives(), &reference))
            .collect();
        let mean = |get: fn(&crate::fronts::FrontMetrics) -> f64| {
            ms.iter().map(get).sum::<f64>() / ms.len().max(1) as f64
        };
        let mean_ev = rr.iter().map(|r| r.evaluations).sum::<u64>() as f64 / rr.len().max(1) as f64;
        t.row(vec![
            name.clone(),
            f(mean(|m| m.hv), 4),
            f(mean(|m| m.igd), 4),
            f(mean(|m| m.spread), 4),
            f(mean_ev, 0),
        ]);
    }
    t.print();
    println!("expectation: the hybrid's HV/IGD should match or beat plain CellDE at the");
    println!("same budget — the refinement union can never lose phase-1 ground.");
}

/// §V parameter study: α ∈ {0.1, 0.2, 0.3} × reset ∈ {15, 25, 50} on the
/// sparsest network, scored by mean hypervolume (paper picked α = 0.2,
/// reset = 50).
pub fn exp_param_study(scale: &ExperimentScale) {
    println!("\n== §V: AEDB-MLS configuration study (density 100) ==");
    let problem = AedbProblem::paper(Scenario::quick(Density::D100, scale.networks));
    let alphas = [0.1, 0.2, 0.3];
    let resets = [15u64, 25, 50];
    // Collect every front first to build one common normalisation front.
    let mut runs: Vec<(f64, u64, Vec<mopt::algorithm::RunResult>)> = Vec::new();
    for &alpha in &alphas {
        for &reset in &resets {
            let per_thread = (scale.mls_evals() / 4).max(10);
            let cfg = MlsConfig {
                alpha,
                reset_iterations: reset,
                criteria: CriteriaChoice::Aedb,
                ..MlsConfig::quick(2, 2, per_thread)
            };
            let mls = Mls::new(cfg);
            let rr: Vec<mopt::algorithm::RunResult> = (0..scale.reps)
                .map(|rep| {
                    let r = mls.optimize(&problem, 0xA1FA + 31 * rep as u64);
                    mopt::algorithm::RunResult {
                        front: r.front,
                        evaluations: r.evaluations,
                        elapsed: r.elapsed,
                    }
                })
                .collect();
            runs.push((alpha, reset, rr));
        }
    }
    let all_fronts: Vec<_> = runs
        .iter()
        .flat_map(|(_, _, rr)| rr.iter())
        .cloned()
        .collect();
    let combined = merge_fronts(&all_fronts, 300);
    let reference = objectives_of(&combined);
    let norm = Normalizer::from_points(&reference);
    let mut t = Table::new(vec!["alpha", "reset", "mean HV", "mean |front|"]);
    let mut best = (0.0, 0u64, f64::NEG_INFINITY);
    for (alpha, reset, rr) in &runs {
        let hvs: Vec<f64> = rr
            .iter()
            .map(|r| {
                let nf = norm
                    .as_ref()
                    .map(|n| n.apply_front(&r.objectives()))
                    .unwrap_or_else(|| r.objectives());
                hypervolume(&nf, &[1.1, 1.1, 1.1])
            })
            .collect();
        let mean_hv = hvs.iter().sum::<f64>() / hvs.len().max(1) as f64;
        let mean_sz =
            rr.iter().map(|r| r.front.len()).sum::<usize>() as f64 / rr.len().max(1) as f64;
        if mean_hv > best.2 {
            best = (*alpha, *reset, mean_hv);
        }
        t.row(vec![
            f(*alpha, 1),
            reset.to_string(),
            f(mean_hv, 4),
            f(mean_sz, 1),
        ]);
    }
    t.print();
    println!(
        "best configuration: α = {}, reset = {} (paper adopted α = 0.2, reset = 50)",
        best.0, best.1
    );
}
