//! §VI: execution-time comparison and projected parallel speed-up.
use bench_harness::scale::ExperimentScale;
fn main() {
    bench_harness::experiments::exp_timing(&ExperimentScale::from_args(), None);
}
