//! Runs every experiment in sequence (Tables I-IV, Figures 2, 6, 7 and the
//! §V/§VI analyses). Accepts the shared scale flags; `--paper` reproduces
//! the full protocol (hours of CPU).
use bench_harness::scale::ExperimentScale;
fn main() {
    let scale = ExperimentScale::from_args();
    bench_harness::experiments::exp_config();
    bench_harness::experiments::exp_sensitivity(&scale);
    let data = bench_harness::experiments::exp_fronts(&scale);
    bench_harness::experiments::exp_metrics(&scale, Some(&data));
    bench_harness::experiments::exp_domination(&scale, Some(&data));
    bench_harness::experiments::exp_timing(&scale, Some(&data));
    bench_harness::experiments::exp_ablation(&scale);
    bench_harness::experiments::exp_hybrid(&scale);
    bench_harness::experiments::exp_param_study(&scale);
}
