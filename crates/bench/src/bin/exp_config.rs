//! Prints Tables II and III of the paper from the code constants.
fn main() {
    bench_harness::experiments::exp_config();
}
