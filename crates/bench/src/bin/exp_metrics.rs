//! Table IV + Figure 7: indicator distributions and Wilcoxon comparisons.
use bench_harness::scale::ExperimentScale;
fn main() {
    let scale = ExperimentScale::from_args();
    bench_harness::experiments::exp_metrics(&scale, None);
}
