//! §V: the α / reset-condition configuration study of AEDB-MLS.
use bench_harness::scale::ExperimentScale;
fn main() {
    bench_harness::experiments::exp_param_study(&ExperimentScale::from_args());
}
