//! Ablation study of the AEDB-MLS design choices (acceptance rule,
//! reinitialisation, archive strategy, search criteria).
use bench_harness::scale::ExperimentScale;
fn main() {
    bench_harness::experiments::exp_ablation(&ExperimentScale::from_args());
}
