//! Connectivity characterisation of the paper's fixed evaluation networks:
//! degree and component statistics at broadcast time (t = 30 s) for every
//! density. The source's component size is the hard ceiling on coverage,
//! which puts the Figure 6 coverage axes in context.
use aedb::scenario::{Density, Scenario};
use bench_harness::scale::ExperimentScale;
use bench_harness::tables::{f, Table};
use manet::analysis::connectivity_stats;
use manet::protocol::SourceOnly;
use manet::sim::Simulator;

fn main() {
    let scale = ExperimentScale::from_args();
    let densities = if scale.paper {
        Density::ALL.to_vec()
    } else {
        scale.densities.clone()
    };
    println!("== connectivity of the fixed evaluation networks at t = 30 s ==");
    let mut t = Table::new(vec![
        "density",
        "network",
        "mean degree",
        "components",
        "largest comp",
        "source comp",
    ]);
    for density in densities {
        let scenario = Scenario::quick(density, scale.networks);
        let mut mean_src = 0.0;
        for k in 0..scenario.n_networks {
            let cfg = scenario.sim_config(k);
            let radio = cfg.radio;
            let mut sim = Simulator::new(cfg, SourceOnly);
            sim.run_until(30.0);
            let pos = sim.positions_at(30.0);
            let s = connectivity_stats(&pos, &radio);
            mean_src += s.source_component as f64 / scenario.n_networks as f64;
            t.row(vec![
                density.to_string(),
                k.to_string(),
                f(s.mean_degree, 2),
                s.n_components.to_string(),
                s.largest_component.to_string(),
                s.source_component.to_string(),
            ]);
        }
        t.row(vec![
            density.to_string(),
            "mean".to_string(),
            String::new(),
            String::new(),
            String::new(),
            f(mean_src, 1),
        ]);
    }
    t.print();
    println!("\nthe source-component mean is the coverage ceiling of ANY dissemination");
    println!("protocol on these networks (cf. the Figure 6 coverage axes).");
}
