//! Figure 2 + Table I: FAST99 sensitivity analysis of the AEDB objectives.
use bench_harness::scale::ExperimentScale;
fn main() {
    bench_harness::experiments::exp_sensitivity(&ExperimentScale::from_args());
}
