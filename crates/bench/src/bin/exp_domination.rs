//! §VI: mutual domination counts between the AEDB-MLS and Reference fronts.
use bench_harness::scale::ExperimentScale;
fn main() {
    let scale = ExperimentScale::from_args();
    bench_harness::experiments::exp_domination(&scale, None);
}
