//! Figure 6: Pareto fronts of AEDB-MLS vs the Reference (merged MOEAs).
use bench_harness::scale::ExperimentScale;
fn main() {
    let scale = ExperimentScale::from_args();
    let _ = bench_harness::experiments::exp_fronts(&scale);
}
