//! §VII future work: the CellDE + AEDB-MLS hybrid, compared to both parents.
use bench_harness::scale::ExperimentScale;
fn main() {
    bench_harness::experiments::exp_hybrid(&ExperimentScale::from_args());
}
