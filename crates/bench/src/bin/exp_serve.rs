//! The experiment protocol, submitted through the resident service
//! (`serve::SimService`) instead of the batch runner: one campaign per
//! (density × algorithm), results archived under `./service-store/` so a
//! second invocation replays every finished campaign from disk without
//! re-simulating.
//!
//! Accepts the usual scale flags (`--paper`, `--reps`, `--evals`,
//! `--networks`, `--densities`); see `exp_all --help`.

use bench_harness::scale::ExperimentScale;
use serve::campaign::{AlgorithmKind, CampaignSpec};
use serve::{JobEvent, JobSpec, Priority, SimService};

use aedb::scenario::Scenario;

fn main() {
    let scale = ExperimentScale::from_args();
    let budget = scale.campaign_budget();
    let service = SimService::on_disk("service-store");
    println!(
        "== resident service: {} campaigns ({} reps × {} evals each), archive at ./service-store ==",
        scale.densities.len() * AlgorithmKind::ALL.len(),
        budget.reps,
        budget.evals,
    );

    let handles: Vec<_> = scale
        .densities
        .iter()
        .flat_map(|&density| {
            AlgorithmKind::ALL.map(|algorithm| {
                let spec = CampaignSpec {
                    scenario: Scenario::quick(density, scale.networks),
                    algorithm,
                    budget,
                };
                let handle = service.submit(JobSpec::Campaign(spec), Priority::Normal);
                (density, algorithm, handle)
            })
        })
        .collect();

    for (density, algorithm, handle) in handles {
        let mut generations = 0u64;
        let result = loop {
            match handle.next_event() {
                Some(JobEvent::Generation { .. }) => generations += 1,
                Some(JobEvent::Finished {
                    replayed, output, ..
                }) => break Some((replayed, output)),
                Some(JobEvent::Failed { error, .. }) => {
                    eprintln!("{density} {}: {error}", algorithm.name());
                    break None;
                }
                Some(_) => {}
                None => break None,
            }
        };
        if let Some((replayed, output)) = result {
            let campaign = output.campaign().expect("campaign output");
            let front_sizes: Vec<usize> = campaign.reps.iter().map(|r| r.front.len()).collect();
            println!(
                "{density} {:>8}: {} reps, front sizes {:?}, {} generation events{}",
                algorithm.name(),
                campaign.reps.len(),
                front_sizes,
                generations,
                if replayed {
                    " — REPLAYED from archive"
                } else {
                    ""
                },
            );
        }
    }

    let archived = service
        .archived_campaigns()
        .expect("scanning campaign archive");
    println!("{} campaign(s) in the archive", archived.len());
    service.drain();
}
