//! The experiment protocol, submitted through the resident service
//! (`serve::SimService`) instead of the batch runner: one campaign per
//! (density × algorithm), results archived under `./service-store/` so a
//! second invocation replays every finished campaign from disk without
//! re-simulating.
//!
//! After the paper's three-way comparison, an **island vs NSGA-II** block
//! runs both algorithms at an equal evaluation budget per density and
//! records the island run's hypervolume-vs-evaluations trajectory from
//! its streamed `AnytimeFront` epochs (fronts normalised over the union
//! of both final fronts, reference point 1.1 per axis).
//!
//! Accepts the usual scale flags (`--paper`, `--reps`, `--evals`,
//! `--networks`, `--densities`); see `exp_all --help`.

use bench_harness::scale::ExperimentScale;
use mopt::indicators::{hypervolume, Normalizer};
use serve::campaign::{AlgorithmKind, CampaignSpec};
use serve::{JobEvent, JobSpec, Priority, SimService};

use aedb::scenario::Scenario;

fn main() {
    let scale = ExperimentScale::from_args();
    let budget = scale.campaign_budget();
    let service = SimService::on_disk("service-store");
    println!(
        "== resident service: {} campaigns ({} reps × {} evals each), archive at ./service-store ==",
        scale.densities.len() * AlgorithmKind::ALL.len(),
        budget.reps,
        budget.evals,
    );

    let handles: Vec<_> = scale
        .densities
        .iter()
        .flat_map(|&density| {
            AlgorithmKind::ALL.map(|algorithm| {
                let spec = CampaignSpec {
                    scenario: Scenario::quick(density, scale.networks),
                    algorithm,
                    budget,
                };
                let handle = service.submit(JobSpec::Campaign(spec), Priority::Normal);
                (density, algorithm, handle)
            })
        })
        .collect();

    for (density, algorithm, handle) in handles {
        let mut generations = 0u64;
        let result = loop {
            match handle.next_event() {
                Some(JobEvent::Generation { .. }) => generations += 1,
                Some(JobEvent::Finished {
                    replayed, output, ..
                }) => break Some((replayed, output)),
                Some(JobEvent::Failed { error, .. }) => {
                    eprintln!("{density} {}: {error}", algorithm.name());
                    break None;
                }
                Some(_) => {}
                None => break None,
            }
        };
        if let Some((replayed, output)) = result {
            let campaign = output.campaign().expect("campaign output");
            let front_sizes: Vec<usize> = campaign.reps.iter().map(|r| r.front.len()).collect();
            println!(
                "{density} {:>8}: {} reps, front sizes {:?}, {} generation events{}",
                algorithm.name(),
                campaign.reps.len(),
                front_sizes,
                generations,
                if replayed {
                    " — REPLAYED from archive"
                } else {
                    ""
                },
            );
        }
    }

    // Island vs NSGA-II at an equal evaluation budget. The NSGA-II
    // campaign is usually answered from the archive (it just ran above);
    // the island campaign streams its anytime front as it improves.
    println!(
        "\n== island vs NSGA-II, equal budget ({} evals × {} reps) ==",
        budget.evals, budget.reps
    );
    for &density in &scale.densities {
        let submit = |algorithm| {
            service.submit(
                JobSpec::Campaign(CampaignSpec {
                    scenario: Scenario::quick(density, scale.networks),
                    algorithm,
                    budget,
                }),
                Priority::Normal,
            )
        };
        let island_handle = submit(AlgorithmKind::Island);
        // Drain the island stream, recording rep 0's anytime trajectory.
        let mut trajectory: Vec<(u64, Vec<Vec<f64>>)> = Vec::new();
        let island = loop {
            match island_handle.next_event() {
                Some(JobEvent::AnytimeFront {
                    rep: 0,
                    evaluations,
                    front,
                    ..
                }) => trajectory.push((evaluations, front)),
                Some(JobEvent::Finished { output, .. }) => break output,
                Some(JobEvent::Failed { error, .. }) => {
                    panic!("{density} island campaign failed: {error}")
                }
                Some(_) => {}
                None => panic!("service dropped the island campaign"),
            }
        };
        let nsga2 = submit(AlgorithmKind::Nsga2)
            .wait()
            .expect("NSGA-II campaign runs")
            .output;
        let island_front: Vec<Vec<f64>> = island.campaign().expect("campaign output").reps[0]
            .front
            .iter()
            .map(|c| c.objectives.clone())
            .collect();
        let nsga2_front: Vec<Vec<f64>> = nsga2.campaign().expect("campaign output").reps[0]
            .front
            .iter()
            .map(|c| c.objectives.clone())
            .collect();

        // Normalise over the union of both final fronts (the paper's
        // protocol) and compare with reference point 1.1 per axis.
        let union: Vec<Vec<f64>> = island_front.iter().chain(&nsga2_front).cloned().collect();
        let Some(norm) = Normalizer::from_points(&union) else {
            println!("{density}: empty fronts, nothing to compare");
            continue;
        };
        let reference = vec![1.1; union[0].len()];
        let hv_of = |front: &[Vec<f64>]| hypervolume(&norm.apply_front(front), &reference);
        println!(
            "{density}: rep 0 final HV — Island {:.4} ({} pts) vs NSGAII {:.4} ({} pts)",
            hv_of(&island_front),
            island_front.len(),
            hv_of(&nsga2_front),
            nsga2_front.len(),
        );
        if trajectory.is_empty() {
            println!("  (replayed from archive — no anytime trajectory streamed)");
        } else {
            print!("  HV trajectory:");
            let step = (trajectory.len() / 6).max(1);
            for (evals, front) in trajectory.iter().step_by(step).chain(trajectory.last()) {
                print!(" {evals}:{:.4}", hv_of(front));
            }
            println!();
        }
    }

    let archived = service
        .archived_campaigns()
        .expect("scanning campaign archive");
    println!("{} campaign(s) in the archive", archived.len());
    service.drain();
}
