//! Beyond-paper scale experiment: simulation throughput on the dense
//! scenarios (hundreds of nodes) with the spatial grid versus the naive
//! O(n²) scan, plus a batched AEDB evaluation at scale.
//!
//! Flags: `--dense 500@200,750@300` selects scenarios, `--paper` runs all
//! presets.
use aedb::params::AedbParams;
use bench_harness::scale::ExperimentScale;
use bench_harness::tables::{f, Table};
use manet::protocol::Flooding;
use manet::sim::Simulator;
use std::time::Instant;

fn main() {
    let scale = ExperimentScale::from_args();
    println!("== dense-scenario simulation throughput: spatial grid vs naive scan ==");
    let mut t = Table::new(vec![
        "scenario",
        "field (m)",
        "grid (s/sim)",
        "naive (s/sim)",
        "speedup",
        "coverage",
    ]);
    for d in &scale.dense {
        let run = |naive: bool| {
            let cfg = d.sim_config(0);
            let n = cfg.n_nodes;
            let mut sim = Simulator::new(cfg, Flooding::new(n, (0.0, 0.1)));
            sim.set_naive_deliveries(naive);
            let t0 = Instant::now();
            let report = sim.run_to_end();
            (t0.elapsed().as_secs_f64(), report.broadcast.coverage())
        };
        let (grid_s, cov) = run(false);
        let (naive_s, cov_naive) = run(true);
        assert_eq!(cov, cov_naive, "grid and naive scan must agree");
        t.row(vec![
            d.to_string(),
            f(d.field().width, 0),
            f(grid_s, 3),
            f(naive_s, 3),
            f(naive_s / grid_s, 2),
            cov.to_string(),
        ]);
    }
    t.print();

    // A small batched AEDB evaluation for reference — note this runs the
    // *paper-scale* D200 problem (50 nodes on the 500 m field), not the
    // dense scenarios above: the tuning problem is defined over the
    // paper's fixed networks. The candidate × network product still fans
    // out over all cores at once.
    {
        use mopt::problem::Problem;
        let scenario =
            aedb::scenario::Scenario::quick(aedb::scenario::Density::D200, scale.networks.min(3));
        let problem = aedb::problem::AedbProblem::paper(scenario);
        let xs: Vec<Vec<f64>> = vec![
            AedbParams::default_config().to_vec(),
            vec![0.0, 0.2, -70.0, 1.0, 50.0],
            vec![0.3, 1.0, -85.0, 1.5, 20.0],
        ];
        let t0 = Instant::now();
        let evals = problem.evaluate_batch(&xs);
        println!(
            "\nbatched evaluation on the paper-scale 200 dev/km² problem \
             ({} candidates x {} networks of 50 nodes): {:.3} s",
            xs.len(),
            problem.scenario().n_networks,
            t0.elapsed().as_secs_f64()
        );
        for (x, ev) in xs.iter().zip(&evals) {
            println!(
                "  delays [{:.2},{:.2}] border {:>6.1} -> energy {:>7.2} coverage {:>5.1} fwd {:>5.1} viol {:.3}",
                x[0], x[1], x[2], ev.objectives[0], -ev.objectives[1], ev.objectives[2], ev.violation
            );
        }
    }
}
