//! Beyond-paper scale experiment: simulation throughput on the dense
//! scenarios (hundreds to 10⁵ nodes, optionally shadowed) across the three
//! delivery paths — incremental grid (default), horizon-rebuild grid
//! (the historical baseline) and the naive O(n²) scan — plus the
//! space-sharded incremental path and a batched AEDB evaluation posed
//! directly on a dense scenario.
//!
//! Emits **`BENCH_scale.json`** (schema `bench-scale-v6`, documented and
//! rendered in [`bench_harness::scale`] — this binary only fills in
//! [`ScaleRow`]s) so the perf trajectory stays machine-readable across
//! PRs: per row, the canonical scenario spec text, wall time per delivery
//! mode (fastest of five identical runs below the 10⁵-node ceiling row,
//! which is single-shot) plus the sharded incremental run
//! ([`Simulator::set_delivery_shards`], coverage asserted identical to
//! the sequential run), the candidate-filter vs receive-outcome split
//! of the query (from
//! [`Simulator::query_profile`]) plus the interference-phase share of the
//! incremental outcome, the batched sweep's work counters
//! ([`Simulator::sweep_stats`]) and the process's peak RSS high-water
//! mark when the row finished. A fixed **calibration workload** is timed
//! first, so CI's perf-regression gate
//! (`scripts/check_bench_regression.py`) can check *absolute* wall-time
//! ceilings (normalised by the calibration run, robust to runner speed)
//! on top of the speedup floors; the artifact also records the host's
//! available parallelism so sharded-speedup floors only gate runners
//! with enough cores.
//!
//! Flags: `--dense 500@200,2000@200@4,10000@400` selects scenarios in the
//! shared grammar (`nodes@density[@sigma]`, plus heterogeneous
//! `+n[:still|:walkI|:rwpP][:POWERdbm]` groups), `--paper` runs all
//! presets including the 10⁴/10⁵-node, shadowed and heterogeneous ones,
//! `--shards N` fixes the sharded run's worker count (`0` = auto: the
//! host's available parallelism clamped to 2..=4; `1` skips the sharded
//! measurement).
use aedb::params::AedbParams;
use aedb::scenario::DenseScenario;
use bench_harness::scale::{peak_rss_bytes, BatchedEval, ExperimentScale, ScaleArtifact, ScaleRow};
use bench_harness::tables::{f, Table};
use manet::protocol::Flooding;
use manet::sim::{DeliveryMode, Simulator};
use manet::SweepStats;
use std::time::Instant;

/// Above this node count the naive O(n²) baseline is skipped — it would
/// dominate the whole run without telling us anything new.
const NAIVE_CAP: usize = 2_500;

struct ModeRun {
    seconds: f64,
    coverage: usize,
    beacons_per_sec: f64,
    bucket_ops: u64,
    /// Candidate gathering/filtering/ordering seconds (profiled).
    filter_s: f64,
    /// Exact receive-outcome seconds (profiled).
    outcome_s: f64,
    /// Interference-resolution share of `outcome_s` (incremental only;
    /// the historical paths keep their verbatim single-loop shape).
    interference_s: f64,
    /// Batched-sweep work counters (all zero outside incremental mode,
    /// which is the only path that sweeps).
    sweep: SweepStats,
}

/// Rows at or above this node count are measured single-shot — tripling
/// a minutes-long rebuild baseline would dominate the whole experiment
/// for one row's noise margin.
const SINGLE_SHOT_NODES: usize = 50_000;

/// Measure one delivery mode on one scenario, keeping the fastest of a
/// few identical runs. Wall times bounce with host contention; the
/// minimum is the robust estimator of the un-contended cost (the same
/// reasoning as [`calibration_seconds`]). The runs are deterministic
/// (same seed), so the kept run's coverage/profile/counters are the
/// row's values, not a mix.
fn run_mode(d: &DenseScenario, mode: DeliveryMode) -> ModeRun {
    run_sharded(d, mode, 1)
}

/// Like [`run_mode`], but resolving deliveries across `shards` stripe
/// workers (`1` = the ordinary sequential path). Sharding only changes
/// *how* the work is scheduled, never the outcome — the caller asserts
/// coverage parity against the sequential run.
fn run_sharded(d: &DenseScenario, mode: DeliveryMode, shards: usize) -> ModeRun {
    let reps = if d.n_nodes >= SINGLE_SHOT_NODES { 1 } else { 5 };
    let mut best: Option<ModeRun> = None;
    for _ in 0..reps {
        let r = run_mode_once(d, mode, shards);
        let faster = match &best {
            None => true,
            Some(b) => r.seconds < b.seconds,
        };
        if faster {
            best = Some(r);
        }
    }
    best.expect("reps >= 1")
}

fn run_mode_once(d: &DenseScenario, mode: DeliveryMode, shards: usize) -> ModeRun {
    // Every scenario — homogeneous or heterogeneous — compiles through the
    // declarative WorldSpec path.
    let world = d.world_spec(0);
    let n = world.n_nodes();
    let duration = world.end_time;
    let mut sim = Simulator::from_world(&world, Flooding::new(n, (0.0, 0.1)));
    sim.set_delivery_mode(mode);
    sim.set_delivery_shards(shards);
    // Profiling samples two `Instant`s per delivery query in *every* mode,
    // so the overhead cancels out of the mode-vs-mode speedups.
    sim.set_query_profiling(true);
    let t0 = Instant::now();
    let report = sim.run_to_end();
    let seconds = t0.elapsed().as_secs_f64();
    let profile = sim.query_profile();
    ModeRun {
        seconds,
        coverage: report.broadcast.coverage(),
        beacons_per_sec: report.counters.beacons_sent as f64 / duration,
        bucket_ops: sim.grid_stats().bucket_ops,
        filter_s: profile.filter_s,
        outcome_s: profile.outcome_s,
        interference_s: profile.interference_s,
        sweep: sim.sweep_stats(),
    }
}

/// Wall time (s) of the fixed calibration workload: a full paper-protocol
/// run of the 500-node 200 dev/km² preset on the incremental path,
/// min-of-3 (the minimum is the robust estimator of the un-contended
/// cost). Every row's absolute wall time is meaningful *relative to this
/// number* — the gate divides by it, cancelling runner speed.
fn calibration_seconds() -> f64 {
    let world = DenseScenario::new(200, 500).world_spec(0);
    let n = world.n_nodes();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut sim = Simulator::from_world(&world, Flooding::new(n, (0.0, 0.1)));
        // Profiling on, exactly like every measured row (`run_mode`), so
        // the per-query `Instant` overhead cancels out of the
        // row-over-calibration ratios the absolute gate checks.
        sim.set_query_profiling(true);
        let t0 = Instant::now();
        let _ = sim.run_to_end();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut scale = ExperimentScale::from_args();
    if scale.paper {
        let mut dense = DenseScenario::PRESETS.to_vec();
        dense.extend(DenseScenario::SHADOWED_PRESETS);
        dense.push(DenseScenario::hetero_preset());
        dense.extend(DenseScenario::XL_PRESETS);
        scale.dense = dense;
    }
    let host_parallelism = std::thread::available_parallelism().map_or(1, |p| p.get());
    // Auto-pick a shard count worth measuring: 2..=4 workers covers every
    // CI runner shape without oversubscribing laptops. `--shards 1` skips
    // the sharded measurement entirely (columns stay null).
    let shards = match scale.shards {
        0 => host_parallelism.clamp(2, 4),
        s => s,
    };
    let calibration_s = calibration_seconds();
    println!("calibration workload (500@200 full protocol, min of 3): {calibration_s:.3} s");
    println!("host parallelism: {host_parallelism}");
    println!("== dense-scenario simulation throughput: delivery modes compared ==");
    let mut t = Table::new(vec![
        "scenario",
        "field (m)",
        "incremental (s)",
        "sharded (s)",
        "filter/outcome/intf (s)",
        "rebuild (s)",
        "naive (s)",
        "inc/reb ops",
        "cull/visit cells",
        "coverage",
    ]);
    let mut rows: Vec<ScaleRow> = Vec::new();
    for d in &scale.dense {
        let inc = run_mode(d, DeliveryMode::Incremental);
        let reb = run_mode(d, DeliveryMode::HorizonRebuild);
        assert_eq!(inc.coverage, reb.coverage, "delivery modes must agree");
        let naive = (d.n_nodes <= NAIVE_CAP).then(|| {
            let r = run_mode(d, DeliveryMode::Naive);
            assert_eq!(inc.coverage, r.coverage, "delivery modes must agree");
            r
        });
        let sharded = (shards >= 2).then(|| {
            let r = run_sharded(d, DeliveryMode::Incremental, shards);
            assert_eq!(
                inc.coverage, r.coverage,
                "sharding must not change outcomes"
            );
            r
        });
        t.row(vec![
            d.to_string(),
            f(d.field().width, 0),
            f(inc.seconds, 3),
            sharded
                .as_ref()
                .map_or("-".into(), |s| format!("{}@{shards}", f(s.seconds, 3))),
            format!(
                "{}/{}/{}",
                f(inc.filter_s, 3),
                f(inc.outcome_s, 3),
                f(inc.interference_s, 3)
            ),
            f(reb.seconds, 3),
            naive.as_ref().map_or("-".into(), |n| f(n.seconds, 3)),
            format!("{}/{}", inc.bucket_ops, reb.bucket_ops),
            format!("{}/{}", inc.sweep.cells_culled, inc.sweep.cells_visited),
            inc.coverage.to_string(),
        ]);
        rows.push(ScaleRow {
            spec: d.spec_string(),
            nodes: d.n_nodes,
            per_km2: d.per_km2,
            shadowing_sigma_db: d.shadowing_sigma_db,
            beacons_per_sec: inc.beacons_per_sec,
            coverage: inc.coverage,
            incremental_s: inc.seconds,
            rebuild_s: reb.seconds,
            naive_s: naive.as_ref().map(|n| n.seconds),
            shards: sharded.as_ref().map(|_| shards),
            sharded_s: sharded.as_ref().map(|s| s.seconds),
            incremental_filter_s: inc.filter_s,
            incremental_outcome_s: inc.outcome_s,
            incremental_interference_s: inc.interference_s,
            rebuild_filter_s: reb.filter_s,
            rebuild_outcome_s: reb.outcome_s,
            incremental_bucket_ops: inc.bucket_ops,
            rebuild_bucket_ops: reb.bucket_ops,
            sweep: inc.sweep,
            peak_rss_bytes: peak_rss_bytes(),
        });
    }
    t.print();

    // A batched AEDB evaluation posed *directly on a dense scenario* —
    // the tuning problem at beyond-paper scale (the paper-scale problems
    // are covered by the other experiment binaries).
    let batched_eval = {
        use aedb::scenario::Scenario;
        use mopt::problem::Problem;
        let dense = scale.dense[0].clone();
        let scenario = Scenario::dense(dense.clone(), scale.networks.min(3));
        let n_networks = scenario.n_networks;
        let problem = aedb::problem::AedbProblem::paper(scenario);
        let xs: Vec<Vec<f64>> = vec![
            AedbParams::default_config().to_vec(),
            vec![0.0, 0.2, -70.0, 1.0, 50.0],
            vec![0.3, 1.0, -85.0, 1.5, 20.0],
        ];
        let t0 = Instant::now();
        let evals = problem.evaluate_batch(&xs);
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "\nbatched evaluation on the dense problem ({dense}: {} candidates x {n_networks} \
             networks): {secs:.3} s",
            xs.len(),
        );
        for (x, ev) in xs.iter().zip(&evals) {
            println!(
                "  delays [{:.2},{:.2}] border {:>6.1} -> energy {:>8.2} coverage {:>7.1} fwd {:>7.1} viol {:.3}",
                x[0], x[1], x[2], ev.objectives[0], -ev.objectives[1], ev.objectives[2], ev.violation
            );
        }
        BatchedEval {
            nodes: dense.n_nodes,
            candidates: xs.len(),
            networks: n_networks,
            seconds: secs,
        }
    };

    let artifact = ScaleArtifact {
        calibration_seconds: calibration_s,
        host_parallelism,
        rows,
        batched_eval,
    };
    artifact
        .write("BENCH_scale.json")
        .expect("write BENCH_scale.json");
    println!("\nwrote BENCH_scale.json ({} scenarios)", scale.dense.len());
}
