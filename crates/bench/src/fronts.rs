//! Front assembly and indicator computation, following §VI's protocol:
//!
//! * the per-algorithm front is the AGA-merged non-dominated set over all
//!   independent runs,
//! * the **Reference** front merges the two MOEAs' results,
//! * before computing indicators all fronts are normalised with a combined
//!   approximation of the true front built from *all three* algorithms.

use mopt::algorithm::RunResult;
use mopt::archive::AgaArchive;
use mopt::indicators::{
    generalized_spread, hypervolume, inverted_generational_distance, Normalizer,
};
use mopt::solution::Candidate;

/// Merges many runs' fronts through an AGA archive (capacity as the paper's
/// elite archives: 100), returning the combined non-dominated set.
pub fn merge_fronts(runs: &[RunResult], capacity: usize) -> Vec<Candidate> {
    let mut archive = AgaArchive::new(capacity.max(1), 5);
    for r in runs {
        for c in &r.front {
            archive.try_insert(c.clone());
        }
    }
    archive.into_members()
}

/// Merges plain candidate sets (used to build the all-algorithms
/// normalisation front).
pub fn merge_candidate_sets(sets: &[&[Candidate]], capacity: usize) -> Vec<Candidate> {
    let mut archive = AgaArchive::new(capacity.max(1), 5);
    for set in sets {
        for c in *set {
            archive.try_insert(c.clone());
        }
    }
    archive.into_members()
}

/// The three indicators of Table IV / Figure 7 for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontMetrics {
    /// Generalised spread Δ (smaller = better distributed).
    pub spread: f64,
    /// Inverted generational distance (smaller = more accurate).
    pub igd: f64,
    /// Hypervolume of the normalised front (larger = better).
    pub hv: f64,
}

/// Computes the indicators of a front against a reference front, both
/// normalised by the reference (the paper's protocol). The hypervolume
/// reference point is (1.1, …) in normalised space, jMetal-style.
pub fn front_metrics(front: &[Vec<f64>], reference: &[Vec<f64>]) -> FrontMetrics {
    let Some(norm) = Normalizer::from_points(reference) else {
        return FrontMetrics {
            spread: f64::INFINITY,
            igd: f64::INFINITY,
            hv: 0.0,
        };
    };
    let nf = norm.apply_front(front);
    let nr = norm.apply_front(reference);
    let m = reference.first().map(|p| p.len()).unwrap_or(0);
    let ref_point = vec![1.1; m];
    FrontMetrics {
        spread: generalized_spread(&nf, &nr),
        igd: inverted_generational_distance(&nf, &nr),
        hv: hypervolume(&nf, &ref_point),
    }
}

/// Objective vectors of a candidate set.
pub fn objectives_of(set: &[Candidate]) -> Vec<Vec<f64>> {
    set.iter().map(|c| c.objectives.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn run_with(objs: &[[f64; 2]]) -> RunResult {
        RunResult {
            front: objs
                .iter()
                .map(|o| Candidate::evaluated(vec![], o.to_vec(), 0.0))
                .collect(),
            evaluations: objs.len() as u64,
            elapsed: Duration::ZERO,
        }
    }

    #[test]
    fn merge_keeps_only_nondominated() {
        let a = run_with(&[[1.0, 3.0], [3.0, 1.0]]);
        let b = run_with(&[[2.0, 2.0], [4.0, 4.0]]);
        let merged = merge_fronts(&[a, b], 100);
        assert_eq!(merged.len(), 3); // (4,4) dominated by (2,2)
    }

    #[test]
    fn merge_respects_capacity() {
        let runs: Vec<RunResult> = (0..5)
            .map(|k| {
                run_with(&[
                    [k as f64, 10.0 - k as f64],
                    [k as f64 + 0.5, 9.5 - k as f64],
                ])
            })
            .collect();
        let merged = merge_fronts(&runs, 4);
        assert!(merged.len() <= 4);
    }

    #[test]
    fn metrics_perfect_front() {
        let reference: Vec<Vec<f64>> = (0..=10)
            .map(|i| vec![i as f64 / 10.0, 1.0 - i as f64 / 10.0])
            .collect();
        let m = front_metrics(&reference, &reference);
        assert!(m.igd < 1e-12);
        assert!(m.spread < 0.3, "spread {}", m.spread);
        assert!(m.hv > 0.5);
    }

    #[test]
    fn worse_front_scores_worse() {
        let reference: Vec<Vec<f64>> = (0..=10)
            .map(|i| vec![i as f64 / 10.0, 1.0 - i as f64 / 10.0])
            .collect();
        let shifted: Vec<Vec<f64>> = reference
            .iter()
            .map(|p| vec![p[0] + 0.3, p[1] + 0.3])
            .collect();
        let good = front_metrics(&reference, &reference);
        let bad = front_metrics(&shifted, &reference);
        assert!(bad.igd > good.igd);
        assert!(bad.hv < good.hv);
    }

    #[test]
    fn empty_reference_degenerates_gracefully() {
        let m = front_metrics(&[vec![0.0, 0.0]], &[]);
        assert!(m.igd.is_infinite());
        assert_eq!(m.hv, 0.0);
    }
}
