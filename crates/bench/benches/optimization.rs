//! Micro-benchmarks of the optimisation substrate: AGA archive pressure,
//! quality indicators, variation operators, FAST99 analysis and the
//! parallel scaling of AEDB-MLS.

use aedb_mls::mls::{Mls, MlsConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fast99::Fast99;
use mopt::archive::AgaArchive;
use mopt::indicators::{generalized_spread, hypervolume, inverted_generational_distance};
use mopt::ops::{blx_alpha_step, de_rand_1_bin, polynomial_mutation, sbx_crossover};
use mopt::problem::test_problems::Zdt1;
use mopt::solution::{Bounds, Candidate};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// A synthetic 3-objective front of `n` mutually non-dominated points.
fn synthetic_front(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x: f64 = rng.gen();
            let y: f64 = rng.gen_range(0.0..(1.0 - x).max(1e-6));
            vec![x, y, 1.0 - x - y]
        })
        .collect()
}

fn bench_archive(c: &mut Criterion) {
    let mut g = c.benchmark_group("aga_archive_insert_1000");
    for cap in [20usize, 100, 500] {
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            let points = synthetic_front(1000, 7);
            b.iter(|| {
                let mut a = AgaArchive::new(cap, 5);
                for p in &points {
                    a.try_insert(Candidate::evaluated(vec![], p.clone(), 0.0));
                }
                black_box(a.len())
            });
        });
    }
    g.finish();
}

fn bench_indicators(c: &mut Criterion) {
    let front = synthetic_front(100, 1);
    let reference = synthetic_front(200, 2);
    let mut g = c.benchmark_group("indicators_100v200");
    g.bench_function("hypervolume_3d", |b| {
        b.iter(|| black_box(hypervolume(black_box(&front), &[1.1, 1.1, 1.1])))
    });
    g.bench_function("igd", |b| {
        b.iter(|| {
            black_box(inverted_generational_distance(
                black_box(&front),
                &reference,
            ))
        })
    });
    g.bench_function("generalized_spread", |b| {
        b.iter(|| black_box(generalized_spread(black_box(&front), &reference)))
    });
    g.finish();
}

fn bench_operators(c: &mut Criterion) {
    let bounds = Bounds::new(vec![(0.0, 1.0); 5]);
    let mut rng = SmallRng::seed_from_u64(3);
    let p1: Vec<f64> = (0..5).map(|_| rng.gen()).collect();
    let p2: Vec<f64> = (0..5).map(|_| rng.gen()).collect();
    let mut g = c.benchmark_group("variation_operators_5d");
    g.bench_function("blx_alpha_step", |b| {
        b.iter(|| {
            black_box(blx_alpha_step(
                black_box(0.4),
                black_box(0.7),
                0.2,
                &mut rng,
            ))
        })
    });
    g.bench_function("sbx_crossover", |b| {
        b.iter(|| black_box(sbx_crossover(&p1, &p2, 20.0, 0.9, &bounds, &mut rng)))
    });
    g.bench_function("polynomial_mutation", |b| {
        b.iter(|| {
            let mut x = p1.clone();
            polynomial_mutation(&mut x, 20.0, 0.2, &bounds, &mut rng);
            black_box(x)
        })
    });
    g.bench_function("de_rand_1_bin", |b| {
        b.iter(|| {
            black_box(de_rand_1_bin(
                &p1, &p2, &p1, &p2, 0.5, 0.9, &bounds, &mut rng,
            ))
        })
    });
    g.finish();
}

fn bench_fast99(c: &mut Criterion) {
    let mut g = c.benchmark_group("fast99");
    g.sample_size(20);
    g.bench_function("design_5p_1001", |b| {
        let f = Fast99::new(5, 1001);
        b.iter(|| black_box(f.design(2)))
    });
    g.bench_function("indices_5p_1001", |b| {
        let f = Fast99::new(5, 1001);
        let design = f.design(2);
        let outputs: Vec<f64> = design.iter().map(|x| x.iter().sum()).collect();
        b.iter(|| black_box(f.indices(2, &outputs)))
    });
    g.finish();
}

/// Thread-scaling of the MLS engine itself on a cheap problem: the paper's
/// claim is that the local search parallelises trivially; this measures the
/// engine overhead (channel traffic, barriers, lock contention) as threads
/// grow at a fixed total budget.
fn bench_mls_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("mls_thread_scaling_fixed_budget");
    g.sample_size(10);
    let problem = Zdt1::new(6);
    let total: u64 = 4096;
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let cfg = MlsConfig::quick(1, threads, total / threads as u64);
                let mls = Mls::new(cfg);
                b.iter(|| black_box(mls.optimize(&problem, 5)).evaluations);
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_archive,
    bench_indicators,
    bench_operators,
    bench_fast99,
    bench_mls_scaling
);
criterion_main!(benches);
