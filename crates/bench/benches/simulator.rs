//! Micro-benchmarks of the simulation substrate: one full network
//! simulation per density (the paper's unit of fitness cost), a single
//! complete fitness evaluation (10 networks), and — the perf baseline of
//! the batched pipeline — delivery throughput of the spatial grid versus
//! the naive O(n²) scan at 100/200/300 dev/km² on scaled fields.

use aedb::params::AedbParams;
use aedb::problem::AedbProblem;
use aedb::protocol::Aedb;
use aedb::scenario::{Density, Scenario};
use bench_harness::scale::DenseScenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use manet::sim::Simulator;
use mopt::problem::Problem;
use std::hint::black_box;

fn bench_single_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("single_simulation");
    g.sample_size(20);
    for density in Density::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(density.per_km2()),
            &density,
            |b, &density| {
                let scenario = Scenario::paper(density);
                let params = AedbParams::default_config();
                b.iter(|| {
                    let cfg = scenario.sim_config(0);
                    let n = cfg.n_nodes;
                    let report = Simulator::new(cfg, Aedb::new(n, black_box(params))).run();
                    black_box(report.broadcast.coverage())
                });
            },
        );
    }
    g.finish();
}

fn bench_full_evaluation(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_evaluation_10_networks");
    g.sample_size(10);
    for density in Density::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(density.per_km2()),
            &density,
            |b, &density| {
                let problem = AedbProblem::paper(Scenario::paper(density));
                let x = AedbParams::default_config().to_vec();
                b.iter(|| black_box(problem.evaluate(black_box(&x))));
            },
        );
    }
    g.finish();
}

fn bench_flooding_baseline(c: &mut Criterion) {
    use manet::protocol::Flooding;
    c.bench_function("flooding_simulation_d200", |b| {
        let scenario = Scenario::paper(Density::D200);
        b.iter(|| {
            let cfg = scenario.sim_config(0);
            let n = cfg.n_nodes;
            let report = Simulator::new(cfg, Flooding::new(n, (0.0, 0.1))).run();
            black_box(report.broadcast.coverage())
        });
    });
}

/// The tentpole perf baseline: full-simulation (≈ deliveries-bound)
/// throughput with the spatial grid against the naive all-nodes scan, at
/// the paper's three densities scaled out to large node counts. Future
/// PRs compare against these numbers; the 200 dev/km² pair must show the
/// grid ≥ 2× faster.
fn bench_deliveries_grid_vs_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("deliveries_throughput");
    g.sample_size(10);
    for (per_km2, n_nodes) in [(100u32, 250usize), (200, 500), (300, 750)] {
        let scenario = DenseScenario::new(per_km2, n_nodes);
        for naive in [false, true] {
            let id = BenchmarkId::new(if naive { "naive" } else { "grid" }, per_km2);
            g.bench_with_input(id, &naive, |b, &naive| {
                let cfg = scenario.sim_config(0);
                let n = cfg.n_nodes;
                let mut sim =
                    Simulator::new(cfg.clone(), Aedb::new(n, AedbParams::default_config()));
                sim.set_naive_deliveries(naive);
                b.iter(|| {
                    sim.reset_with(cfg.clone(), |p| p.reset(n, AedbParams::default_config()));
                    sim.run_to_end().broadcast.coverage()
                });
            });
        }
    }
    g.finish();
}

/// The incremental-core comparison: one full dense simulation per
/// delivery mode (incremental event-driven grid vs horizon rebuild vs
/// naive scan), plus a shadowed pair exercising the bounded-tail query —
/// the workload that used to force the naive path. The `grid_modes/`
/// prefix is the CI smoke filter for the incremental path.
fn bench_grid_modes(c: &mut Criterion) {
    use manet::protocol::Flooding;
    use manet::sim::DeliveryMode;
    let mut g = c.benchmark_group("grid_modes");
    g.sample_size(10);
    let scenario = DenseScenario::new(200, 500);
    for (name, mode) in [
        ("incremental", DeliveryMode::Incremental),
        ("rebuild", DeliveryMode::HorizonRebuild),
        ("naive", DeliveryMode::Naive),
    ] {
        g.bench_with_input(BenchmarkId::new(name, 500), &mode, |b, &mode| {
            let cfg = scenario.sim_config(0);
            let n = cfg.n_nodes;
            let mut sim = Simulator::new(cfg.clone(), Flooding::new(n, (0.0, 0.1)));
            sim.set_delivery_mode(mode);
            b.iter(|| {
                sim.reset_with(cfg.clone(), |p| *p = Flooding::new(n, (0.0, 0.1)));
                sim.run_to_end().broadcast.coverage()
            });
        });
    }
    // Shadowed: the bounded-tail grid against the naive scan at the
    // 200 dev/km² acceptance density.
    let shadowed = DenseScenario::new(200, 500).with_shadowing(4.0);
    for (name, mode) in [
        ("shadowed_incremental", DeliveryMode::Incremental),
        ("shadowed_naive", DeliveryMode::Naive),
    ] {
        g.bench_with_input(BenchmarkId::new(name, 500), &mode, |b, &mode| {
            let cfg = shadowed.sim_config(0);
            let n = cfg.n_nodes;
            let mut sim = Simulator::new(cfg.clone(), Flooding::new(n, (0.0, 0.1)));
            sim.set_delivery_mode(mode);
            b.iter(|| {
                sim.reset_with(cfg.clone(), |p| *p = Flooding::new(n, (0.0, 0.1)));
                sim.run_to_end().broadcast.coverage()
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_single_simulation,
    bench_full_evaluation,
    bench_flooding_baseline,
    bench_deliveries_grid_vs_naive,
    bench_grid_modes
);
criterion_main!(benches);
