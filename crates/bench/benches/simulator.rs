//! Micro-benchmarks of the simulation substrate: one full network
//! simulation per density (the paper's unit of fitness cost) and a single
//! complete fitness evaluation (10 networks).

use aedb::params::AedbParams;
use aedb::problem::AedbProblem;
use aedb::protocol::Aedb;
use aedb::scenario::{Density, Scenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use manet::sim::Simulator;
use mopt::problem::Problem;
use std::hint::black_box;

fn bench_single_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("single_simulation");
    g.sample_size(20);
    for density in Density::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(density.per_km2()),
            &density,
            |b, &density| {
                let scenario = Scenario::paper(density);
                let params = AedbParams::default_config();
                b.iter(|| {
                    let cfg = scenario.sim_config(0);
                    let n = cfg.n_nodes;
                    let report = Simulator::new(cfg, Aedb::new(n, black_box(params))).run();
                    black_box(report.broadcast.coverage())
                });
            },
        );
    }
    g.finish();
}

fn bench_full_evaluation(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_evaluation_10_networks");
    g.sample_size(10);
    for density in Density::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(density.per_km2()),
            &density,
            |b, &density| {
                let problem = AedbProblem::paper(Scenario::paper(density));
                let x = AedbParams::default_config().to_vec();
                b.iter(|| black_box(problem.evaluate(black_box(&x))));
            },
        );
    }
    g.finish();
}

fn bench_flooding_baseline(c: &mut Criterion) {
    use manet::protocol::Flooding;
    c.bench_function("flooding_simulation_d200", |b| {
        let scenario = Scenario::paper(Density::D200);
        b.iter(|| {
            let cfg = scenario.sim_config(0);
            let n = cfg.n_nodes;
            let report = Simulator::new(cfg, Flooding::new(n, (0.0, 0.1))).run();
            black_box(report.broadcast.coverage())
        });
    });
}

criterion_group!(benches, bench_single_simulation, bench_full_evaluation, bench_flooding_baseline);
criterion_main!(benches);
