//! Micro-benchmarks of the simulation substrate: one full network
//! simulation per density (the paper's unit of fitness cost), a single
//! complete fitness evaluation (10 networks), and — the perf baseline of
//! the batched pipeline — delivery throughput of the spatial grid versus
//! the naive O(n²) scan at 100/200/300 dev/km² on scaled fields.

use aedb::params::AedbParams;
use aedb::problem::AedbProblem;
use aedb::protocol::Aedb;
use aedb::scenario::{Density, Scenario};
use bench_harness::scale::DenseScenario;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use manet::sim::Simulator;
use mopt::problem::Problem;
use std::hint::black_box;

fn bench_single_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("single_simulation");
    g.sample_size(20);
    for density in Density::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(density.per_km2()),
            &density,
            |b, &density| {
                let scenario = Scenario::paper(density);
                let params = AedbParams::default_config();
                b.iter(|| {
                    let cfg = scenario.sim_config(0);
                    let n = cfg.n_nodes;
                    let report = Simulator::new(cfg, Aedb::new(n, black_box(params))).run();
                    black_box(report.broadcast.coverage())
                });
            },
        );
    }
    g.finish();
}

fn bench_full_evaluation(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_evaluation_10_networks");
    g.sample_size(10);
    for density in Density::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(density.per_km2()),
            &density,
            |b, &density| {
                let problem = AedbProblem::paper(Scenario::paper(density));
                let x = AedbParams::default_config().to_vec();
                b.iter(|| black_box(problem.evaluate(black_box(&x))));
            },
        );
    }
    g.finish();
}

fn bench_flooding_baseline(c: &mut Criterion) {
    use manet::protocol::Flooding;
    c.bench_function("flooding_simulation_d200", |b| {
        let scenario = Scenario::paper(Density::D200);
        b.iter(|| {
            let cfg = scenario.sim_config(0);
            let n = cfg.n_nodes;
            let report = Simulator::new(cfg, Flooding::new(n, (0.0, 0.1))).run();
            black_box(report.broadcast.coverage())
        });
    });
}

/// The tentpole perf baseline: full-simulation (≈ deliveries-bound)
/// throughput with the spatial grid against the naive all-nodes scan, at
/// the paper's three densities scaled out to large node counts. Future
/// PRs compare against these numbers; the 200 dev/km² pair must show the
/// grid ≥ 2× faster.
fn bench_deliveries_grid_vs_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("deliveries_throughput");
    g.sample_size(10);
    for (per_km2, n_nodes) in [(100u32, 250usize), (200, 500), (300, 750)] {
        let scenario = DenseScenario::new(per_km2, n_nodes);
        for naive in [false, true] {
            let id = BenchmarkId::new(if naive { "naive" } else { "grid" }, per_km2);
            g.bench_with_input(id, &naive, |b, &naive| {
                let cfg = scenario.sim_config(0);
                let n = cfg.n_nodes;
                let mut sim =
                    Simulator::new(cfg.clone(), Aedb::new(n, AedbParams::default_config()));
                sim.set_naive_deliveries(naive);
                b.iter(|| {
                    sim.reset_with(cfg.clone(), |p| p.reset(n, AedbParams::default_config()));
                    sim.run_to_end().broadcast.coverage()
                });
            });
        }
    }
    g.finish();
}

/// The incremental-core comparison: one full dense simulation per
/// delivery mode (incremental event-driven grid vs horizon rebuild vs
/// naive scan), plus a shadowed pair exercising the bounded-tail query —
/// the workload that used to force the naive path. The `grid_modes/`
/// prefix is the CI smoke filter for the incremental path.
fn bench_grid_modes(c: &mut Criterion) {
    use manet::protocol::Flooding;
    use manet::sim::DeliveryMode;
    let mut g = c.benchmark_group("grid_modes");
    g.sample_size(10);
    let scenario = DenseScenario::new(200, 500);
    for (name, mode) in [
        ("incremental", DeliveryMode::Incremental),
        ("rebuild", DeliveryMode::HorizonRebuild),
        ("naive", DeliveryMode::Naive),
    ] {
        g.bench_with_input(BenchmarkId::new(name, 500), &mode, |b, &mode| {
            let cfg = scenario.sim_config(0);
            let n = cfg.n_nodes;
            let mut sim = Simulator::new(cfg.clone(), Flooding::new(n, (0.0, 0.1)));
            sim.set_delivery_mode(mode);
            b.iter(|| {
                sim.reset_with(cfg.clone(), |p| *p = Flooding::new(n, (0.0, 0.1)));
                sim.run_to_end().broadcast.coverage()
            });
        });
    }
    // Shadowed: the bounded-tail grid against the naive scan at the
    // 200 dev/km² acceptance density.
    let shadowed = DenseScenario::new(200, 500).with_shadowing(4.0);
    for (name, mode) in [
        ("shadowed_incremental", DeliveryMode::Incremental),
        ("shadowed_naive", DeliveryMode::Naive),
    ] {
        g.bench_with_input(BenchmarkId::new(name, 500), &mode, |b, &mode| {
            let cfg = shadowed.sim_config(0);
            let n = cfg.n_nodes;
            let mut sim = Simulator::new(cfg.clone(), Flooding::new(n, (0.0, 0.1)));
            sim.set_delivery_mode(mode);
            b.iter(|| {
                sim.reset_with(cfg.clone(), |p| *p = Flooding::new(n, (0.0, 0.1)));
                sim.run_to_end().broadcast.coverage()
            });
        });
    }
    g.finish();
}

/// The query-side microbenchmark behind the PR-3 overhaul: the candidate
/// filter in isolation, over the same spatial grid, at 400 dev/km². Three
/// data paths answer "which nodes are within the decode radius, exactly,
/// right now":
///
/// * `snapshot_soa` — walk the grid cells straight into a filter over the
///   SoA kinematic lanes (the incremental delivery query),
/// * `dyn_mobility` — same walk, but each position through the virtual
///   `dyn Mobility` dispatch (the historical incremental filter),
/// * `stored_positions` — the horizon-rebuild filter: distance test on
///   bucketed (stale) positions, radius inflated by the staleness margin.
fn bench_candidate_filter(c: &mut Criterion) {
    use manet::geometry::{Field, Vec2};
    use manet::grid::SpatialGrid;
    use manet::mobility::{AnyMobility, Mobility, RandomWalk};
    use manet::snapshot::KinematicSnapshot;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let mut g = c.benchmark_group("candidate_filter");
    g.sample_size(20);
    let n = 2000usize;
    let side = ((n as f64 / 400.0) * 1e6).sqrt(); // 400 dev/km²
    let field = Field::new(side, side);
    let mut rng = SmallRng::seed_from_u64(42);
    let mobility: Vec<AnyMobility> = (0..n)
        .map(|_| {
            let start = Vec2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
            AnyMobility::Walk(RandomWalk::new(
                field,
                start,
                (0.0, 2.0),
                20.0,
                0.0,
                &mut rng,
            ))
        })
        .collect();
    let scenario_cfg = aedb::scenario::DenseScenario::new(400, n).sim_config(0);
    let radius = scenario_cfg.radio.default_range();
    // Probe the simulator's actual cell sizing instead of duplicating its
    // (private) divisor constant — retuning it retunes this bench too.
    let cell = {
        let mut probe = scenario_cfg;
        probe.n_nodes = 1;
        probe.source = 0;
        Simulator::new(probe, manet::protocol::SourceOnly).grid_cell_size()
    };
    let mut grid = SpatialGrid::new(field, cell);
    grid.rebuild(n, 0.0, |i| mobility[i].position(0.0));
    let mut snap = KinematicSnapshot::new(field);
    snap.rebuild(field, mobility.iter().map(|m| m.segment()));
    // Query within the bucket-slack window: the live simulator guarantees
    // buckets lag true positions by at most 0.1 m (via cell-crossing
    // refresh events, which this standalone harness does not replay), and
    // at ≤ 2 m/s a node drifts exactly that far in 0.05 s — so the grid
    // bucketed at t = 0 is still exact-within-slack at this query time.
    let t = 0.05;
    let centers: Vec<Vec2> = (0..64)
        .map(|_| Vec2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    let r2 = radius * radius;

    g.bench_function("snapshot_soa", |b| {
        let mut out: Vec<(usize, Vec2, f64)> = Vec::new();
        b.iter(|| {
            let mut total = 0usize;
            for &center in &centers {
                out.clear();
                grid.for_each_in_cells(center, radius + manet::GRID_BUCKET_SLACK_M, |i| {
                    let p = snap.position(i, t);
                    let d2 = p.distance_sq(center);
                    if d2 <= r2 {
                        out.push((i, p, d2));
                    }
                });
                out.sort_unstable_by_key(|&(i, _, _)| i);
                total += out.len();
            }
            black_box(total)
        });
    });
    g.bench_function("dyn_mobility", |b| {
        let mut out: Vec<usize> = Vec::new();
        b.iter(|| {
            let mut total = 0usize;
            for &center in &centers {
                out.clear();
                grid.for_each_in_cells(center, radius + manet::GRID_BUCKET_SLACK_M, |i| {
                    out.push(i)
                });
                out.retain(|&i| mobility[i].position(t).distance_sq(center) <= r2);
                out.sort_unstable();
                total += out.len();
            }
            black_box(total)
        });
    });
    g.bench_function("stored_positions", |b| {
        let mut out: Vec<usize> = Vec::new();
        b.iter(|| {
            let mut total = 0usize;
            for &center in &centers {
                out.clear();
                // staleness margin: v_max (2 m/s) x rebuild horizon (1 s)
                grid.candidates_within(center, radius + 2.0, &mut out);
                out.sort_unstable();
                total += out.len();
            }
            black_box(total)
        });
    });
    g.finish();
}

/// The PR-7 tentpole in isolation: the batched lane sweep
/// ([`manet::DeliverySweep`]) against the scalar per-candidate filter it
/// replaced, over one large walk-mobility world at the XL density
/// (400 dev/km²). Both paths answer the same query over the same grid and
/// snapshot — bit-identical survivors — so the ratio is pure filter
/// mechanics: gather layout, chunked kernels and event-horizon culling.
fn bench_lane_sweep(c: &mut Criterion) {
    use manet::geometry::{Field, Vec2};
    use manet::grid::SpatialGrid;
    use manet::mobility::{AnyMobility, Mobility, RandomWalk};
    use manet::snapshot::KinematicSnapshot;
    use manet::DeliverySweep;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let mut g = c.benchmark_group("lane_sweep");
    g.sample_size(20);
    let n = 10_000usize;
    let side = ((n as f64 / 400.0) * 1e6).sqrt(); // 400 dev/km²
    let field = Field::new(side, side);
    let mut rng = SmallRng::seed_from_u64(42);
    let mobility: Vec<AnyMobility> = (0..n)
        .map(|_| {
            let start = Vec2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
            AnyMobility::Walk(RandomWalk::new(
                field,
                start,
                (0.0, 2.0),
                20.0,
                0.0,
                &mut rng,
            ))
        })
        .collect();
    let scenario_cfg = aedb::scenario::DenseScenario::new(400, n).sim_config(0);
    let radius = scenario_cfg.radio.default_range();
    let cell = {
        let mut probe = scenario_cfg;
        probe.n_nodes = 1;
        probe.source = 0;
        Simulator::new(probe, manet::protocol::SourceOnly).grid_cell_size()
    };
    let mut grid = SpatialGrid::new(field, cell);
    grid.rebuild(n, 0.0, |i| mobility[i].position(0.0));
    let mut snap = KinematicSnapshot::new(field);
    snap.rebuild(field, mobility.iter().map(|m| m.segment()));
    // Same staleness argument as `candidate_filter`: buckets from t = 0
    // stay exact-within-slack at this query time.
    let t = 0.05;
    let centers: Vec<Vec2> = (0..256)
        .map(|_| Vec2::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    let r2 = radius * radius;

    g.bench_function("scalar", |b| {
        let mut out: Vec<(usize, Vec2, f64)> = Vec::new();
        b.iter(|| {
            let mut total = 0usize;
            for &center in &centers {
                out.clear();
                grid.for_each_in_cells(center, radius + manet::GRID_BUCKET_SLACK_M, |i| {
                    let p = snap.position(i, t);
                    let d2 = p.distance_sq(center);
                    if d2 <= r2 {
                        out.push((i, p, d2));
                    }
                });
                out.sort_unstable_by_key(|&(i, _, _)| i);
                total += out.len();
            }
            black_box(total)
        });
    });
    g.bench_function("batched", |b| {
        let mut sweep = DeliverySweep::new();
        sweep.reset(grid.geometry().n_cells(), n);
        let mut out: Vec<(usize, Vec2, f64)> = Vec::new();
        b.iter(|| {
            let mut total = 0usize;
            for &center in &centers {
                out.clear();
                sweep.filter_into(
                    &grid,
                    &snap,
                    center,
                    t,
                    radius,
                    manet::GRID_BUCKET_SLACK_M,
                    &mut out,
                );
                total += out.len();
            }
            black_box(total)
        });
    });
    g.finish();
}

/// The PR-8 tentpole end to end: the same dense incremental simulation
/// resolved with 1, 2 and 4 stripe workers
/// ([`Simulator::set_delivery_shards`]). Outcomes are bit-identical at
/// every shard count, so the spread is pure scheduling: stripe-parallel
/// query resolution against its sequential merge and batching overhead.
/// On a single-core runner the 2/4-shard rows measure that overhead
/// alone; the speedup only appears with real cores.
fn bench_sharded_query(c: &mut Criterion) {
    use manet::protocol::Flooding;
    let mut g = c.benchmark_group("sharded_query");
    g.sample_size(10);
    let scenario = DenseScenario::new(200, 500);
    for shards in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            let cfg = scenario.sim_config(0);
            let n = cfg.n_nodes;
            let mut sim = Simulator::new(cfg.clone(), Flooding::new(n, (0.0, 0.1)));
            sim.set_delivery_shards(shards);
            b.iter(|| {
                sim.reset_with(cfg.clone(), |p| *p = Flooding::new(n, (0.0, 0.1)));
                sim.run_to_end().broadcast.coverage()
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_single_simulation,
    bench_full_evaluation,
    bench_flooding_baseline,
    bench_deliveries_grid_vs_naive,
    bench_grid_modes,
    bench_candidate_filter,
    bench_lane_sweep,
    bench_sharded_query
);
criterion_main!(benches);
