//! Pluggable persistence for simulation artifacts.
//!
//! The [`Storage`] trait is a minimal byte-oriented key-value interface —
//! `get` / `put` / `scan` / `delete` over namespaced keys — generalised
//! out of the AEDB evaluation cache's hard-coded disk file
//! (`AedbProblem::with_eval_cache_path`) so that everything the resident
//! simulation service persists (eval caches, campaign archives) can
//! outlive the process on *any* backend. Two backends ship today:
//!
//! * [`DiskStorage`] — one file per key under `root/namespace/key`, with
//!   atomic replace-on-write (the historical eval-cache behaviour, and
//!   the layout the service's archives use);
//! * [`MemoryStorage`] — a process-local map, for tests and ephemeral
//!   services. The backend-parity test in the service suite pins the two
//!   to identical observable behaviour.
//!
//! Values are opaque bytes: callers own their serialization (this
//! workspace hand-rolls bit-exact text formats because the vendored
//! `serde` is a no-op stand-in — see the eval-cache and campaign-archive
//! formats). Keys and namespaces are restricted to path-safe tokens so a
//! disk-backed store can map them directly to file names; see
//! [`validate_component`].
//!
//! Failure philosophy (inherited from the eval cache): persistence is an
//! optimisation, never a correctness requirement. Callers are expected to
//! treat a failed `get` like a missing key (recompute) and may treat a
//! failed `put` as best-effort; the backends themselves report real I/O
//! errors faithfully.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;

/// Namespaced byte-oriented key-value persistence.
///
/// Implementations must be usable behind `Arc<dyn Storage>` from several
/// threads at once; each method is individually atomic (a concurrent
/// `get` sees either the previous value or the new one, never a torn
/// write), but no cross-key transaction is offered or needed by the
/// callers in this workspace.
pub trait Storage: Send + Sync {
    /// Returns the value stored under `(namespace, key)`, or `None`.
    fn get(&self, namespace: &str, key: &str) -> io::Result<Option<Vec<u8>>>;

    /// Stores `value` under `(namespace, key)`, replacing atomically.
    fn put(&self, namespace: &str, key: &str, value: &[u8]) -> io::Result<()>;

    /// All keys present in `namespace`, in ascending lexicographic order.
    /// A namespace nothing was ever written to scans as empty.
    fn scan(&self, namespace: &str) -> io::Result<Vec<String>>;

    /// Removes `(namespace, key)`; returns whether it existed.
    fn delete(&self, namespace: &str, key: &str) -> io::Result<bool>;
}

/// Validates a namespace or key token: ASCII letters, digits, `.`, `_`,
/// `-` only (so disk backends can use it verbatim as a file/dir name),
/// non-empty unless `allow_empty`, and not starting with `.` (dot names
/// are reserved for backend temp files and skipped by `scan`).
///
/// Namespaces additionally allow the empty string, which a disk backend
/// maps to its root directory — that is what lets the historical
/// single-file eval cache keep its exact on-disk location behind the
/// trait.
pub fn validate_component(s: &str, allow_empty: bool) -> io::Result<()> {
    if s.is_empty() {
        return if allow_empty {
            Ok(())
        } else {
            Err(io::Error::new(io::ErrorKind::InvalidInput, "empty key"))
        };
    }
    if s.starts_with('.') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("component {s:?} must not start with '.'"),
        ));
    }
    if !s
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("component {s:?} contains non path-safe characters"),
        ));
    }
    Ok(())
}

/// Disk backend: `(namespace, key)` maps to the file
/// `root/namespace/key` (or `root/key` for the empty namespace).
/// Writes go through a dot-prefixed temp file in the same directory and
/// an atomic rename, so a crash mid-`put` never leaves a torn value for
/// the next process to read — the same discipline the eval-cache flush
/// has always used.
#[derive(Debug, Clone)]
pub struct DiskStorage {
    root: PathBuf,
}

impl DiskStorage {
    /// Creates a disk store rooted at `root`. The directory is created
    /// lazily on first `put`, so constructing a store is free and a
    /// read-only consumer of a missing root just sees empty namespaces.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The root directory of this store.
    pub fn root(&self) -> &PathBuf {
        &self.root
    }

    fn dir(&self, namespace: &str) -> PathBuf {
        if namespace.is_empty() {
            self.root.clone()
        } else {
            self.root.join(namespace)
        }
    }

    fn file(&self, namespace: &str, key: &str) -> io::Result<PathBuf> {
        validate_component(namespace, true)?;
        validate_component(key, false)?;
        Ok(self.dir(namespace).join(key))
    }
}

impl Storage for DiskStorage {
    fn get(&self, namespace: &str, key: &str) -> io::Result<Option<Vec<u8>>> {
        let path = self.file(namespace, key)?;
        match std::fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn put(&self, namespace: &str, key: &str, value: &[u8]) -> io::Result<()> {
        let path = self.file(namespace, key)?;
        let dir = self.dir(namespace);
        std::fs::create_dir_all(&dir)?;
        // Dot-prefixed temp name: `scan` skips dot files and
        // `validate_component` rejects dot keys, so the temp file can
        // never shadow or collide with a real key.
        let tmp = dir.join(format!(".tmp.{key}"));
        std::fs::write(&tmp, value)?;
        std::fs::rename(&tmp, &path)
    }

    fn scan(&self, namespace: &str) -> io::Result<Vec<String>> {
        validate_component(namespace, true)?;
        let dir = self.dir(namespace);
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut keys = Vec::new();
        for entry in entries {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue; // sub-namespaces (and anything exotic)
            }
            if let Some(name) = entry.file_name().to_str() {
                // Skip temp files and anything a foreign writer left that
                // could not have been stored through this trait.
                if validate_component(name, false).is_ok() {
                    keys.push(name.to_string());
                }
            }
        }
        keys.sort_unstable();
        Ok(keys)
    }

    fn delete(&self, namespace: &str, key: &str) -> io::Result<bool> {
        let path = self.file(namespace, key)?;
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e),
        }
    }
}

/// In-memory backend: a mutex-guarded ordered map. `scan` order falls out
/// of the `BTreeMap` for free, matching the sorted order [`DiskStorage`]
/// produces — the two backends are behaviourally interchangeable (pinned
/// by the parity tests below and the service's two-backend suite).
#[derive(Debug, Default)]
pub struct MemoryStorage {
    map: Mutex<BTreeMap<(String, String), Vec<u8>>>,
}

impl MemoryStorage {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Storage for MemoryStorage {
    fn get(&self, namespace: &str, key: &str) -> io::Result<Option<Vec<u8>>> {
        validate_component(namespace, true)?;
        validate_component(key, false)?;
        Ok(self
            .map
            .lock()
            .get(&(namespace.to_string(), key.to_string()))
            .cloned())
    }

    fn put(&self, namespace: &str, key: &str, value: &[u8]) -> io::Result<()> {
        validate_component(namespace, true)?;
        validate_component(key, false)?;
        self.map
            .lock()
            .insert((namespace.to_string(), key.to_string()), value.to_vec());
        Ok(())
    }

    fn scan(&self, namespace: &str) -> io::Result<Vec<String>> {
        validate_component(namespace, true)?;
        Ok(self
            .map
            .lock()
            .range((namespace.to_string(), String::new())..)
            .take_while(|((ns, _), _)| ns == namespace)
            .map(|((_, k), _)| k.clone())
            .collect())
    }

    fn delete(&self, namespace: &str, key: &str) -> io::Result<bool> {
        validate_component(namespace, true)?;
        validate_component(key, false)?;
        Ok(self
            .map
            .lock()
            .remove(&(namespace.to_string(), key.to_string()))
            .is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Exercises the full trait surface; both backends must pass verbatim.
    fn exercise(s: &dyn Storage) {
        assert_eq!(s.get("ns", "a").unwrap(), None);
        assert_eq!(s.scan("ns").unwrap(), Vec::<String>::new());
        s.put("ns", "b", b"beta").unwrap();
        s.put("ns", "a", b"alpha").unwrap();
        s.put("other", "a", b"elsewhere").unwrap();
        assert_eq!(s.get("ns", "a").unwrap().as_deref(), Some(&b"alpha"[..]));
        assert_eq!(s.scan("ns").unwrap(), vec!["a", "b"]);
        assert_eq!(s.scan("other").unwrap(), vec!["a"]);
        // overwrite replaces
        s.put("ns", "a", b"alpha2").unwrap();
        assert_eq!(s.get("ns", "a").unwrap().as_deref(), Some(&b"alpha2"[..]));
        // namespaces are disjoint
        assert_eq!(
            s.get("other", "a").unwrap().as_deref(),
            Some(&b"elsewhere"[..])
        );
        // delete reports existence
        assert!(s.delete("ns", "a").unwrap());
        assert!(!s.delete("ns", "a").unwrap());
        assert_eq!(s.scan("ns").unwrap(), vec!["b"]);
        // empty namespace works (the single-file eval-cache shape)
        s.put("", "rootkey", b"r").unwrap();
        assert_eq!(s.get("", "rootkey").unwrap().as_deref(), Some(&b"r"[..]));
        assert!(s.scan("").unwrap().contains(&"rootkey".to_string()));
    }

    #[test]
    fn memory_backend_round_trips() {
        exercise(&MemoryStorage::new());
    }

    #[test]
    fn disk_backend_round_trips() {
        let root = temp_root("roundtrip");
        exercise(&DiskStorage::new(&root));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_values_survive_reopen() {
        let root = temp_root("reopen");
        DiskStorage::new(&root)
            .put("ns", "k", b"persisted")
            .unwrap();
        let reopened = DiskStorage::new(&root);
        assert_eq!(
            reopened.get("ns", "k").unwrap().as_deref(),
            Some(&b"persisted"[..])
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn invalid_components_rejected_by_both_backends() {
        let root = temp_root("invalid");
        let disk = DiskStorage::new(&root);
        let mem = MemoryStorage::new();
        for s in [&disk as &dyn Storage, &mem as &dyn Storage] {
            assert!(s.put("ns", "", b"x").is_err(), "empty key");
            assert!(s.put("ns", "a/b", b"x").is_err(), "path separator");
            assert!(s.put("..", "k", b"x").is_err(), "dotdot namespace");
            assert!(s.put("ns", ".hidden", b"x").is_err(), "dot key");
            assert!(s.get("ns", "../../etc",).is_err(), "traversal");
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn disk_scan_skips_temp_and_foreign_files() {
        let root = temp_root("scan");
        let disk = DiskStorage::new(&root);
        disk.put("ns", "real", b"x").unwrap();
        std::fs::write(root.join("ns").join(".tmp.orphan"), b"crashed").unwrap();
        std::fs::create_dir_all(root.join("ns").join("subdir")).unwrap();
        assert_eq!(disk.scan("ns").unwrap(), vec!["real"]);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn backends_agree_on_scan_order() {
        let root = temp_root("order");
        let disk = DiskStorage::new(&root);
        let mem = MemoryStorage::new();
        for s in [&disk as &dyn Storage, &mem as &dyn Storage] {
            for k in ["zeta", "alpha", "mid-3", "mid-10"] {
                s.put("ns", k, k.as_bytes()).unwrap();
            }
        }
        assert_eq!(disk.scan("ns").unwrap(), mem.scan("ns").unwrap());
        let _ = std::fs::remove_dir_all(&root);
    }
}
