//! The resident service: a worker thread draining priority FIFO queues of
//! [`JobSpec`]s, streaming [`JobEvent`]s to each submitter and persisting
//! campaign results through a pluggable [`Storage`] backend.
//!
//! ## Lifecycle of a job
//!
//! ```text
//! submit ──▶ Accepted ──▶ (queued) ──▶ Started ──▶ Generation*/Progress* ──▶ Finished
//!     │                        │                                        └──▶ Failed
//!     └──▶ Failed(Rejected)    └──(cancel)──▶ Failed(Cancelled)
//! ```
//!
//! Every job emits exactly one terminal event; [`JobHandle::wait`] blocks
//! until it arrives. Cancellation is cooperative: a flag checked between
//! simulate seeds, between campaign repetitions and — through the
//! [`RunObserver`] hooks — at MOEA generation boundaries, so a cancelled
//! campaign stops within one generation without poisoning the service.
//!
//! Campaigns running the island optimizer
//! ([`AlgorithmKind::Island`](crate::campaign::AlgorithmKind::Island))
//! stream [`JobEvent::AnytimeFront`] epochs instead of `Generation`
//! snapshots: each carries the global anytime archive — the best-so-far
//! front, hypervolume non-decreasing over epochs — so a client that
//! cancels mid-campaign has already received the best front the budget
//! bought (the terminal event is still `Failed(Cancelled)` and nothing
//! partial is archived).
//!
//! ## Determinism and the campaign archive
//!
//! A campaign is a pure function of its [`CampaignSpec`] (seeds are
//! implied by [`rep_seed`](crate::campaign::rep_seed)). The service
//! exploits that twice:
//!
//! * results are archived under the spec's fingerprint (namespace
//!   `campaigns`); resubmitting a finished campaign **replays** the
//!   archived result — bit-identical fronts, zero simulation — and marks
//!   the terminal event `replayed`;
//! * the AEDB eval cache is bound to the same backend (namespace
//!   `eval-cache`, keyed by the problem's cache fingerprint), so even a
//!   *fresh* campaign on a warm scenario skips simulations.
//!
//! With [`DiskStorage`] both survive the process; with
//! [`MemoryStorage`](store::MemoryStorage) they live as long as the
//! service (the two backends behave identically otherwise, pinned by the
//! service test-suite).

use crate::campaign::{
    algorithm_for, rep_seed, AlgorithmKind, CampaignResult, CampaignSpec, RepRun,
};
use crate::job::{
    JobError, JobEvent, JobId, JobOutput, JobSpec, Priority, ProtocolSpec, SimSummary, SimulateSpec,
};
use aedb::problem::AedbProblem;
use aedb::protocol::Aedb;
use manet::protocol::{Flooding, Protocol, SourceOnly};
use manet::sim::{SimReport, Simulator};
use mopt::algorithm::RunObserver;
use mopt::dominance::non_dominated;
use mopt::solution::Candidate;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use store::{DiskStorage, MemoryStorage, Storage};

/// Storage namespace holding campaign archives (key = spec fingerprint).
pub const CAMPAIGN_NAMESPACE: &str = "campaigns";
/// Storage namespace holding AEDB eval caches (key = cache fingerprint).
pub const EVAL_CACHE_NAMESPACE: &str = "eval-cache";

/// Terminal payload of a successful job, as returned by
/// [`JobHandle::wait`].
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job that produced this result.
    pub job: JobId,
    /// Whether a campaign was answered from the archive without
    /// re-simulating.
    pub replayed: bool,
    /// The payload.
    pub output: JobOutput,
}

/// The submitter's end of a job: its id and the ordered event stream.
#[derive(Debug)]
pub struct JobHandle {
    id: JobId,
    events: mpsc::Receiver<JobEvent>,
}

impl JobHandle {
    /// The job's identifier (pass to
    /// [`SimService::cancel`]).
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Blocks for the next event; `None` once the stream is exhausted
    /// (after the terminal event, or if the service died).
    pub fn next_event(&self) -> Option<JobEvent> {
        self.events.recv().ok()
    }

    /// Non-blocking poll for the next event.
    pub fn try_event(&self) -> Option<JobEvent> {
        self.events.try_recv().ok()
    }

    /// Blocks until the job's terminal event and returns its payload,
    /// discarding intermediate progress events (drain them first with
    /// [`next_event`](Self::next_event) if you want them).
    pub fn wait(self) -> Result<JobResult, JobError> {
        while let Some(ev) = self.next_event() {
            match ev {
                JobEvent::Finished {
                    job,
                    replayed,
                    output,
                } => {
                    return Ok(JobResult {
                        job,
                        replayed,
                        output,
                    })
                }
                JobEvent::Failed { error, .. } => return Err(error),
                _ => {}
            }
        }
        Err(JobError::Execution(
            "service dropped the job's event channel".into(),
        ))
    }
}

/// Per-job control block shared between the submitter-facing service API
/// and the worker executing the job.
struct JobCtl {
    cancelled: AtomicBool,
}

impl JobCtl {
    fn new() -> Arc<Self> {
        Arc::new(JobCtl {
            cancelled: AtomicBool::new(false),
        })
    }
    fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }
    fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

/// The event channel of one job. `mpsc::Sender` is not `Sync`, but the
/// generation observer must be (`RunObserver: Sync`), hence the mutex;
/// send failures mean the submitter dropped the handle and are ignored —
/// the job still runs to completion and its archive is still written.
struct EventSender(Mutex<mpsc::Sender<JobEvent>>);

impl EventSender {
    fn send(&self, ev: JobEvent) {
        let _ = self.0.lock().expect("event sender poisoned").send(ev);
    }
}

struct Queued {
    id: JobId,
    spec: JobSpec,
    ctl: Arc<JobCtl>,
    events: EventSender,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shutdown {
    /// Accepting and executing jobs.
    Running,
    /// No new jobs; queued jobs still execute, then the worker exits.
    Drain,
    /// No new jobs; queued jobs fail as cancelled, then the worker exits.
    Now,
}

struct QueueState {
    /// One FIFO per [`Priority`], drained highest-priority-first.
    queues: [VecDeque<Queued>; 3],
    /// Control blocks of queued *and* running jobs, for cancel-by-id.
    registry: HashMap<JobId, Arc<JobCtl>>,
    shutdown: Shutdown,
}

struct Inner {
    storage: Arc<dyn Storage>,
    state: Mutex<QueueState>,
    available: Condvar,
}

/// The resident simulation service. See the [module docs](self) for the
/// lifecycle; construction spawns the worker thread, dropping the service
/// shuts it down (cancelling queued jobs — call
/// [`drain`](Self::drain) instead to let them finish).
pub struct SimService {
    inner: Arc<Inner>,
    worker: Option<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl SimService {
    /// Starts the service on the given storage backend.
    pub fn new(storage: Arc<dyn Storage>) -> Self {
        let inner = Arc::new(Inner {
            storage,
            state: Mutex::new(QueueState {
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                registry: HashMap::new(),
                shutdown: Shutdown::Running,
            }),
            available: Condvar::new(),
        });
        let worker_inner = Arc::clone(&inner);
        let worker = std::thread::Builder::new()
            .name("sim-service".into())
            .spawn(move || worker_loop(worker_inner))
            .expect("spawning the service worker");
        SimService {
            inner,
            worker: Some(worker),
            next_id: AtomicU64::new(0),
        }
    }

    /// Starts the service on a fresh in-memory backend (tests,
    /// throwaway sessions — nothing survives the service).
    pub fn in_memory() -> Self {
        Self::new(Arc::new(MemoryStorage::new()))
    }

    /// Starts the service on a [`DiskStorage`] rooted at `root` —
    /// campaign archives and eval caches survive the process, and a
    /// service restarted on the same root replays finished campaigns.
    pub fn on_disk(root: impl Into<PathBuf>) -> Self {
        Self::new(Arc::new(DiskStorage::new(root)))
    }

    /// The storage backend (e.g. to inspect archives out-of-band).
    pub fn storage(&self) -> &Arc<dyn Storage> {
        &self.inner.storage
    }

    /// Submits a job. The returned handle streams the job's events;
    /// invalid specs fail immediately with
    /// [`JobError::Rejected`] (no `Accepted` event).
    pub fn submit(&self, spec: JobSpec, priority: Priority) -> JobHandle {
        let id = JobId(self.next_id.fetch_add(1, Ordering::SeqCst) + 1);
        let (tx, rx) = mpsc::channel();
        let events = EventSender(Mutex::new(tx));
        let handle = JobHandle { id, events: rx };

        if let Err(why) = validate(&spec) {
            events.send(JobEvent::Failed {
                job: id,
                error: JobError::Rejected(why),
            });
            return handle;
        }

        let ctl = JobCtl::new();
        let mut st = self.inner.state.lock().expect("service state poisoned");
        if st.shutdown != Shutdown::Running {
            events.send(JobEvent::Failed {
                job: id,
                error: JobError::Rejected("service is shutting down".into()),
            });
            return handle;
        }
        events.send(JobEvent::Accepted { job: id });
        st.registry.insert(id, Arc::clone(&ctl));
        st.queues[priority.index()].push_back(Queued {
            id,
            spec,
            ctl,
            events,
        });
        drop(st);
        self.inner.available.notify_all();
        handle
    }

    /// Requests cancellation of a queued or running job. Returns whether
    /// the job was still known (false: already finished, or never
    /// existed). The job's stream terminates with
    /// [`JobError::Cancelled`] once the flag takes effect.
    pub fn cancel(&self, id: JobId) -> bool {
        let st = self.inner.state.lock().expect("service state poisoned");
        match st.registry.get(&id) {
            Some(ctl) => {
                ctl.cancel();
                true
            }
            None => false,
        }
    }

    /// Fingerprint keys of every archived campaign on the backend.
    pub fn archived_campaigns(&self) -> std::io::Result<Vec<String>> {
        self.inner.storage.scan(CAMPAIGN_NAMESPACE)
    }

    /// Graceful shutdown: stops accepting jobs, lets everything already
    /// queued run to completion, then stops the worker.
    pub fn drain(mut self) {
        self.stop(Shutdown::Drain);
    }

    /// Immediate shutdown: stops accepting jobs and cancels everything
    /// queued or running (their streams terminate with
    /// [`JobError::Cancelled`]). This is also what dropping the service
    /// does.
    pub fn shutdown(mut self) {
        self.stop(Shutdown::Now);
    }

    fn stop(&mut self, mode: Shutdown) {
        {
            let mut st = self.inner.state.lock().expect("service state poisoned");
            st.shutdown = mode;
            if mode == Shutdown::Now {
                for ctl in st.registry.values() {
                    ctl.cancel();
                }
            }
        }
        self.inner.available.notify_all();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for SimService {
    fn drop(&mut self) {
        if self.worker.is_some() {
            self.stop(Shutdown::Now);
        }
    }
}

/// Pre-queue validation; errors become [`JobError::Rejected`].
fn validate(spec: &JobSpec) -> Result<(), String> {
    match spec {
        JobSpec::Simulate(s) => {
            if s.seeds.is_empty() {
                return Err("simulate job needs at least one seed".into());
            }
            if s.world.n_nodes() == 0 {
                return Err("world has no nodes".into());
            }
            Ok(())
        }
        JobSpec::Campaign(c) => {
            if c.budget.reps == 0 {
                return Err("campaign needs at least one repetition".into());
            }
            if c.budget.evals == 0 {
                return Err("campaign needs a non-zero evaluation budget".into());
            }
            Ok(())
        }
    }
}

fn worker_loop(inner: Arc<Inner>) {
    loop {
        let next = {
            let mut st = inner.state.lock().expect("service state poisoned");
            loop {
                if let Some(job) = st.queues.iter_mut().find_map(VecDeque::pop_front) {
                    break Some(job);
                }
                match st.shutdown {
                    Shutdown::Running => {
                        st = inner.available.wait(st).expect("service state poisoned");
                    }
                    Shutdown::Drain | Shutdown::Now => break None,
                }
            }
        };
        let Some(job) = next else { return };
        execute(&inner, job);
    }
}

fn execute(inner: &Inner, q: Queued) {
    let outcome = if q.ctl.is_cancelled() {
        Err(JobError::Cancelled)
    } else {
        q.events.send(JobEvent::Started { job: q.id });
        match q.spec {
            JobSpec::Simulate(ref s) => run_simulate(q.id, s, &q.ctl, &q.events)
                .map(|summaries| (false, JobOutput::Simulated(summaries))),
            JobSpec::Campaign(ref c) => run_campaign(inner, q.id, c, &q.ctl, &q.events)
                .map(|(replayed, result)| (replayed, JobOutput::Campaign(result))),
        }
    };
    match outcome {
        Ok((replayed, output)) => q.events.send(JobEvent::Finished {
            job: q.id,
            replayed,
            output,
        }),
        Err(error) => q.events.send(JobEvent::Failed { job: q.id, error }),
    }
    inner
        .state
        .lock()
        .expect("service state poisoned")
        .registry
        .remove(&q.id);
}

fn run_simulate(
    job: JobId,
    spec: &SimulateSpec,
    ctl: &JobCtl,
    events: &EventSender,
) -> Result<Vec<SimSummary>, JobError> {
    match spec.protocol {
        ProtocolSpec::Aedb(params) => {
            simulate_seeds(job, spec, ctl, events, |n| Aedb::new(n, params))
        }
        ProtocolSpec::Flooding { jitter } => {
            simulate_seeds(job, spec, ctl, events, |n| Flooding::new(n, jitter))
        }
        ProtocolSpec::SourceOnly => simulate_seeds(job, spec, ctl, events, |_| SourceOnly),
    }
}

fn simulate_seeds<P: Protocol>(
    job: JobId,
    spec: &SimulateSpec,
    ctl: &JobCtl,
    events: &EventSender,
    make_protocol: impl Fn(usize) -> P,
) -> Result<Vec<SimSummary>, JobError> {
    let total = spec.seeds.len();
    let n = spec.world.n_nodes();
    let mut out = Vec::with_capacity(total);
    let mut sim: Option<Simulator<P>> = None;
    for (i, &seed) in spec.seeds.iter().enumerate() {
        if ctl.is_cancelled() {
            return Err(JobError::Cancelled);
        }
        let mut world = spec.world.clone();
        world.seed = seed;
        // First seed builds the simulator; later seeds reuse its
        // pre-allocated structures through the reset path.
        let report = match sim.as_mut() {
            None => {
                let mut s = Simulator::from_world(&world, make_protocol(n));
                let report = s.run_to_end();
                sim = Some(s);
                report
            }
            Some(s) => {
                let fresh = make_protocol(n);
                s.reset_world_with(&world, |p| *p = fresh);
                s.run_to_end()
            }
        };
        out.push(summarize(seed, &report));
        events.send(JobEvent::Progress {
            job,
            completed: i + 1,
            total,
        });
    }
    Ok(out)
}

fn summarize(seed: u64, report: &SimReport) -> SimSummary {
    SimSummary {
        seed,
        n_nodes: report.n_nodes,
        coverage: report.broadcast.coverage(),
        broadcast_time: report.broadcast.broadcast_time(),
        forwardings: report.broadcast.forwardings,
        energy_dbm_sum: report.broadcast.energy_dbm_sum,
        beacons_sent: report.counters.beacons_sent,
        data_sent: report.counters.data_sent,
        collision_losses: report.counters.collision_losses,
    }
}

/// Streams per-generation (or, for island campaigns, per-epoch anytime)
/// front snapshots of one repetition into the job's event channel and
/// forwards the job's cancellation flag into the run.
struct StreamObserver<'a> {
    job: JobId,
    rep: usize,
    /// Island campaigns report the global anytime archive — already
    /// mutually non-dominated — as [`JobEvent::AnytimeFront`] epochs;
    /// every other algorithm reports its raw pool, filtered here, as
    /// [`JobEvent::Generation`] snapshots.
    anytime: bool,
    ctl: &'a JobCtl,
    events: &'a EventSender,
}

impl RunObserver for StreamObserver<'_> {
    fn on_generation(&self, generation: u64, evaluations: u64, pool: &[Candidate]) {
        if self.anytime {
            self.events.send(JobEvent::AnytimeFront {
                job: self.job,
                rep: self.rep,
                epoch: generation,
                evaluations,
                front: pool.iter().map(|c| c.objectives.clone()).collect(),
            });
            return;
        }
        let front: Vec<Vec<f64>> = non_dominated(pool)
            .iter()
            .map(|c| c.objectives.clone())
            .collect();
        self.events.send(JobEvent::Generation {
            job: self.job,
            rep: self.rep,
            generation,
            evaluations,
            front,
        });
    }

    fn cancelled(&self) -> bool {
        self.ctl.is_cancelled()
    }
}

fn run_campaign(
    inner: &Inner,
    job: JobId,
    spec: &CampaignSpec,
    ctl: &JobCtl,
    events: &EventSender,
) -> Result<(bool, CampaignResult), JobError> {
    let fingerprint = spec.fingerprint();
    let key = format!("{fingerprint:016x}");

    // Replay path: a finished campaign is answered from the archive —
    // bit-identical result, no simulation, no Generation events.
    if let Ok(Some(bytes)) = inner.storage.get(CAMPAIGN_NAMESPACE, &key) {
        if let Some(result) = CampaignResult::decode(&bytes, fingerprint) {
            return Ok((true, result));
        }
    }

    // Fresh run. The problem's eval cache binds to the service backend,
    // so repeated campaigns on the same scenario share simulations even
    // when their (algorithm, budget) differ.
    let problem = AedbProblem::paper(spec.scenario.clone()).with_parallel_batches(true);
    let cache_key = format!("{:016x}", problem.cache_fingerprint());
    let problem = problem.with_eval_cache_storage(
        Arc::clone(&inner.storage),
        EVAL_CACHE_NAMESPACE,
        cache_key,
    );

    let total = spec.budget.reps;
    let mut reps = Vec::with_capacity(total);
    for rep in 0..total {
        if ctl.is_cancelled() {
            return Err(JobError::Cancelled);
        }
        let algorithm = algorithm_for(&spec.budget, spec.algorithm);
        let seed = rep_seed(rep);
        let observer = StreamObserver {
            job,
            rep,
            anytime: spec.algorithm == AlgorithmKind::Island,
            ctl,
            events,
        };
        let run = algorithm.run_observed(&problem, seed, &observer);
        if ctl.is_cancelled() {
            // The observer stopped the run early; its partial front must
            // not be archived.
            return Err(JobError::Cancelled);
        }
        reps.push(RepRun {
            seed,
            evaluations: run.evaluations,
            front: run.front,
        });
        events.send(JobEvent::Progress {
            job,
            completed: rep + 1,
            total,
        });
    }

    let result = CampaignResult {
        algorithm: spec.algorithm,
        reps,
    };
    inner
        .storage
        .put(CAMPAIGN_NAMESPACE, &key, &result.encode(spec))
        .map_err(|e| JobError::Execution(format!("archiving campaign {key}: {e}")))?;
    problem
        .flush_eval_cache()
        .map_err(|e| JobError::Execution(format!("flushing eval cache: {e}")))?;
    Ok((false, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{AlgorithmKind, CampaignBudget};
    use aedb::scenario::{Density, Scenario};
    use manet::world::{NodeGroup, WorldSpec};

    fn tiny_world() -> WorldSpec {
        WorldSpec::builder()
            .group(NodeGroup::new(6))
            .build()
            .expect("valid world")
    }

    #[test]
    fn simulate_job_runs_each_seed() {
        let service = SimService::in_memory();
        let handle = service.submit(
            JobSpec::Simulate(SimulateSpec {
                world: tiny_world(),
                protocol: ProtocolSpec::Flooding { jitter: (0.0, 0.0) },
                seeds: vec![1, 2, 3],
            }),
            Priority::High,
        );
        let result = handle.wait().expect("job succeeds");
        assert!(!result.replayed);
        let summaries = result.output.simulated().expect("simulate output");
        assert_eq!(summaries.len(), 3);
        assert_eq!(
            summaries.iter().map(|s| s.seed).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        for s in summaries {
            assert_eq!(s.n_nodes, 6);
        }
        service.drain();
    }

    #[test]
    fn rejected_jobs_fail_without_running() {
        let service = SimService::in_memory();
        let handle = service.submit(
            JobSpec::Simulate(SimulateSpec {
                world: tiny_world(),
                protocol: ProtocolSpec::SourceOnly,
                seeds: vec![],
            }),
            Priority::Normal,
        );
        match handle.wait() {
            Err(JobError::Rejected(_)) => {}
            other => panic!("expected rejection, got {other:?}"),
        }
        let handle = service.submit(
            JobSpec::Campaign(CampaignSpec {
                scenario: Scenario::quick(Density::D100, 1),
                algorithm: AlgorithmKind::Nsga2,
                budget: CampaignBudget::quick(100, 0),
            }),
            Priority::Normal,
        );
        assert!(matches!(handle.wait(), Err(JobError::Rejected(_))));
        service.drain();
    }

    #[test]
    fn cancel_of_queued_job_and_unknown_id() {
        let service = SimService::in_memory();
        // A queued job the worker hasn't reached yet can be raced — but
        // cancelling an already-finished or unknown id reports false.
        assert!(!service.cancel(JobId(999)));
        let handle = service.submit(
            JobSpec::Simulate(SimulateSpec {
                world: tiny_world(),
                protocol: ProtocolSpec::SourceOnly,
                seeds: vec![1],
            }),
            Priority::Normal,
        );
        let _ = handle.wait();
        service.drain();
    }

    #[test]
    fn drain_finishes_queued_jobs() {
        let service = SimService::in_memory();
        let handles: Vec<JobHandle> = (0..3)
            .map(|i| {
                service.submit(
                    JobSpec::Simulate(SimulateSpec {
                        world: tiny_world(),
                        protocol: ProtocolSpec::SourceOnly,
                        seeds: vec![i],
                    }),
                    Priority::Low,
                )
            })
            .collect();
        service.drain();
        for handle in handles {
            handle.wait().expect("drained job still completes");
        }
    }

    #[test]
    fn shutdown_cancels_queued_jobs() {
        let service = SimService::in_memory();
        // Enough queued work that some of it must still be pending when
        // shutdown lands.
        let handles: Vec<JobHandle> = (0..8)
            .map(|_| {
                service.submit(
                    JobSpec::Campaign(CampaignSpec {
                        scenario: Scenario::quick(Density::D100, 1),
                        algorithm: AlgorithmKind::Nsga2,
                        budget: CampaignBudget::quick(40, 1),
                    }),
                    Priority::Normal,
                )
            })
            .collect();
        service.shutdown();
        let mut cancelled = 0;
        for handle in handles {
            if let Err(JobError::Cancelled) = handle.wait() {
                cancelled += 1;
            }
        }
        assert!(cancelled > 0, "shutdown should cancel pending jobs");
    }
}
