//! Job vocabulary of the resident service: what can be submitted
//! ([`JobSpec`]), how urgently ([`Priority`]), what streams back while it
//! runs ([`JobEvent`]) and what comes out the other end ([`JobOutput`] /
//! [`JobError`]).
//!
//! Everything here is plain data — the scheduling and execution machinery
//! lives in [`crate::service`], the campaign vocabulary in
//! [`crate::campaign`].

use crate::campaign::{CampaignResult, CampaignSpec};
use aedb::params::AedbParams;
use manet::world::WorldSpec;

/// Opaque job identifier handed out by
/// [`SimService::submit`](crate::service::SimService::submit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Scheduling class. The service drains strictly by priority and FIFO
/// within one class, so a `High` job submitted late still overtakes every
/// queued `Normal` campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Interactive probes (single simulations, quick checks).
    High,
    /// The default for campaigns.
    #[default]
    Normal,
    /// Background sweeps that should never delay interactive work.
    Low,
}

impl Priority {
    /// Queue index, highest priority first.
    pub(crate) fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Which broadcast protocol a [`Simulate`](JobSpec::Simulate) job runs.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolSpec {
    /// AEDB with a fixed parameter configuration.
    Aedb(AedbParams),
    /// Blind flooding with the given forwarding-jitter interval (s).
    Flooding {
        /// Uniform forwarding delay interval; `(0.0, 0.0)` re-broadcasts
        /// immediately.
        jitter: (f64, f64),
    },
    /// Only the source transmits (coverage lower bound).
    SourceOnly,
}

/// A batch of raw simulator runs: the same world, one run per seed.
#[derive(Debug, Clone)]
pub struct SimulateSpec {
    /// The scenario; its own `seed` field is overridden per run by
    /// [`seeds`](Self::seeds).
    pub world: WorldSpec,
    /// The protocol under test.
    pub protocol: ProtocolSpec,
    /// One independent simulation per seed, reported in order.
    pub seeds: Vec<u64>,
}

/// Headline numbers of one simulation run (a flattened
/// [`SimReport`](manet::sim::SimReport)).
#[derive(Debug, Clone, PartialEq)]
pub struct SimSummary {
    /// The seed this run used.
    pub seed: u64,
    /// Nodes simulated.
    pub n_nodes: usize,
    /// Devices (≠ source) that received the broadcast.
    pub coverage: usize,
    /// Last reception minus source send (s); `0` if nobody received.
    pub broadcast_time: f64,
    /// Message forwardings (source's own send excluded).
    pub forwardings: usize,
    /// Sum of forwarding transmit powers (dBm), the paper's energy proxy.
    pub energy_dbm_sum: f64,
    /// Beacons transmitted network-wide.
    pub beacons_sent: u64,
    /// Data frames transmitted network-wide.
    pub data_sent: u64,
    /// Frames lost to collisions.
    pub collision_losses: u64,
}

/// What a job asks the service to do.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// Run the simulator directly: one world, one run per seed.
    Simulate(SimulateSpec),
    /// Run a full tuning campaign (algorithm × seeded repetitions) on a
    /// scenario; the result is archived and replayed on resubmission.
    Campaign(CampaignSpec),
}

/// Terminal payload of a successful job.
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// Per-seed summaries of a [`JobSpec::Simulate`] job, in seed order.
    Simulated(Vec<SimSummary>),
    /// The repetition results of a [`JobSpec::Campaign`] job.
    Campaign(CampaignResult),
}

impl JobOutput {
    /// The campaign result, if this was a campaign job.
    pub fn campaign(&self) -> Option<&CampaignResult> {
        match self {
            JobOutput::Campaign(c) => Some(c),
            JobOutput::Simulated(_) => None,
        }
    }

    /// The simulation summaries, if this was a simulate job.
    pub fn simulated(&self) -> Option<&[SimSummary]> {
        match self {
            JobOutput::Simulated(s) => Some(s),
            JobOutput::Campaign(_) => None,
        }
    }
}

/// Why a job did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// Cancelled by [`SimService::cancel`](crate::service::SimService::cancel)
    /// or a non-draining shutdown.
    Cancelled,
    /// The spec was refused before execution (e.g. no seeds, zero reps).
    Rejected(String),
    /// Execution started but failed (e.g. the storage backend errored).
    Execution(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Cancelled => write!(f, "job cancelled"),
            JobError::Rejected(why) => write!(f, "job rejected: {why}"),
            JobError::Execution(why) => write!(f, "job failed: {why}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Progress stream of one job, delivered in order on the submitting
/// handle's channel. Every job ends with exactly one terminal event
/// ([`Finished`](JobEvent::Finished) or [`Failed`](JobEvent::Failed)).
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// The spec passed validation and was queued.
    Accepted {
        /// The job.
        job: JobId,
    },
    /// The worker picked the job up.
    Started {
        /// The job.
        job: JobId,
    },
    /// A campaign repetition finished a generation; `front` holds the
    /// objective vectors of the current non-dominated set. Replayed
    /// campaigns emit no `Generation` events (nothing is simulated).
    Generation {
        /// The job.
        job: JobId,
        /// Repetition index within the campaign.
        rep: usize,
        /// Generation index (0 = evaluated initial population).
        generation: u64,
        /// Evaluations consumed so far in this repetition.
        evaluations: u64,
        /// Objective vectors of the current front snapshot.
        front: Vec<Vec<f64>>,
    },
    /// An [`Island`](crate::campaign::AlgorithmKind::Island) campaign
    /// repetition finished an epoch; `front` holds the objective vectors
    /// of the **global anytime archive** — the best-so-far front, whose
    /// hypervolume is non-decreasing over epochs (the island crate's
    /// deterministic-merge contract). Island campaigns emit this instead
    /// of [`Generation`](Self::Generation); replays emit neither.
    AnytimeFront {
        /// The job.
        job: JobId,
        /// Repetition index within the campaign.
        rep: usize,
        /// Epoch index (0 = merged initial island populations).
        epoch: u64,
        /// Evaluations consumed so far in this repetition.
        evaluations: u64,
        /// Objective vectors of the anytime front.
        front: Vec<Vec<f64>>,
    },
    /// Coarse progress: `completed` of `total` work rows done (campaign
    /// repetitions, or seeds of a simulate job).
    Progress {
        /// The job.
        job: JobId,
        /// Rows finished.
        completed: usize,
        /// Total rows.
        total: usize,
    },
    /// Terminal: the job succeeded. `replayed` marks a campaign answered
    /// from the archive without re-simulating.
    Finished {
        /// The job.
        job: JobId,
        /// Whether the result came from the campaign archive.
        replayed: bool,
        /// The payload.
        output: JobOutput,
    },
    /// Terminal: the job did not produce a result.
    Failed {
        /// The job.
        job: JobId,
        /// Why.
        error: JobError,
    },
}

impl JobEvent {
    /// The job this event belongs to.
    pub fn job(&self) -> JobId {
        match self {
            JobEvent::Accepted { job }
            | JobEvent::Started { job }
            | JobEvent::Generation { job, .. }
            | JobEvent::AnytimeFront { job, .. }
            | JobEvent::Progress { job, .. }
            | JobEvent::Finished { job, .. }
            | JobEvent::Failed { job, .. } => *job,
        }
    }

    /// Whether this is a terminal event.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobEvent::Finished { .. } | JobEvent::Failed { .. })
    }
}
