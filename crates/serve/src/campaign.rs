//! Campaign vocabulary: which algorithm runs, with what budget, on which
//! scenario — and the durable archive format campaign results round-trip
//! through.
//!
//! This module is the **single source of truth** for how the three
//! compared algorithms are instantiated and seeded; the bench harness
//! (`bench-harness`) delegates here, so a campaign submitted through
//! [`SimService`](crate::service::SimService) is constructed exactly like
//! the harness's sharded experiment rows and produces bit-identical
//! fronts (pinned by the service test-suite).

use aedb::scenario::Scenario;
use aedb_mls::mls::{CriteriaChoice, Mls, MlsConfig};
use island::{IslandConfig, IslandOptimizer};
use moea::cellde::{CellDe, CellDeConfig};
use moea::nsga2::{Nsga2, Nsga2Config};
use mopt::algorithm::MoAlgorithm;
use mopt::solution::Candidate;

/// The algorithms a campaign can run: the paper's three compared
/// optimisers plus the asynchronous island extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// CellDE (Durillo et al. 2008).
    CellDe,
    /// NSGA-II (Deb et al. 2002).
    Nsga2,
    /// AEDB-MLS — the paper's contribution.
    Mls,
    /// The asynchronous island optimizer (`crates/island`) — not part of
    /// the paper's comparison ([`ALL`](Self::ALL)), but campaigns running
    /// it stream a live anytime front
    /// ([`JobEvent::AnytimeFront`](crate::job::JobEvent::AnytimeFront)).
    Island,
}

impl AlgorithmKind {
    /// The paper's three compared algorithms, in Table IV's row/column
    /// order. [`Island`](Self::Island) is deliberately excluded — the
    /// experiment tables reproduce the paper's comparison; island rows are
    /// reported separately.
    pub const ALL: [AlgorithmKind; 3] = [
        AlgorithmKind::CellDe,
        AlgorithmKind::Nsga2,
        AlgorithmKind::Mls,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::CellDe => "CellDE",
            AlgorithmKind::Nsga2 => "NSGAII",
            AlgorithmKind::Mls => "AEDB-MLS",
            AlgorithmKind::Island => "Island",
        }
    }

    /// Inverse of [`name`](Self::name) (used by the archive decoder).
    pub fn from_name(name: &str) -> Option<Self> {
        AlgorithmKind::ALL
            .into_iter()
            .chain([AlgorithmKind::Island])
            .find(|k| k.name() == name)
    }
}

/// Evaluation budget of one campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignBudget {
    /// Full paper scale: paper population sizes and thread topology.
    pub paper: bool,
    /// Evaluations per MOEA run (paper: 10 000); AEDB-MLS gets 2.4× this.
    pub evals: u64,
    /// Independent seeded repetitions (paper: 30).
    pub reps: usize,
}

impl CampaignBudget {
    /// A reduced budget for tests and interactive runs.
    pub fn quick(evals: u64, reps: usize) -> Self {
        Self {
            paper: false,
            evals,
            reps,
        }
    }

    /// The AEDB-MLS budget: 2.4× the MOEA budget (§VI: "it performs 2.4
    /// times more evaluations").
    pub fn mls_evals(&self) -> u64 {
        (self.evals as f64 * 2.4).round() as u64
    }
}

/// Instantiates an algorithm scaled to the campaign budget.
///
/// * MOEAs receive `budget.evals` evaluations (paper: 10 000),
/// * AEDB-MLS receives [`CampaignBudget::mls_evals`] = 2.4× that (paper:
///   24 000), split over the paper's 8 × 12 thread topology at paper
///   scale and a 2 × 2 topology otherwise,
/// * the island optimizer receives `budget.evals` like the MOEAs (the
///   equal-budget comparison the bench rows record): 8 islands at paper
///   scale, 2 quick islands otherwise.
pub fn algorithm_for(budget: &CampaignBudget, kind: AlgorithmKind) -> Box<dyn MoAlgorithm> {
    match kind {
        AlgorithmKind::Nsga2 => {
            let population = if budget.paper {
                100
            } else {
                (budget.evals / 10).clamp(8, 40) as usize
            };
            Box::new(Nsga2::new(Nsga2Config {
                population,
                max_evaluations: budget.evals,
                ..Nsga2Config::default()
            }))
        }
        AlgorithmKind::CellDe => {
            let side = if budget.paper { 10 } else { 5 };
            Box::new(CellDe::new(CellDeConfig {
                grid_side: side,
                max_evaluations: budget.evals,
                ..CellDeConfig::default()
            }))
        }
        AlgorithmKind::Island => {
            let cfg = if budget.paper {
                IslandConfig {
                    islands: 8,
                    max_evaluations: budget.evals,
                    ..IslandConfig::default()
                }
            } else {
                IslandConfig::quick(2, budget.evals)
            };
            Box::new(IslandOptimizer::new(cfg))
        }
        AlgorithmKind::Mls => {
            let cfg = if budget.paper {
                MlsConfig {
                    criteria: CriteriaChoice::Aedb,
                    ..MlsConfig::paper()
                }
            } else {
                let per_thread = (budget.mls_evals() / 4).max(10);
                MlsConfig {
                    criteria: CriteriaChoice::Aedb,
                    ..MlsConfig::quick(2, 2, per_thread)
                }
            };
            Box::new(Mls::new(cfg))
        }
    }
}

/// The seed of repetition `rep` — fixed, so any schedule (the harness's
/// rayon shards, the service's sequential drain) reproduces the
/// historical sequential runs.
pub fn rep_seed(rep: usize) -> u64 {
    0xBEEF + 97 * rep as u64
}

/// A full campaign: scenario × algorithm × budget. Seeds are implied
/// ([`rep_seed`]), so two `CampaignSpec`s with equal fields denote the
/// same deterministic computation — which is what lets the archive answer
/// resubmissions.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// The tuning scenario (density, fixed evaluation networks).
    pub scenario: Scenario,
    /// Which algorithm runs.
    pub algorithm: AlgorithmKind,
    /// Evaluation budget and repetition count.
    pub budget: CampaignBudget,
}

impl CampaignSpec {
    /// FNV-1a fingerprint over every field that affects the result — the
    /// archive key. The scenario is hashed through its `Debug` rendering,
    /// which recursively covers all fields (including builder-only dense
    /// group knobs that have no grammar text form).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(b"campaign v1|");
        h.write(format!("{:?}", self.scenario).as_bytes());
        h.write(b"|");
        h.write(self.algorithm.name().as_bytes());
        h.write(b"|");
        h.write(&(self.budget.paper as u8).to_le_bytes());
        h.write(&self.budget.evals.to_le_bytes());
        h.write(&(self.budget.reps as u64).to_le_bytes());
        h.finish()
    }
}

/// One archived repetition: its seed, evaluation count and final front.
#[derive(Debug, Clone)]
pub struct RepRun {
    /// The repetition's seed ([`rep_seed`]).
    pub seed: u64,
    /// Evaluations the run consumed.
    pub evaluations: u64,
    /// The run's Pareto front approximation.
    pub front: Vec<Candidate>,
}

/// The terminal payload of a campaign: all repetition results in
/// repetition order.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Which algorithm produced these runs.
    pub algorithm: AlgorithmKind,
    /// Per-repetition results, index = repetition.
    pub reps: Vec<RepRun>,
}

/// Bit-exact equality (f64s compared by bit pattern, so `NaN`-safe and
/// `-0.0`-strict) — the equality the replay tests pin fresh runs against.
impl PartialEq for CampaignResult {
    fn eq(&self, other: &Self) -> bool {
        self.algorithm == other.algorithm
            && self.reps.len() == other.reps.len()
            && self.reps.iter().zip(&other.reps).all(|(a, b)| {
                a.seed == b.seed
                    && a.evaluations == b.evaluations
                    && a.front.len() == b.front.len()
                    && a.front.iter().zip(&b.front).all(|(x, y)| {
                        bits_eq(&x.params, &y.params)
                            && bits_eq(&x.objectives, &y.objectives)
                            && x.violation.to_bits() == y.violation.to_bits()
                    })
            })
    }
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

const ARCHIVE_MAGIC: &str = "aedb-campaign-archive v1";

impl CampaignResult {
    /// Serialises the result (plus the submitted spec, for humans reading
    /// the archive) into the line-oriented archive format. All floats are
    /// written as f64 **bit patterns in hex**, so a decoded replay is
    /// bit-identical to the fresh run:
    ///
    /// ```text
    /// aedb-campaign-archive v1 <fingerprint hex>
    /// algorithm <name>
    /// budget <paper 0|1> <evals> <reps>
    /// scenario <Debug rendering of the submitted Scenario>
    /// rep <seed> <evaluations> <front size>
    /// c <n params> <hex>.. <n objectives> <hex>.. <violation hex>
    /// ...
    /// end
    /// ```
    pub fn encode(&self, spec: &CampaignSpec) -> Vec<u8> {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "{ARCHIVE_MAGIC} {:016x}", spec.fingerprint()).expect("string write");
        writeln!(out, "algorithm {}", self.algorithm.name()).expect("string write");
        writeln!(
            out,
            "budget {} {} {}",
            spec.budget.paper as u8, spec.budget.evals, spec.budget.reps
        )
        .expect("string write");
        writeln!(out, "scenario {:?}", spec.scenario).expect("string write");
        for rep in &self.reps {
            writeln!(
                out,
                "rep {} {} {}",
                rep.seed,
                rep.evaluations,
                rep.front.len()
            )
            .expect("string write");
            for c in &rep.front {
                out.push('c');
                write!(out, " {}", c.params.len()).expect("string write");
                for v in &c.params {
                    write!(out, " {:016x}", v.to_bits()).expect("string write");
                }
                write!(out, " {}", c.objectives.len()).expect("string write");
                for v in &c.objectives {
                    write!(out, " {:016x}", v.to_bits()).expect("string write");
                }
                writeln!(out, " {:016x}", c.violation.to_bits()).expect("string write");
            }
        }
        out.push_str("end\n");
        out.into_bytes()
    }

    /// Decodes an archive written by [`encode`](Self::encode), verifying
    /// it against `expected_fingerprint`. Any mismatch — wrong magic,
    /// stale fingerprint, truncation, malformed line — returns `None`, so
    /// the caller falls back to recomputing (an archive can never poison
    /// a campaign, only save one).
    pub fn decode(bytes: &[u8], expected_fingerprint: u64) -> Option<CampaignResult> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut lines = text.lines();
        let header = lines.next()?;
        let fp = header.strip_prefix(ARCHIVE_MAGIC)?.trim();
        if u64::from_str_radix(fp, 16).ok()? != expected_fingerprint {
            return None;
        }
        let algorithm = AlgorithmKind::from_name(lines.next()?.strip_prefix("algorithm ")?)?;
        let _budget = lines.next()?.strip_prefix("budget ")?;
        let _scenario = lines.next()?.strip_prefix("scenario ")?;
        let mut reps = Vec::new();
        loop {
            let line = lines.next()?;
            if line == "end" {
                return Some(CampaignResult { algorithm, reps });
            }
            let mut head = line.strip_prefix("rep ")?.split_ascii_whitespace();
            let seed: u64 = head.next()?.parse().ok()?;
            let evaluations: u64 = head.next()?.parse().ok()?;
            let front_len: usize = head.next()?.parse().ok()?;
            let mut front = Vec::with_capacity(front_len);
            for _ in 0..front_len {
                let mut tok = lines.next()?.strip_prefix("c ")?.split_ascii_whitespace();
                let np: usize = tok.next()?.parse().ok()?;
                let params = read_f64s(&mut tok, np)?;
                let no: usize = tok.next()?.parse().ok()?;
                let objectives = read_f64s(&mut tok, no)?;
                let violation = f64::from_bits(u64::from_str_radix(tok.next()?, 16).ok()?);
                if tok.next().is_some() {
                    return None;
                }
                front.push(Candidate::evaluated(params, objectives, violation));
            }
            reps.push(RepRun {
                seed,
                evaluations,
                front,
            });
        }
    }
}

fn read_f64s<'a>(tok: &mut impl Iterator<Item = &'a str>, n: usize) -> Option<Vec<f64>> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(f64::from_bits(u64::from_str_radix(tok.next()?, 16).ok()?));
    }
    Some(out)
}

/// FNV-1a, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aedb::scenario::Density;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            scenario: Scenario::quick(Density::D100, 2),
            algorithm: AlgorithmKind::Nsga2,
            budget: CampaignBudget::quick(80, 2),
        }
    }

    fn result() -> CampaignResult {
        CampaignResult {
            algorithm: AlgorithmKind::Nsga2,
            reps: vec![RepRun {
                seed: rep_seed(0),
                evaluations: 80,
                front: vec![
                    Candidate::evaluated(vec![0.5, 1.5], vec![-0.25, 3.0], 0.0),
                    Candidate::evaluated(vec![f64::MIN_POSITIVE], vec![1.0 / 3.0], 0.5),
                ],
            }],
        }
    }

    #[test]
    fn archive_round_trips_bit_exactly() {
        let s = spec();
        let r = result();
        let bytes = r.encode(&s);
        let back = CampaignResult::decode(&bytes, s.fingerprint()).expect("decodes");
        assert_eq!(back, r);
    }

    #[test]
    fn wrong_fingerprint_rejected() {
        let s = spec();
        let bytes = result().encode(&s);
        assert!(CampaignResult::decode(&bytes, s.fingerprint() ^ 1).is_none());
    }

    #[test]
    fn truncated_archive_rejected() {
        let s = spec();
        let bytes = result().encode(&s);
        let cut = &bytes[..bytes.len() - 5]; // drop "end\n" tail
        assert!(CampaignResult::decode(cut, s.fingerprint()).is_none());
    }

    #[test]
    fn fingerprint_sensitive_to_every_field() {
        let base = spec().fingerprint();
        let mut s = spec();
        s.algorithm = AlgorithmKind::Mls;
        assert_ne!(s.fingerprint(), base);
        let mut s = spec();
        s.budget.evals += 1;
        assert_ne!(s.fingerprint(), base);
        let mut s = spec();
        s.budget.reps += 1;
        assert_ne!(s.fingerprint(), base);
        let mut s = spec();
        s.scenario = Scenario::quick(Density::D200, 2);
        assert_ne!(s.fingerprint(), base);
        assert_eq!(spec().fingerprint(), base, "fingerprint is deterministic");
    }

    #[test]
    fn algorithm_names_round_trip() {
        for kind in AlgorithmKind::ALL {
            assert_eq!(AlgorithmKind::from_name(kind.name()), Some(kind));
        }
        // Island sits outside ALL (not part of the paper's comparison)
        // but must still round-trip through the archive codec.
        assert_eq!(
            AlgorithmKind::from_name(AlgorithmKind::Island.name()),
            Some(AlgorithmKind::Island)
        );
        assert_eq!(AlgorithmKind::from_name("SPEA2"), None);
    }

    #[test]
    fn island_budget_matches_moeas_exactly() {
        use mopt::problem::test_problems::Zdt1;
        let budget = CampaignBudget::quick(120, 1);
        let alg = algorithm_for(&budget, AlgorithmKind::Island);
        let r = alg.run(&Zdt1::new(5), 3);
        assert_eq!(r.evaluations, budget.evals, "equal-budget comparison");
    }

    #[test]
    fn budget_scales_algorithms() {
        use mopt::problem::test_problems::Zdt1;
        let budget = CampaignBudget::quick(60, 1);
        for kind in AlgorithmKind::ALL {
            let alg = algorithm_for(&budget, kind);
            let r = alg.run(&Zdt1::new(5), 3);
            let cap = if kind == AlgorithmKind::Mls {
                budget.mls_evals()
            } else {
                budget.evals
            };
            assert!(
                r.evaluations <= cap + 4,
                "{}: {} evals vs budget {cap}",
                kind.name(),
                r.evaluations
            );
        }
    }
}
