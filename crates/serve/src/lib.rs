//! Resident in-process simulation service for the AEDB reproduction.
//!
//! The experiment binaries (`crates/bench/src/bin/`) are batch programs:
//! build a problem, run it, print tables, exit. This crate turns the same
//! machinery into a **resident service** an application embeds:
//!
//! * [`SimService`] owns a worker thread and accepts jobs through a typed
//!   API — [`JobSpec::Simulate`] (raw simulator runs of a
//!   [`WorldSpec`](manet::world::WorldSpec) under a chosen protocol) and
//!   [`JobSpec::Campaign`] (a full tuning campaign: algorithm × seeded
//!   repetitions on a [`Scenario`](aedb::scenario::Scenario));
//! * jobs are scheduled FIFO within three [`Priority`] classes and stream
//!   [`JobEvent`]s (accepted → started → per-generation front snapshots
//!   and per-row progress → finished/failed) to the submitting
//!   [`JobHandle`];
//! * jobs can be [cancelled](SimService::cancel) cooperatively, and the
//!   service drains or shuts down gracefully;
//! * results persist through the pluggable [`store::Storage`] backend the
//!   service was built on: AEDB eval caches and **campaign archives**
//!   outlive the process (disk backend), so a resubmitted finished
//!   campaign replays bit-identically from the archive instead of
//!   recomputing ([`JobResult::replayed`]).
//!
//! The campaign construction rules ([`campaign::algorithm_for`],
//! [`campaign::rep_seed`]) are the ones the bench harness itself uses
//! (it delegates here), so a campaign through the service is
//! bit-identical to the corresponding `bench-harness` experiment rows —
//! pinned by `tests/service.rs` at the workspace root.
//!
//! ```no_run
//! use serve::{JobSpec, Priority, SimService};
//! use serve::campaign::{AlgorithmKind, CampaignBudget, CampaignSpec};
//! use aedb::scenario::{Density, Scenario};
//!
//! let service = SimService::on_disk("./service-data");
//! let job = service.submit(
//!     JobSpec::Campaign(CampaignSpec {
//!         scenario: Scenario::quick(Density::D100, 3),
//!         algorithm: AlgorithmKind::Nsga2,
//!         budget: CampaignBudget::quick(400, 2),
//!     }),
//!     Priority::Normal,
//! );
//! let result = job.wait().expect("campaign runs");
//! println!("replayed from archive: {}", result.replayed);
//! service.drain();
//! ```

pub mod campaign;
pub mod job;
pub mod service;

pub use job::{
    JobError, JobEvent, JobId, JobOutput, JobSpec, Priority, ProtocolSpec, SimSummary, SimulateSpec,
};
pub use service::{JobHandle, JobResult, SimService, CAMPAIGN_NAMESPACE, EVAL_CACHE_NAMESPACE};
