//! NSGA-II (Deb, Pratap, Agarwal, Meyarivan 2002) — the first baseline the
//! paper compares AEDB-MLS against.
//!
//! Standard real-coded configuration, as used for the AEDB problem in Ruiz
//! et al. 2012: population 100, binary tournament on (rank, crowding), SBX
//! crossover (`pc = 0.9`, `η = 20`), polynomial mutation (`pm = 1/n`,
//! `η = 20`), μ+λ environmental selection by non-dominated rank and
//! crowding distance. Constraints use Deb's feasibility-first dominance
//! throughout (`mopt::dominance`).

use crate::common::{MoAlgorithm, NoProgress, RunObserver, RunResult};
use mopt::ops::{polynomial_mutation, sbx_crossover, uniform_init};
use mopt::problem::Problem;
use mopt::solution::Candidate;
use mopt::sorting::{crowding_distance, fast_non_dominated_sort, select_by_rank_and_crowding};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// NSGA-II parameters.
#[derive(Debug, Clone)]
pub struct Nsga2Config {
    /// Population size (paper baseline: 100).
    pub population: usize,
    /// Evaluation budget (paper baseline: 25 000).
    pub max_evaluations: u64,
    /// SBX crossover probability.
    pub crossover_prob: f64,
    /// SBX distribution index.
    pub crossover_eta: f64,
    /// Polynomial-mutation probability per variable; `None` = `1/n`.
    pub mutation_prob: Option<f64>,
    /// Polynomial-mutation distribution index.
    pub mutation_eta: f64,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Self {
            population: 100,
            max_evaluations: 25_000,
            crossover_prob: 0.9,
            crossover_eta: 20.0,
            mutation_prob: None,
            mutation_eta: 20.0,
        }
    }
}

impl Nsga2Config {
    /// A reduced-budget configuration for tests/quick experiments.
    pub fn quick(population: usize, max_evaluations: u64) -> Self {
        Self {
            population,
            max_evaluations,
            ..Self::default()
        }
    }
}

/// The NSGA-II optimiser.
#[derive(Debug, Clone, Default)]
pub struct Nsga2 {
    /// Algorithm parameters.
    pub config: Nsga2Config,
}

impl Nsga2 {
    /// Creates the optimiser with the given configuration.
    pub fn new(config: Nsga2Config) -> Self {
        Self { config }
    }
}

/// Tournament comparator on (rank, crowding): lower rank wins, ties by
/// larger crowding, further ties at random.
fn crowded_tournament<R: Rng>(rank: &[usize], crowd: &[f64], rng: &mut R) -> usize {
    let n = rank.len();
    let a = rng.gen_range(0..n);
    let b = rng.gen_range(0..n);
    if rank[a] != rank[b] {
        if rank[a] < rank[b] {
            a
        } else {
            b
        }
    } else if crowd[a] != crowd[b] {
        if crowd[a] > crowd[b] {
            a
        } else {
            b
        }
    } else if rng.gen::<bool>() {
        a
    } else {
        b
    }
}

impl MoAlgorithm for Nsga2 {
    fn name(&self) -> &'static str {
        "NSGAII"
    }

    fn run(&self, problem: &dyn Problem, seed: u64) -> RunResult {
        self.run_observed(problem, seed, &NoProgress)
    }

    fn run_observed(
        &self,
        problem: &dyn Problem,
        seed: u64,
        observer: &dyn RunObserver,
    ) -> RunResult {
        let start = Instant::now();
        let cfg = &self.config;
        let bounds = problem.bounds();
        let nvar = bounds.len();
        let pm = cfg.mutation_prob.unwrap_or(1.0 / nvar as f64);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut evals: u64 = 0;
        let mut generation: u64 = 0;

        // Initial population, evaluated as one batch so expensive problems
        // can parallelise across the whole generation.
        let init_xs: Vec<Vec<f64>> = (0..cfg.population)
            .map(|_| uniform_init(bounds, &mut rng))
            .collect();
        evals += init_xs.len() as u64;
        let mut pop: Vec<Candidate> = problem.make_candidates(init_xs);
        observer.on_generation(generation, evals, &pop);

        while evals < cfg.max_evaluations && !observer.cancelled() {
            // Rank/crowding of the current population for selection.
            let fronts = fast_non_dominated_sort(&pop);
            let mut rank = vec![0usize; pop.len()];
            let mut crowd = vec![0.0f64; pop.len()];
            for (r, front) in fronts.iter().enumerate() {
                let cd = crowding_distance(&pop, front);
                for (k, &i) in front.iter().enumerate() {
                    rank[i] = r;
                    crowd[i] = cd[k];
                }
            }

            // Offspring generation (λ = μ): variation first, then the whole
            // generation is evaluated through the batch pipeline. Selection
            // only reads the parent population, so deferring evaluation
            // changes neither the RNG stream nor the search trajectory.
            let remaining = (cfg.max_evaluations - evals) as usize;
            let mut child_xs: Vec<Vec<f64>> = Vec::with_capacity(cfg.population);
            while child_xs.len() < cfg.population && child_xs.len() < remaining {
                let p1 = crowded_tournament(&rank, &crowd, &mut rng);
                let p2 = crowded_tournament(&rank, &crowd, &mut rng);
                let (mut c1, mut c2) = sbx_crossover(
                    &pop[p1].params,
                    &pop[p2].params,
                    cfg.crossover_eta,
                    cfg.crossover_prob,
                    bounds,
                    &mut rng,
                );
                polynomial_mutation(&mut c1, cfg.mutation_eta, pm, bounds, &mut rng);
                polynomial_mutation(&mut c2, cfg.mutation_eta, pm, bounds, &mut rng);
                for child in [c1, c2] {
                    if child_xs.len() < cfg.population && child_xs.len() < remaining {
                        child_xs.push(child);
                    }
                }
            }
            evals += child_xs.len() as u64;
            let offspring = problem.make_candidates(child_xs);

            // μ+λ environmental selection.
            pop.extend(offspring);
            let chosen = select_by_rank_and_crowding(&pop, cfg.population);
            let mut next = Vec::with_capacity(cfg.population);
            for i in chosen {
                next.push(pop[i].clone());
            }
            pop = next;
            generation += 1;
            observer.on_generation(generation, evals, &pop);
        }

        let result = RunResult {
            front: pop,
            evaluations: evals,
            elapsed: start.elapsed(),
        };
        result.sanitize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mopt::indicators::hypervolume;
    use mopt::problem::test_problems::{ConstrainedSchaffer, Schaffer, Zdt1};

    #[test]
    fn converges_on_schaffer() {
        let alg = Nsga2::new(Nsga2Config::quick(40, 2000));
        let r = alg.run(&Schaffer::new(), 1);
        assert!(!r.front.is_empty());
        assert_eq!(r.evaluations, 2000);
        // Pareto set is x in [0,2]: most solutions should be close.
        let inside = r
            .front
            .iter()
            .filter(|c| c.params[0] > -0.5 && c.params[0] < 2.5)
            .count();
        assert!(
            inside * 10 >= r.front.len() * 9,
            "{} of {} near the Pareto set",
            inside,
            r.front.len()
        );
    }

    #[test]
    fn zdt1_hypervolume_improves_with_budget() {
        let problem = Zdt1::new(8);
        let hv_for = |evals| {
            let alg = Nsga2::new(Nsga2Config::quick(32, evals));
            let r = alg.run(&problem, 3);
            hypervolume(&r.objectives(), &[1.1, 1.1])
        };
        let small = hv_for(500);
        let large = hv_for(4000);
        assert!(large > small, "hv {large} should beat {small}");
        // theoretical optimum for ZDT1 with ref (1.1,1.1) is ≈ 0.87
        assert!(large > 0.6, "hv = {large}");
    }

    #[test]
    fn respects_constraints() {
        let alg = Nsga2::new(Nsga2Config::quick(30, 1500));
        let r = alg.run(&ConstrainedSchaffer::new(), 5);
        assert!(r.front.iter().all(|c| c.is_feasible()));
        // feasible region is x >= 0.5 => f1 >= 0.25
        assert!(r.front.iter().all(|c| c.objectives[0] >= 0.25 - 1e-9));
    }

    #[test]
    fn deterministic_given_seed() {
        let alg = Nsga2::new(Nsga2Config::quick(20, 600));
        let p = Schaffer::new();
        let a = alg.run(&p, 42);
        let b = alg.run(&p, 42);
        let pa: Vec<_> = a.front.iter().map(|c| c.params.clone()).collect();
        let pb: Vec<_> = b.front.iter().map(|c| c.params.clone()).collect();
        assert_eq!(pa, pb);
        let c = alg.run(&p, 43);
        assert_ne!(
            a.front
                .iter()
                .map(|x| x.objectives.clone())
                .collect::<Vec<_>>(),
            c.front
                .iter()
                .map(|x| x.objectives.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn observed_run_matches_plain_run() {
        use std::sync::Mutex;
        struct Recorder(Mutex<Vec<(u64, u64, usize)>>);
        impl RunObserver for Recorder {
            fn on_generation(&self, generation: u64, evaluations: u64, pool: &[Candidate]) {
                self.0
                    .lock()
                    .unwrap()
                    .push((generation, evaluations, pool.len()));
            }
        }
        let alg = Nsga2::new(Nsga2Config::quick(20, 600));
        let p = Schaffer::new();
        let plain = alg.run(&p, 42);
        let rec = Recorder(Mutex::new(Vec::new()));
        let observed = alg.run_observed(&p, 42, &rec);
        let project = |r: &RunResult| {
            r.front
                .iter()
                .map(|c| (c.params.clone(), c.objectives.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(project(&plain), project(&observed));
        assert_eq!(plain.evaluations, observed.evaluations);
        let events = rec.0.into_inner().unwrap();
        assert!(events.len() > 1, "should see generation 0 plus the loop");
        assert_eq!(events[0].0, 0);
        assert!(events.windows(2).all(|w| w[0].0 + 1 == w[1].0));
        assert!(events.windows(2).all(|w| w[0].1 < w[1].1));
        assert_eq!(events.last().unwrap().1, 600);
    }

    #[test]
    fn cancellation_stops_early_with_partial_front() {
        struct CancelAfter(std::sync::atomic::AtomicU64);
        impl RunObserver for CancelAfter {
            fn on_generation(&self, _g: u64, _e: u64, _p: &[Candidate]) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            fn cancelled(&self) -> bool {
                self.0.load(std::sync::atomic::Ordering::Relaxed) >= 3
            }
        }
        let alg = Nsga2::new(Nsga2Config::quick(20, 10_000));
        let obs = CancelAfter(std::sync::atomic::AtomicU64::new(0));
        let r = alg.run_observed(&Schaffer::new(), 7, &obs);
        assert!(!r.front.is_empty());
        assert!(r.evaluations < 10_000, "stopped early: {}", r.evaluations);
    }

    #[test]
    fn evaluation_budget_respected_exactly() {
        let alg = Nsga2::new(Nsga2Config::quick(25, 777));
        let r = alg.run(&Schaffer::new(), 9);
        assert_eq!(r.evaluations, 777);
    }

    #[test]
    fn front_is_mutually_nondominated() {
        use mopt::dominance::{constrained_dominance, DominanceOrd};
        let alg = Nsga2::new(Nsga2Config::quick(30, 1200));
        let r = alg.run(&Zdt1::new(5), 11);
        for i in 0..r.front.len() {
            for j in 0..r.front.len() {
                if i != j {
                    assert_ne!(
                        constrained_dominance(&r.front[j], &r.front[i]),
                        DominanceOrd::Dominates
                    );
                }
            }
        }
    }
}
