//! CellDE (Durillo, Nebro, Luna, Alba 2008) — the second baseline: a
//! cellular genetic algorithm whose variation operator is differential
//! evolution, with a bounded external archive and archive feedback.
//!
//! Each individual lives on a toroidal √N×√N grid and only interacts with
//! its C9 neighbourhood (the 8 surrounding cells). Per cell and generation:
//!
//! 1. pick three distinct neighbours `r1, r2, r3`,
//! 2. build the trial vector with DE/rand/1/bin (`F = 0.5`, `CR = 0.9`),
//! 3. if the trial (constrained-)dominates the incumbent, it replaces it;
//!    if they are incomparable it replaces the *worst neighbour* (most
//!    dominated cell in the neighbourhood),
//! 4. offer the trial to the external archive (AGA, as used throughout the
//!    paper).
//!
//! After every generation `feedback` random archive members are re-injected
//! into random cells — the MOCell feedback loop that gives the algorithm
//! its strong diversity (the paper's spread results for CellDE).

use crate::common::{MoAlgorithm, NoProgress, RunObserver, RunResult};
use mopt::archive::AgaArchive;
use mopt::dominance::{constrained_dominance, DominanceOrd};
use mopt::ops::{de_rand_1_bin, distinct_indices, uniform_init};
use mopt::problem::Problem;
use mopt::solution::Candidate;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// CellDE parameters.
#[derive(Debug, Clone)]
pub struct CellDeConfig {
    /// Grid side; population = side².  Paper baseline: 10 (pop 100).
    pub grid_side: usize,
    /// Evaluation budget (paper baseline: 25 000).
    pub max_evaluations: u64,
    /// DE differential weight `F`.
    pub de_f: f64,
    /// DE crossover rate `CR`.
    pub de_cr: f64,
    /// External archive capacity.
    pub archive_capacity: usize,
    /// Archive members re-injected into the grid per generation.
    pub feedback: usize,
}

impl Default for CellDeConfig {
    fn default() -> Self {
        Self {
            grid_side: 10,
            max_evaluations: 25_000,
            de_f: 0.5,
            de_cr: 0.9,
            archive_capacity: 100,
            feedback: 20,
        }
    }
}

impl CellDeConfig {
    /// Reduced-budget configuration for tests/quick experiments.
    pub fn quick(grid_side: usize, max_evaluations: u64) -> Self {
        Self {
            grid_side,
            max_evaluations,
            archive_capacity: (grid_side * grid_side).max(20),
            feedback: (grid_side * grid_side / 5).max(2),
            ..Self::default()
        }
    }
}

/// The CellDE optimiser.
#[derive(Debug, Clone, Default)]
pub struct CellDe {
    /// Algorithm parameters.
    pub config: CellDeConfig,
}

impl CellDe {
    /// Creates the optimiser with the given configuration.
    pub fn new(config: CellDeConfig) -> Self {
        Self { config }
    }

    /// C9 neighbourhood (8 surrounding cells on the torus), excluding the
    /// cell itself.
    fn neighborhood(&self, cell: usize) -> Vec<usize> {
        let side = self.config.grid_side as isize;
        let (r, c) = ((cell as isize) / side, (cell as isize) % side);
        let mut out = Vec::with_capacity(8);
        for dr in -1..=1 {
            for dc in -1..=1 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let rr = (r + dr).rem_euclid(side);
                let cc = (c + dc).rem_euclid(side);
                out.push((rr * side + cc) as usize);
            }
        }
        out.sort_unstable();
        out.dedup(); // tiny grids fold neighbours together
        out
    }
}

impl MoAlgorithm for CellDe {
    fn name(&self) -> &'static str {
        "CellDE"
    }

    fn run(&self, problem: &dyn Problem, seed: u64) -> RunResult {
        self.run_observed(problem, seed, &NoProgress)
    }

    fn run_observed(
        &self,
        problem: &dyn Problem,
        seed: u64,
        observer: &dyn RunObserver,
    ) -> RunResult {
        let start = Instant::now();
        let cfg = &self.config;
        assert!(cfg.grid_side >= 2, "grid must be at least 2×2");
        let n = cfg.grid_side * cfg.grid_side;
        let bounds = problem.bounds();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut evals: u64 = 0;
        let mut generation: u64 = 0;

        let init_xs: Vec<Vec<f64>> = (0..n).map(|_| uniform_init(bounds, &mut rng)).collect();
        evals += init_xs.len() as u64;
        let mut grid: Vec<Candidate> = problem.make_candidates(init_xs);
        let mut archive = AgaArchive::new(cfg.archive_capacity, 5);
        for c in &grid {
            archive.try_insert(c.clone());
        }
        observer.on_generation(generation, evals, archive.members());

        while evals < cfg.max_evaluations && !observer.cancelled() {
            // Synchronous generation: trial vectors are built against the
            // generation-start grid and the whole generation is evaluated
            // as ONE batch through the problem's batched pipeline;
            // replacements then apply in cell order.
            let trials_this_gen = n.min((cfg.max_evaluations - evals) as usize);
            let mut trial_xs: Vec<Vec<f64>> = Vec::with_capacity(trials_this_gen);
            for cell in 0..trials_this_gen {
                let hood = self.neighborhood(cell);
                // Three distinct donors from the neighbourhood.
                let picks = distinct_indices(
                    hood.len(),
                    3.min(hood.len() - 1).max(1),
                    usize::MAX,
                    &mut rng,
                );
                let r1 = &grid[hood[picks[0]]];
                let r2 = &grid[hood[picks[1 % picks.len()]]];
                let r3 = &grid[hood[picks[2 % picks.len()]]];
                trial_xs.push(de_rand_1_bin(
                    &grid[cell].params,
                    &r1.params,
                    &r2.params,
                    &r3.params,
                    cfg.de_f,
                    cfg.de_cr,
                    bounds,
                    &mut rng,
                ));
            }
            evals += trial_xs.len() as u64;
            let trials = problem.make_candidates(trial_xs);
            for (cell, trial) in trials.into_iter().enumerate() {
                let hood = self.neighborhood(cell);
                match constrained_dominance(&trial, &grid[cell]) {
                    DominanceOrd::Dominates => {
                        grid[cell] = trial.clone();
                    }
                    DominanceOrd::DominatedBy => {}
                    DominanceOrd::Indifferent => {
                        // replace the most-dominated neighbour
                        let worst = hood
                            .iter()
                            .copied()
                            .max_by_key(|&i| {
                                hood.iter()
                                    .filter(|&&j| {
                                        constrained_dominance(&grid[j], &grid[i])
                                            == DominanceOrd::Dominates
                                    })
                                    .count()
                            })
                            .unwrap_or(cell);
                        grid[worst] = trial.clone();
                    }
                }
                archive.try_insert(trial);
            }
            // Archive feedback.
            for _ in 0..cfg.feedback {
                if let Some(elite) = archive.sample(&mut rng) {
                    let slot = rng.gen_range(0..n);
                    grid[slot] = elite.clone();
                }
            }
            generation += 1;
            observer.on_generation(generation, evals, archive.members());
        }

        let result = RunResult {
            front: archive.into_members(),
            evaluations: evals,
            elapsed: start.elapsed(),
        };
        result.sanitize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mopt::indicators::hypervolume;
    use mopt::problem::test_problems::{ConstrainedSchaffer, Schaffer, Zdt1};

    #[test]
    fn neighborhood_is_c9_on_torus() {
        let alg = CellDe::new(CellDeConfig::quick(4, 100));
        let hood = alg.neighborhood(0); // corner cell wraps
        assert_eq!(hood.len(), 8);
        assert!(!hood.contains(&0));
        // includes the opposite corner via wrap-around
        assert!(hood.contains(&15) || hood.contains(&5));
    }

    #[test]
    fn tiny_grid_neighborhood_dedups() {
        let alg = CellDe::new(CellDeConfig::quick(2, 100));
        let hood = alg.neighborhood(0);
        assert!(hood.len() < 8); // folded duplicates removed
        assert!(!hood.contains(&0));
    }

    #[test]
    fn converges_on_schaffer() {
        let alg = CellDe::new(CellDeConfig::quick(6, 2500));
        let r = alg.run(&Schaffer::new(), 2);
        assert!(!r.front.is_empty());
        let inside = r
            .front
            .iter()
            .filter(|c| c.params[0] > -0.5 && c.params[0] < 2.5)
            .count();
        assert!(
            inside * 10 >= r.front.len() * 9,
            "{}/{}",
            inside,
            r.front.len()
        );
    }

    #[test]
    fn zdt1_reasonable_hypervolume() {
        let alg = CellDe::new(CellDeConfig::quick(6, 5000));
        let r = alg.run(&Zdt1::new(8), 7);
        let hv = hypervolume(&r.objectives(), &[1.1, 1.1]);
        assert!(hv > 0.55, "hv = {hv}");
    }

    #[test]
    fn constraint_handling() {
        let alg = CellDe::new(CellDeConfig::quick(5, 1500));
        let r = alg.run(&ConstrainedSchaffer::new(), 3);
        assert!(r.front.iter().all(|c| c.is_feasible()));
    }

    #[test]
    fn deterministic_given_seed() {
        let alg = CellDe::new(CellDeConfig::quick(4, 600));
        let p = Schaffer::new();
        let a = alg.run(&p, 10);
        let b = alg.run(&p, 10);
        assert_eq!(
            a.front
                .iter()
                .map(|c| c.objectives.clone())
                .collect::<Vec<_>>(),
            b.front
                .iter()
                .map(|c| c.objectives.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn observed_run_matches_plain_run() {
        struct Counter(std::sync::atomic::AtomicU64);
        impl RunObserver for Counter {
            fn on_generation(&self, _g: u64, _e: u64, _p: &[Candidate]) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let alg = CellDe::new(CellDeConfig::quick(4, 600));
        let p = Schaffer::new();
        let plain = alg.run(&p, 10);
        let obs = Counter(std::sync::atomic::AtomicU64::new(0));
        let observed = alg.run_observed(&p, 10, &obs);
        let project = |r: &RunResult| {
            r.front
                .iter()
                .map(|c| (c.params.clone(), c.objectives.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(project(&plain), project(&observed));
        assert_eq!(plain.evaluations, observed.evaluations);
        assert!(obs.0.load(std::sync::atomic::Ordering::Relaxed) > 1);
    }

    #[test]
    fn budget_not_exceeded() {
        let alg = CellDe::new(CellDeConfig::quick(5, 999));
        let r = alg.run(&Schaffer::new(), 1);
        assert!(r.evaluations <= 999, "{}", r.evaluations);
        assert!(r.evaluations >= 990);
    }

    #[test]
    fn archive_bounded() {
        let mut cfg = CellDeConfig::quick(6, 3000);
        cfg.archive_capacity = 25;
        let alg = CellDe::new(cfg);
        let r = alg.run(&Zdt1::new(4), 5);
        assert!(r.front.len() <= 25);
    }
}
