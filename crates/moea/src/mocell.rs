//! MOCell (Nebro, Durillo, Luna, Dorronsoro, Alba 2007) — the cellular
//! multi-objective GA that CellDE descends from (CellDE replaces MOCell's
//! SBX variation with differential evolution). The paper's §VII plans to
//! parallelise "the cellular multi-objective evolutionary algorithm";
//! having the SBX-based ancestor alongside CellDE lets the harness compare
//! the whole cellular family.
//!
//! Structure per cell and generation:
//!
//! 1. select two parents from the C9 neighbourhood by binary tournament,
//! 2. SBX crossover + polynomial mutation produce one offspring,
//! 3. the offspring replaces the incumbent if it constrained-dominates it;
//!    if they are incomparable it replaces the worst neighbour,
//! 4. the offspring is offered to a bounded external archive,
//! 5. after each generation, `feedback` archive members are re-injected
//!    into random cells.

use crate::common::{MoAlgorithm, NoProgress, RunObserver, RunResult};
use mopt::archive::AgaArchive;
use mopt::dominance::{constrained_dominance, DominanceOrd};
use mopt::ops::{binary_tournament, polynomial_mutation, sbx_crossover, uniform_init};
use mopt::problem::Problem;
use mopt::solution::Candidate;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// MOCell parameters.
#[derive(Debug, Clone)]
pub struct MoCellConfig {
    /// Grid side; population = side².
    pub grid_side: usize,
    /// Evaluation budget.
    pub max_evaluations: u64,
    /// SBX crossover probability.
    pub crossover_prob: f64,
    /// SBX distribution index.
    pub crossover_eta: f64,
    /// Polynomial-mutation probability per variable; `None` = `1/n`.
    pub mutation_prob: Option<f64>,
    /// Polynomial-mutation distribution index.
    pub mutation_eta: f64,
    /// External archive capacity.
    pub archive_capacity: usize,
    /// Archive members re-injected per generation.
    pub feedback: usize,
}

impl Default for MoCellConfig {
    fn default() -> Self {
        Self {
            grid_side: 10,
            max_evaluations: 25_000,
            crossover_prob: 0.9,
            crossover_eta: 20.0,
            mutation_prob: None,
            mutation_eta: 20.0,
            archive_capacity: 100,
            feedback: 20,
        }
    }
}

impl MoCellConfig {
    /// Reduced-budget configuration for tests/quick experiments.
    pub fn quick(grid_side: usize, max_evaluations: u64) -> Self {
        Self {
            grid_side,
            max_evaluations,
            archive_capacity: (grid_side * grid_side).max(20),
            feedback: (grid_side * grid_side / 5).max(2),
            ..Self::default()
        }
    }
}

/// The MOCell optimiser.
#[derive(Debug, Clone, Default)]
pub struct MoCell {
    /// Algorithm parameters.
    pub config: MoCellConfig,
}

impl MoCell {
    /// Creates the optimiser with the given configuration.
    pub fn new(config: MoCellConfig) -> Self {
        Self { config }
    }

    /// C9 neighbourhood on the torus (deduplicated for tiny grids).
    fn neighborhood(&self, cell: usize) -> Vec<usize> {
        let side = self.config.grid_side as isize;
        let (r, c) = ((cell as isize) / side, (cell as isize) % side);
        let mut out = Vec::with_capacity(8);
        for dr in -1..=1 {
            for dc in -1..=1 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let rr = (r + dr).rem_euclid(side);
                let cc = (c + dc).rem_euclid(side);
                out.push((rr * side + cc) as usize);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl MoAlgorithm for MoCell {
    fn name(&self) -> &'static str {
        "MOCell"
    }

    fn run(&self, problem: &dyn Problem, seed: u64) -> RunResult {
        self.run_observed(problem, seed, &NoProgress)
    }

    fn run_observed(
        &self,
        problem: &dyn Problem,
        seed: u64,
        observer: &dyn RunObserver,
    ) -> RunResult {
        let start = Instant::now();
        let cfg = &self.config;
        assert!(cfg.grid_side >= 2);
        let n = cfg.grid_side * cfg.grid_side;
        let bounds = problem.bounds();
        let pm = cfg.mutation_prob.unwrap_or(1.0 / bounds.len() as f64);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut evals: u64 = 0;
        let mut generation: u64 = 0;

        let init_xs: Vec<Vec<f64>> = (0..n).map(|_| uniform_init(bounds, &mut rng)).collect();
        evals += init_xs.len() as u64;
        let mut grid: Vec<Candidate> = problem.make_candidates(init_xs);
        let mut archive = AgaArchive::new(cfg.archive_capacity, 5);
        for c in &grid {
            archive.try_insert(c.clone());
        }
        observer.on_generation(generation, evals, archive.members());

        while evals < cfg.max_evaluations && !observer.cancelled() {
            // Synchronous generation: variation reads the generation-start
            // grid and all offspring are evaluated as ONE batch (the
            // batched pipeline lets expensive problems fan the whole
            // generation out at once); replacements then apply in cell
            // order, exactly as a synchronous cellular GA updates.
            let trials_this_gen = n.min((cfg.max_evaluations - evals) as usize);
            let mut trial_xs: Vec<Vec<f64>> = Vec::with_capacity(trials_this_gen);
            for cell in 0..trials_this_gen {
                let hood = self.neighborhood(cell);
                let hood_pop: Vec<Candidate> = hood.iter().map(|&i| grid[i].clone()).collect();
                let p1 = binary_tournament(&hood_pop, &mut rng);
                let p2 = binary_tournament(&hood_pop, &mut rng);
                let (mut child, _) = sbx_crossover(
                    &hood_pop[p1].params,
                    &hood_pop[p2].params,
                    cfg.crossover_eta,
                    cfg.crossover_prob,
                    bounds,
                    &mut rng,
                );
                polynomial_mutation(&mut child, cfg.mutation_eta, pm, bounds, &mut rng);
                trial_xs.push(child);
            }
            evals += trial_xs.len() as u64;
            let trials = problem.make_candidates(trial_xs);
            for (cell, child) in trials.into_iter().enumerate() {
                let hood = self.neighborhood(cell);
                match constrained_dominance(&child, &grid[cell]) {
                    DominanceOrd::Dominates => grid[cell] = child.clone(),
                    DominanceOrd::DominatedBy => {}
                    DominanceOrd::Indifferent => {
                        let worst = hood
                            .iter()
                            .copied()
                            .max_by_key(|&i| {
                                hood.iter()
                                    .filter(|&&j| {
                                        constrained_dominance(&grid[j], &grid[i])
                                            == DominanceOrd::Dominates
                                    })
                                    .count()
                            })
                            .unwrap_or(cell);
                        grid[worst] = child.clone();
                    }
                }
                archive.try_insert(child);
            }
            for _ in 0..cfg.feedback {
                if let Some(elite) = archive.sample(&mut rng) {
                    let slot = rng.gen_range(0..n);
                    grid[slot] = elite.clone();
                }
            }
            generation += 1;
            observer.on_generation(generation, evals, archive.members());
        }

        RunResult {
            front: archive.into_members(),
            evaluations: evals,
            elapsed: start.elapsed(),
        }
        .sanitize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mopt::indicators::hypervolume;
    use mopt::problem::test_problems::{ConstrainedSchaffer, Schaffer, Zdt1};

    #[test]
    fn converges_on_schaffer() {
        let alg = MoCell::new(MoCellConfig::quick(6, 2500));
        let r = alg.run(&Schaffer::new(), 2);
        assert!(!r.front.is_empty());
        let inside = r
            .front
            .iter()
            .filter(|c| c.params[0] > -0.5 && c.params[0] < 2.5)
            .count();
        assert!(
            inside * 10 >= r.front.len() * 9,
            "{}/{}",
            inside,
            r.front.len()
        );
    }

    #[test]
    fn zdt1_reasonable_hypervolume() {
        let alg = MoCell::new(MoCellConfig::quick(6, 5000));
        let r = alg.run(&Zdt1::new(8), 7);
        let hv = hypervolume(&r.objectives(), &[1.1, 1.1]);
        assert!(hv > 0.55, "hv = {hv}");
    }

    #[test]
    fn constraint_handling() {
        let alg = MoCell::new(MoCellConfig::quick(5, 1500));
        let r = alg.run(&ConstrainedSchaffer::new(), 3);
        assert!(r.front.iter().all(|c| c.is_feasible()));
    }

    #[test]
    fn deterministic_given_seed() {
        let alg = MoCell::new(MoCellConfig::quick(4, 600));
        let p = Schaffer::new();
        let a = alg.run(&p, 10);
        let b = alg.run(&p, 10);
        assert_eq!(
            a.front
                .iter()
                .map(|c| c.objectives.clone())
                .collect::<Vec<_>>(),
            b.front
                .iter()
                .map(|c| c.objectives.clone())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn observed_run_matches_plain_run() {
        struct Counter(std::sync::atomic::AtomicU64);
        impl RunObserver for Counter {
            fn on_generation(&self, _g: u64, _e: u64, _p: &[Candidate]) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let alg = MoCell::new(MoCellConfig::quick(4, 600));
        let p = Schaffer::new();
        let plain = alg.run(&p, 10);
        let obs = Counter(std::sync::atomic::AtomicU64::new(0));
        let observed = alg.run_observed(&p, 10, &obs);
        let project = |r: &RunResult| {
            r.front
                .iter()
                .map(|c| (c.params.clone(), c.objectives.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(project(&plain), project(&observed));
        assert_eq!(plain.evaluations, observed.evaluations);
        assert!(obs.0.load(std::sync::atomic::Ordering::Relaxed) > 1);
    }

    #[test]
    fn budget_not_exceeded() {
        let alg = MoCell::new(MoCellConfig::quick(5, 999));
        let r = alg.run(&Schaffer::new(), 1);
        assert!(r.evaluations <= 999);
        assert!(r.evaluations >= 990);
    }

    #[test]
    fn neighborhood_shape() {
        let alg = MoCell::new(MoCellConfig::quick(5, 100));
        let hood = alg.neighborhood(12); // interior cell of a 5×5 grid
        assert_eq!(hood.len(), 8);
        assert!(!hood.contains(&12));
    }
}
