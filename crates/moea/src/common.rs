//! Re-export of the shared algorithm interface from `mopt` (kept for
//! backwards-compatible paths: `moea::common::MoAlgorithm`).

pub use mopt::algorithm::{MoAlgorithm, NoProgress, RunObserver, RunResult};
