//! # moea — the paper's baseline multi-objective evolutionary algorithms
//!
//! AEDB-MLS is validated against two MOEAs (§VI): **NSGA-II** (Deb et al.
//! 2002) and **CellDE** (Durillo et al. 2008, a cellular GA with
//! differential-evolution variation and an external archive). Both are
//! implemented here from scratch over the `mopt` substrate, with the same
//! constrained-dominance handling as the rest of the system, so that the
//! comparison harness can reproduce Table IV, Figures 6–7 and the §VI
//! domination/runtime analyses.

pub mod cellde;
pub mod common;
pub mod mocell;
pub mod nsga2;

pub use cellde::{CellDe, CellDeConfig};
pub use common::{MoAlgorithm, RunResult};
pub use mocell::{MoCell, MoCellConfig};
pub use nsga2::{Nsga2, Nsga2Config};
