//! Quality indicators for Pareto front approximations: hypervolume,
//! generational distance (GD), inverted generational distance (IGD),
//! spread Δ and the additive-ε indicator, plus the front normalisation the
//! paper applies before computing them ("all fronts were normalised
//! because these indicators are not free from arbitrary scaling").
//!
//! All indicators assume **minimisation-form** objective vectors.

/// Min–max normaliser built from a reference set of points (the paper uses
/// the combined best front of all compared algorithms).
#[derive(Debug, Clone)]
pub struct Normalizer {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl Normalizer {
    /// Builds the normaliser from the per-objective extrema of `points`.
    ///
    /// Returns `None` when `points` is empty.
    pub fn from_points(points: &[Vec<f64>]) -> Option<Self> {
        let first = points.first()?;
        let m = first.len();
        let mut mins = vec![f64::INFINITY; m];
        let mut maxs = vec![f64::NEG_INFINITY; m];
        for p in points {
            debug_assert_eq!(p.len(), m);
            for d in 0..m {
                mins[d] = mins[d].min(p[d]);
                maxs[d] = maxs[d].max(p[d]);
            }
        }
        Some(Self { mins, maxs })
    }

    /// Normalises one point into (roughly) `[0,1]^m`; degenerate axes map
    /// to `0`. Points outside the reference ranges may exceed `[0,1]`.
    pub fn apply(&self, p: &[f64]) -> Vec<f64> {
        p.iter()
            .enumerate()
            .map(|(d, &v)| {
                let span = self.maxs[d] - self.mins[d];
                if span > 0.0 {
                    (v - self.mins[d]) / span
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Normalises a whole front.
    pub fn apply_front(&self, front: &[Vec<f64>]) -> Vec<Vec<f64>> {
        front.iter().map(|p| self.apply(p)).collect()
    }

    /// Per-objective minima of the reference set.
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Per-objective maxima of the reference set.
    pub fn maxs(&self) -> &[f64] {
        &self.maxs
    }
}

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

fn min_dist_to_set(p: &[f64], set: &[Vec<f64>]) -> f64 {
    set.iter()
        .map(|q| euclid(p, q))
        .fold(f64::INFINITY, f64::min)
}

/// Generational distance: `sqrt(Σ dᵢ²)/n` where `dᵢ` is the distance from
/// the `i`-th point of `front` to the closest point of `reference`
/// (Van Veldhuizen 1999 — the formula printed as Eq. 3 in the paper).
pub fn generational_distance(front: &[Vec<f64>], reference: &[Vec<f64>]) -> f64 {
    if front.is_empty() || reference.is_empty() {
        return f64::INFINITY;
    }
    let sum: f64 = front
        .iter()
        .map(|p| min_dist_to_set(p, reference).powi(2))
        .sum();
    sum.sqrt() / front.len() as f64
}

/// Inverted generational distance: the same formula with the roles of the
/// fronts exchanged — the mean (quadratic) distance from each reference
/// point to the closest point of the approximation. Smaller is better;
/// `0` when every reference point is matched exactly.
pub fn inverted_generational_distance(front: &[Vec<f64>], reference: &[Vec<f64>]) -> f64 {
    generational_distance(reference, front)
}

/// Additive ε-indicator (Zitzler 2003): the smallest ε such that every
/// reference point is weakly dominated by some front point shifted by ε.
pub fn additive_epsilon(front: &[Vec<f64>], reference: &[Vec<f64>]) -> f64 {
    if front.is_empty() || reference.is_empty() {
        return f64::INFINITY;
    }
    reference
        .iter()
        .map(|r| {
            front
                .iter()
                .map(|a| {
                    a.iter()
                        .zip(r)
                        .map(|(ai, ri)| ai - ri)
                        .fold(f64::NEG_INFINITY, f64::max)
                })
                .fold(f64::INFINITY, f64::min)
        })
        .fold(f64::NEG_INFINITY, f64::max)
}

/// Spread Δ (Deb's diversity metric, Eq. 4 of the paper) for bi-objective
/// fronts: uses consecutive distances along the front plus the distances
/// `df`, `dl` to the extreme points of the reference front. `0` = ideal.
pub fn spread_2d(front: &[Vec<f64>], reference: &[Vec<f64>]) -> f64 {
    assert!(
        front.iter().all(|p| p.len() == 2),
        "spread_2d needs 2-objective fronts"
    );
    if front.is_empty() || reference.is_empty() {
        return f64::INFINITY;
    }
    let mut pts = front.to_vec();
    pts.sort_by(|a, b| a[0].total_cmp(&b[0]).then(a[1].total_cmp(&b[1])));
    // Extreme points of the reference front: the ends of the curve when
    // walked by increasing f0 (min-f0 end pairs with the leftmost obtained
    // point, max-f0 / min-f1 end with the rightmost).
    let ext_left = reference
        .iter()
        .min_by(|a, b| a[0].total_cmp(&b[0]))
        .unwrap();
    let ext_right = reference
        .iter()
        .max_by(|a, b| a[0].total_cmp(&b[0]))
        .unwrap();
    let df = euclid(&pts[0], ext_left);
    let dl = euclid(pts.last().unwrap(), ext_right);
    if pts.len() == 1 {
        return 1.0;
    }
    let dists: Vec<f64> = pts.windows(2).map(|w| euclid(&w[0], &w[1])).collect();
    let dbar = dists.iter().sum::<f64>() / dists.len() as f64;
    let dev: f64 = dists.iter().map(|d| (d - dbar).abs()).sum();
    (df + dl + dev) / (df + dl + dists.len() as f64 * dbar)
}

/// Generalised spread Δ* (Zhou et al. 2006, as in jMetal's
/// `GeneralizedSpread`) for fronts with any number of objectives — the
/// paper's three-objective spread values are computed with this estimator.
/// Consecutive distances are replaced by nearest-neighbour distances and
/// the extreme terms sum over the reference extremes of every objective.
pub fn generalized_spread(front: &[Vec<f64>], reference: &[Vec<f64>]) -> f64 {
    if front.is_empty() || reference.is_empty() {
        return f64::INFINITY;
    }
    let m = reference[0].len();
    // Extreme point of the reference front for each objective.
    let extremes: Vec<&Vec<f64>> = (0..m)
        .map(|d| {
            reference
                .iter()
                .min_by(|a, b| a[d].total_cmp(&b[d]))
                .unwrap()
        })
        .collect();
    let ext_term: f64 = extremes.iter().map(|e| min_dist_to_set(e, front)).sum();
    if front.len() == 1 {
        return 1.0;
    }
    // Nearest-neighbour distance of each front point within the front.
    let nn: Vec<f64> = (0..front.len())
        .map(|i| {
            front
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, q)| euclid(&front[i], q))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let dbar = nn.iter().sum::<f64>() / nn.len() as f64;
    let dev: f64 = nn.iter().map(|d| (d - dbar).abs()).sum();
    let denom = ext_term + front.len() as f64 * dbar;
    if denom <= 0.0 {
        return 0.0;
    }
    (ext_term + dev) / denom
}

/// Exact hypervolume dominated by `front` with respect to `reference_point`
/// (all objectives minimised; points not strictly better than the reference
/// point in every coordinate contribute nothing). Exact for 1–3 objectives;
/// higher dimensions use a deterministic quasi-Monte-Carlo estimate.
///
/// # Example
/// ```
/// use mopt::indicators::hypervolume;
/// let front = vec![vec![0.0, 0.5], vec![0.5, 0.0]];
/// let hv = hypervolume(&front, &[1.0, 1.0]);
/// assert!((hv - 0.75).abs() < 1e-12);
/// ```
pub fn hypervolume(front: &[Vec<f64>], reference_point: &[f64]) -> f64 {
    let m = reference_point.len();
    let pts: Vec<Vec<f64>> = front
        .iter()
        .filter(|p| p.iter().zip(reference_point).all(|(a, r)| a < r))
        .cloned()
        .collect();
    if pts.is_empty() {
        return 0.0;
    }
    match m {
        1 => {
            let best = pts.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
            reference_point[0] - best
        }
        2 => hv2d(&pts, reference_point),
        3 => hv3d(&pts, reference_point),
        _ => hv_qmc(&pts, reference_point),
    }
}

/// 2-D hypervolume by a single sweep over points sorted by `f0`.
fn hv2d(pts: &[Vec<f64>], r: &[f64]) -> f64 {
    let mut sorted = pts.to_vec();
    sorted.sort_by(|a, b| a[0].total_cmp(&b[0]));
    let mut hv = 0.0;
    let mut prev_f1 = r[1];
    for p in &sorted {
        if p[1] < prev_f1 {
            hv += (r[0] - p[0]) * (prev_f1 - p[1]);
            prev_f1 = p[1];
        }
    }
    hv
}

/// 3-D hypervolume by sweeping `f2` slabs; each slab multiplies its height
/// by the 2-D hypervolume of the points already seen. O(n² log n).
fn hv3d(pts: &[Vec<f64>], r: &[f64]) -> f64 {
    let mut sorted = pts.to_vec();
    sorted.sort_by(|a, b| a[2].total_cmp(&b[2]));
    let r2 = [r[0], r[1]];
    let mut hv = 0.0;
    let mut active: Vec<Vec<f64>> = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let z = sorted[i][2];
        // absorb all points at this z level
        while i < sorted.len() && sorted[i][2] == z {
            active.push(vec![sorted[i][0], sorted[i][1]]);
            i += 1;
        }
        let z_next = if i < sorted.len() { sorted[i][2] } else { r[2] };
        let area = hv2d(&active, &r2);
        hv += area * (z_next - z);
    }
    hv
}

/// Deterministic quasi-Monte-Carlo hypervolume estimate for m > 3 using a
/// Halton sequence inside the reference box spanned by the ideal point.
fn hv_qmc(pts: &[Vec<f64>], r: &[f64]) -> f64 {
    let m = r.len();
    let ideal: Vec<f64> = (0..m)
        .map(|d| pts.iter().map(|p| p[d]).fold(f64::INFINITY, f64::min))
        .collect();
    let vol: f64 = (0..m).map(|d| r[d] - ideal[d]).product();
    if vol <= 0.0 {
        return 0.0;
    }
    const N: usize = 32_768;
    const PRIMES: [u64; 8] = [2, 3, 5, 7, 11, 13, 17, 19];
    let mut hits = 0usize;
    let mut sample = vec![0.0f64; m];
    for i in 0..N {
        for (d, s) in sample.iter_mut().enumerate() {
            let u = halton(i as u64 + 1, PRIMES[d % PRIMES.len()]);
            *s = ideal[d] + u * (r[d] - ideal[d]);
        }
        if pts
            .iter()
            .any(|p| p.iter().zip(&sample).all(|(a, s)| a <= s))
        {
            hits += 1;
        }
    }
    vol * hits as f64 / N as f64
}

fn halton(mut i: u64, base: u64) -> f64 {
    let mut f = 1.0;
    let mut r = 0.0;
    while i > 0 {
        f /= base as f64;
        r += f * (i % base) as f64;
        i /= base;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizer_maps_extrema_to_unit() {
        let pts = vec![vec![0.0, 10.0], vec![5.0, 20.0]];
        let n = Normalizer::from_points(&pts).unwrap();
        assert_eq!(n.apply(&[0.0, 10.0]), vec![0.0, 0.0]);
        assert_eq!(n.apply(&[5.0, 20.0]), vec![1.0, 1.0]);
        assert_eq!(n.apply(&[2.5, 15.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn normalizer_empty_none() {
        assert!(Normalizer::from_points(&[]).is_none());
    }

    #[test]
    fn gd_zero_when_subset() {
        let reference = vec![vec![0.0, 1.0], vec![0.5, 0.5], vec![1.0, 0.0]];
        let front = vec![vec![0.5, 0.5]];
        assert_eq!(generational_distance(&front, &reference), 0.0);
        // IGD is nonzero: two reference points are unmatched.
        assert!(inverted_generational_distance(&front, &reference) > 0.0);
    }

    #[test]
    fn igd_zero_when_reference_covered() {
        let reference = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let front = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![0.5, 0.5]];
        assert_eq!(inverted_generational_distance(&front, &reference), 0.0);
    }

    #[test]
    fn gd_known_value() {
        let reference = vec![vec![0.0, 0.0]];
        let front = vec![vec![3.0, 4.0]]; // distance 5
        assert!((generational_distance(&front, &reference) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_indicator_basics() {
        let reference = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        // identical front: eps = 0
        assert_eq!(additive_epsilon(&reference, &reference), 0.0);
        // front shifted by +0.25 everywhere: eps = 0.25
        let shifted: Vec<Vec<f64>> = reference
            .iter()
            .map(|p| p.iter().map(|v| v + 0.25).collect())
            .collect();
        assert!((additive_epsilon(&shifted, &reference) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hv_2d_rectangles() {
        // single point: rectangle to the reference point
        let hv = hypervolume(&[vec![0.25, 0.25]], &[1.0, 1.0]);
        assert!((hv - 0.5625).abs() < 1e-12);
        // two staircase points
        let hv = hypervolume(&[vec![0.0, 0.5], vec![0.5, 0.0]], &[1.0, 1.0]);
        assert!((hv - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hv_ignores_points_outside_reference() {
        let hv = hypervolume(&[vec![2.0, 2.0]], &[1.0, 1.0]);
        assert_eq!(hv, 0.0);
        let hv = hypervolume(&[vec![0.5, 0.5], vec![5.0, -5.0]], &[1.0, 1.0]);
        assert!((hv - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hv_3d_single_box() {
        let hv = hypervolume(&[vec![0.0, 0.0, 0.0]], &[1.0, 2.0, 3.0]);
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn hv_3d_two_disjointish_boxes() {
        // box A: (0,0,0)->(1,1,1) vol 1; box B: (0.5,0.5,0.5)->ref, inside union
        let r = [1.0, 1.0, 1.0];
        let hv = hypervolume(&[vec![0.0, 0.5, 0.0], vec![0.5, 0.0, 0.5]], &r);
        // A = 1*0.5*1 = 0.5 ; B = 0.5*1*0.5 = 0.25 ; overlap = 0.5*0.5*0.5=0.125
        assert!((hv - 0.625).abs() < 1e-12, "hv = {hv}");
    }

    #[test]
    fn hv_3d_matches_2d_extrusion() {
        // Extruding a 2-D staircase along f2=0 with ref f2=1 must equal 2-D HV.
        let front2 = vec![vec![0.0, 0.5], vec![0.5, 0.0]];
        let hv2 = hypervolume(&front2, &[1.0, 1.0]);
        let front3: Vec<Vec<f64>> = front2.iter().map(|p| vec![p[0], p[1], 0.0]).collect();
        let hv3 = hypervolume(&front3, &[1.0, 1.0, 1.0]);
        assert!((hv3 - hv2).abs() < 1e-12);
    }

    #[test]
    fn hv_monotone_in_front_quality() {
        let r = [1.0, 1.0, 1.0];
        let worse = hypervolume(&[vec![0.5, 0.5, 0.5]], &r);
        let better = hypervolume(&[vec![0.25, 0.25, 0.25]], &r);
        assert!(better > worse);
        // adding a point never reduces hv
        let more = hypervolume(&[vec![0.5, 0.5, 0.5], vec![0.1, 0.9, 0.9]], &r);
        assert!(more >= worse - 1e-12);
    }

    #[test]
    fn hv_qmc_close_to_exact_for_4d_box() {
        // one point at origin, ref at (1,1,1,1): exact HV = 1
        let hv = hypervolume(&[vec![0.0; 4]], &[1.0; 4]);
        assert!((hv - 1.0).abs() < 0.02, "qmc hv = {hv}");
    }

    #[test]
    fn spread_2d_uniform_is_small() {
        let reference: Vec<Vec<f64>> = (0..=10)
            .map(|i| vec![i as f64 / 10.0, 1.0 - i as f64 / 10.0])
            .collect();
        let uniform = reference.clone();
        let clumped = vec![
            vec![0.0, 1.0],
            vec![0.05, 0.95],
            vec![0.1, 0.9],
            vec![1.0, 0.0],
        ];
        let s_u = spread_2d(&uniform, &reference);
        let s_c = spread_2d(&clumped, &reference);
        assert!(s_u < s_c, "uniform {s_u} should beat clumped {s_c}");
        assert!(s_u < 1e-9);
    }

    #[test]
    fn generalized_spread_prefers_even_fronts() {
        let reference: Vec<Vec<f64>> = (0..=10)
            .map(|i| {
                let t = i as f64 / 10.0;
                vec![t, 1.0 - t, 0.5]
            })
            .collect();
        let even = reference.clone();
        let clumped: Vec<Vec<f64>> = vec![
            vec![0.0, 1.0, 0.5],
            vec![0.02, 0.98, 0.5],
            vec![0.04, 0.96, 0.5],
            vec![1.0, 0.0, 0.5],
        ];
        let s_e = generalized_spread(&even, &reference);
        let s_c = generalized_spread(&clumped, &reference);
        assert!(s_e < s_c, "even {s_e} vs clumped {s_c}");
    }

    #[test]
    fn epsilon_negative_when_front_dominates_reference() {
        // A front strictly better than the reference yields ε < 0.
        let reference = vec![vec![0.5, 0.5]];
        let front = vec![vec![0.25, 0.25]];
        assert!((additive_epsilon(&front, &reference) - -0.25).abs() < 1e-12);
    }

    #[test]
    fn hv_duplicate_points_counted_once() {
        let hv1 = hypervolume(&[vec![0.5, 0.5]], &[1.0, 1.0]);
        let hv2 = hypervolume(&[vec![0.5, 0.5], vec![0.5, 0.5]], &[1.0, 1.0]);
        assert!((hv1 - hv2).abs() < 1e-12);
    }

    #[test]
    fn hv_point_on_reference_boundary_contributes_nothing() {
        // strict dominance of the reference point is required
        assert_eq!(hypervolume(&[vec![1.0, 0.0]], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn spread_single_point_front_is_one() {
        let reference = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert_eq!(spread_2d(&[vec![0.5, 0.5]], &reference), 1.0);
        assert_eq!(generalized_spread(&[vec![0.5, 0.5]], &reference), 1.0);
    }

    #[test]
    fn normalizer_clamps_nothing_outside_reference() {
        // points outside the reference box legitimately map outside [0,1]
        let pts = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let n = Normalizer::from_points(&pts).unwrap();
        let out = n.apply(&[2.0, -1.0]);
        assert_eq!(out, vec![2.0, -1.0]);
    }

    #[test]
    fn gd_igd_are_transposes() {
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let b = vec![vec![0.2, 0.8], vec![0.9, 0.1], vec![0.5, 0.5]];
        assert_eq!(
            generational_distance(&a, &b),
            inverted_generational_distance(&b, &a)
        );
    }

    #[test]
    fn indicators_handle_empty_fronts() {
        let reference = vec![vec![0.0, 1.0]];
        assert!(generational_distance(&[], &reference).is_infinite());
        assert!(inverted_generational_distance(&[], &reference).is_infinite());
        assert!(additive_epsilon(&[], &reference).is_infinite());
        assert_eq!(hypervolume(&[], &[1.0, 1.0]), 0.0);
    }
}
