//! Statistics for the experimental analysis: the Wilcoxon rank-sum test the
//! paper uses for Table IV ("95% statistical confidence according to
//! Wilcoxon unpaired signed rank test" — i.e. the two-sample rank-sum /
//! Mann–Whitney test), plus boxplot summaries for Figure 7.

/// Five-number summary plus mean, as printed by the Figure 7 harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Boxplot {
    /// Smallest observation.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// Linear-interpolation percentile (R type-7, matplotlib default).
/// `q` in `[0,1]`. Panics on empty input.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q.clamp(0.0, 1.0) * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
}

/// Computes the boxplot summary of a sample. Returns `None` on empty input.
pub fn boxplot(sample: &[f64]) -> Option<Boxplot> {
    if sample.is_empty() {
        return None;
    }
    let mut s = sample.to_vec();
    s.sort_by(f64::total_cmp);
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    Some(Boxplot {
        min: s[0],
        q1: percentile(&s, 0.25),
        median: percentile(&s, 0.5),
        q3: percentile(&s, 0.75),
        max: *s.last().unwrap(),
        mean,
    })
}

/// Sample mean and (unbiased) standard deviation.
pub fn mean_std(sample: &[f64]) -> (f64, f64) {
    if sample.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let n = sample.len() as f64;
    let mean = sample.iter().sum::<f64>() / n;
    if sample.len() < 2 {
        return (mean, 0.0);
    }
    let var = sample.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

/// Result of a two-sided Wilcoxon rank-sum (Mann–Whitney U) test.
#[derive(Debug, Clone, Copy)]
pub struct RankSum {
    /// Mann–Whitney U statistic of the first sample.
    pub u: f64,
    /// Standardised statistic (tie-corrected, continuity-corrected).
    pub z: f64,
    /// Two-sided p-value from the normal approximation.
    pub p_value: f64,
    /// `> 0` when the first sample tends to larger values, `< 0` when the
    /// second does (sign of the effect).
    pub effect_sign: f64,
}

/// Two-sided Wilcoxon rank-sum test with tie correction and continuity
/// correction (normal approximation; fine for the paper's n = 30 runs).
///
/// Returns `None` when either sample is empty or the variance degenerates
/// (e.g. all observations identical).
///
/// # Example
/// ```
/// use mopt::stats::wilcoxon_rank_sum;
/// let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
/// let b: Vec<f64> = (0..30).map(|i| i as f64 + 50.0).collect();
/// let t = wilcoxon_rank_sum(&a, &b).unwrap();
/// assert!(t.p_value < 0.05); // clearly shifted distributions
/// ```
pub fn wilcoxon_rank_sum(a: &[f64], b: &[f64]) -> Option<RankSum> {
    let (n1, n2) = (a.len(), b.len());
    if n1 == 0 || n2 == 0 {
        return None;
    }
    // Rank the pooled sample with mid-ranks for ties.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&x| (x, 0usize))
        .chain(b.iter().map(|&x| (x, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.total_cmp(&y.0));
    let n = pooled.len();
    let mut ranks = vec![0.0f64; n];
    let mut tie_term = 0.0f64; // Σ (t³ − t) over tie groups
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0; // ranks are 1-based
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = avg_rank;
        }
        let t = (j - i + 1) as f64;
        tie_term += t * t * t - t;
        i = j + 1;
    }
    let r1: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, g), _)| *g == 0)
        .map(|(_, &r)| r)
        .sum();
    let (n1f, n2f) = (n1 as f64, n2 as f64);
    let u1 = r1 - n1f * (n1f + 1.0) / 2.0;
    let mu = n1f * n2f / 2.0;
    let nf = n as f64;
    let sigma2 = n1f * n2f / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    if sigma2 <= 0.0 {
        return None;
    }
    let sigma = sigma2.sqrt();
    // continuity correction toward the mean
    let diff = u1 - mu;
    let z = if diff > 0.0 {
        (diff - 0.5) / sigma
    } else if diff < 0.0 {
        (diff + 0.5) / sigma
    } else {
        0.0
    };
    let p = 2.0 * (1.0 - std_normal_cdf(z.abs()));
    Some(RankSum {
        u: u1,
        z,
        p_value: p.clamp(0.0, 1.0),
        effect_sign: diff.signum(),
    })
}

/// Outcome of a pairwise significance comparison, as encoded in Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparison {
    /// Row algorithm significantly better (the paper's `▲`).
    Better,
    /// Row algorithm significantly worse (`▽`).
    Worse,
    /// No statistical significance at the requested level (`–`).
    NoDifference,
}

impl Comparison {
    /// Symbol used by the experiment harness (matches the paper's table).
    pub fn symbol(self) -> char {
        match self {
            Comparison::Better => '▲',
            Comparison::Worse => '▽',
            Comparison::NoDifference => '–',
        }
    }
}

/// Compares two samples of an indicator at significance `alpha`.
/// `smaller_is_better` selects the polarity (true for IGD/spread, false
/// for hypervolume).
pub fn compare_samples(a: &[f64], b: &[f64], smaller_is_better: bool, alpha: f64) -> Comparison {
    match wilcoxon_rank_sum(a, b) {
        Some(r) if r.p_value < alpha && r.effect_sign != 0.0 => {
            let a_larger = r.effect_sign > 0.0;
            match (a_larger, smaller_is_better) {
                (true, true) | (false, false) => Comparison::Worse,
                (true, false) | (false, true) => Comparison::Better,
            }
        }
        _ => Comparison::NoDifference,
    }
}

/// Standard normal CDF via the complementary error function
/// (Abramowitz–Stegun 7.1.26 rational approximation, |error| < 1.5e-7).
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxplot_odd_sample() {
        let b = boxplot(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.mean, 3.0);
    }

    #[test]
    fn boxplot_empty_none() {
        assert!(boxplot(&[]).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 1.0), 4.0);
        assert!((percentile(&s, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mean_std_known() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((std_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn wilcoxon_detects_clear_shift() {
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| i as f64 + 100.0).collect();
        let r = wilcoxon_rank_sum(&a, &b).unwrap();
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
        assert!(r.effect_sign < 0.0); // a smaller
    }

    #[test]
    fn wilcoxon_no_difference_for_identical_distributions() {
        let a: Vec<f64> = (0..30).map(|i| (i as f64 * 37.0) % 11.0).collect();
        let r = wilcoxon_rank_sum(&a, &a).unwrap();
        assert!(r.p_value > 0.9, "p = {}", r.p_value);
    }

    #[test]
    fn wilcoxon_handles_ties() {
        let a = vec![1.0, 1.0, 1.0, 2.0, 2.0];
        let b = vec![1.0, 2.0, 2.0, 2.0, 3.0];
        let r = wilcoxon_rank_sum(&a, &b).unwrap();
        assert!(r.p_value > 0.05); // weak evidence only
    }

    #[test]
    fn wilcoxon_degenerate_all_equal() {
        // all observations identical => zero variance => None
        assert!(wilcoxon_rank_sum(&[1.0; 5], &[1.0; 5]).is_none());
        assert!(wilcoxon_rank_sum(&[], &[1.0]).is_none());
    }

    #[test]
    fn comparison_polarity() {
        let small: Vec<f64> = (0..30).map(|i| i as f64 * 0.01).collect();
        let large: Vec<f64> = (0..30).map(|i| 10.0 + i as f64 * 0.01).collect();
        // smaller-is-better indicator (e.g. IGD): `small` sample wins
        assert_eq!(
            compare_samples(&small, &large, true, 0.05),
            Comparison::Better
        );
        assert_eq!(
            compare_samples(&large, &small, true, 0.05),
            Comparison::Worse
        );
        // larger-is-better (hypervolume)
        assert_eq!(
            compare_samples(&small, &large, false, 0.05),
            Comparison::Worse
        );
        assert_eq!(
            compare_samples(&large, &small, false, 0.05),
            Comparison::Better
        );
        assert_eq!(
            compare_samples(&small, &small, false, 0.05),
            Comparison::NoDifference
        );
    }

    #[test]
    fn comparison_symbols() {
        assert_eq!(Comparison::Better.symbol(), '▲');
        assert_eq!(Comparison::Worse.symbol(), '▽');
        assert_eq!(Comparison::NoDifference.symbol(), '–');
    }
}
