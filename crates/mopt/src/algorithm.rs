//! Shared optimiser interface: every algorithm in this reproduction
//! (NSGA-II, CellDE, AEDB-MLS) runs a seeded search against a
//! [`Problem`](crate::Problem) and returns a Pareto front approximation
//! plus bookkeeping, so the experiment harness can treat them uniformly —
//! the paper's §VI compares exactly these three under one protocol.

use crate::dominance::non_dominated;
use crate::problem::Problem;
use crate::solution::Candidate;
use std::time::Duration;

/// Outcome of one independent algorithm run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Non-dominated solutions found (the run's Pareto front approximation).
    pub front: Vec<Candidate>,
    /// Solution evaluations performed.
    pub evaluations: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl RunResult {
    /// Objective vectors of the front (used by the indicator machinery).
    pub fn objectives(&self) -> Vec<Vec<f64>> {
        self.front.iter().map(|c| c.objectives.clone()).collect()
    }

    /// Keeps only feasible, mutually non-dominated solutions (defensive
    /// post-filter; algorithms should already guarantee this). When no
    /// feasible solution exists the least-violating front is kept instead.
    pub fn sanitize(mut self) -> Self {
        let feasible: Vec<Candidate> = self
            .front
            .iter()
            .filter(|c| c.is_feasible())
            .cloned()
            .collect();
        let pool = if feasible.is_empty() {
            self.front.clone()
        } else {
            feasible
        };
        self.front = non_dominated(&pool);
        self
    }
}

/// Observer of a run's progress, called from inside
/// [`MoAlgorithm::run_observed`] between generations.
///
/// Two guarantees make observers safe to bolt onto any algorithm:
///
/// * **Read-only**: an observer never feeds back into the search — the
///   observed run's RNG stream, trajectory and result are bit-identical
///   to an unobserved [`MoAlgorithm::run`] (pinned per algorithm by the
///   `observed_run_matches_plain_run` tests).
/// * **Cooperative cancellation**: [`cancelled`](Self::cancelled) is
///   polled at generation boundaries; once it returns `true` the
///   algorithm stops early and returns the front it has (sanitized), so
///   a resident service can abandon a long campaign without killing the
///   process.
///
/// Algorithms whose internal structure has no generation barrier to hook
/// (the multi-threaded AEDB-MLS) fall back to the default
/// [`MoAlgorithm::run_observed`], which runs to completion and reports
/// nothing — cancellation for those happens at the caller's coarser
/// boundaries (e.g. between campaign repetitions).
pub trait RunObserver: Sync {
    /// Called after every evaluated generation with the generation index
    /// (0 = the evaluated initial population), the evaluations consumed
    /// so far and the algorithm's current solution pool — the population
    /// or archive the final front will be drawn from, *not* yet filtered
    /// to non-dominated solutions (observers that want a front snapshot
    /// apply [`non_dominated`](crate::dominance::non_dominated)
    /// themselves, keeping the common no-observer path free of that
    /// cost).
    fn on_generation(&self, generation: u64, evaluations: u64, pool: &[Candidate]) {
        let _ = (generation, evaluations, pool);
    }

    /// Polled at generation boundaries; returning `true` makes the run
    /// stop early with the solutions found so far.
    fn cancelled(&self) -> bool {
        false
    }
}

/// The do-nothing observer; [`MoAlgorithm::run`] is exactly
/// `run_observed` through this.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProgress;

impl RunObserver for NoProgress {}

/// A multi-objective optimiser with deterministic seeded runs.
pub trait MoAlgorithm {
    /// Short display name ("NSGAII", "CellDE", "AEDB-MLS").
    fn name(&self) -> &'static str;

    /// Runs the algorithm once with the given seed.
    fn run(&self, problem: &dyn Problem, seed: u64) -> RunResult;

    /// Runs the algorithm once, reporting per-generation progress to
    /// `observer` and honouring its cancellation flag. The observed run
    /// is bit-identical to [`run`](Self::run); the default implementation
    /// ignores the observer entirely (correct for algorithms with no
    /// generation structure to report — see [`RunObserver`]).
    fn run_observed(
        &self,
        problem: &dyn Problem,
        seed: u64,
        observer: &dyn RunObserver,
    ) -> RunResult {
        let _ = observer;
        self.run(problem, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_filters_infeasible_and_dominated() {
        let mk = |o: &[f64], v: f64| Candidate::evaluated(vec![], o.to_vec(), v);
        let r = RunResult {
            front: vec![
                mk(&[1.0, 1.0], 0.0),
                mk(&[2.0, 2.0], 0.0),
                mk(&[0.0, 0.0], 3.0),
            ],
            evaluations: 3,
            elapsed: Duration::ZERO,
        };
        let s = r.sanitize();
        assert_eq!(s.front.len(), 1);
        assert_eq!(s.front[0].objectives, vec![1.0, 1.0]);
    }

    #[test]
    fn sanitize_keeps_infeasible_when_nothing_feasible() {
        let mk = |o: &[f64], v: f64| Candidate::evaluated(vec![], o.to_vec(), v);
        let r = RunResult {
            front: vec![mk(&[1.0, 1.0], 2.0), mk(&[0.5, 0.5], 1.0)],
            evaluations: 2,
            elapsed: Duration::ZERO,
        };
        let s = r.sanitize();
        assert_eq!(s.front.len(), 1); // lower violation dominates
        assert_eq!(s.front[0].violation, 1.0);
    }

    #[test]
    fn objectives_projection() {
        let r = RunResult {
            front: vec![Candidate::evaluated(vec![9.0], vec![1.0, 2.0], 0.0)],
            evaluations: 1,
            elapsed: Duration::ZERO,
        };
        assert_eq!(r.objectives(), vec![vec![1.0, 2.0]]);
    }
}
