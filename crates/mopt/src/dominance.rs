//! Pareto dominance with Deb's feasibility-first constraint handling.
//!
//! The paper restricts solutions with broadcast time ≥ 2 s; its acceptance
//! rule ("if sˆ is feasible … store in archive") and the MOEAs it compares
//! against both use the standard constrained-domination principle
//! (Deb 2002): any feasible solution dominates any infeasible one; two
//! infeasible solutions are ordered by violation; two feasible ones by
//! Pareto dominance over the (minimisation-form) objectives.

use crate::solution::Candidate;
use std::cmp::Ordering;

/// Outcome of a constrained-dominance comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DominanceOrd {
    /// The first solution dominates the second.
    Dominates,
    /// The second solution dominates the first.
    DominatedBy,
    /// Neither dominates (incomparable or identical).
    Indifferent,
}

/// Plain (unconstrained) Pareto dominance over minimisation objectives.
///
/// Returns [`DominanceOrd::Dominates`] iff `a` is no worse in all objectives
/// and strictly better in at least one.
pub fn pareto_dominance(a: &[f64], b: &[f64]) -> DominanceOrd {
    debug_assert_eq!(a.len(), b.len(), "objective dimension mismatch");
    let mut a_better = false;
    let mut b_better = false;
    for (x, y) in a.iter().zip(b) {
        match x.partial_cmp(y) {
            Some(Ordering::Less) => a_better = true,
            Some(Ordering::Greater) => b_better = true,
            Some(Ordering::Equal) => {}
            // NaN makes the pair incomparable; treat conservatively.
            None => return DominanceOrd::Indifferent,
        }
        if a_better && b_better {
            return DominanceOrd::Indifferent;
        }
    }
    match (a_better, b_better) {
        (true, false) => DominanceOrd::Dominates,
        (false, true) => DominanceOrd::DominatedBy,
        _ => DominanceOrd::Indifferent,
    }
}

/// Constrained dominance between two evaluated candidates.
pub fn constrained_dominance(a: &Candidate, b: &Candidate) -> DominanceOrd {
    match (a.is_feasible(), b.is_feasible()) {
        (true, false) => DominanceOrd::Dominates,
        (false, true) => DominanceOrd::DominatedBy,
        (false, false) => match a.violation.partial_cmp(&b.violation) {
            Some(Ordering::Less) => DominanceOrd::Dominates,
            Some(Ordering::Greater) => DominanceOrd::DominatedBy,
            _ => DominanceOrd::Indifferent,
        },
        (true, true) => pareto_dominance(&a.objectives, &b.objectives),
    }
}

/// Convenience predicate: does `a` (constrained-)dominate `b`?
pub fn dominates(a: &Candidate, b: &Candidate) -> bool {
    constrained_dominance(a, b) == DominanceOrd::Dominates
}

/// Extracts the non-dominated subset of `set` under constrained dominance.
///
/// Ties (duplicate objective vectors) are all kept. O(n²·m); the fronts in
/// this reproduction have at most a few hundred points.
pub fn non_dominated(set: &[Candidate]) -> Vec<Candidate> {
    let mut out = Vec::new();
    'outer: for (i, a) in set.iter().enumerate() {
        for (j, b) in set.iter().enumerate() {
            if i != j && constrained_dominance(b, a) == DominanceOrd::Dominates {
                continue 'outer;
            }
        }
        out.push(a.clone());
    }
    out
}

/// Counts, for each solution in `front`, whether it is dominated by at
/// least one solution of `other`; returns the number of such solutions.
///
/// This is the paper's §VI cross-domination count ("AEDB-MLS dominates 13
/// solutions of the Reference Pareto front … is dominated by 54 …").
pub fn count_dominated_by(front: &[Candidate], other: &[Candidate]) -> usize {
    front
        .iter()
        .filter(|a| {
            other
                .iter()
                .any(|b| constrained_dominance(b, a) == DominanceOrd::Dominates)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(obj: &[f64], v: f64) -> Candidate {
        Candidate::evaluated(vec![], obj.to_vec(), v)
    }

    #[test]
    fn plain_dominance_cases() {
        assert_eq!(
            pareto_dominance(&[1.0, 1.0], &[2.0, 2.0]),
            DominanceOrd::Dominates
        );
        assert_eq!(
            pareto_dominance(&[2.0, 2.0], &[1.0, 1.0]),
            DominanceOrd::DominatedBy
        );
        assert_eq!(
            pareto_dominance(&[1.0, 2.0], &[2.0, 1.0]),
            DominanceOrd::Indifferent
        );
        assert_eq!(
            pareto_dominance(&[1.0, 1.0], &[1.0, 1.0]),
            DominanceOrd::Indifferent
        );
        // weak dominance: equal in one, better in the other
        assert_eq!(
            pareto_dominance(&[1.0, 1.0], &[1.0, 2.0]),
            DominanceOrd::Dominates
        );
    }

    #[test]
    fn nan_is_indifferent() {
        assert_eq!(
            pareto_dominance(&[f64::NAN], &[1.0]),
            DominanceOrd::Indifferent
        );
    }

    #[test]
    fn feasible_beats_infeasible() {
        let good = cand(&[100.0, 100.0], 0.0);
        let bad = cand(&[0.0, 0.0], 0.1);
        assert_eq!(constrained_dominance(&good, &bad), DominanceOrd::Dominates);
        assert_eq!(
            constrained_dominance(&bad, &good),
            DominanceOrd::DominatedBy
        );
    }

    #[test]
    fn infeasible_ordered_by_violation() {
        let a = cand(&[5.0, 5.0], 0.1);
        let b = cand(&[0.0, 0.0], 0.2);
        assert_eq!(constrained_dominance(&a, &b), DominanceOrd::Dominates);
    }

    #[test]
    fn non_dominated_filters() {
        let set = vec![
            cand(&[1.0, 3.0], 0.0),
            cand(&[2.0, 2.0], 0.0),
            cand(&[3.0, 1.0], 0.0),
            cand(&[3.0, 3.0], 0.0), // dominated by the middle point
        ];
        let nd = non_dominated(&set);
        assert_eq!(nd.len(), 3);
        assert!(nd.iter().all(|c| c.objectives != vec![3.0, 3.0]));
    }

    #[test]
    fn duplicates_survive_non_dominated() {
        let set = vec![cand(&[1.0, 1.0], 0.0), cand(&[1.0, 1.0], 0.0)];
        assert_eq!(non_dominated(&set).len(), 2);
    }

    #[test]
    fn cross_domination_count() {
        let ours = vec![cand(&[2.0, 2.0], 0.0), cand(&[0.0, 5.0], 0.0)];
        let reference = vec![cand(&[1.0, 1.0], 0.0), cand(&[5.0, 0.0], 0.0)];
        // ours[0] is dominated by reference[0]; ours[1] by nobody
        assert_eq!(count_dominated_by(&ours, &reference), 1);
        // reference points are dominated by nobody in ours
        assert_eq!(count_dominated_by(&reference, &ours), 0);
    }
}
