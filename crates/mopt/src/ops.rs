//! Variation operators for real-coded metaheuristics.
//!
//! * [`blx_alpha_step`] — the paper's local-search move (Eq. 2), a
//!   BLX-α-style perturbation of one parameter of solution `s` scaled by
//!   its distance to a reference solution `t`,
//! * [`sbx_crossover`] / [`polynomial_mutation`] — the NSGA-II operators,
//! * [`de_rand_1_bin`] — the differential-evolution variation CellDE uses,
//! * [`blx_alpha_crossover`] — the classic interval-schemata BLX-α
//!   (Eshelman & Schaffer 1992) kept for completeness/ablations,
//! * selection helpers (binary tournament, random distinct picks).

use crate::dominance::{constrained_dominance, DominanceOrd};
use crate::solution::{Bounds, Candidate};
use rand::Rng;

/// Uniformly random point within bounds.
pub fn uniform_init<R: Rng>(bounds: &Bounds, rng: &mut R) -> Vec<f64> {
    bounds
        .as_slice()
        .iter()
        .map(|&(lo, hi)| if hi > lo { rng.gen_range(lo..hi) } else { lo })
        .collect()
}

/// One BLX-α local-search step on a single parameter, exactly Eq. 2 of the
/// paper:
///
/// ```text
/// ŝ_p = s_p + φ · (3ρ − 2),   φ = α · |s_p − t_p|,   ρ ∈ [0, 1)
/// ```
///
/// The perturbation is uniform in `[−2φ, +φ)`: biased toward decreasing the
/// parameter, with magnitude proportional to how far the reference solution
/// `t` is. When `s_p == t_p` the step is zero — callers that need to escape
/// this absorbing state should fall back to a small random kick (AEDB-MLS
/// does; see the `aedb-mls` crate).
pub fn blx_alpha_step<R: Rng>(sp: f64, tp: f64, alpha: f64, rng: &mut R) -> f64 {
    debug_assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    let phi = alpha * (sp - tp).abs();
    let rho: f64 = rng.gen::<f64>();
    sp + phi * (3.0 * rho - 2.0)
}

/// Classic BLX-α blend crossover: each child coordinate is uniform in
/// `[min − αI, max + αI]` where `I = |p1_i − p2_i|`. Result is clamped to
/// bounds.
pub fn blx_alpha_crossover<R: Rng>(
    p1: &[f64],
    p2: &[f64],
    alpha: f64,
    bounds: &Bounds,
    rng: &mut R,
) -> Vec<f64> {
    debug_assert_eq!(p1.len(), p2.len());
    let mut child: Vec<f64> = p1
        .iter()
        .zip(p2)
        .map(|(&a, &b)| {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let i = hi - lo;
            let l = lo - alpha * i;
            let u = hi + alpha * i;
            if u > l {
                rng.gen_range(l..u)
            } else {
                l
            }
        })
        .collect();
    bounds.clamp(&mut child);
    child
}

/// Simulated binary crossover (Deb & Agrawal 1995). Returns two children;
/// with probability `1 − pc` the parents are returned unchanged. `eta` is
/// the distribution index (paper baselines use 20).
#[allow(clippy::needless_range_loop)]
pub fn sbx_crossover<R: Rng>(
    p1: &[f64],
    p2: &[f64],
    eta: f64,
    pc: f64,
    bounds: &Bounds,
    rng: &mut R,
) -> (Vec<f64>, Vec<f64>) {
    debug_assert_eq!(p1.len(), p2.len());
    let mut c1 = p1.to_vec();
    let mut c2 = p2.to_vec();
    if rng.gen::<f64>() <= pc {
        for i in 0..p1.len() {
            if rng.gen::<f64>() > 0.5 {
                continue; // each variable crossed with prob 0.5 (jMetal convention)
            }
            let (x1, x2) = (p1[i], p2[i]);
            if (x1 - x2).abs() < 1e-14 {
                continue;
            }
            let (lo, hi) = bounds.get(i);
            let (y1, y2) = if x1 < x2 { (x1, x2) } else { (x2, x1) };
            let u: f64 = rng.gen();
            let beta = 1.0 + 2.0 * (y1 - lo) / (y2 - y1);
            let alpha = 2.0 - beta.powf(-(eta + 1.0));
            let betaq = if u <= 1.0 / alpha {
                (u * alpha).powf(1.0 / (eta + 1.0))
            } else {
                (1.0 / (2.0 - u * alpha)).powf(1.0 / (eta + 1.0))
            };
            let mut ch1 = 0.5 * ((y1 + y2) - betaq * (y2 - y1));
            let beta = 1.0 + 2.0 * (hi - y2) / (y2 - y1);
            let alpha = 2.0 - beta.powf(-(eta + 1.0));
            let betaq = if u <= 1.0 / alpha {
                (u * alpha).powf(1.0 / (eta + 1.0))
            } else {
                (1.0 / (2.0 - u * alpha)).powf(1.0 / (eta + 1.0))
            };
            let mut ch2 = 0.5 * ((y1 + y2) + betaq * (y2 - y1));
            ch1 = ch1.clamp(lo, hi);
            ch2 = ch2.clamp(lo, hi);
            if rng.gen::<f64>() <= 0.5 {
                c1[i] = ch2;
                c2[i] = ch1;
            } else {
                c1[i] = ch1;
                c2[i] = ch2;
            }
        }
    }
    (c1, c2)
}

/// Polynomial mutation (Deb). Each variable mutates with probability `pm`
/// (paper baselines: `1/n`); `eta` is the distribution index (20).
#[allow(clippy::needless_range_loop)]
pub fn polynomial_mutation<R: Rng>(x: &mut [f64], eta: f64, pm: f64, bounds: &Bounds, rng: &mut R) {
    for i in 0..x.len() {
        if rng.gen::<f64>() > pm {
            continue;
        }
        let (lo, hi) = bounds.get(i);
        if hi <= lo {
            continue;
        }
        let y = x[i];
        let delta1 = (y - lo) / (hi - lo);
        let delta2 = (hi - y) / (hi - lo);
        let u: f64 = rng.gen();
        let mut_pow = 1.0 / (eta + 1.0);
        let deltaq = if u <= 0.5 {
            let xy = 1.0 - delta1;
            let val = 2.0 * u + (1.0 - 2.0 * u) * xy.powf(eta + 1.0);
            val.powf(mut_pow) - 1.0
        } else {
            let xy = 1.0 - delta2;
            let val = 2.0 * (1.0 - u) + 2.0 * (u - 0.5) * xy.powf(eta + 1.0);
            1.0 - val.powf(mut_pow)
        };
        x[i] = (y + deltaq * (hi - lo)).clamp(lo, hi);
    }
}

/// DE/rand/1/bin variation: `v = r1 + F·(r2 − r3)`, then binomial crossover
/// with the target `x` at rate `cr`, guaranteeing at least one donor gene.
/// Result is clamped to bounds. CellDE uses `F = 0.5`, `cr = 0.9`.
#[allow(clippy::too_many_arguments)]
pub fn de_rand_1_bin<R: Rng>(
    x: &[f64],
    r1: &[f64],
    r2: &[f64],
    r3: &[f64],
    f: f64,
    cr: f64,
    bounds: &Bounds,
    rng: &mut R,
) -> Vec<f64> {
    let n = x.len();
    debug_assert!(n > 0);
    let jrand = rng.gen_range(0..n);
    let mut child: Vec<f64> = (0..n)
        .map(|j| {
            if j == jrand || rng.gen::<f64>() < cr {
                r1[j] + f * (r2[j] - r3[j])
            } else {
                x[j]
            }
        })
        .collect();
    bounds.clamp(&mut child);
    child
}

/// Binary tournament under constrained dominance; dominance ties are broken
/// uniformly at random. Returns an index into `pop`.
pub fn binary_tournament<R: Rng>(pop: &[Candidate], rng: &mut R) -> usize {
    debug_assert!(!pop.is_empty());
    let a = rng.gen_range(0..pop.len());
    let b = rng.gen_range(0..pop.len());
    match constrained_dominance(&pop[a], &pop[b]) {
        DominanceOrd::Dominates => a,
        DominanceOrd::DominatedBy => b,
        DominanceOrd::Indifferent => {
            if rng.gen::<bool>() {
                a
            } else {
                b
            }
        }
    }
}

/// Picks `k` distinct indices in `0..n`, none equal to `exclude`.
///
/// # Panics
/// Panics if fewer than `k` valid indices exist.
pub fn distinct_indices<R: Rng>(n: usize, k: usize, exclude: usize, rng: &mut R) -> Vec<usize> {
    assert!(n > k, "need at least {} candidates, have {n}", k + 1);
    let mut picked = Vec::with_capacity(k);
    while picked.len() < k {
        let i = rng.gen_range(0..n);
        if i != exclude && !picked.contains(&i) {
            picked.push(i);
        }
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xAEDB)
    }

    #[test]
    fn uniform_init_in_bounds() {
        let b = Bounds::new(vec![(0.0, 1.0), (-5.0, 5.0), (2.0, 2.0)]);
        let mut r = rng();
        for _ in 0..100 {
            let x = uniform_init(&b, &mut r);
            assert!(b.contains(&x), "{x:?}");
        }
    }

    #[test]
    fn blx_step_range_matches_eq2() {
        // φ = α|s−t| = 0.2*10 = 2 ; step ∈ [−4, +2)
        let mut r = rng();
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for _ in 0..5000 {
            let v = blx_alpha_step(5.0, 15.0, 0.2, &mut r);
            lo = lo.min(v);
            hi = hi.max(v);
            assert!((5.0 - 4.0 - 1e-9..5.0 + 2.0 + 1e-9).contains(&v));
        }
        // the sampled extremes should approach the theoretical range
        assert!(lo < 1.2, "lo = {lo}");
        assert!(hi > 6.8, "hi = {hi}");
    }

    #[test]
    fn blx_step_zero_when_equal() {
        let mut r = rng();
        assert_eq!(blx_alpha_step(3.0, 3.0, 0.2, &mut r), 3.0);
    }

    #[test]
    fn blx_crossover_within_extended_interval() {
        let b = Bounds::new(vec![(-100.0, 100.0)]);
        let mut r = rng();
        for _ in 0..1000 {
            let c = blx_alpha_crossover(&[0.0], &[10.0], 0.5, &b, &mut r);
            assert!(c[0] >= -5.0 - 1e-9 && c[0] <= 15.0 + 1e-9, "{}", c[0]);
        }
    }

    #[test]
    fn sbx_children_in_bounds_and_vary() {
        let b = Bounds::new(vec![(0.0, 1.0); 4]);
        let p1 = vec![0.1, 0.2, 0.3, 0.4];
        let p2 = vec![0.9, 0.8, 0.7, 0.6];
        let mut r = rng();
        let mut saw_change = false;
        for _ in 0..50 {
            let (c1, c2) = sbx_crossover(&p1, &p2, 20.0, 0.9, &b, &mut r);
            assert!(b.contains(&c1) && b.contains(&c2));
            if c1 != p1 || c2 != p2 {
                saw_change = true;
            }
        }
        assert!(saw_change);
    }

    #[test]
    fn sbx_identical_parents_unchanged() {
        let b = Bounds::new(vec![(0.0, 1.0); 2]);
        let p = vec![0.5, 0.5];
        let mut r = rng();
        let (c1, c2) = sbx_crossover(&p, &p, 20.0, 1.0, &b, &mut r);
        assert_eq!(c1, p);
        assert_eq!(c2, p);
    }

    #[test]
    fn polynomial_mutation_respects_bounds() {
        let b = Bounds::new(vec![(0.0, 1.0); 5]);
        let mut r = rng();
        for _ in 0..200 {
            let mut x = vec![0.01, 0.5, 0.99, 0.0, 1.0];
            polynomial_mutation(&mut x, 20.0, 1.0, &b, &mut r);
            assert!(b.contains(&x), "{x:?}");
        }
    }

    #[test]
    fn polynomial_mutation_pm_zero_is_identity() {
        let b = Bounds::new(vec![(0.0, 1.0); 3]);
        let mut r = rng();
        let mut x = vec![0.3, 0.6, 0.9];
        let orig = x.clone();
        polynomial_mutation(&mut x, 20.0, 0.0, &b, &mut r);
        assert_eq!(x, orig);
    }

    #[test]
    fn de_variation_clamped_and_inherits() {
        let b = Bounds::new(vec![(0.0, 1.0); 3]);
        let mut r = rng();
        let x = vec![0.5; 3];
        for _ in 0..100 {
            let c = de_rand_1_bin(&x, &[0.9; 3], &[0.9; 3], &[0.1; 3], 0.5, 0.9, &b, &mut r);
            assert!(b.contains(&c));
        }
        // cr = 0: only jrand comes from the donor
        let c = de_rand_1_bin(&x, &[1.0; 3], &[1.0; 3], &[1.0; 3], 0.5, 0.0, &b, &mut r);
        let donor_genes = c.iter().filter(|&&v| v != 0.5).count();
        assert_eq!(donor_genes, 1);
    }

    #[test]
    fn tournament_picks_dominating() {
        let strong = Candidate::evaluated(vec![], vec![0.0, 0.0], 0.0);
        let weak = Candidate::evaluated(vec![], vec![1.0, 1.0], 0.0);
        let pop = vec![strong, weak];
        let mut r = rng();
        let mut wins = [0usize; 2];
        for _ in 0..500 {
            wins[binary_tournament(&pop, &mut r)] += 1;
        }
        assert!(wins[0] > wins[1], "{wins:?}");
    }

    #[test]
    fn distinct_indices_properties() {
        let mut r = rng();
        for _ in 0..100 {
            let v = distinct_indices(10, 3, 4, &mut r);
            assert_eq!(v.len(), 3);
            assert!(!v.contains(&4));
            let mut u = v.clone();
            u.sort_unstable();
            u.dedup();
            assert_eq!(u.len(), 3);
        }
    }
}
