//! The [`Problem`] trait: anything that can evaluate a decision vector.
//!
//! The AEDB tuning problem of the paper (Eq. 1) implements this trait in the
//! `aedb` crate: five decision variables, three objectives (energy,
//! −coverage, forwardings) and the broadcast-time constraint condensed into
//! a violation scalar.

use crate::solution::{Bounds, Candidate};

/// Result of evaluating one decision vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Objective values in minimisation form.
    pub objectives: Vec<f64>,
    /// Aggregate constraint violation (`0.0` = feasible).
    pub violation: f64,
}

impl Evaluation {
    /// Creates a feasible evaluation.
    pub fn feasible(objectives: Vec<f64>) -> Self {
        Self {
            objectives,
            violation: 0.0,
        }
    }

    /// Creates an evaluation with the given constraint violation.
    pub fn with_violation(objectives: Vec<f64>, violation: f64) -> Self {
        assert!(
            violation >= 0.0 && violation.is_finite(),
            "bad violation {violation}"
        );
        Self {
            objectives,
            violation,
        }
    }
}

/// A continuous, box-bounded, constrained multi-objective problem.
///
/// Implementations must be [`Sync`] because the paper's algorithms evaluate
/// candidates from many threads concurrently.
pub trait Problem: Sync {
    /// Decision-space bounds (defines the number of variables).
    fn bounds(&self) -> &Bounds;

    /// Number of objectives.
    fn n_objectives(&self) -> usize;

    /// Evaluates a decision vector. `x.len()` must equal `bounds().len()`.
    fn evaluate(&self, x: &[f64]) -> Evaluation;

    /// Evaluates a whole batch of decision vectors at once, returning one
    /// [`Evaluation`] per input in order.
    ///
    /// This is the entry point of the batched evaluation pipeline:
    /// algorithms hand an entire generation to the problem so expensive
    /// problems can parallelise, cache and amortise work across the batch
    /// (the AEDB problem fans the candidate × network product out over a
    /// thread pool and dedupes repeated configurations). The default
    /// implementation is the sequential fallback and is **semantically
    /// binding**: any override must return exactly what per-candidate
    /// [`evaluate`](Problem::evaluate) calls would.
    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<Evaluation> {
        xs.iter().map(|x| self.evaluate(x)).collect()
    }

    /// Human-readable names of the objectives (minimisation form), used by
    /// the experiment harness when printing tables.
    fn objective_names(&self) -> Vec<String> {
        (0..self.n_objectives()).map(|i| format!("f{i}")).collect()
    }

    /// Convenience: evaluates `x` and assembles a [`Candidate`].
    fn make_candidate(&self, x: Vec<f64>) -> Candidate {
        let ev = self.evaluate(&x);
        Candidate::evaluated(x, ev.objectives, ev.violation)
    }

    /// Convenience: batch-evaluates `xs` and assembles [`Candidate`]s —
    /// the batched counterpart of [`make_candidate`](Problem::make_candidate).
    fn make_candidates(&self, xs: Vec<Vec<f64>>) -> Vec<Candidate> {
        let evals = self.evaluate_batch(&xs);
        debug_assert_eq!(evals.len(), xs.len(), "evaluate_batch arity mismatch");
        xs.into_iter()
            .zip(evals)
            .map(|(x, ev)| Candidate::evaluated(x, ev.objectives, ev.violation))
            .collect()
    }
}

/// Blanket impl so `&P`, `Box<P>`, `Arc<P>` can be passed where a
/// [`Problem`] is expected.
impl<P: Problem + ?Sized> Problem for &P {
    fn bounds(&self) -> &Bounds {
        (**self).bounds()
    }
    fn n_objectives(&self) -> usize {
        (**self).n_objectives()
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        (**self).evaluate(x)
    }
    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<Evaluation> {
        (**self).evaluate_batch(xs)
    }
    fn objective_names(&self) -> Vec<String> {
        (**self).objective_names()
    }
}

impl<P: Problem + ?Sized + Send> Problem for std::sync::Arc<P> {
    fn bounds(&self) -> &Bounds {
        (**self).bounds()
    }
    fn n_objectives(&self) -> usize {
        (**self).n_objectives()
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        (**self).evaluate(x)
    }
    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<Evaluation> {
        (**self).evaluate_batch(xs)
    }
    fn objective_names(&self) -> Vec<String> {
        (**self).objective_names()
    }
}

/// A thread-safe evaluation counter, wrapped around a [`Problem`].
///
/// The paper's stopping criterion is a fixed number of solution evaluations
/// (250 per thread, 24 000 per run); this adaptor lets any algorithm track
/// them without cooperation from the problem.
pub struct CountingProblem<P> {
    inner: P,
    count: std::sync::atomic::AtomicU64,
}

impl<P: Problem> CountingProblem<P> {
    /// Wraps `inner`, starting the counter at zero.
    pub fn new(inner: P) -> Self {
        Self {
            inner,
            count: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Number of `evaluate` calls so far.
    pub fn evaluations(&self) -> u64 {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Consumes the wrapper, returning the inner problem.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: Problem> Problem for CountingProblem<P> {
    fn bounds(&self) -> &Bounds {
        self.inner.bounds()
    }
    fn n_objectives(&self) -> usize {
        self.inner.n_objectives()
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        self.count
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.inner.evaluate(x)
    }
    fn evaluate_batch(&self, xs: &[Vec<f64>]) -> Vec<Evaluation> {
        self.count
            .fetch_add(xs.len() as u64, std::sync::atomic::Ordering::Relaxed);
        self.inner.evaluate_batch(xs)
    }
    fn objective_names(&self) -> Vec<String> {
        self.inner.objective_names()
    }
}

/// Classic bi-objective test problems used by the unit/property tests of the
/// algorithm crates. They are cheap, have known Pareto fronts, and exercise
/// the same code paths as the (expensive) AEDB simulation problem.
pub mod test_problems {
    use super::*;

    /// The Schaffer problem: `f1 = x²`, `f2 = (x-2)²`, `x ∈ [-1000, 1000]`.
    /// Pareto-optimal set: `x ∈ [0, 2]`.
    pub struct Schaffer {
        bounds: Bounds,
    }

    impl Schaffer {
        /// Creates the standard instance.
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Self {
                bounds: Bounds::new(vec![(-1000.0, 1000.0)]),
            }
        }
    }

    impl Problem for Schaffer {
        fn bounds(&self) -> &Bounds {
            &self.bounds
        }
        fn n_objectives(&self) -> usize {
            2
        }
        fn evaluate(&self, x: &[f64]) -> Evaluation {
            let x = x[0];
            Evaluation::feasible(vec![x * x, (x - 2.0) * (x - 2.0)])
        }
    }

    /// ZDT1: n-variable bi-objective benchmark with a convex front
    /// `f2 = 1 - sqrt(f1)` at `g = 1`.
    pub struct Zdt1 {
        bounds: Bounds,
    }

    impl Zdt1 {
        /// Creates an instance with `n` variables (`n >= 2`).
        pub fn new(n: usize) -> Self {
            assert!(n >= 2);
            Self {
                bounds: Bounds::new(vec![(0.0, 1.0); n]),
            }
        }
    }

    impl Problem for Zdt1 {
        fn bounds(&self) -> &Bounds {
            &self.bounds
        }
        fn n_objectives(&self) -> usize {
            2
        }
        fn evaluate(&self, x: &[f64]) -> Evaluation {
            let n = x.len();
            let f1 = x[0];
            let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / (n as f64 - 1.0);
            let f2 = g * (1.0 - (f1 / g).sqrt());
            Evaluation::feasible(vec![f1, f2])
        }
    }

    /// A constrained variant of Schaffer used to test feasibility-first
    /// dominance: solutions with `x < 0.5` violate the constraint by
    /// `0.5 - x`.
    pub struct ConstrainedSchaffer {
        bounds: Bounds,
    }

    impl ConstrainedSchaffer {
        /// Creates the standard instance.
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Self {
                bounds: Bounds::new(vec![(-1000.0, 1000.0)]),
            }
        }
    }

    impl Problem for ConstrainedSchaffer {
        fn bounds(&self) -> &Bounds {
            &self.bounds
        }
        fn n_objectives(&self) -> usize {
            2
        }
        fn evaluate(&self, x: &[f64]) -> Evaluation {
            let v = (0.5 - x[0]).max(0.0);
            let x = x[0];
            Evaluation::with_violation(vec![x * x, (x - 2.0) * (x - 2.0)], v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_problems::*;
    use super::*;

    #[test]
    fn schaffer_known_values() {
        let p = Schaffer::new();
        let ev = p.evaluate(&[0.0]);
        assert_eq!(ev.objectives, vec![0.0, 4.0]);
        let ev = p.evaluate(&[2.0]);
        assert_eq!(ev.objectives, vec![4.0, 0.0]);
        assert!(ev.violation == 0.0);
    }

    #[test]
    fn zdt1_front_at_g1() {
        let p = Zdt1::new(5);
        // x2..x5 = 0 => g = 1 => f2 = 1 - sqrt(f1)
        let ev = p.evaluate(&[0.25, 0.0, 0.0, 0.0, 0.0]);
        assert!((ev.objectives[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn counting_problem_counts() {
        let p = CountingProblem::new(Schaffer::new());
        assert_eq!(p.evaluations(), 0);
        let _ = p.evaluate(&[1.0]);
        let _ = p.evaluate(&[1.0]);
        assert_eq!(p.evaluations(), 2);
    }

    #[test]
    fn batch_default_matches_per_candidate_evaluate() {
        let p = ConstrainedSchaffer::new();
        let xs: Vec<Vec<f64>> = vec![vec![-1.0], vec![0.0], vec![0.5], vec![2.0], vec![7.5]];
        let batch = p.evaluate_batch(&xs);
        assert_eq!(batch.len(), xs.len());
        for (x, ev) in xs.iter().zip(&batch) {
            let single = p.evaluate(x);
            assert_eq!(ev.objectives, single.objectives);
            assert_eq!(
                ev.violation, single.violation,
                "violation mismatch at {x:?}"
            );
        }
        // constraint violations survive the batch path
        assert!(batch[0].violation > 0.0);
        assert_eq!(batch[3].violation, 0.0);
    }

    #[test]
    fn make_candidates_matches_make_candidate() {
        let p = ConstrainedSchaffer::new();
        let xs: Vec<Vec<f64>> = vec![vec![0.2], vec![1.5]];
        let batch = p.make_candidates(xs.clone());
        for (x, c) in xs.into_iter().zip(batch) {
            let single = p.make_candidate(x);
            assert_eq!(c.params, single.params);
            assert_eq!(c.objectives, single.objectives);
            assert_eq!(c.violation, single.violation);
        }
    }

    #[test]
    fn counting_problem_counts_batches() {
        let p = CountingProblem::new(Schaffer::new());
        let xs: Vec<Vec<f64>> = (0..7).map(|i| vec![i as f64]).collect();
        let _ = p.evaluate_batch(&xs);
        assert_eq!(p.evaluations(), 7);
        let _ = p.evaluate(&[1.0]);
        assert_eq!(p.evaluations(), 8);
    }

    #[test]
    fn batch_forwards_through_references_and_arc() {
        let p = Schaffer::new();
        let xs: Vec<Vec<f64>> = vec![vec![1.0], vec![3.0]];
        let by_ref: &dyn Problem = &p;
        assert_eq!((&by_ref).evaluate_batch(&xs).len(), 2);
        let arc = std::sync::Arc::new(Schaffer::new());
        let via_arc = arc.evaluate_batch(&xs);
        assert_eq!(via_arc[1].objectives, p.evaluate(&xs[1]).objectives);
    }

    #[test]
    fn empty_batch_is_empty() {
        let p = Schaffer::new();
        assert!(p.evaluate_batch(&[]).is_empty());
        assert!(p.make_candidates(vec![]).is_empty());
    }

    #[test]
    fn make_candidate_populates_fields() {
        let p = ConstrainedSchaffer::new();
        let c = p.make_candidate(vec![0.0]);
        assert!(c.is_evaluated());
        assert!(!c.is_feasible());
        assert_eq!(c.objectives.len(), 2);
    }

    #[test]
    fn reference_impl_forwards() {
        let p = Schaffer::new();
        let r: &dyn Problem = &p;
        assert_eq!((&r).n_objectives(), 2);
        assert_eq!(Problem::bounds(&&p).len(), 1);
    }
}
