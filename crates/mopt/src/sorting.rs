//! Fast non-dominated sorting and crowding distance (Deb et al. 2002).
//!
//! These are the ranking machinery of NSGA-II and the replacement policy of
//! CellDE's archive in the paper's baselines.

use crate::dominance::{constrained_dominance, DominanceOrd};
use crate::solution::Candidate;

/// Partitions `pop` (by index) into fronts `F0, F1, …` where `F0` is the
/// non-dominated set, `F1` is non-dominated once `F0` is removed, and so on.
///
/// Uses the O(n²·m) bookkeeping algorithm from the NSGA-II paper.
pub fn fast_non_dominated_sort(pop: &[Candidate]) -> Vec<Vec<usize>> {
    let n = pop.len();
    if n == 0 {
        return Vec::new();
    }
    // dominated_by[i]: indices that i dominates; counts[i]: #solutions dominating i.
    let mut dominated: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut counts = vec![0usize; n];
    for i in 0..n {
        for j in (i + 1)..n {
            match constrained_dominance(&pop[i], &pop[j]) {
                DominanceOrd::Dominates => {
                    dominated[i].push(j);
                    counts[j] += 1;
                }
                DominanceOrd::DominatedBy => {
                    dominated[j].push(i);
                    counts[i] += 1;
                }
                DominanceOrd::Indifferent => {}
            }
        }
    }
    let mut fronts = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| counts[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated[i] {
                counts[j] -= 1;
                if counts[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
}

/// Crowding distance of every member of a single front (given by indices
/// into `pop`). Boundary solutions of every objective get `f64::INFINITY`.
pub fn crowding_distance(pop: &[Candidate], front: &[usize]) -> Vec<f64> {
    let k = front.len();
    let mut dist = vec![0.0f64; k];
    if k == 0 {
        return dist;
    }
    if k <= 2 {
        return vec![f64::INFINITY; k];
    }
    let m = pop[front[0]].objectives.len();
    let mut order: Vec<usize> = (0..k).collect();
    for obj in 0..m {
        order.sort_by(|&a, &b| {
            pop[front[a]].objectives[obj].total_cmp(&pop[front[b]].objectives[obj])
        });
        let fmin = pop[front[order[0]]].objectives[obj];
        let fmax = pop[front[order[k - 1]]].objectives[obj];
        dist[order[0]] = f64::INFINITY;
        dist[order[k - 1]] = f64::INFINITY;
        let range = fmax - fmin;
        if range <= 0.0 {
            continue;
        }
        for w in 1..k - 1 {
            let prev = pop[front[order[w - 1]]].objectives[obj];
            let next = pop[front[order[w + 1]]].objectives[obj];
            dist[order[w]] += (next - prev) / range;
        }
    }
    dist
}

/// Selects the `n` best candidates of `pop` by (rank, crowding) — the
/// NSGA-II environmental selection. Returns indices into `pop`.
pub fn select_by_rank_and_crowding(pop: &[Candidate], n: usize) -> Vec<usize> {
    let fronts = fast_non_dominated_sort(pop);
    let mut chosen = Vec::with_capacity(n);
    for front in fronts {
        if chosen.len() + front.len() <= n {
            chosen.extend_from_slice(&front);
            if chosen.len() == n {
                break;
            }
        } else {
            let dist = crowding_distance(pop, &front);
            let mut order: Vec<usize> = (0..front.len()).collect();
            order.sort_by(|&a, &b| dist[b].total_cmp(&dist[a]));
            for &w in order.iter().take(n - chosen.len()) {
                chosen.push(front[w]);
            }
            break;
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(obj: &[f64]) -> Candidate {
        Candidate::evaluated(vec![], obj.to_vec(), 0.0)
    }

    #[test]
    fn sorts_into_expected_fronts() {
        // Front 0: (1,3),(2,2),(3,1); Front 1: (3,3); Front 2: (4,4)
        let pop = vec![
            cand(&[1.0, 3.0]),
            cand(&[2.0, 2.0]),
            cand(&[3.0, 1.0]),
            cand(&[3.0, 3.0]),
            cand(&[4.0, 4.0]),
        ];
        let fronts = fast_non_dominated_sort(&pop);
        assert_eq!(fronts.len(), 3);
        assert_eq!(fronts[0].len(), 3);
        assert_eq!(fronts[1], vec![3]);
        assert_eq!(fronts[2], vec![4]);
    }

    #[test]
    fn empty_population() {
        assert!(fast_non_dominated_sort(&[]).is_empty());
    }

    #[test]
    fn all_mutually_nondominated_single_front() {
        let pop = vec![
            cand(&[1.0, 4.0]),
            cand(&[2.0, 3.0]),
            cand(&[3.0, 2.0]),
            cand(&[4.0, 1.0]),
        ];
        let fronts = fast_non_dominated_sort(&pop);
        assert_eq!(fronts.len(), 1);
        assert_eq!(fronts[0].len(), 4);
    }

    #[test]
    fn infeasible_pushed_to_later_fronts() {
        let mut bad = cand(&[0.0, 0.0]);
        bad.violation = 1.0;
        let pop = vec![cand(&[5.0, 5.0]), bad];
        let fronts = fast_non_dominated_sort(&pop);
        assert_eq!(fronts[0], vec![0]);
        assert_eq!(fronts[1], vec![1]);
    }

    #[test]
    fn crowding_boundaries_infinite() {
        let pop = vec![
            cand(&[0.0, 4.0]),
            cand(&[1.0, 2.0]),
            cand(&[2.0, 1.0]),
            cand(&[4.0, 0.0]),
        ];
        let front: Vec<usize> = (0..4).collect();
        let d = crowding_distance(&pop, &front);
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
        assert!(d[2].is_finite() && d[2] > 0.0);
    }

    #[test]
    fn crowding_small_fronts_all_infinite() {
        let pop = vec![cand(&[0.0, 1.0]), cand(&[1.0, 0.0])];
        let d = crowding_distance(&pop, &[0, 1]);
        assert!(d.iter().all(|x| x.is_infinite()));
    }

    #[test]
    fn crowding_degenerate_objective_range() {
        // all identical in objective 0 => that objective contributes nothing
        let pop = vec![cand(&[1.0, 3.0]), cand(&[1.0, 2.0]), cand(&[1.0, 1.0])];
        let d = crowding_distance(&pop, &[0, 1, 2]);
        assert!(d[0].is_infinite() && d[2].is_infinite());
        assert!(d[1].is_finite());
    }

    #[test]
    fn selection_prefers_lower_ranks_then_spread() {
        let pop = vec![
            cand(&[1.0, 3.0]),
            cand(&[2.0, 2.0]),
            cand(&[3.0, 1.0]), // front 0
            cand(&[5.0, 5.0]), // front 1
        ];
        let sel = select_by_rank_and_crowding(&pop, 3);
        assert_eq!(sel.len(), 3);
        assert!(!sel.contains(&3));
        // asking for everything returns everything
        let sel = select_by_rank_and_crowding(&pop, 4);
        assert_eq!(sel.len(), 4);
    }

    #[test]
    fn selection_truncates_within_front_by_crowding() {
        // 5 points on a line; middle points have lowest crowding
        let pop = vec![
            cand(&[0.0, 4.0]),
            cand(&[1.0, 3.0]),
            cand(&[2.0, 2.0]),
            cand(&[3.0, 1.0]),
            cand(&[4.0, 0.0]),
        ];
        let sel = select_by_rank_and_crowding(&pop, 2);
        // must keep the two extremes (infinite crowding)
        assert!(sel.contains(&0) && sel.contains(&4));
    }
}
