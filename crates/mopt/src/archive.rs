//! Adaptive Grid Archiving (AGA) — the bounded elite archive of PAES
//! (Knowles & Corne 2000), used by the paper as the distributed external
//! archive of AEDB-MLS (§IV-A).
//!
//! The objective space is divided into hypercubes by bisecting each
//! objective axis `bisections` times (2^bisections divisions per axis).
//! When the archive is full and a new non-dominated solution arrives, a
//! victim is evicted from the **most crowded** hypercube — unless the new
//! solution itself falls in that cube, in which case it is rejected. The
//! strategy guarantees the three properties quoted in the paper:
//! (i) extremes of all objectives are kept, (ii) every occupied Pareto
//! region keeps at least one solution, (iii) remaining capacity is spread
//! evenly across regions.

use crate::dominance::{constrained_dominance, DominanceOrd};
use crate::solution::Candidate;
use rand::Rng;
use std::collections::HashMap;

/// Outcome of offering a candidate to the archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The candidate was added (possibly evicting a crowded member).
    Added,
    /// The candidate was rejected because an archive member dominates it
    /// (or an identical objective vector is already present).
    Dominated,
    /// The archive was full and the candidate landed in the most crowded
    /// hypercube.
    Crowded,
}

/// Common interface of bounded elite archives, so algorithms can swap the
/// archiving strategy (the AGA-vs-crowding ablation in the experiment
/// harness exercises this).
pub trait EliteArchive: Send {
    /// Offers a candidate; returns what happened.
    fn offer(&mut self, c: Candidate) -> InsertOutcome;
    /// A uniformly random member.
    fn sample_random(&mut self, rng: &mut dyn rand::RngCore) -> Option<Candidate>;
    /// Current contents.
    fn contents(&self) -> &[Candidate];
    /// Consumes the archive, returning its members.
    fn into_contents(self: Box<Self>) -> Vec<Candidate>;
}

/// A bounded non-dominated archive with adaptive-grid density management.
///
/// # Example
/// ```
/// use mopt::archive::{AgaArchive, InsertOutcome};
/// use mopt::solution::Candidate;
///
/// let mut archive = AgaArchive::new(100, 5);
/// let c = Candidate::evaluated(vec![0.3], vec![1.0, 2.0], 0.0);
/// assert_eq!(archive.try_insert(c), InsertOutcome::Added);
/// // dominated solutions are rejected
/// let worse = Candidate::evaluated(vec![0.4], vec![2.0, 3.0], 0.0);
/// assert_eq!(archive.try_insert(worse), InsertOutcome::Dominated);
/// assert_eq!(archive.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct AgaArchive {
    capacity: usize,
    bisections: u32,
    members: Vec<Candidate>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    /// Hypercube index of each member (parallel to `members`).
    cubes: Vec<u64>,
    /// Occupancy count per hypercube.
    occupancy: HashMap<u64, usize>,
}

impl AgaArchive {
    /// Creates an empty archive.
    ///
    /// * `capacity` — maximum number of stored solutions (must be ≥ 1).
    /// * `bisections` — grid granularity; each axis has `2^bisections`
    ///   divisions (PAES/jMetal default: 5).
    pub fn new(capacity: usize, bisections: u32) -> Self {
        assert!(capacity >= 1, "archive capacity must be >= 1");
        assert!((1..=10).contains(&bisections), "bisections out of range");
        Self {
            capacity,
            bisections,
            members: Vec::with_capacity(capacity + 1),
            lower: Vec::new(),
            upper: Vec::new(),
            cubes: Vec::new(),
            occupancy: HashMap::new(),
        }
    }

    /// Maximum size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of stored solutions.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The archived non-dominated solutions.
    pub fn members(&self) -> &[Candidate] {
        &self.members
    }

    /// Consumes the archive, returning its members.
    pub fn into_members(self) -> Vec<Candidate> {
        self.members
    }

    /// A uniformly random member, or `None` when empty. Used by AEDB-MLS to
    /// reinitialise populations from the elite set.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Option<&Candidate> {
        if self.members.is_empty() {
            None
        } else {
            Some(&self.members[rng.gen_range(0..self.members.len())])
        }
    }

    /// Offers a candidate. Only non-dominated candidates are accepted; the
    /// grid decides evictions when full. Returns what happened.
    pub fn try_insert(&mut self, c: Candidate) -> InsertOutcome {
        debug_assert!(c.is_evaluated(), "cannot archive an unevaluated candidate");
        // Dominance screen against current members.
        let mut doomed = Vec::new();
        for (i, m) in self.members.iter().enumerate() {
            match constrained_dominance(m, &c) {
                DominanceOrd::Dominates => return InsertOutcome::Dominated,
                DominanceOrd::DominatedBy => doomed.push(i),
                DominanceOrd::Indifferent => {
                    if m.objectives == c.objectives && m.violation == c.violation {
                        // Identical point: keep the incumbent, avoid duplicates.
                        return InsertOutcome::Dominated;
                    }
                }
            }
        }
        // Remove members dominated by the newcomer (back to front).
        for &i in doomed.iter().rev() {
            self.remove_at(i);
        }

        if self.members.len() < self.capacity {
            self.push_member(c);
            return InsertOutcome::Added;
        }

        // Full: adaptive-grid decision.
        //
        // AGA property (i): a solution that extends the objective range
        // (a new extreme in some objective) is always admitted.
        let extends_range = (0..c.objectives.len()).any(|d| {
            c.objectives[d]
                < self
                    .members
                    .iter()
                    .map(|m| m.objectives[d])
                    .fold(f64::INFINITY, f64::min)
        });
        self.ensure_in_grid(&c.objectives);
        let c_cube = self.cube_of(&c.objectives);
        let (crowded_cube, crowded_count) = self.most_crowded_cube();
        if !extends_range {
            let c_count = self.occupancy.get(&c_cube).copied().unwrap_or(0);
            if c_cube == crowded_cube || c_count >= crowded_count {
                return InsertOutcome::Crowded;
            }
        }
        let victim = self
            .pick_victim(crowded_cube)
            // Fallback when every occupant of the crowded cube is an
            // extreme: evict the member whose cube is next-most crowded
            // and which is itself not extreme.
            .or_else(|| {
                let extreme = self.extreme_members();
                (0..self.members.len())
                    .filter(|&i| !extreme[i])
                    .max_by_key(|&i| self.occupancy.get(&self.cubes[i]).copied().unwrap_or(0))
            });
        if let Some(victim) = victim {
            self.remove_at(victim);
            self.push_member(c);
            InsertOutcome::Added
        } else {
            // Everything is extreme (tiny archive); reject unless the
            // newcomer extends the range, in which case drop an occupant
            // of the most crowded cube anyway.
            if extends_range {
                if let Some(victim) =
                    (0..self.members.len()).find(|&i| self.cubes[i] == crowded_cube)
                {
                    self.remove_at(victim);
                    self.push_member(c);
                    return InsertOutcome::Added;
                }
            }
            InsertOutcome::Crowded
        }
    }

    /// Offers every candidate in `iter`; returns how many were added.
    pub fn extend<I: IntoIterator<Item = Candidate>>(&mut self, iter: I) -> usize {
        iter.into_iter()
            .filter(|c| self.try_insert(c.clone()) == InsertOutcome::Added)
            .count()
    }

    // ----- internal grid machinery -------------------------------------

    fn divisions(&self) -> u64 {
        1u64 << self.bisections
    }

    fn push_member(&mut self, c: Candidate) {
        self.ensure_in_grid(&c.objectives);
        let cube = self.cube_of(&c.objectives);
        *self.occupancy.entry(cube).or_insert(0) += 1;
        self.cubes.push(cube);
        self.members.push(c);
    }

    fn remove_at(&mut self, i: usize) {
        let cube = self.cubes.swap_remove(i);
        self.members.swap_remove(i);
        if let Some(n) = self.occupancy.get_mut(&cube) {
            *n -= 1;
            if *n == 0 {
                self.occupancy.remove(&cube);
            }
        }
    }

    /// Grows the grid bounds (and re-buckets) if `obj` falls outside.
    fn ensure_in_grid(&mut self, obj: &[f64]) {
        let m = obj.len();
        if self.lower.len() != m {
            // First sighting: initialise bounds around the point.
            self.lower = obj.iter().map(|v| v - 1.0).collect();
            self.upper = obj.iter().map(|v| v + 1.0).collect();
            self.rebucket();
            return;
        }
        let out = obj
            .iter()
            .enumerate()
            .any(|(d, &v)| v < self.lower[d] || v > self.upper[d]);
        if !out {
            return;
        }
        // Recompute bounds over members + newcomer, with 10 % padding, then
        // re-bucket everything (the "adaptive" part of AGA).
        for (d, &objd) in obj.iter().enumerate().take(m) {
            let mut lo = objd;
            let mut hi = objd;
            for mem in &self.members {
                lo = lo.min(mem.objectives[d]);
                hi = hi.max(mem.objectives[d]);
            }
            let pad = 0.1 * (hi - lo).max(1e-9);
            self.lower[d] = lo - pad;
            self.upper[d] = hi + pad;
        }
        self.rebucket();
    }

    fn rebucket(&mut self) {
        self.occupancy.clear();
        self.cubes.clear();
        let objs: Vec<Vec<f64>> = self.members.iter().map(|m| m.objectives.clone()).collect();
        for obj in &objs {
            let cube = self.cube_of(obj);
            *self.occupancy.entry(cube).or_insert(0) += 1;
            self.cubes.push(cube);
        }
    }

    fn cube_of(&self, obj: &[f64]) -> u64 {
        let div = self.divisions();
        let mut idx = 0u64;
        for (d, &v) in obj.iter().enumerate() {
            let span = self.upper[d] - self.lower[d];
            let t = if span > 0.0 {
                ((v - self.lower[d]) / span).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let cell = ((t * div as f64) as u64).min(div - 1);
            idx = idx * div + cell;
        }
        idx
    }

    fn most_crowded_cube(&self) -> (u64, usize) {
        self.occupancy
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(b.0)))
            .map(|(&k, &v)| (k, v))
            .unwrap_or((0, 0))
    }

    /// Indices of members that are extreme (best) in some objective; AGA
    /// property (i) protects these from eviction.
    fn extreme_members(&self) -> Vec<bool> {
        let n = self.members.len();
        let mut extreme = vec![false; n];
        if n == 0 {
            return extreme;
        }
        let m = self.members[0].objectives.len();
        for d in 0..m {
            if let Some(best) = (0..n).min_by(|&a, &b| {
                self.members[a].objectives[d].total_cmp(&self.members[b].objectives[d])
            }) {
                extreme[best] = true;
            }
        }
        extreme
    }

    fn pick_victim(&self, cube: u64) -> Option<usize> {
        let extreme = self.extreme_members();
        (0..self.members.len()).find(|&i| self.cubes[i] == cube && !extreme[i])
    }
}

impl EliteArchive for AgaArchive {
    fn offer(&mut self, c: Candidate) -> InsertOutcome {
        self.try_insert(c)
    }
    fn sample_random(&mut self, rng: &mut dyn rand::RngCore) -> Option<Candidate> {
        if self.members.is_empty() {
            None
        } else {
            let i = (rng.next_u64() % self.members.len() as u64) as usize;
            Some(self.members[i].clone())
        }
    }
    fn contents(&self) -> &[Candidate] {
        self.members()
    }
    fn into_contents(self: Box<Self>) -> Vec<Candidate> {
        self.members
    }
}

/// A bounded non-dominated archive truncated by **crowding distance**
/// (jMetal's `CrowdingArchive`, used by SPEA2/MOCell-family algorithms):
/// when full, the member with the smallest crowding distance is evicted.
/// Provided as the ablation alternative to [`AgaArchive`] — it lacks AGA's
/// per-region occupancy guarantees but is simpler and often denser around
/// front knees.
#[derive(Debug, Clone)]
pub struct CrowdingArchive {
    capacity: usize,
    members: Vec<Candidate>,
}

impl CrowdingArchive {
    /// Creates an empty archive with the given capacity (≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        Self {
            capacity,
            members: Vec::with_capacity(capacity + 1),
        }
    }

    /// Current number of stored solutions.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The archived non-dominated solutions.
    pub fn members(&self) -> &[Candidate] {
        &self.members
    }

    /// Offers a candidate under dominance + crowding truncation.
    pub fn try_insert(&mut self, c: Candidate) -> InsertOutcome {
        let mut doomed = Vec::new();
        for (i, m) in self.members.iter().enumerate() {
            match constrained_dominance(m, &c) {
                DominanceOrd::Dominates => return InsertOutcome::Dominated,
                DominanceOrd::DominatedBy => doomed.push(i),
                DominanceOrd::Indifferent => {
                    if m.objectives == c.objectives && m.violation == c.violation {
                        return InsertOutcome::Dominated;
                    }
                }
            }
        }
        for &i in doomed.iter().rev() {
            self.members.swap_remove(i);
        }
        self.members.push(c);
        if self.members.len() > self.capacity {
            let front: Vec<usize> = (0..self.members.len()).collect();
            let dist = crate::sorting::crowding_distance(&self.members, &front);
            let victim = (0..dist.len())
                .min_by(|&a, &b| dist[a].total_cmp(&dist[b]))
                .expect("non-empty archive");
            let evicted = victim == self.members.len() - 1;
            self.members.swap_remove(victim);
            if evicted {
                return InsertOutcome::Crowded;
            }
        }
        InsertOutcome::Added
    }
}

impl EliteArchive for CrowdingArchive {
    fn offer(&mut self, c: Candidate) -> InsertOutcome {
        self.try_insert(c)
    }
    fn sample_random(&mut self, rng: &mut dyn rand::RngCore) -> Option<Candidate> {
        if self.members.is_empty() {
            None
        } else {
            let i = (rng.next_u64() % self.members.len() as u64) as usize;
            Some(self.members[i].clone())
        }
    }
    fn contents(&self) -> &[Candidate] {
        &self.members
    }
    fn into_contents(self: Box<Self>) -> Vec<Candidate> {
        self.members
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn cand(obj: &[f64]) -> Candidate {
        Candidate::evaluated(vec![], obj.to_vec(), 0.0)
    }

    #[test]
    fn accepts_non_dominated_rejects_dominated() {
        let mut a = AgaArchive::new(10, 5);
        assert_eq!(a.try_insert(cand(&[1.0, 1.0])), InsertOutcome::Added);
        assert_eq!(a.try_insert(cand(&[2.0, 2.0])), InsertOutcome::Dominated);
        assert_eq!(a.try_insert(cand(&[0.5, 2.0])), InsertOutcome::Added);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn newcomer_evicts_dominated_members() {
        let mut a = AgaArchive::new(10, 5);
        a.try_insert(cand(&[2.0, 2.0]));
        a.try_insert(cand(&[3.0, 1.0]));
        assert_eq!(a.try_insert(cand(&[1.0, 1.0])), InsertOutcome::Added);
        // (2,2) and (3,1) both dominated by (1,1)
        assert_eq!(a.len(), 1);
        assert_eq!(a.members()[0].objectives, vec![1.0, 1.0]);
    }

    #[test]
    fn duplicates_rejected() {
        let mut a = AgaArchive::new(10, 5);
        assert_eq!(a.try_insert(cand(&[1.0, 2.0])), InsertOutcome::Added);
        assert_eq!(a.try_insert(cand(&[1.0, 2.0])), InsertOutcome::Dominated);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn capacity_is_respected() {
        let mut a = AgaArchive::new(5, 3);
        // 20 mutually non-dominated points on a line
        for i in 0..20 {
            let x = i as f64;
            a.try_insert(cand(&[x, 19.0 - x]));
        }
        assert!(a.len() <= 5);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn extremes_are_kept() {
        let mut a = AgaArchive::new(4, 2);
        for i in 0..50 {
            let x = i as f64;
            a.try_insert(cand(&[x, 49.0 - x]));
        }
        let objs: Vec<_> = a.members().iter().map(|m| m.objectives.clone()).collect();
        // best-f0 and best-f1 points must be present
        let min0 = objs.iter().map(|o| o[0]).fold(f64::INFINITY, f64::min);
        let min1 = objs.iter().map(|o| o[1]).fold(f64::INFINITY, f64::min);
        assert_eq!(min0, 0.0, "lost the f0 extreme: {objs:?}");
        assert_eq!(min1, 0.0, "lost the f1 extreme: {objs:?}");
    }

    #[test]
    fn crowded_insert_rejected_when_in_densest_cube() {
        let mut a = AgaArchive::new(3, 1);
        // All points in the same region: grid has 2 divisions per axis.
        a.try_insert(cand(&[0.0, 10.0]));
        a.try_insert(cand(&[10.0, 0.0]));
        a.try_insert(cand(&[5.0, 5.0]));
        // A 4th point near the middle: most crowded cube is its own.
        let out = a.try_insert(cand(&[5.1, 4.9]));
        assert!(a.len() <= 3);
        assert!(out == InsertOutcome::Crowded || out == InsertOutcome::Added);
    }

    #[test]
    fn sample_is_none_when_empty_and_uniformish() {
        let mut rng = SmallRng::seed_from_u64(7);
        let a = AgaArchive::new(4, 2);
        assert!(a.sample(&mut rng).is_none());
        let mut a = AgaArchive::new(4, 2);
        a.try_insert(cand(&[0.0, 1.0]));
        a.try_insert(cand(&[1.0, 0.0]));
        let mut seen = [false; 2];
        for _ in 0..64 {
            let s = a.sample(&mut rng).unwrap();
            if s.objectives[0] == 0.0 {
                seen[0] = true;
            } else {
                seen[1] = true;
            }
        }
        assert!(seen[0] && seen[1], "sampling never hit one of two members");
    }

    #[test]
    fn feasibility_rules_apply() {
        let mut a = AgaArchive::new(10, 5);
        let mut infeasible = cand(&[0.0, 0.0]);
        infeasible.violation = 1.0;
        a.try_insert(infeasible);
        assert_eq!(a.len(), 1);
        // A feasible point dominates any infeasible one.
        assert_eq!(a.try_insert(cand(&[9.0, 9.0])), InsertOutcome::Added);
        assert_eq!(a.len(), 1);
        assert!(a.members()[0].is_feasible());
    }

    #[test]
    fn grid_adapts_to_outliers() {
        let mut a = AgaArchive::new(8, 3);
        for i in 0..8 {
            let x = i as f64 * 0.1;
            a.try_insert(cand(&[x, 0.7 - x]));
        }
        // Far-away non-dominated outlier must still be insertable.
        let out = a.try_insert(cand(&[-1000.0, 1000.0]));
        assert_eq!(out, InsertOutcome::Added);
        assert!(a.len() <= 8);
    }

    #[test]
    fn crowding_archive_basics() {
        let mut a = CrowdingArchive::new(5);
        assert_eq!(a.try_insert(cand(&[1.0, 1.0])), InsertOutcome::Added);
        assert_eq!(a.try_insert(cand(&[2.0, 2.0])), InsertOutcome::Dominated);
        assert_eq!(a.try_insert(cand(&[0.5, 2.0])), InsertOutcome::Added);
        assert_eq!(a.try_insert(cand(&[0.5, 2.0])), InsertOutcome::Dominated); // duplicate
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn crowding_archive_truncates_least_spread() {
        let mut a = CrowdingArchive::new(4);
        for i in 0..20 {
            let x = i as f64;
            a.try_insert(cand(&[x, 19.0 - x]));
        }
        assert_eq!(a.len(), 4);
        // extremes have infinite crowding distance — always retained
        let objs: Vec<f64> = a.members().iter().map(|m| m.objectives[0]).collect();
        assert!(objs.contains(&0.0), "{objs:?}");
        assert!(objs.contains(&19.0), "{objs:?}");
    }

    #[test]
    fn crowding_archive_newcomer_dominating_sweeps() {
        let mut a = CrowdingArchive::new(10);
        a.try_insert(cand(&[2.0, 2.0]));
        a.try_insert(cand(&[3.0, 1.5]));
        assert_eq!(a.try_insert(cand(&[1.0, 1.0])), InsertOutcome::Added);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn elite_archive_trait_dispatch() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut archives: Vec<Box<dyn EliteArchive>> = vec![
            Box::new(AgaArchive::new(4, 3)),
            Box::new(CrowdingArchive::new(4)),
        ];
        for a in &mut archives {
            assert!(a.sample_random(&mut rng).is_none());
            a.offer(cand(&[0.0, 1.0]));
            a.offer(cand(&[1.0, 0.0]));
            assert_eq!(a.contents().len(), 2);
            assert!(a.sample_random(&mut rng).is_some());
        }
        for a in archives {
            assert_eq!(a.into_contents().len(), 2);
        }
    }

    #[test]
    fn three_objective_archive() {
        let mut a = AgaArchive::new(20, 4);
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..200 {
            let x: f64 = rng.gen();
            let y: f64 = rng.gen();
            // points on the plane x+y+z = 1 are mutually non-dominated
            a.try_insert(cand(&[x, y, 1.0 - x - y]));
        }
        assert_eq!(a.len(), 20);
        // every member non-dominated w.r.t. the others
        let ms = a.members();
        for i in 0..ms.len() {
            for j in 0..ms.len() {
                if i != j {
                    assert_ne!(
                        constrained_dominance(&ms[j], &ms[i]),
                        DominanceOrd::Dominates,
                        "archive holds a dominated member"
                    );
                }
            }
        }
    }
}
