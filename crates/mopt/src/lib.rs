//! # mopt — multi-objective optimisation core
//!
//! Substrate crate for the AEDB-MLS reproduction. It provides every
//! multi-objective building block the paper relies on:
//!
//! * [`solution`] — real-coded candidate solutions with objectives (held in
//!   minimisation form) and a constraint-violation scalar,
//! * [`problem`] — the [`Problem`](problem::Problem) trait every tunable
//!   system (here: the AEDB protocol) implements,
//! * [`dominance`] — Pareto dominance with Deb's feasibility-first
//!   constraint handling,
//! * [`sorting`] — fast non-dominated sorting and crowding distance
//!   (the NSGA-II machinery),
//! * [`archive`] — the Adaptive Grid Archiving (AGA) bounded elite archive
//!   from PAES, used by the paper as the external archive,
//! * [`indicators`] — hypervolume, (inverted) generational distance,
//!   spread Δ and additive-ε quality indicators plus front normalisation,
//! * [`ops`] — variation operators: BLX-α (Eq. 2 of the paper), SBX,
//!   polynomial mutation, DE/rand/1/bin and selection helpers,
//! * [`stats`] — Wilcoxon rank-sum test (the paper's Table IV) and
//!   boxplot summaries (Figure 7).
//!
//! The crate is dependency-light (only `rand`/`serde`) so the algorithm
//! crates (`moea`, `aedb-mls`) and the problem crate (`aedb`) can share it.

pub mod algorithm;
pub mod archive;
pub mod dominance;
pub mod indicators;
pub mod ops;
pub mod problem;
pub mod solution;
pub mod sorting;
pub mod stats;

pub use algorithm::{MoAlgorithm, RunResult};
pub use archive::AgaArchive;
pub use dominance::{dominates, DominanceOrd};
pub use problem::{Evaluation, Problem};
pub use solution::{Bounds, Candidate};
