//! Candidate solutions: a real-coded decision vector plus its evaluation.
//!
//! Objectives are stored in **minimisation form**: a problem that maximises
//! an objective (e.g. coverage in the AEDB tuning problem) negates it before
//! storing. The constraint is condensed into a single non-negative
//! *violation* value; `0.0` means feasible (the paper's broadcast-time
//! constraint `bt < 2 s` maps to `max(0, bt - 2)`).

use serde::{Deserialize, Serialize};

/// A candidate solution: decision variables plus (optional) evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Decision variables (the five AEDB parameters in this reproduction).
    pub params: Vec<f64>,
    /// Objective values in minimisation form; empty until evaluated.
    pub objectives: Vec<f64>,
    /// Aggregate constraint violation; `0.0` iff feasible.
    pub violation: f64,
}

impl Candidate {
    /// Creates an unevaluated candidate from a decision vector.
    pub fn new(params: Vec<f64>) -> Self {
        Self {
            params,
            objectives: Vec::new(),
            violation: 0.0,
        }
    }

    /// Creates a fully evaluated candidate.
    pub fn evaluated(params: Vec<f64>, objectives: Vec<f64>, violation: f64) -> Self {
        debug_assert!(violation >= 0.0, "violation must be non-negative");
        Self {
            params,
            objectives,
            violation,
        }
    }

    /// Whether the candidate has been evaluated.
    pub fn is_evaluated(&self) -> bool {
        !self.objectives.is_empty()
    }

    /// Whether the candidate satisfies all constraints.
    pub fn is_feasible(&self) -> bool {
        self.violation == 0.0
    }

    /// Number of objectives (0 if not evaluated).
    pub fn n_objectives(&self) -> usize {
        self.objectives.len()
    }

    /// Euclidean distance between the objective vectors of two candidates.
    ///
    /// Panics in debug builds if the dimensions differ.
    pub fn objective_distance(&self, other: &Self) -> f64 {
        debug_assert_eq!(self.objectives.len(), other.objectives.len());
        self.objectives
            .iter()
            .zip(&other.objectives)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

/// A set of lower/upper bounds, one pair per decision variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bounds {
    bounds: Vec<(f64, f64)>,
}

impl Bounds {
    /// Creates bounds from `(lower, upper)` pairs.
    ///
    /// # Panics
    /// Panics if any lower bound exceeds its upper bound.
    pub fn new(bounds: Vec<(f64, f64)>) -> Self {
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            assert!(lo <= hi, "bound {i} inverted: [{lo}, {hi}]");
            assert!(lo.is_finite() && hi.is_finite(), "bound {i} not finite");
        }
        Self { bounds }
    }

    /// Number of decision variables.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// True when there are no variables.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Bounds of variable `i` as `(lower, upper)`.
    pub fn get(&self, i: usize) -> (f64, f64) {
        self.bounds[i]
    }

    /// The underlying slice of `(lower, upper)` pairs.
    pub fn as_slice(&self) -> &[(f64, f64)] {
        &self.bounds
    }

    /// Clamps every coordinate of `x` into its bounds, in place.
    pub fn clamp(&self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.bounds.len());
        for (v, &(lo, hi)) in x.iter_mut().zip(&self.bounds) {
            if !v.is_finite() {
                *v = lo;
            } else {
                *v = v.clamp(lo, hi);
            }
        }
    }

    /// Whether `x` lies within bounds (inclusive) in every coordinate.
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.bounds.len()
            && x.iter()
                .zip(&self.bounds)
                .all(|(v, &(lo, hi))| *v >= lo && *v <= hi)
    }

    /// Maps a point from the unit hypercube `[0,1]^n` into the bounds.
    pub fn from_unit(&self, u: &[f64]) -> Vec<f64> {
        debug_assert_eq!(u.len(), self.bounds.len());
        u.iter()
            .zip(&self.bounds)
            .map(|(t, &(lo, hi))| lo + t.clamp(0.0, 1.0) * (hi - lo))
            .collect()
    }

    /// Maps a point in the bounds to the unit hypercube (degenerate axes map to 0).
    pub fn to_unit(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.bounds.len());
        x.iter()
            .zip(&self.bounds)
            .map(|(v, &(lo, hi))| {
                if hi > lo {
                    ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
                } else {
                    0.0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_lifecycle() {
        let c = Candidate::new(vec![1.0, 2.0]);
        assert!(!c.is_evaluated());
        assert!(c.is_feasible());
        let c = Candidate::evaluated(vec![1.0, 2.0], vec![3.0, 4.0], 0.5);
        assert!(c.is_evaluated());
        assert!(!c.is_feasible());
        assert_eq!(c.n_objectives(), 2);
    }

    #[test]
    fn objective_distance_is_euclidean() {
        let a = Candidate::evaluated(vec![], vec![0.0, 0.0], 0.0);
        let b = Candidate::evaluated(vec![], vec![3.0, 4.0], 0.0);
        assert!((a.objective_distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.objective_distance(&a), 0.0);
    }

    #[test]
    fn bounds_clamp_and_contains() {
        let b = Bounds::new(vec![(0.0, 1.0), (-5.0, 5.0)]);
        let mut x = vec![2.0, -7.0];
        b.clamp(&mut x);
        assert_eq!(x, vec![1.0, -5.0]);
        assert!(b.contains(&x));
        assert!(!b.contains(&[1.5, 0.0]));
    }

    #[test]
    fn bounds_clamp_fixes_nan() {
        let b = Bounds::new(vec![(0.0, 1.0)]);
        let mut x = vec![f64::NAN];
        b.clamp(&mut x);
        assert_eq!(x, vec![0.0]);
    }

    #[test]
    fn unit_round_trip() {
        let b = Bounds::new(vec![(0.0, 10.0), (-1.0, 1.0)]);
        let x = vec![2.5, 0.5];
        let u = b.to_unit(&x);
        assert!((u[0] - 0.25).abs() < 1e-12);
        assert!((u[1] - 0.75).abs() < 1e-12);
        let x2 = b.from_unit(&u);
        for (a, c) in x.iter().zip(&x2) {
            assert!((a - c).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_bounds_panic() {
        let _ = Bounds::new(vec![(1.0, 0.0)]);
    }

    #[test]
    fn degenerate_axis_to_unit() {
        let b = Bounds::new(vec![(2.0, 2.0)]);
        assert_eq!(b.to_unit(&[2.0]), vec![0.0]);
    }
}
