//! Morris elementary-effects screening (Morris 1991, as presented in
//! Saltelli et al., *Sensitivity Analysis in Practice* — the paper's
//! reference [15]).
//!
//! A cheap qualitative cross-check of the FAST99 results: `r` random
//! trajectories through a `p`-level grid on `[0,1]^k`, each perturbing one
//! parameter at a time by `Δ`, yield per-parameter elementary effects
//! whose statistics rank influence:
//!
//! * `μ*` — mean absolute effect: overall importance,
//! * `σ` — standard deviation of effects: nonlinearity/interactions,
//! * `μ` — signed mean: direction of the effect.
//!
//! Cost: `r · (k + 1)` model evaluations — far cheaper than FAST99, which
//! is why practitioners screen with Morris first.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Morris screening configuration.
#[derive(Debug, Clone)]
pub struct Morris {
    /// Number of parameters `k`.
    pub n_params: usize,
    /// Number of trajectories `r` (typical: 10–50).
    pub n_trajectories: usize,
    /// Grid levels `p` (even; typical: 4–8).
    pub levels: usize,
    /// RNG seed for trajectory generation.
    pub seed: u64,
}

/// Per-parameter elementary-effect statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectStats {
    /// Signed mean effect `μ` (direction).
    pub mu: f64,
    /// Mean absolute effect `μ*` (importance).
    pub mu_star: f64,
    /// Standard deviation `σ` (nonlinearity / interactions).
    pub sigma: f64,
}

impl Morris {
    /// Creates a screening design.
    pub fn new(n_params: usize, n_trajectories: usize) -> Self {
        assert!(n_params >= 1);
        assert!(n_trajectories >= 2);
        Self {
            n_params,
            n_trajectories,
            levels: 4,
            seed: 0x30B1_5EED,
        }
    }

    /// Model evaluations the full screening performs.
    pub fn total_evaluations(&self) -> usize {
        self.n_trajectories * (self.n_params + 1)
    }

    /// Generates one trajectory: `k + 1` points in `[0,1]^k`, consecutive
    /// points differing in exactly one (randomly ordered) coordinate by
    /// `Δ = p / (2(p−1))`.
    fn trajectory<R: Rng>(&self, rng: &mut R) -> (Vec<Vec<f64>>, Vec<usize>, Vec<f64>) {
        let k = self.n_params;
        let p = self.levels;
        let delta = p as f64 / (2.0 * (p as f64 - 1.0));
        // base point on the grid {0, 1/(p-1), …}, low half so +Δ stays in [0,1]
        let mut x: Vec<f64> = (0..k)
            .map(|_| rng.gen_range(0..p / 2) as f64 / (p as f64 - 1.0))
            .collect();
        // random parameter order and random step signs (folded: when a +Δ
        // would overflow, step −Δ instead — equivalent by symmetry)
        let mut order: Vec<usize> = (0..k).collect();
        for i in (1..k).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut pts = Vec::with_capacity(k + 1);
        let mut signs = Vec::with_capacity(k);
        pts.push(x.clone());
        for &pi in &order {
            let up = rng.gen::<bool>();
            let sign = if up && x[pi] + delta <= 1.0 + 1e-12 {
                1.0
            } else if !up && x[pi] - delta >= -1e-12 {
                -1.0
            } else if x[pi] + delta <= 1.0 + 1e-12 {
                1.0
            } else {
                -1.0
            };
            x[pi] = (x[pi] + sign * delta).clamp(0.0, 1.0);
            signs.push(sign);
            pts.push(x.clone());
        }
        (pts, order, signs)
    }

    /// Runs the screening of a scalar model over the unit hypercube.
    pub fn analyze<F: FnMut(&[f64]) -> f64>(&self, mut f: F) -> Vec<EffectStats> {
        let k = self.n_params;
        let p = self.levels;
        let delta = p as f64 / (2.0 * (p as f64 - 1.0));
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut effects: Vec<Vec<f64>> = vec![Vec::with_capacity(self.n_trajectories); k];
        for _ in 0..self.n_trajectories {
            let (pts, order, signs) = self.trajectory(&mut rng);
            let ys: Vec<f64> = pts.iter().map(|x| f(x)).collect();
            for (step, (&pi, &sign)) in order.iter().zip(&signs).enumerate() {
                let ee = (ys[step + 1] - ys[step]) / (sign * delta);
                effects[pi].push(ee);
            }
        }
        effects
            .into_iter()
            .map(|es| {
                let n = es.len() as f64;
                let mu = es.iter().sum::<f64>() / n;
                let mu_star = es.iter().map(|e| e.abs()).sum::<f64>() / n;
                let var = es.iter().map(|e| (e - mu) * (e - mu)).sum::<f64>() / (n - 1.0).max(1.0);
                EffectStats {
                    mu,
                    mu_star,
                    sigma: var.sqrt(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_count() {
        let m = Morris::new(5, 10);
        assert_eq!(m.total_evaluations(), 60);
    }

    #[test]
    fn trajectory_structure() {
        let m = Morris::new(4, 5);
        let mut rng = SmallRng::seed_from_u64(1);
        let (pts, order, signs) = m.trajectory(&mut rng);
        assert_eq!(pts.len(), 5);
        assert_eq!(order.len(), 4);
        assert_eq!(signs.len(), 4);
        // consecutive points differ in exactly one coordinate
        for w in pts.windows(2) {
            let diffs = w[0]
                .iter()
                .zip(&w[1])
                .filter(|(a, b)| (*a - *b).abs() > 1e-12)
                .count();
            assert_eq!(diffs, 1, "{w:?}");
        }
        // all coordinates stay in the unit cube
        for pt in &pts {
            assert!(pt.iter().all(|v| (0.0..=1.0).contains(v)), "{pt:?}");
        }
        // order is a permutation
        let mut o = order.clone();
        o.sort_unstable();
        assert_eq!(o, vec![0, 1, 2, 3]);
    }

    #[test]
    fn linear_model_exact_effects() {
        // y = 3 x0 − 2 x1 : every elementary effect is exactly the slope
        let m = Morris::new(2, 8);
        let stats = m.analyze(|x| 3.0 * x[0] - 2.0 * x[1]);
        assert!((stats[0].mu - 3.0).abs() < 1e-9, "{stats:?}");
        assert!((stats[0].mu_star - 3.0).abs() < 1e-9);
        assert!(stats[0].sigma < 1e-9, "linear model has zero σ");
        assert!((stats[1].mu - -2.0).abs() < 1e-9);
        assert!((stats[1].mu_star - 2.0).abs() < 1e-9);
    }

    #[test]
    fn inert_parameter_scores_zero() {
        let m = Morris::new(3, 10);
        let stats = m.analyze(|x| x[0] * x[0] + x[1]);
        assert_eq!(stats[2].mu_star, 0.0);
        assert_eq!(stats[2].sigma, 0.0);
    }

    #[test]
    fn interaction_raises_sigma() {
        let m = Morris::new(2, 20);
        let additive = m.analyze(|x| x[0] + x[1]);
        let multiplicative = m.analyze(|x| 4.0 * x[0] * x[1]);
        assert!(
            multiplicative[0].sigma > additive[0].sigma + 0.1,
            "σ should flag the interaction: {multiplicative:?} vs {additive:?}"
        );
    }

    #[test]
    fn ranking_matches_coefficients() {
        let m = Morris::new(3, 16);
        let stats = m.analyze(|x| 5.0 * x[0] + 1.0 * x[1] + 0.1 * x[2]);
        assert!(stats[0].mu_star > stats[1].mu_star);
        assert!(stats[1].mu_star > stats[2].mu_star);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = Morris::new(3, 6);
        let a = m.analyze(|x| (x[0] * 6.0).sin() + x[1]);
        let b = m.analyze(|x| (x[0] * 6.0).sin() + x[1]);
        assert_eq!(a, b);
    }
}
