//! # fast99 — extended Fourier Amplitude Sensitivity Test
//!
//! Implements the global sensitivity-analysis estimator of Saltelli,
//! Tarantola & Chan (*Technometrics*, 1999) — the method the paper's §III-B
//! uses (via R's `fast99`) to decompose the variance of each AEDB objective
//! into per-parameter **first-order effects** and **interactions**
//! (Figure 2, Table I).
//!
//! ## Method
//!
//! All `k` parameters are explored simultaneously along a space-filling
//! search curve indexed by `s ∈ (−π, π)`:
//!
//! ```text
//! x_i(s) = 1/2 + (1/π) · asin( sin(ω_i s + φ_i) )
//! ```
//!
//! The parameter of interest is driven with a high frequency `ω_max`, all
//! others with low complementary frequencies `≤ ω_max / (2M)`. The model
//! output along the curve is Fourier-analysed:
//!
//! * the variance at the harmonics `p·ω_max` (p = 1..M) estimates the
//!   **first-order** (main) effect `S_i`,
//! * the variance below `ω_max/2` estimates everything *not* involving
//!   parameter `i`, so the **total** effect is
//!   `ST_i = 1 − V_complement/V`, and
//! * **interactions** are `ST_i − S_i` (the quantity stacked on top of the
//!   main effect in Figure 2).

pub mod morris;

pub use morris::{EffectStats, Morris};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// Configuration of a FAST99 analysis.
///
/// # Example
/// ```
/// use fast99::Fast99;
/// // y = 4·x0 + x1 : sixteen times more variance from x0
/// let fast = Fast99::new(2, 501);
/// let idx = fast.analyze(|x| 4.0 * x[0] + x[1]);
/// assert!(idx[0].first_order > idx[1].first_order);
/// ```
#[derive(Debug, Clone)]
pub struct Fast99 {
    /// Number of model parameters `k`.
    pub n_params: usize,
    /// Samples along the search curve per parameter analysis (must be odd;
    /// it is made odd internally). R's `fast99` default is ~1000.
    pub n_samples: usize,
    /// Interference factor `M` (number of harmonics; classic value 4).
    pub harmonics: usize,
    /// Seed for the random phase shifts `φ` (0 disables phase shifts,
    /// matching Cukier's original curve).
    pub phase_seed: u64,
}

impl Fast99 {
    /// A standard configuration: `M = 4`, random phases.
    pub fn new(n_params: usize, n_samples: usize) -> Self {
        assert!(n_params >= 1);
        Self {
            n_params,
            n_samples: n_samples.max(64),
            harmonics: 4,
            phase_seed: 0x5EED,
        }
    }

    /// Number of model evaluations the full analysis performs
    /// (`k` curves × `N` samples).
    pub fn total_evaluations(&self) -> usize {
        self.n_params * self.odd_samples()
    }

    fn odd_samples(&self) -> usize {
        self.n_samples | 1
    }

    /// Maximum usable driver frequency for the given sample count
    /// (Nyquist: harmonics up to `M·ω_max` must stay below `(N−1)/2`).
    fn omega_max(&self) -> usize {
        let n = self.odd_samples();
        (((n - 1) / 2) / self.harmonics).max(self.harmonics * 2 + 1)
    }

    /// Complementary frequencies for the `k − 1` background parameters:
    /// spread as evenly as possible over `1 ..= ω_max/(2M)`.
    fn complementary_frequencies(&self) -> Vec<usize> {
        let k = self.n_params.saturating_sub(1);
        if k == 0 {
            return Vec::new();
        }
        let max_c = (self.omega_max() / (2 * self.harmonics)).max(1);
        (0..k)
            .map(|j| {
                if k == 1 {
                    max_c.max(1) / 2 + 1
                } else {
                    1 + (j * (max_c - 1)) / (k - 1).max(1)
                }
            })
            .map(|f| f.max(1))
            .collect()
    }

    /// Generates the unit-hypercube design for analysing parameter
    /// `target`: `N` points in `[0,1]^k`.
    pub fn design(&self, target: usize) -> Vec<Vec<f64>> {
        assert!(target < self.n_params);
        let n = self.odd_samples();
        let omega_max = self.omega_max();
        let comp = self.complementary_frequencies();
        // Assign frequencies: target gets ω_max, others the complementary set.
        let mut omegas = vec![0usize; self.n_params];
        omegas[target] = omega_max;
        let mut ci = 0;
        for (i, w) in omegas.iter_mut().enumerate() {
            if i != target {
                *w = comp[ci];
                ci += 1;
            }
        }
        // Random phase shift per parameter (re-seeded per target so designs
        // are reproducible independently).
        let mut rng = SmallRng::seed_from_u64(self.phase_seed.wrapping_add(target as u64));
        let phases: Vec<f64> = (0..self.n_params)
            .map(|_| rng.gen_range(0.0..(2.0 * PI)))
            .collect();
        (0..n)
            .map(|j| {
                // s spans (−π, π)
                let s = PI * (2.0 * (j as f64 + 0.5) / n as f64 - 1.0);
                (0..self.n_params)
                    .map(|i| {
                        let angle = omegas[i] as f64 * s + phases[i];
                        (0.5 + (1.0 / PI) * angle.sin().asin()).clamp(0.0, 1.0)
                    })
                    .collect()
            })
            .collect()
    }

    /// Computes `(first_order, total)` indices for parameter `target` from
    /// the model outputs along its design curve (same order as
    /// [`design`](Self::design)).
    pub fn indices(&self, target: usize, outputs: &[f64]) -> Indices {
        // `target` is only a consistency check: the driver frequency is the
        // same for every parameter, but callers must pair outputs with the
        // matching design.
        assert!(target < self.n_params, "target {target} out of range");
        let n = self.odd_samples();
        assert_eq!(outputs.len(), n, "outputs must match the design size");
        let omega_max = self.omega_max();
        let half = (n - 1) / 2;
        // Fourier amplitudes at frequencies 1..=half via direct DFT (N is a
        // few thousand at most; O(N²) worst case but we only need
        // frequencies up to M·ω_max and the complement below ω_max/2 —
        // still bounded by `half`).
        let mean = outputs.iter().sum::<f64>() / n as f64;
        let mut spectrum = vec![0.0f64; half + 1];
        let mut a = vec![0.0f64; half + 1];
        let mut b = vec![0.0f64; half + 1];
        for (j, &y) in outputs.iter().enumerate() {
            let t = 2.0 * PI * (j as f64 + 0.5) / n as f64;
            let yc = y - mean;
            for w in 1..=half {
                let (s, c) = (w as f64 * t).sin_cos();
                a[w] += yc * c;
                b[w] += yc * s;
            }
        }
        for w in 1..=half {
            spectrum[w] = (a[w] * a[w] + b[w] * b[w]) / (n as f64 * n as f64);
        }
        let total_var: f64 = spectrum[1..].iter().sum();
        if total_var <= 0.0 {
            return Indices {
                first_order: 0.0,
                total: 0.0,
            };
        }
        // First order: harmonics of ω_max.
        let mut v_i = 0.0;
        for p in 1..=self.harmonics {
            let w = p * omega_max;
            if w <= half {
                v_i += spectrum[w];
            }
        }
        // Complement: all frequencies strictly below ω_max/2.
        let cutoff = omega_max / 2;
        let v_comp: f64 = spectrum[1..=cutoff.min(half)].iter().sum();
        let first_order = (v_i / total_var).clamp(0.0, 1.0);
        let total = (1.0 - v_comp / total_var).clamp(first_order, 1.0);
        Indices { first_order, total }
    }

    /// Runs the complete analysis of a scalar model `f : [0,1]^k → ℝ`.
    pub fn analyze<F: FnMut(&[f64]) -> f64>(&self, mut f: F) -> Vec<Indices> {
        (0..self.n_params)
            .map(|target| {
                let design = self.design(target);
                let outputs: Vec<f64> = design.iter().map(|x| f(x)).collect();
                self.indices(target, &outputs)
            })
            .collect()
    }

    /// Like [`analyze`](Self::analyze) for models with several outputs:
    /// returns `results[output][param]`.
    pub fn analyze_multi<F: FnMut(&[f64]) -> Vec<f64>>(
        &self,
        n_outputs: usize,
        mut f: F,
    ) -> Vec<Vec<Indices>> {
        let mut per_target: Vec<Vec<Vec<f64>>> = Vec::with_capacity(self.n_params);
        for target in 0..self.n_params {
            let design = self.design(target);
            let mut outs: Vec<Vec<f64>> = vec![Vec::with_capacity(design.len()); n_outputs];
            for x in &design {
                let y = f(x);
                assert_eq!(y.len(), n_outputs);
                for (o, v) in y.into_iter().enumerate() {
                    outs[o].push(v);
                }
            }
            per_target.push(outs);
        }
        (0..n_outputs)
            .map(|o| {
                (0..self.n_params)
                    .map(|target| self.indices(target, &per_target[target][o]))
                    .collect()
            })
            .collect()
    }
}

/// Sensitivity indices of one parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Indices {
    /// First-order ("main") effect `S_i ∈ [0,1]`.
    pub first_order: f64,
    /// Total effect `ST_i ≥ S_i`.
    pub total: f64,
}

impl Indices {
    /// Interaction share `ST_i − S_i` (the hatched stack in Figure 2).
    pub fn interaction(&self) -> f64 {
        (self.total - self.first_order).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_is_in_unit_cube_and_fills_it() {
        let f = Fast99::new(3, 501);
        let d = f.design(1);
        assert_eq!(d.len(), 501);
        let mut lo = [1.0f64; 3];
        let mut hi = [0.0f64; 3];
        for x in &d {
            for i in 0..3 {
                assert!((0.0..=1.0).contains(&x[i]));
                lo[i] = lo[i].min(x[i]);
                hi[i] = hi[i].max(x[i]);
            }
        }
        // the driven parameter sweeps essentially the whole range
        assert!(
            lo[1] < 0.05 && hi[1] > 0.95,
            "target range [{}, {}]",
            lo[1],
            hi[1]
        );
    }

    #[test]
    fn linear_model_attributes_variance_by_coefficient() {
        // y = 4 x0 + 1 x1 : Var ∝ 16 : 1 -> S0 ≈ 16/17, S1 ≈ 1/17
        let f = Fast99::new(2, 1001);
        let idx = f.analyze(|x| 4.0 * x[0] + x[1]);
        assert!(idx[0].first_order > 0.85, "S0 = {:?}", idx[0]);
        assert!(idx[1].first_order < 0.15, "S1 = {:?}", idx[1]);
        assert!(idx[0].first_order > idx[1].first_order * 5.0);
        // additive model: interactions near zero
        assert!(idx[0].interaction() < 0.15, "{:?}", idx[0]);
        assert!(idx[1].interaction() < 0.15, "{:?}", idx[1]);
    }

    #[test]
    fn multiplicative_model_shows_interactions() {
        // y = x0 * x1 has substantial interaction variance
        let f = Fast99::new(2, 1001);
        let idx = f.analyze(|x| (x[0] - 0.5) * (x[1] - 0.5));
        assert!(idx[0].interaction() > 0.3, "{:?}", idx[0]);
        assert!(idx[1].interaction() > 0.3, "{:?}", idx[1]);
        assert!(idx[0].first_order < 0.3);
    }

    #[test]
    fn inert_parameter_scores_zero() {
        let f = Fast99::new(3, 1001);
        let idx = f.analyze(|x| x[0].powi(2) + 0.5 * x[1]);
        assert!(idx[2].first_order < 0.05, "{:?}", idx[2]);
        assert!(idx[2].total < 0.25, "{:?}", idx[2]);
    }

    #[test]
    fn constant_model_all_zero() {
        let f = Fast99::new(2, 301);
        let idx = f.analyze(|_| 7.0);
        for i in idx {
            assert_eq!(i.first_order, 0.0);
            assert_eq!(i.total, 0.0);
        }
    }

    #[test]
    fn indices_bounded_and_ordered() {
        let f = Fast99::new(4, 801);
        let idx = f.analyze(|x| (6.0 * x[0]).sin() + x[1] * x[2] + 0.3 * x[3]);
        for i in &idx {
            assert!(i.first_order >= 0.0 && i.first_order <= 1.0);
            assert!(i.total >= i.first_order && i.total <= 1.0);
        }
    }

    #[test]
    fn multi_output_matches_single_output() {
        let f = Fast99::new(2, 501);
        let single = f.analyze(|x| x[0] + 2.0 * x[1]);
        let multi = f.analyze_multi(2, |x| vec![x[0] + 2.0 * x[1], x[0] * x[1]]);
        for (a, b) in single.iter().zip(&multi[0]) {
            assert!((a.first_order - b.first_order).abs() < 1e-12);
            assert!((a.total - b.total).abs() < 1e-12);
        }
        assert_eq!(multi.len(), 2);
        assert_eq!(multi[1].len(), 2);
    }

    #[test]
    fn total_evaluations_accounting() {
        let f = Fast99::new(5, 1000);
        assert_eq!(f.total_evaluations(), 5 * 1001);
    }

    #[test]
    fn ishigami_benchmark_ranking() {
        // Ishigami: y = sin x1 + 7 sin² x2 + 0.1 x3⁴ sin x1 over [−π, π]³
        // Known: S1≈0.31, S2≈0.44, S3=0, ST3≈0.24 (x3 interacts with x1).
        let f = Fast99::new(3, 2001);
        let idx = f.analyze(|u| {
            let x: Vec<f64> = u.iter().map(|v| -PI + 2.0 * PI * v).collect();
            x[0].sin() + 7.0 * x[1].sin().powi(2) + 0.1 * x[2].powi(4) * x[0].sin()
        });
        assert!(
            (idx[0].first_order - 0.31).abs() < 0.08,
            "S1 = {:?}",
            idx[0]
        );
        assert!(
            (idx[1].first_order - 0.44).abs() < 0.08,
            "S2 = {:?}",
            idx[1]
        );
        assert!(idx[2].first_order < 0.05, "S3 = {:?}", idx[2]);
        assert!(idx[2].interaction() > 0.1, "ST3-S3 = {:?}", idx[2]);
    }
}
