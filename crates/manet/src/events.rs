//! A deterministic discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: ties in time are broken by
//! insertion order, which makes simulation runs fully reproducible — a
//! property the paper's evaluation protocol depends on (the same 10
//! networks must evaluate every candidate configuration identically).

use crate::geometry::Vec2;
use crate::grid::CellGeometry;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// A scheduled event.
#[derive(Debug, Clone)]
struct Entry<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap event queue keyed by simulation time.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time `0`.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Empties the queue and rewinds the clock to `0`, retaining the heap
    /// allocation (the reusable simulator resets between runs).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
        self.now = 0.0;
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN or lies in the past.
    pub fn schedule(&mut self, time: f64, payload: E) {
        assert!(!time.is_nan(), "cannot schedule at NaN");
        assert!(
            time >= self.now,
            "cannot schedule in the past: {time} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Schedules `payload` after a non-negative delay.
    pub fn schedule_in(&mut self, delay: f64, payload: E) {
        self.schedule(self.now + delay.max(0.0), payload);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.time >= self.now);
        self.now = e.time;
        Some((e.time, e.payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The set of recently started transmissions that can still interfere with
/// a frame under delivery resolution — the **O(active-set)** replacement
/// for a flat `VecDeque` log.
///
/// Entries are grouped into *lanes*, one per on-air duration class (the
/// simulator uses two: beacon frames and data frames). Within a lane every
/// entry has the same duration, so insertion order (= start order, because
/// simulation time is monotone) is also expiry order and pruning is a pure
/// front-pop. Across lanes that invariant does not hold — a long data frame
/// started before a short beacon outlives it — which is exactly the case
/// that made the old single-deque prune stall and retain already-expired
/// entries.
///
/// Iteration yields survivors in global insertion order (a two-pointer
/// merge on the per-entry sequence number). That matters for determinism:
/// interference powers are summed in iteration order, so the order must be
/// bit-identical to the historical single-deque scan.
#[derive(Debug, Clone)]
pub struct ActiveWindow<T> {
    /// Per-lane `(seq, end_time, payload)`, end-monotone within a lane.
    lanes: Vec<std::collections::VecDeque<(u64, f64, T)>>,
    seq: u64,
    /// Conservative lower bound on the earliest `end` among lane fronts
    /// (`+inf` when empty): [`prune`](Self::prune) is called once per
    /// delivery query but only drops anything when a frame actually
    /// expired, so a one-compare fast path beats walking every lane front.
    next_expiry: f64,
}

/// The **spatialised** active window: in-flight transmissions bucketed by
/// grid cell, so a delivery query only touches the frames *near* its
/// receivers instead of the whole active set — O(nearby frames) per query
/// where the flat [`ActiveWindow`] is O(active set) per receiver.
///
/// The structure is the product of two decompositions:
///
/// * **cells** ([`CellGeometry`], typically sized to the interference
///   gating reach) bound which frames can physically matter to a receiver:
///   a frame bucketed in a cell farther from the receiver than the query
///   radius is provably outside its own gating radius, so skipping it
///   cannot change any interference sum;
/// * **lanes** (one per on-air duration class, exactly as in the flat
///   window) keep expiry a pure front-pop: within one `(cell, lane)`
///   bucket, insertion order is expiry order.
///
/// Pruning stays O(dropped) across all buckets through one per-lane
/// *order queue* recording which bucket received each insertion: the front
/// of lane `l`'s order queue always names the bucket holding lane `l`'s
/// globally-oldest entry, so expiry pops pairs of queue fronts without
/// scanning cells.
///
/// Every entry carries the global insertion sequence number. A gather over
/// the cells of a query disc returns `(seq, item)` pairs; sorting them by
/// `seq` replays the exact insertion order of the flat window, which is
/// what keeps interference sums (accumulated in iteration order)
/// **bit-identical** to the historical scan — asserted by the unit tests
/// here and the random-trace proptest in the property suite.
#[derive(Debug, Clone)]
pub struct SpatialActiveWindow<T> {
    geom: CellGeometry,
    lanes: usize,
    /// Per `(cell × lanes + lane)` FIFO of `(seq, end, pos, item)`.
    buckets: Vec<VecDeque<(u64, f64, Vec2, T)>>,
    /// Per lane: FIFO of bucket indices, parallel to the lane's global
    /// insertion order (the expiry cursor described above).
    order: Vec<VecDeque<u32>>,
    seq: u64,
    live: usize,
    /// Conservative lower bound on the earliest `end` among lane fronts
    /// (`+inf` when empty) — same one-compare prune fast path as the flat
    /// [`ActiveWindow`].
    next_expiry: f64,
}

impl<T> SpatialActiveWindow<T> {
    /// Creates a window over `geom` with `lanes` duration classes.
    pub fn new(geom: CellGeometry, lanes: usize) -> Self {
        assert!(lanes >= 1);
        let n = geom
            .n_cells()
            .checked_mul(lanes)
            .expect("cell × lane count overflow");
        assert!(n < u32::MAX as usize, "bucket index must fit in u32");
        Self {
            geom,
            lanes,
            buckets: (0..n).map(|_| VecDeque::new()).collect(),
            order: (0..lanes).map(|_| VecDeque::new()).collect(),
            seq: 0,
            live: 0,
            next_expiry: f64::INFINITY,
        }
    }

    /// The window's cell decomposition.
    pub fn geometry(&self) -> CellGeometry {
        self.geom
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Empties the window, retaining bucket allocations.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        for o in &mut self.order {
            o.clear();
        }
        self.seq = 0;
        self.live = 0;
        self.next_expiry = f64::INFINITY;
    }

    /// Inserts `item`, transmitted from `pos` and expiring at `end`, into
    /// `lane`. As with the flat window, entries of one lane must arrive
    /// with non-decreasing `end` (same duration class + monotone simulation
    /// time guarantees this).
    pub fn insert(&mut self, lane: usize, end: f64, pos: Vec2, item: T) {
        let bucket = self.geom.cell_of(pos) * self.lanes + lane;
        debug_assert!(
            self.order[lane]
                .back()
                .map(|&b| self.buckets[b as usize].back().expect("order desync").1)
                .is_none_or(|prev| prev <= end),
            "lane {lane} end times must be non-decreasing"
        );
        self.buckets[bucket].push_back((self.seq, end, pos, item));
        self.order[lane].push_back(bucket as u32);
        self.seq += 1;
        self.live += 1;
        self.next_expiry = self.next_expiry.min(end);
    }

    /// Drops every entry with `end <= threshold` — O(dropped), so the
    /// total prune work over a run is bounded by the number of insertions,
    /// and a cached earliest-expiry bound short-circuits the (common)
    /// calls with nothing to drop in one compare.
    pub fn prune(&mut self, threshold: f64) {
        if threshold < self.next_expiry {
            return;
        }
        let mut min_end = f64::INFINITY;
        for lane in 0..self.lanes {
            while let Some(&bucket) = self.order[lane].front() {
                let front = self.buckets[bucket as usize]
                    .front()
                    .expect("order queue names an empty bucket");
                if front.1 > threshold {
                    break;
                }
                self.buckets[bucket as usize].pop_front();
                self.order[lane].pop_front();
                self.live -= 1;
            }
            if let Some(&bucket) = self.order[lane].front() {
                min_end = min_end.min(
                    self.buckets[bucket as usize]
                        .front()
                        .expect("order queue names an empty bucket")
                        .1,
                );
            }
        }
        self.next_expiry = min_end;
    }

    /// Re-bins every live entry into a new cell decomposition, preserving
    /// sequence numbers (and therefore the global insertion order) — the
    /// *migration* path taken when the window's geometry changes while
    /// frames are still in flight (e.g. a reconfiguration to a different
    /// field or gating reach).
    pub fn reset_geometry(&mut self, geom: CellGeometry) {
        let lanes = self.lanes;
        let n = geom
            .n_cells()
            .checked_mul(lanes)
            .expect("cell × lane count overflow");
        assert!(n < u32::MAX as usize, "bucket index must fit in u32");
        // Recover each entry's lane from its old bucket index, then
        // re-insert in seq order, which restores both the per-bucket FIFO
        // (= expiry order) and the per-lane order queues.
        let mut entries: Vec<(usize, (u64, f64, Vec2, T))> = Vec::with_capacity(self.live);
        for (b, bucket) in self.buckets.iter_mut().enumerate() {
            let lane = b % lanes;
            entries.extend(bucket.drain(..).map(|e| (lane, e)));
        }
        entries.sort_unstable_by_key(|&(_, (seq, _, _, _))| seq);
        self.geom = geom;
        self.buckets.truncate(n);
        while self.buckets.len() < n {
            self.buckets.push(VecDeque::new());
        }
        for o in &mut self.order {
            o.clear();
        }
        for (lane, (seq, end, pos, item)) in entries {
            let bucket = geom.cell_of(pos) * lanes + lane;
            self.buckets[bucket].push_back((seq, end, pos, item));
            self.order[lane].push_back(bucket as u32);
        }
    }

    /// Appends `(seq, item)` for every live entry bucketed in a cell
    /// overlapping the disc of `radius` around `center`. Unsorted — sort by
    /// `seq` to replay global insertion order. Conservative in the same
    /// sense as the node grid: the caller still applies its exact per-frame
    /// tests, so visiting extra cells can never change an outcome.
    ///
    /// Takes `&self` and touches no interior mutability, so shard workers
    /// gather from one shared window concurrently while resolving a
    /// delivery batch (`World::flush_sharded`); sorting by `seq` then
    /// replays the same global insertion order on every worker, keeping
    /// interference sums bit-identical to the sequential pass.
    pub fn gather_into(&self, center: Vec2, radius: f64, out: &mut Vec<(u64, T)>)
    where
        T: Copy,
    {
        self.geom.for_each_cell_in_disc(center, radius, |cell| {
            for bucket in &self.buckets[cell * self.lanes..(cell + 1) * self.lanes] {
                for &(seq, _, _, item) in bucket {
                    out.push((seq, item));
                }
            }
        });
    }

    /// Every live entry as `(seq, end, pos, item)` in global insertion
    /// order — the reference view the parity tests compare against the
    /// flat window.
    pub fn entries_in_order(&self) -> Vec<(u64, f64, Vec2, T)>
    where
        T: Copy,
    {
        let mut v: Vec<(u64, f64, Vec2, T)> = self
            .buckets
            .iter()
            .flat_map(|b| b.iter().copied())
            .collect();
        v.sort_unstable_by_key(|&(seq, _, _, _)| seq);
        v
    }
}

impl<T> ActiveWindow<T> {
    /// Creates a window with `lanes` duration classes.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes >= 1);
        Self {
            lanes: (0..lanes)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            seq: 0,
            next_expiry: f64::INFINITY,
        }
    }

    /// Empties the window, retaining lane allocations.
    pub fn clear(&mut self) {
        for lane in &mut self.lanes {
            lane.clear();
        }
        self.seq = 0;
        self.next_expiry = f64::INFINITY;
    }

    /// Inserts `item` expiring at `end` into `lane`. Entries in one lane
    /// must be inserted with non-decreasing `end` (same duration class +
    /// monotone simulation time guarantees this).
    pub fn insert(&mut self, lane: usize, end: f64, item: T) {
        debug_assert!(
            self.lanes[lane].back().is_none_or(|&(_, e, _)| e <= end),
            "lane {lane} end times must be non-decreasing"
        );
        self.lanes[lane].push_back((self.seq, end, item));
        self.seq += 1;
        self.next_expiry = self.next_expiry.min(end);
    }

    /// Drops every entry with `end <= threshold` — O(dropped), so the
    /// total prune work over a run is bounded by the number of insertions,
    /// and a cached earliest-expiry bound short-circuits the (common)
    /// calls with nothing to drop in one compare.
    pub fn prune(&mut self, threshold: f64) {
        if threshold < self.next_expiry {
            return;
        }
        let mut min_end = f64::INFINITY;
        for lane in &mut self.lanes {
            while lane.front().is_some_and(|&(_, e, _)| e <= threshold) {
                lane.pop_front();
            }
            if let Some(&(_, e, _)) = lane.front() {
                min_end = min_end.min(e);
            }
        }
        self.next_expiry = min_end;
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.len()).sum()
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(|l| l.is_empty())
    }

    /// Iterates the live entries in global insertion order.
    pub fn iter(&self) -> ActiveWindowIter<'_, T> {
        ActiveWindowIter {
            cursors: self.lanes.iter().map(|l| l.iter().peekable()).collect(),
        }
    }
}

/// Merged in-insertion-order iterator over an [`ActiveWindow`].
pub struct ActiveWindowIter<'a, T> {
    cursors: Vec<std::iter::Peekable<std::collections::vec_deque::Iter<'a, (u64, f64, T)>>>,
}

impl<'a, T> Iterator for ActiveWindowIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let lane = self
            .cursors
            .iter_mut()
            .enumerate()
            .filter_map(|(i, c)| c.peek().map(|&&(seq, _, _)| (seq, i)))
            .min()
            .map(|(_, i)| i)?;
        self.cursors[lane].next().map(|(_, _, item)| item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(5.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(2.5, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.5);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.pop();
        q.schedule_in(0.5, "second");
        assert_eq!(q.pop(), Some((1.5, "second")));
    }

    #[test]
    fn negative_delay_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "x");
        q.pop();
        q.schedule_in(-5.0, "y");
        assert_eq!(q.pop(), Some((1.0, "y")));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(4.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(2.0));
    }

    #[test]
    fn stress_many_random_times_sorted() {
        // pseudo-random insertion order must still drain sorted
        let mut q = EventQueue::new();
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        let mut times = Vec::new();
        for i in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = (x % 1_000_000) as f64 / 100.0;
            q.schedule(t, i);
            times.push(t);
        }
        let mut prev = f64::NEG_INFINITY;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= prev);
            prev = t;
            n += 1;
        }
        assert_eq!(n, 10_000);
    }

    #[test]
    fn zero_duration_chain_preserves_causal_order() {
        // an event scheduled "now" during processing runs after currently
        // queued same-time events (FIFO among ties)
        let mut q = EventQueue::new();
        q.schedule(1.0, "a");
        q.schedule(1.0, "b");
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (1.0, "a"));
        q.schedule_in(0.0, "c"); // same timestamp as "b", inserted later
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn active_window_iterates_in_global_insertion_order() {
        // Two lanes with interleaved insertions: iteration must replay the
        // exact insertion order (the historical single-deque order that
        // interference summation depends on).
        let mut w: ActiveWindow<&str> = ActiveWindow::new(2);
        w.insert(1, 10.0, "data-a"); // long frame, inserted first
        w.insert(0, 2.0, "beacon-a");
        w.insert(0, 2.5, "beacon-b");
        w.insert(1, 11.0, "data-b");
        w.insert(0, 3.0, "beacon-c");
        let got: Vec<&str> = w.iter().copied().collect();
        assert_eq!(
            got,
            ["data-a", "beacon-a", "beacon-b", "data-b", "beacon-c"]
        );
        assert_eq!(w.len(), 5);
    }

    #[test]
    fn active_window_prunes_expired_behind_long_frames() {
        // The stall case of the old flat deque: short frames that expired
        // *behind* a long-lived frame must still be dropped.
        let mut w: ActiveWindow<u32> = ActiveWindow::new(2);
        w.insert(1, 100.0, 1); // long data frame holds the front
        w.insert(0, 2.0, 2);
        w.insert(0, 3.0, 3);
        w.insert(0, 50.0, 4);
        w.prune(3.0); // drops both expired beacons, keeps the data frame
        let got: Vec<u32> = w.iter().copied().collect();
        assert_eq!(got, [1, 4]);
        assert_eq!(w.len(), 2);
        w.prune(100.0);
        assert!(w.is_empty());
        // clear resets the sequence counter too
        w.insert(0, 1.0, 9);
        w.clear();
        assert!(w.iter().next().is_none());
    }

    fn test_geom(side: f64, cell: f64) -> CellGeometry {
        CellGeometry::new(crate::geometry::Field::new(side, side), cell)
    }

    #[test]
    fn spatial_window_inserts_bucket_by_cell_and_gathers_nearby() {
        // 300 m field, 100 m cells (3×3). Entries land in the bucket of
        // their position; a gather only sees cells overlapping its disc.
        let mut w: SpatialActiveWindow<u32> = SpatialActiveWindow::new(test_geom(300.0, 100.0), 2);
        w.insert(0, 1.0, Vec2::new(50.0, 50.0), 1); // cell (0,0)
        w.insert(1, 5.0, Vec2::new(250.0, 50.0), 2); // cell (2,0)
        w.insert(0, 1.5, Vec2::new(50.0, 250.0), 3); // cell (0,2)
        assert_eq!(w.len(), 3);
        let mut got = Vec::new();
        w.gather_into(Vec2::new(40.0, 40.0), 30.0, &mut got);
        assert_eq!(got, vec![(0, 1)], "only the near corner is visited");
        got.clear();
        // a disc covering the whole field sees everything, in any order
        w.gather_into(Vec2::new(150.0, 150.0), 500.0, &mut got);
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn spatial_window_prunes_across_buckets_in_o_dropped() {
        // Same stall case as the flat window, but with the short frames
        // scattered over different cells: a long data frame in one bucket
        // must not shield expired beacons in other buckets.
        let mut w: SpatialActiveWindow<u32> = SpatialActiveWindow::new(test_geom(300.0, 100.0), 2);
        w.insert(1, 100.0, Vec2::new(150.0, 150.0), 1); // long data frame
        w.insert(0, 2.0, Vec2::new(10.0, 10.0), 2);
        w.insert(0, 3.0, Vec2::new(290.0, 10.0), 3);
        w.insert(0, 50.0, Vec2::new(10.0, 290.0), 4);
        w.prune(3.0);
        let live: Vec<u32> = w.entries_in_order().iter().map(|&(_, _, _, v)| v).collect();
        assert_eq!(live, vec![1, 4]);
        assert_eq!(w.len(), 2);
        w.prune(100.0);
        assert!(w.is_empty());
        // clear resets the sequence counter
        w.insert(0, 1.0, Vec2::new(5.0, 5.0), 9);
        w.clear();
        assert!(w.is_empty());
        w.insert(0, 1.0, Vec2::new(5.0, 5.0), 10);
        assert_eq!(w.entries_in_order()[0].0, 0, "seq restarts after clear");
    }

    #[test]
    fn spatial_window_gather_replays_insertion_order_after_sort() {
        // Entries interleaved across lanes and cells: sorting a gather by
        // seq must reproduce the flat window's global insertion order.
        let mut flat: ActiveWindow<u32> = ActiveWindow::new(2);
        let mut spatial: SpatialActiveWindow<u32> =
            SpatialActiveWindow::new(test_geom(300.0, 100.0), 2);
        let pts = [
            (1usize, 10.0, 150.0, 150.0, 1u32),
            (0, 2.0, 10.0, 10.0, 2),
            (0, 2.5, 290.0, 290.0, 3),
            (1, 11.0, 10.0, 290.0, 4),
            (0, 3.0, 150.0, 10.0, 5),
        ];
        for &(lane, end, x, y, v) in &pts {
            flat.insert(lane, end, v);
            spatial.insert(lane, end, Vec2::new(x, y), v);
        }
        let mut got = Vec::new();
        spatial.gather_into(Vec2::new(150.0, 150.0), 1000.0, &mut got);
        got.sort_unstable_by_key(|&(seq, _)| seq);
        let flat_order: Vec<u32> = flat.iter().copied().collect();
        let spatial_order: Vec<u32> = got.iter().map(|&(_, v)| v).collect();
        assert_eq!(spatial_order, flat_order);
    }

    #[test]
    fn spatial_window_migrates_entries_to_new_geometry() {
        // Rebinning live entries into a different cell decomposition keeps
        // every entry, its sequence number and its expiry behaviour.
        let mut w: SpatialActiveWindow<u32> = SpatialActiveWindow::new(test_geom(300.0, 100.0), 2);
        w.insert(1, 10.0, Vec2::new(150.0, 150.0), 1);
        w.insert(0, 2.0, Vec2::new(10.0, 10.0), 2);
        w.insert(0, 4.0, Vec2::new(290.0, 290.0), 3);
        let before = w.entries_in_order();
        w.reset_geometry(test_geom(300.0, 40.0)); // 8×8 cells
        assert_eq!(w.len(), 3);
        assert_eq!(w.entries_in_order(), before, "migration preserves entries");
        // gathers respect the new, finer cells
        let mut got = Vec::new();
        w.gather_into(Vec2::new(10.0, 10.0), 15.0, &mut got);
        assert_eq!(got, vec![(1, 2)]);
        // expiry still works through the rebuilt order queues
        w.prune(2.0);
        let live: Vec<u32> = w.entries_in_order().iter().map(|&(_, _, _, v)| v).collect();
        assert_eq!(live, vec![1, 3]);
    }

    #[test]
    fn interleaved_schedule_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(10.0, 10);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(5.0, 5);
        q.schedule(2.0, 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }
}
