//! A deterministic discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: ties in time are broken by
//! insertion order, which makes simulation runs fully reproducible — a
//! property the paper's evaluation protocol depends on (the same 10
//! networks must evaluate every candidate configuration identically).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event.
#[derive(Debug, Clone)]
struct Entry<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap event queue keyed by simulation time.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time `0`.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Empties the queue and rewinds the clock to `0`, retaining the heap
    /// allocation (the reusable simulator resets between runs).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
        self.now = 0.0;
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is NaN or lies in the past.
    pub fn schedule(&mut self, time: f64, payload: E) {
        assert!(!time.is_nan(), "cannot schedule at NaN");
        assert!(
            time >= self.now,
            "cannot schedule in the past: {time} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Schedules `payload` after a non-negative delay.
    pub fn schedule_in(&mut self, delay: f64, payload: E) {
        self.schedule(self.now + delay.max(0.0), payload);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let e = self.heap.pop()?;
        debug_assert!(e.time >= self.now);
        self.now = e.time;
        Some((e.time, e.payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The set of recently started transmissions that can still interfere with
/// a frame under delivery resolution — the **O(active-set)** replacement
/// for a flat `VecDeque` log.
///
/// Entries are grouped into *lanes*, one per on-air duration class (the
/// simulator uses two: beacon frames and data frames). Within a lane every
/// entry has the same duration, so insertion order (= start order, because
/// simulation time is monotone) is also expiry order and pruning is a pure
/// front-pop. Across lanes that invariant does not hold — a long data frame
/// started before a short beacon outlives it — which is exactly the case
/// that made the old single-deque prune stall and retain already-expired
/// entries.
///
/// Iteration yields survivors in global insertion order (a two-pointer
/// merge on the per-entry sequence number). That matters for determinism:
/// interference powers are summed in iteration order, so the order must be
/// bit-identical to the historical single-deque scan.
#[derive(Debug, Clone)]
pub struct ActiveWindow<T> {
    /// Per-lane `(seq, end_time, payload)`, end-monotone within a lane.
    lanes: Vec<std::collections::VecDeque<(u64, f64, T)>>,
    seq: u64,
}

impl<T> ActiveWindow<T> {
    /// Creates a window with `lanes` duration classes.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes >= 1);
        Self {
            lanes: (0..lanes)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            seq: 0,
        }
    }

    /// Empties the window, retaining lane allocations.
    pub fn clear(&mut self) {
        for lane in &mut self.lanes {
            lane.clear();
        }
        self.seq = 0;
    }

    /// Inserts `item` expiring at `end` into `lane`. Entries in one lane
    /// must be inserted with non-decreasing `end` (same duration class +
    /// monotone simulation time guarantees this).
    pub fn insert(&mut self, lane: usize, end: f64, item: T) {
        debug_assert!(
            self.lanes[lane].back().is_none_or(|&(_, e, _)| e <= end),
            "lane {lane} end times must be non-decreasing"
        );
        self.lanes[lane].push_back((self.seq, end, item));
        self.seq += 1;
    }

    /// Drops every entry with `end <= threshold` — O(dropped), so the
    /// total prune work over a run is bounded by the number of insertions.
    pub fn prune(&mut self, threshold: f64) {
        for lane in &mut self.lanes {
            while lane.front().is_some_and(|&(_, e, _)| e <= threshold) {
                lane.pop_front();
            }
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.len()).sum()
    }

    /// Whether no entries are live.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(|l| l.is_empty())
    }

    /// Iterates the live entries in global insertion order.
    pub fn iter(&self) -> ActiveWindowIter<'_, T> {
        ActiveWindowIter {
            cursors: self.lanes.iter().map(|l| l.iter().peekable()).collect(),
        }
    }
}

/// Merged in-insertion-order iterator over an [`ActiveWindow`].
pub struct ActiveWindowIter<'a, T> {
    cursors: Vec<std::iter::Peekable<std::collections::vec_deque::Iter<'a, (u64, f64, T)>>>,
}

impl<'a, T> Iterator for ActiveWindowIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let lane = self
            .cursors
            .iter_mut()
            .enumerate()
            .filter_map(|(i, c)| c.peek().map(|&&(seq, _, _)| (seq, i)))
            .min()
            .map(|(_, i)| i)?;
        self.cursors[lane].next().map(|(_, _, item)| item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(5.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((5.0, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(2.5, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.5);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.pop();
        q.schedule_in(0.5, "second");
        assert_eq!(q.pop(), Some((1.5, "second")));
    }

    #[test]
    fn negative_delay_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "x");
        q.pop();
        q.schedule_in(-5.0, "y");
        assert_eq!(q.pop(), Some((1.0, "y")));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(2.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(4.0, ());
        q.schedule(2.0, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(2.0));
    }

    #[test]
    fn stress_many_random_times_sorted() {
        // pseudo-random insertion order must still drain sorted
        let mut q = EventQueue::new();
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        let mut times = Vec::new();
        for i in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = (x % 1_000_000) as f64 / 100.0;
            q.schedule(t, i);
            times.push(t);
        }
        let mut prev = f64::NEG_INFINITY;
        let mut n = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= prev);
            prev = t;
            n += 1;
        }
        assert_eq!(n, 10_000);
    }

    #[test]
    fn zero_duration_chain_preserves_causal_order() {
        // an event scheduled "now" during processing runs after currently
        // queued same-time events (FIFO among ties)
        let mut q = EventQueue::new();
        q.schedule(1.0, "a");
        q.schedule(1.0, "b");
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (1.0, "a"));
        q.schedule_in(0.0, "c"); // same timestamp as "b", inserted later
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn active_window_iterates_in_global_insertion_order() {
        // Two lanes with interleaved insertions: iteration must replay the
        // exact insertion order (the historical single-deque order that
        // interference summation depends on).
        let mut w: ActiveWindow<&str> = ActiveWindow::new(2);
        w.insert(1, 10.0, "data-a"); // long frame, inserted first
        w.insert(0, 2.0, "beacon-a");
        w.insert(0, 2.5, "beacon-b");
        w.insert(1, 11.0, "data-b");
        w.insert(0, 3.0, "beacon-c");
        let got: Vec<&str> = w.iter().copied().collect();
        assert_eq!(
            got,
            ["data-a", "beacon-a", "beacon-b", "data-b", "beacon-c"]
        );
        assert_eq!(w.len(), 5);
    }

    #[test]
    fn active_window_prunes_expired_behind_long_frames() {
        // The stall case of the old flat deque: short frames that expired
        // *behind* a long-lived frame must still be dropped.
        let mut w: ActiveWindow<u32> = ActiveWindow::new(2);
        w.insert(1, 100.0, 1); // long data frame holds the front
        w.insert(0, 2.0, 2);
        w.insert(0, 3.0, 3);
        w.insert(0, 50.0, 4);
        w.prune(3.0); // drops both expired beacons, keeps the data frame
        let got: Vec<u32> = w.iter().copied().collect();
        assert_eq!(got, [1, 4]);
        assert_eq!(w.len(), 2);
        w.prune(100.0);
        assert!(w.is_empty());
        // clear resets the sequence counter too
        w.insert(0, 1.0, 9);
        w.clear();
        assert!(w.iter().next().is_none());
    }

    #[test]
    fn interleaved_schedule_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.schedule(1.0, 1);
        q.schedule(10.0, 10);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(5.0, 5);
        q.schedule(2.0, 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 10);
    }
}
