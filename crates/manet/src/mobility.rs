//! Node mobility models.
//!
//! The paper's evaluation uses the **random walk** model (Table II: speed
//! uniform in [0, 2] m/s, direction and speed re-drawn every 20 s, 500 m
//! square field). Positions are evaluated *analytically* between waypoint
//! events: the trajectory between two re-draws is a straight line folded
//! into the field by mirror reflection, so the simulator never needs
//! per-tick position updates.
//!
//! [`RandomWaypoint`] and [`Stationary`] are provided for extensions and
//! tests.

use crate::geometry::{Field, Vec2};
use rand::Rng;

/// Which closed-form trajectory family a [`KinematicSegment`] belongs to —
/// the discriminant the SoA snapshot (`manet::snapshot`) branches on
/// *once per query*, instead of dispatching through `dyn Mobility` per
/// candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// Straight segment folded into the field by mirror reflection
    /// ([`RandomWalk`]).
    Walk,
    /// Linear interpolation towards a destination, parked on arrival
    /// ([`RandomWaypoint`]).
    Waypoint,
    /// No movement ([`Stationary`]).
    Still,
}

/// The closed-form description of a node's trajectory between two internal
/// state changes, exported in flat scalar form so positions can be
/// evaluated from structure-of-arrays lanes **bit-identically** to the
/// model's own [`Mobility::position`]:
///
/// * [`SegmentKind::Walk`]: `reflect(origin + velocity · max(t − t0, 0))`
/// * [`SegmentKind::Waypoint`]: `dest` once `t ≥ arrival`, else
///   `origin + velocity · clamp((t − t0) / (arrival − t0), 0, 1)` with
///   `velocity = dest − origin` (the *displacement* of the leg, matching
///   the model's `origin + (dest − origin) · frac` arithmetic exactly)
/// * [`SegmentKind::Still`][]: `origin`
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KinematicSegment {
    /// Trajectory family.
    pub kind: SegmentKind,
    /// Segment origin (walk/waypoint) or the fixed position (still).
    pub origin: Vec2,
    /// Walk: velocity (m/s). Waypoint: leg displacement `dest − origin`.
    /// Still: zero.
    pub velocity: Vec2,
    /// Segment start time (s).
    pub t0: f64,
    /// Waypoint: arrival time at `dest`; `+∞` for the other kinds.
    pub arrival: f64,
    /// Waypoint: the destination; equals `origin` for the other kinds.
    pub dest: Vec2,
}

/// A mobility model: a (possibly stochastic) trajectory for one node.
pub trait Mobility {
    /// Position at absolute simulation time `t` (seconds). `t` must be
    /// ≥ the time of the last [`advance`](Mobility::advance) call.
    fn position(&self, t: f64) -> Vec2;

    /// Time of the next internal state change (waypoint / re-draw), or
    /// `f64::INFINITY` for models without one.
    fn next_change(&self) -> f64;

    /// Advances the internal state across the change point at
    /// [`next_change`](Mobility::next_change). `rng` supplies the new
    /// random speed/direction.
    fn advance(&mut self, rng: &mut dyn rand::RngCore);

    /// An upper bound on the node's speed (m/s) from time `t` until
    /// [`next_change`](Mobility::next_change). The incremental spatial
    /// index divides the distance to the node's current grid-cell boundary
    /// by this bound to schedule the next possible cell crossing; it must
    /// therefore never under-report (over-reporting merely fires a refresh
    /// early, while reporting `0` suppresses refreshes until the next
    /// mobility change re-anchors the schedule).
    fn speed(&self, t: f64) -> f64;

    /// The closed-form description of the *current* segment, valid until
    /// the next [`advance`](Mobility::advance). Evaluating the segment per
    /// [`KinematicSegment`]'s contract must reproduce
    /// [`position`](Mobility::position) bit-for-bit — the SoA snapshot
    /// layer (`manet::snapshot`) relies on this to keep every delivery
    /// path bit-identical.
    fn segment(&self) -> KinematicSegment;
}

/// Random-walk mobility (Table II): straight segments with uniform random
/// speed and direction, re-drawn every `change_interval` seconds; walls
/// reflect.
#[derive(Debug, Clone)]
pub struct RandomWalk {
    field: Field,
    speed_range: (f64, f64),
    change_interval: f64,
    /// Unfolded origin of the current segment.
    origin: Vec2,
    /// Start time of the current segment.
    t0: f64,
    velocity: Vec2,
}

impl RandomWalk {
    /// Creates a walker starting at `start` at time `t0`.
    pub fn new<R: Rng>(
        field: Field,
        start: Vec2,
        speed_range: (f64, f64),
        change_interval: f64,
        t0: f64,
        rng: &mut R,
    ) -> Self {
        assert!(speed_range.0 >= 0.0 && speed_range.1 >= speed_range.0);
        assert!(change_interval > 0.0);
        let mut w = Self {
            field,
            speed_range,
            change_interval,
            origin: start,
            t0,
            velocity: Vec2::ZERO,
        };
        w.redraw(rng);
        w
    }

    fn redraw<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let (lo, hi) = self.speed_range;
        let speed = if hi > lo { rng.gen_range(lo..hi) } else { lo };
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        self.velocity = Vec2::from_angle(theta) * speed;
    }
}

impl Mobility for RandomWalk {
    fn position(&self, t: f64) -> Vec2 {
        debug_assert!(t >= self.t0 - 1e-9, "time ran backwards: {t} < {}", self.t0);
        let dt = (t - self.t0).max(0.0);
        self.field.reflect(self.origin + self.velocity * dt)
    }

    fn next_change(&self) -> f64 {
        self.t0 + self.change_interval
    }

    fn advance(&mut self, rng: &mut dyn rand::RngCore) {
        let t1 = self.next_change();
        self.origin = self.position(t1);
        self.t0 = t1;
        self.redraw(rng);
    }

    fn speed(&self, _t: f64) -> f64 {
        // Constant within a segment; reflection preserves magnitude.
        self.velocity.norm()
    }

    fn segment(&self) -> KinematicSegment {
        KinematicSegment {
            kind: SegmentKind::Walk,
            origin: self.origin,
            velocity: self.velocity,
            t0: self.t0,
            arrival: f64::INFINITY,
            dest: self.origin,
        }
    }
}

/// Random-waypoint mobility: pick a random destination and speed, travel
/// there, optionally pause, repeat. Not used by the paper's evaluation but
/// provided as an extension (common in follow-up MANET studies).
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    field: Field,
    speed_range: (f64, f64),
    pause: f64,
    origin: Vec2,
    dest: Vec2,
    t0: f64,
    /// Arrival time at `dest`; between `arrival` and `arrival + pause` the
    /// node is parked.
    arrival: f64,
}

impl RandomWaypoint {
    /// Creates a walker starting at `start` at time `t0`.
    pub fn new<R: Rng>(
        field: Field,
        start: Vec2,
        speed_range: (f64, f64),
        pause: f64,
        t0: f64,
        rng: &mut R,
    ) -> Self {
        assert!(
            speed_range.0 > 0.0 && speed_range.1 >= speed_range.0,
            "RWP needs positive speed"
        );
        let mut w = Self {
            field,
            speed_range,
            pause,
            origin: start,
            dest: start,
            t0,
            arrival: t0,
        };
        w.pick_waypoint(rng);
        w
    }

    fn pick_waypoint<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.dest = Vec2::new(
            rng.gen_range(0.0..self.field.width),
            rng.gen_range(0.0..self.field.height),
        );
        let (lo, hi) = self.speed_range;
        let speed = if hi > lo { rng.gen_range(lo..hi) } else { lo };
        let dist = self.origin.distance(self.dest);
        self.arrival = self.t0
            + if speed > 0.0 {
                dist / speed
            } else {
                f64::INFINITY
            };
    }
}

impl Mobility for RandomWaypoint {
    fn position(&self, t: f64) -> Vec2 {
        if t >= self.arrival {
            return self.dest;
        }
        let total = self.arrival - self.t0;
        if total <= 0.0 {
            return self.dest;
        }
        let frac = ((t - self.t0) / total).clamp(0.0, 1.0);
        self.origin + (self.dest - self.origin) * frac
    }

    fn next_change(&self) -> f64 {
        self.arrival + self.pause
    }

    fn advance(&mut self, rng: &mut dyn rand::RngCore) {
        self.origin = self.dest;
        self.t0 = self.next_change();
        self.pick_waypoint(rng);
    }

    fn speed(&self, t: f64) -> f64 {
        // Travel speed of the leg while en route; once arrived the node is
        // parked until the next waypoint, so refreshes can stop (the
        // mobility-change event at `arrival + pause` re-anchors them).
        if t >= self.arrival {
            return 0.0;
        }
        let total = self.arrival - self.t0;
        if total > 0.0 && total.is_finite() {
            self.origin.distance(self.dest) / total
        } else {
            0.0
        }
    }

    fn segment(&self) -> KinematicSegment {
        KinematicSegment {
            kind: SegmentKind::Waypoint,
            origin: self.origin,
            // The leg displacement: the model's position arithmetic is
            // `origin + (dest − origin) · frac`, and `dest − origin` is a
            // deterministic subtraction, so precomputing it here preserves
            // bit-identity.
            velocity: self.dest - self.origin,
            t0: self.t0,
            arrival: self.arrival,
            dest: self.dest,
        }
    }
}

/// A node that never moves (useful for static-topology tests).
#[derive(Debug, Clone, Copy)]
pub struct Stationary {
    /// Fixed position.
    pub pos: Vec2,
}

impl Mobility for Stationary {
    fn position(&self, _t: f64) -> Vec2 {
        self.pos
    }
    fn next_change(&self) -> f64 {
        f64::INFINITY
    }
    fn advance(&mut self, _rng: &mut dyn rand::RngCore) {}
    fn speed(&self, _t: f64) -> f64 {
        0.0
    }
    fn segment(&self) -> KinematicSegment {
        KinematicSegment {
            kind: SegmentKind::Still,
            origin: self.pos,
            velocity: Vec2::ZERO,
            t0: 0.0,
            arrival: f64::INFINITY,
            dest: self.pos,
        }
    }
}

/// Which mobility model the simulator should instantiate per node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MobilityModel {
    /// Paper model: straight segments, re-draw every `change_interval` s.
    RandomWalk {
        /// Seconds between speed/direction re-draws (paper: 20 s).
        change_interval: f64,
    },
    /// Random waypoint with the given pause time at each waypoint.
    RandomWaypoint {
        /// Pause at each waypoint (s).
        pause: f64,
    },
    /// No movement.
    Stationary,
}

/// Boxed mobility dispatcher used by the simulator.
pub enum AnyMobility {
    /// Random walk instance.
    Walk(RandomWalk),
    /// Random waypoint instance.
    Waypoint(RandomWaypoint),
    /// Static instance.
    Still(Stationary),
}

impl Mobility for AnyMobility {
    fn position(&self, t: f64) -> Vec2 {
        match self {
            AnyMobility::Walk(m) => m.position(t),
            AnyMobility::Waypoint(m) => m.position(t),
            AnyMobility::Still(m) => m.position(t),
        }
    }
    fn next_change(&self) -> f64 {
        match self {
            AnyMobility::Walk(m) => m.next_change(),
            AnyMobility::Waypoint(m) => m.next_change(),
            AnyMobility::Still(m) => m.next_change(),
        }
    }
    fn advance(&mut self, rng: &mut dyn rand::RngCore) {
        match self {
            AnyMobility::Walk(m) => m.advance(rng),
            AnyMobility::Waypoint(m) => m.advance(rng),
            AnyMobility::Still(m) => m.advance(rng),
        }
    }
    fn speed(&self, t: f64) -> f64 {
        match self {
            AnyMobility::Walk(m) => m.speed(t),
            AnyMobility::Waypoint(m) => m.speed(t),
            AnyMobility::Still(m) => m.speed(t),
        }
    }
    fn segment(&self) -> KinematicSegment {
        match self {
            AnyMobility::Walk(m) => m.segment(),
            AnyMobility::Waypoint(m) => m.segment(),
            AnyMobility::Still(m) => m.segment(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn field() -> Field {
        Field::new(100.0, 100.0)
    }

    #[test]
    fn random_walk_stays_in_field() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut w = RandomWalk::new(
            field(),
            Vec2::new(50.0, 50.0),
            (0.0, 2.0),
            20.0,
            0.0,
            &mut rng,
        );
        let mut t = 0.0;
        for _ in 0..200 {
            t += 7.3;
            while w.next_change() <= t {
                w.advance(&mut rng);
            }
            let p = w.position(t);
            assert!(field().contains(p), "escaped at t={t}: {p:?}");
        }
    }

    #[test]
    fn random_walk_speed_bounded() {
        let mut rng = SmallRng::seed_from_u64(2);
        let w = RandomWalk::new(
            field(),
            Vec2::new(50.0, 50.0),
            (0.0, 2.0),
            20.0,
            0.0,
            &mut rng,
        );
        // displacement over dt <= max_speed * dt (reflection only shortens)
        let p0 = w.position(0.0);
        let p1 = w.position(5.0);
        assert!(p0.distance(p1) <= 2.0 * 5.0 + 1e-9);
    }

    #[test]
    fn random_walk_continuous_across_advance() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut w = RandomWalk::new(
            field(),
            Vec2::new(10.0, 10.0),
            (1.0, 2.0),
            20.0,
            0.0,
            &mut rng,
        );
        let before = w.position(20.0);
        w.advance(&mut rng);
        let after = w.position(20.0);
        assert!(
            before.distance(after) < 1e-9,
            "jump at waypoint: {before:?} vs {after:?}"
        );
    }

    #[test]
    fn random_walk_zero_speed_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        let w = RandomWalk::new(
            field(),
            Vec2::new(5.0, 5.0),
            (0.0, 0.0),
            20.0,
            0.0,
            &mut rng,
        );
        assert_eq!(w.position(15.0), Vec2::new(5.0, 5.0));
    }

    #[test]
    fn waypoint_reaches_destination_and_pauses() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut w = RandomWaypoint::new(
            field(),
            Vec2::new(0.0, 0.0),
            (1.0, 1.0001),
            2.0,
            0.0,
            &mut rng,
        );
        let arrive = w.arrival;
        let dest = w.dest;
        assert!(w.position(arrive + 0.5).distance(dest) < 1e-9);
        assert!(w.position(arrive + 1.9).distance(dest) < 1e-9);
        assert_eq!(w.next_change(), arrive + 2.0);
        w.advance(&mut rng);
        assert_eq!(w.origin, dest);
    }

    #[test]
    fn waypoint_moves_toward_destination_linearly() {
        let mut rng = SmallRng::seed_from_u64(6);
        let w = RandomWaypoint::new(
            field(),
            Vec2::new(0.0, 0.0),
            (2.0, 2.0001),
            0.0,
            0.0,
            &mut rng,
        );
        let mid = w.position((w.t0 + w.arrival) / 2.0);
        let expect = w.origin + (w.dest - w.origin) * 0.5;
        assert!(mid.distance(expect) < 1e-6);
    }

    #[test]
    fn stationary_never_moves() {
        let s = Stationary {
            pos: Vec2::new(1.0, 2.0),
        };
        assert_eq!(s.position(0.0), s.position(1e6));
        assert_eq!(s.next_change(), f64::INFINITY);
    }

    #[test]
    fn any_mobility_dispatch() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut m = AnyMobility::Walk(RandomWalk::new(
            field(),
            Vec2::new(50.0, 50.0),
            (1.0, 2.0),
            20.0,
            0.0,
            &mut rng,
        ));
        assert_eq!(m.next_change(), 20.0);
        m.advance(&mut rng);
        assert_eq!(m.next_change(), 40.0);
        let m = AnyMobility::Still(Stationary { pos: Vec2::ZERO });
        assert_eq!(m.position(123.0), Vec2::ZERO);
    }

    #[test]
    fn determinism_same_seed_same_trajectory() {
        let make = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            RandomWalk::new(
                field(),
                Vec2::new(30.0, 30.0),
                (0.0, 2.0),
                20.0,
                0.0,
                &mut rng,
            )
        };
        let a = make(42);
        let b = make(42);
        for k in 0..10 {
            let t = k as f64 * 1.9;
            assert_eq!(a.position(t), b.position(t));
        }
    }
}
