//! Batched **lane sweeps** over the SoA kinematic snapshot — the delivery
//! query's candidate filter, restructured for the autovectorizer — plus
//! per-cell **event-horizon culling**.
//!
//! # Why a sweep instead of a per-candidate filter
//!
//! The historical incremental filter interleaved three very different
//! kinds of work per candidate: a linked-list pointer chase through the
//! grid cell, a gather into the snapshot lanes to evaluate the exact
//! position, and a push of the survivor triple. The mix defeats both the
//! hardware prefetcher and the compiler's vectorizer. [`DeliverySweep`]
//! splits the phases:
//!
//! 1. **Gather** — walk the cells overlapping the decode disc (the same
//!    disc, in the same order, as the historical query) and copy each
//!    cell's member ids into one flat scratch list. Pure pointer chasing,
//!    no arithmetic. (The grid's *stored* positions cannot prefilter
//!    here: the incremental discipline only guarantees the bucketed
//!    *cell* stays correct within the slack — the stored point itself
//!    may lag its node by most of a cell until the next crossing
//!    refresh.)
//! 2. **Sweep** — evaluate exact squared distances for the whole list, in
//!    the historical visit order, in fixed-width chunks of [`SWEEP_WIDTH`]
//!    ids. A chunk whose ids share one [`SegmentKind`] runs a
//!    branch-free straight-line kernel over the nodes'
//!    [`PackedSegment`](crate::snapshot::PackedSegment) records (one
//!    cache line per candidate instead of one per lane touched);
//!    mixed-kind chunks and the tail fall back to the scalar
//!    [`KinematicSnapshot::position`] path. Each candidate within the
//!    decode radius is *marked* in a two-level survivor bitset.
//! 3. **Emit** — walk the bitset's set bits in ascending id order,
//!    re-derive each survivor's exact position and `d²` from its (still
//!    cache-hot) packed record, and append the `(id, position, d²)`
//!    triples. Ascending emission falls out of the bitset walk, so the
//!    historical post-filter **sort disappears entirely** — at dense
//!    scales the comparison sort was the single most expensive phase of
//!    the query.
//!
//! # The fixed-width-chunk contract
//!
//! Each chunk kernel performs, per lane, **exactly** the f64 operations of
//! [`KinematicSnapshot::position`] followed by
//! [`Vec2::distance_sq`] — same operations, same order, no fused
//! multiply-adds, no re-association — so the sweep is bit-identical to the
//! scalar filter for every candidate, and all three
//! [`DeliveryMode`](crate::sim::DeliveryMode)s stay parity-pinned (asserted
//! by the property suite's sweep-vs-scalar pin and the cross-mode
//! determinism tests). Chunking only restructures *which loop* the
//! operations run in; it never changes what is computed. The packed
//! records hold the same `f64` values as the lanes (maintained in
//! lockstep by the snapshot), and the emission pass re-runs the identical
//! operation sequence per survivor, so recomputation cannot drift: the
//! survivor *set* is decided by the sweep, and every emitted triple
//! equals the one the historical filter produced. The set is
//! order-independent (each id's predicate depends only on its own lanes),
//! and ascending-id emission reproduces the historical sort order exactly
//! because node ids are unique.
//!
//! # Event-horizon culling
//!
//! Every time the sweep evaluates a cell whose membership changed since
//! the last evaluation, it also derives a **bound** from the lanes it just
//! touched: a disc (centre + radius) covering every member's exact
//! position at sweep time `t₀`, plus the maximum member speed `v`. Until
//! the cell's membership or a member's segment changes again, every member
//! stays inside that disc grown by `v · (t − t₀)` — walk reflection is
//! 1-Lipschitz and a waypoint leg never moves faster than its own leg
//! speed, so straight-line drift bounds folded drift. A later query from
//! centre `c` with decode radius `r` can therefore skip the whole cell
//! without touching its lanes whenever
//!
//! ```text
//! |c − centre| > r + radius + v · (t − t₀) + margin
//! ```
//!
//! — the cell is beyond the query's *event horizon* until the grown disc
//! reaches the decode disc. The bound is invalidated (O(1) stamp bump)
//! whenever a node is bucketed into the cell or a bucketed member's
//! mobility segment re-anchors; members *leaving* only shrink the true
//! extent, so departures need no invalidation. Culling can never drop a
//! survivor: a skipped cell provably contains no position within the
//! decode radius, and a conservative [`CULL_MARGIN_M`] absorbs the few
//! ulps of rounding in the bound arithmetic.

use crate::geometry::Vec2;
use crate::grid::SpatialGrid;
use crate::mobility::SegmentKind;
use crate::snapshot::{KinematicSnapshot, PackedSegment};

/// Hints the CPU to start loading the cache line at `p` without blocking.
/// The gather is latency-bound, not work-bound: per query it touches a
/// couple of dozen cells' metadata plus ~44 packed segment records, each
/// on its own line scattered across multi-hundred-KiB arrays, so almost
/// every access is a demand miss unless something issues the load early.
/// Purely a latency hint: cache state is the only effect, so no computed
/// value can change.
#[inline(always)]
fn prefetch<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is side-effect-free and architecturally valid for
    // any address, even an unmapped one.
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(p.cast::<i8>(), _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// [`prefetch`] of node `i`'s packed segment record, which the eval
/// kernels will read a few hundred nanoseconds after the gather pushes
/// the id.
#[inline(always)]
fn prefetch_packed(packed: &[PackedSegment], i: usize) {
    prefetch(&packed[i] as *const PackedSegment);
}

/// Width of one batched chunk: how many candidate ids each straight-line
/// kernel invocation evaluates. Eight f64 lanes fill two AVX2 registers
/// (or one AVX-512 register) per coordinate, and the gathered id lists of
/// a dense query are long enough that most candidates land in full
/// chunks.
pub const SWEEP_WIDTH: usize = 8;

/// Conservative slack (m) added to the event-horizon cull comparison so
/// floating-point rounding in the bound arithmetic (bbox midpoint, member
/// distances, drift product) can never cull a cell whose exact sweep
/// would keep a survivor. Metres-scale distances carry ~1e-10 m of f64
/// rounding; a micrometre of margin is orders of magnitude above it and
/// still culls everything worth culling.
const CULL_MARGIN_M: f64 = 1e-6;

/// Work counters of the batched candidate sweep, accumulated across
/// queries and zeroed on reset — the measurable shape of the filter
/// (exported per scale row in the `bench-scale-v5` artifact).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Non-empty grid cells the disc walks reached (including culled).
    pub cells_visited: u64,
    /// Cells skipped whole by the event horizon — their candidates were
    /// never gathered and their lanes never touched.
    pub cells_culled: u64,
    /// Candidates evaluated by full-width single-kind chunk kernels.
    pub batched_candidates: u64,
    /// Candidates evaluated on the scalar path (mixed-kind chunks and the
    /// sub-width tail of each query's id list).
    pub scalar_candidates: u64,
}

/// Component-wise sum — the deterministic reduction
/// [`Simulator::sweep_stats`](crate::sim::Simulator::sweep_stats) applies
/// over per-shard-worker sweeps. Each worker counts only the queries it
/// owns and ownership is a pure function of sender position, so summing
/// in worker-index order yields the same totals regardless of how the
/// threads actually interleaved.
impl std::ops::AddAssign for SweepStats {
    fn add_assign(&mut self, rhs: Self) {
        self.cells_visited += rhs.cells_visited;
        self.cells_culled += rhs.cells_culled;
        self.batched_candidates += rhs.batched_candidates;
        self.scalar_candidates += rhs.scalar_candidates;
    }
}

/// A cached per-cell event horizon: every member's exact position at time
/// `t` lies within `radius` of `center`, and no member moves faster than
/// `vmax` until the cell is invalidated. Valid only while `stamp` is
/// non-zero — invalidation clears the stamp in place, so validity and the
/// bound live on the same cache line (the gather reads exactly one line
/// of metadata per cell).
#[derive(Debug, Clone, Copy)]
struct CellBound {
    stamp: u64,
    t: f64,
    center: Vec2,
    radius: f64,
    vmax: f64,
}

const NO_BOUND: CellBound = CellBound {
    stamp: 0, // 0 = stale; a refreshed bound stores 1
    t: 0.0,
    center: Vec2::ZERO,
    radius: 0.0,
    vmax: 0.0,
};

/// The batched candidate filter: scratch buffers plus the per-cell
/// event-horizon cache (see the module docs). One instance lives in the
/// simulator's `World` and is reused across every delivery query.
#[derive(Debug, Clone, Default)]
pub struct DeliverySweep {
    /// Per-cell bounds; `bounds[c]` is valid iff its stamp is non-zero.
    bounds: Vec<CellBound>,
    /// Scratch: non-empty cells collected by the prefetching first pass of
    /// the gather.
    cells: Vec<u32>,
    /// Scratch: candidate ids gathered from the visited cells.
    ids: Vec<u32>,
    /// Survivor bitset, one bit per node id; all-zero between queries
    /// (the emit pass clears the words it visits).
    survivors: Vec<u64>,
    /// Summary bitset over `survivors`: bit `w` set iff word `w` is
    /// non-zero, so the emit pass only touches words holding survivors.
    summary: Vec<u64>,
    /// Scratch: cells visited with an invalid bound, refreshed after the
    /// gather.
    stale: Vec<u32>,
    /// Scratch: member positions while refreshing one cell bound.
    bound_pos: Vec<Vec2>,
    stats: SweepStats,
}

impl DeliverySweep {
    /// An empty sweep; call [`reset`](Self::reset) before filtering.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-arms the sweep for a grid of `n_cells` cells over `n_nodes`
    /// nodes: drops every cached bound, zeroes the counters and the
    /// survivor bitsets, keeps the scratch allocations.
    pub fn reset(&mut self, n_cells: usize, n_nodes: usize) {
        self.bounds.clear();
        self.bounds.resize(n_cells, NO_BOUND);
        let words = n_nodes.div_ceil(64);
        self.survivors.clear();
        self.survivors.resize(words, 0);
        self.summary.clear();
        self.summary.resize(words.div_ceil(64), 0);
        self.stats = SweepStats::default();
    }

    /// Invalidates the event-horizon bound of `cell` in O(1). Call
    /// whenever a node is bucketed *into* the cell or a bucketed member's
    /// mobility segment changes; departures need no call (they only
    /// shrink the cell's true extent).
    #[inline]
    pub fn invalidate_cell(&mut self, cell: usize) {
        self.bounds[cell].stamp = 0;
    }

    /// Invalidates every cached bound (used when the delivery mode
    /// switches, after which another discipline may have re-bucketed
    /// nodes without per-cell notifications).
    pub fn invalidate_all(&mut self) {
        for b in &mut self.bounds {
            b.stamp = 0;
        }
    }

    /// Work counters accumulated since the last [`reset`](Self::reset).
    pub fn stats(&self) -> SweepStats {
        self.stats
    }

    /// The batched equivalent of the historical scalar filter: appends to
    /// `out` every node bucketed in a cell overlapping the disc of
    /// `radius + slack` around `center` whose exact position at `t` is
    /// within `radius`, as `(id, position, d²)` triples in **ascending id
    /// order** — the same survivors, positions and distances (bit-for-bit)
    /// and the same final ordering as `SpatialGrid::for_each_in_cells`
    /// plus `KinematicSnapshot::position` plus an ascending sort, minus
    /// the cells the event horizon proves empty of survivors.
    #[allow(clippy::too_many_arguments)] // mirrors the scalar query's parameter list
    pub fn filter_into(
        &mut self,
        grid: &SpatialGrid,
        snap: &KinematicSnapshot,
        center: Vec2,
        t: f64,
        radius: f64,
        slack: f64,
        out: &mut Vec<(usize, Vec2, f64)>,
    ) {
        let geom = grid.geometry();
        debug_assert_eq!(
            self.bounds.len(),
            geom.n_cells(),
            "reset() before filtering"
        );
        // One range check up front licenses the unchecked indexing in the
        // eval kernels: grid buckets only hold ids below the grid's node
        // count, so bounding that count by the packed-record and bitset
        // sizes covers every gathered id. (The sweep, grid and snapshot
        // are sized by separate calls — this is the seam where they could
        // disagree.)
        assert!(
            grid.n_nodes() <= snap.packed().len() && grid.n_nodes() <= self.survivors.len() * 64,
            "sweep/snapshot sized for fewer nodes than the grid buckets"
        );
        self.ids.clear();
        self.stale.clear();
        self.cells.clear();
        // The gather is three tiny passes over the disc's cells so that
        // every load the latency-critical final pass performs was
        // prefetched one pass earlier — nothing on the critical path is a
        // demand miss:
        //
        // 1. collect cell indices, prefetch each cell's bound line and
        //    bucket header line (pure address arithmetic, no loads);
        // 2. read the (now warm) headers, prefetch each non-empty
        //    bucket's member data line;
        // 3. cull or gather against warm bounds and warm member data,
        //    prefetching every gathered candidate's packed record for the
        //    eval kernels behind it.
        {
            let bounds = &self.bounds;
            let cells = &mut self.cells;
            geom.for_each_cell_in_disc(center, radius + slack, |cell| {
                prefetch(&bounds[cell] as *const CellBound);
                grid.prefetch_bucket(cell);
                cells.push(cell as u32);
            });
        }
        let packed = snap.packed();
        // Lookahead distance of the member-data prefetch in the fused
        // cull/gather pass: far enough ahead that a bucket's data line
        // arrives by the time its cell is processed, near enough that it
        // is rarely wasted on culled cells.
        const LOOKAHEAD: usize = 4;
        for k in 0..self.cells.len() {
            if let Some(&ahead) = self.cells.get(k + LOOKAHEAD) {
                // Header is warm (prefetched in the collect pass), so this
                // only dereferences it to start the data line loading.
                prefetch(grid.bucket(ahead as usize).as_ptr());
            }
            let cell = self.cells[k] as usize;
            let members = grid.bucket(cell);
            if members.is_empty() {
                continue;
            }
            self.stats.cells_visited += 1;
            let b = self.bounds[cell];
            if b.stamp != 0 {
                let reach = radius + b.radius + b.vmax * (t - b.t) + CULL_MARGIN_M;
                if center.distance_sq(b.center) > reach * reach {
                    self.stats.cells_culled += 1;
                    continue;
                }
            } else {
                self.stale.push(cell as u32);
            }
            for &i in members {
                prefetch_packed(packed, i as usize);
                self.ids.push(i);
            }
        }
        // Refresh stale bounds from the cells' full membership (walked
        // again — refreshes are invalidation-driven and rare relative to
        // queries, and decoupling them from the gather keeps the gather a
        // pure id copy).
        for k in 0..self.stale.len() {
            let cell = self.stale[k] as usize;
            self.refresh_bound(grid, snap, cell, t);
        }
        let r2 = radius * radius;
        self.eval_mark(snap, center, t, r2);
        self.emit(snap, center, t, out);
    }

    /// Recomputes the event horizon of `cell` from its full current
    /// membership: the tightest disc around the members' exact positions
    /// at `t` plus the largest per-member speed bound derivable from the
    /// segment lanes.
    fn refresh_bound(&mut self, grid: &SpatialGrid, snap: &KinematicSnapshot, cell: usize, t: f64) {
        let lanes = snap.lanes();
        self.bound_pos.clear();
        let bound_pos = &mut self.bound_pos;
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        let mut v2max = 0.0f64;
        grid.for_each_in_cell(cell, |i| {
            let p = snap.position(i, t);
            bound_pos.push(p);
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
            let v2 = match lanes.kinds[i] {
                SegmentKind::Walk => {
                    let v = lanes.velocity[i];
                    v.x * v.x + v.y * v.y
                }
                SegmentKind::Waypoint => {
                    // `velocity` is the leg displacement; the node covers
                    // it over `arrival - t0` seconds and then parks. Once
                    // parked (or for a degenerate leg) it cannot move
                    // again without a segment change, which invalidates
                    // this bound.
                    let total = lanes.arrival[i] - lanes.t0[i];
                    if total > 0.0 && t < lanes.arrival[i] {
                        let v = lanes.velocity[i];
                        (v.x * v.x + v.y * v.y) / (total * total)
                    } else {
                        0.0
                    }
                }
                SegmentKind::Still => 0.0,
            };
            v2max = v2max.max(v2);
        });
        let center = Vec2::new((min_x + max_x) * 0.5, (min_y + max_y) * 0.5);
        let mut radius = 0.0f64;
        for p in &self.bound_pos {
            radius = radius.max(center.distance(*p));
        }
        self.bounds[cell] = CellBound {
            stamp: 1,
            t,
            center,
            radius,
            vmax: v2max.sqrt(),
        };
    }

    /// Evaluates every gathered id's exact squared distance in fixed-width
    /// chunks (see the module docs for the bit-exactness contract) and
    /// marks survivors (`d² ≤ r²`) in the two-level bitset.
    ///
    /// Precondition (asserted by [`filter_into`](Self::filter_into), the
    /// only caller): every id in `self.ids` is below `snap.packed().len()`
    /// and `self.survivors.len() * 64`.
    fn eval_mark(&mut self, snap: &KinematicSnapshot, center: Vec2, t: f64, r2: f64) {
        let n = self.ids.len();
        if n == 0 {
            return;
        }
        let field = snap.lanes().field;
        let packed = snap.packed();
        let ids = &self.ids[..];
        let survivors = &mut self.survivors[..];
        let summary = &mut self.summary[..];
        // Branchless: a non-survivor ORs in a zero bit. Survival is
        // data-dependent noise to the branch predictor, so predicating
        // the mark beats an `if` in the middle of the kernels.
        #[inline]
        fn mark(survivors: &mut [u64], summary: &mut [u64], id: u32, survives: bool) {
            let w = (id / 64) as usize;
            debug_assert!(w < survivors.len() && w / 64 < summary.len());
            // SAFETY: `filter_into`'s up-front assert bounds every
            // gathered id below `survivors.len() * 64`, hence
            // `w < survivors.len()` and `w / 64 < summary.len()` (summary
            // has one bit per word).
            unsafe {
                *survivors.get_unchecked_mut(w) |= (survives as u64) << (id % 64);
                *summary.get_unchecked_mut(w / 64) |= (survives as u64) << (w % 64);
            }
        }
        // SAFETY of every `get_unchecked` below: `filter_into`'s up-front
        // assert bounds all gathered ids below `packed.len()`.
        #[inline(always)]
        fn rec(packed: &[PackedSegment], id: u32) -> &PackedSegment {
            debug_assert!((id as usize) < packed.len());
            unsafe { packed.get_unchecked(id as usize) }
        }
        let mut j = 0;
        while j + SWEEP_WIDTH <= n {
            let chunk: &[u32; SWEEP_WIDTH] = ids[j..j + SWEEP_WIDTH].try_into().unwrap();
            // The kind probe pulls each candidate's packed line into
            // cache; the kernel below re-reads the same lines for free.
            let k0 = rec(packed, chunk[0]).kind;
            let single_kind = chunk.iter().all(|&id| rec(packed, id).kind == k0);
            match (single_kind, k0) {
                (true, SegmentKind::Walk) => {
                    // Per lane: exactly the Walk arm of
                    // `KinematicSnapshot::position`, then `distance_sq` —
                    // the packed mirror holds the same f64s as the lanes.
                    for &id in chunk {
                        let s = rec(packed, id);
                        let dt = (t - s.t0).max(0.0);
                        let p = field.reflect(s.origin + s.velocity * dt);
                        mark(survivors, summary, id, p.distance_sq(center) <= r2);
                    }
                    self.stats.batched_candidates += SWEEP_WIDTH as u64;
                }
                (true, SegmentKind::Still) => {
                    for &id in chunk {
                        let p = rec(packed, id).origin;
                        mark(survivors, summary, id, p.distance_sq(center) <= r2);
                    }
                    self.stats.batched_candidates += SWEEP_WIDTH as u64;
                }
                _ => {
                    // Mixed kinds or waypoint legs (whose arrival/parking
                    // branches defeat straight-line code): the scalar
                    // path, shared with `position` so it cannot drift.
                    for &id in chunk {
                        let p = snap.position(id as usize, t);
                        mark(survivors, summary, id, p.distance_sq(center) <= r2);
                    }
                    self.stats.scalar_candidates += SWEEP_WIDTH as u64;
                }
            }
            j += SWEEP_WIDTH;
        }
        while j < n {
            let id = ids[j];
            let p = snap.position(id as usize, t);
            mark(survivors, summary, id, p.distance_sq(center) <= r2);
            self.stats.scalar_candidates += 1;
            j += 1;
        }
    }

    /// Walks the survivor bitset in ascending id order, re-derives each
    /// survivor's exact position and `d²` (identical operation sequence,
    /// identical inputs — so identical bits) and appends the triples,
    /// clearing the bitset words behind itself.
    fn emit(
        &mut self,
        snap: &KinematicSnapshot,
        center: Vec2,
        t: f64,
        out: &mut Vec<(usize, Vec2, f64)>,
    ) {
        let field = snap.lanes().field;
        let packed = snap.packed();
        for sw in 0..self.summary.len() {
            let mut sbits = self.summary[sw];
            if sbits == 0 {
                continue;
            }
            self.summary[sw] = 0;
            while sbits != 0 {
                let w = sw * 64 + sbits.trailing_zeros() as usize;
                sbits &= sbits - 1;
                let mut bits = self.survivors[w];
                self.survivors[w] = 0;
                while bits != 0 {
                    let id = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let s = &packed[id];
                    let p = match s.kind {
                        SegmentKind::Walk => {
                            let dt = (t - s.t0).max(0.0);
                            field.reflect(s.origin + s.velocity * dt)
                        }
                        SegmentKind::Still => s.origin,
                        SegmentKind::Waypoint => snap.position(id, t),
                    };
                    out.push((id, p, p.distance_sq(center)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Field;
    use crate::mobility::{AnyMobility, Mobility, RandomWalk, RandomWaypoint, Stationary};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn field() -> Field {
        Field::new(600.0, 400.0)
    }

    /// The historical scalar filter, verbatim: cell walk + per-candidate
    /// position/d² + ascending sort.
    fn scalar_filter(
        grid: &SpatialGrid,
        snap: &KinematicSnapshot,
        center: Vec2,
        t: f64,
        radius: f64,
        slack: f64,
    ) -> Vec<(usize, Vec2, f64)> {
        let r2 = radius * radius;
        let mut out = Vec::new();
        grid.for_each_in_cells(center, radius + slack, |i| {
            let p = snap.position(i, t);
            let d2 = p.distance_sq(center);
            if d2 <= r2 {
                out.push((i, p, d2));
            }
        });
        out.sort_unstable_by_key(|&(i, _, _)| i);
        out
    }

    fn mixed_world(n: usize, seed: u64) -> (Vec<AnyMobility>, KinematicSnapshot, SpatialGrid) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ms: Vec<AnyMobility> = (0..n)
            .map(|i| {
                let start = Vec2::new(
                    rng.gen_range(0.0..field().width),
                    rng.gen_range(0.0..field().height),
                );
                match i % 3 {
                    0 => AnyMobility::Walk(RandomWalk::new(
                        field(),
                        start,
                        (0.0, 2.0),
                        20.0,
                        0.0,
                        &mut rng,
                    )),
                    1 => AnyMobility::Waypoint(RandomWaypoint::new(
                        field(),
                        start,
                        (0.5, 2.0),
                        1.0,
                        0.0,
                        &mut rng,
                    )),
                    _ => AnyMobility::Still(Stationary { pos: start }),
                }
            })
            .collect();
        let mut snap = KinematicSnapshot::new(field());
        snap.rebuild(field(), ms.iter().map(|m| m.segment()));
        let mut grid = SpatialGrid::new(field(), 70.0);
        grid.rebuild(n, 0.0, |i| ms[i].position(0.0));
        (ms, snap, grid)
    }

    #[test]
    fn sweep_matches_scalar_filter_bit_for_bit() {
        let (mut ms, mut snap, mut grid) = mixed_world(257, 9);
        let mut sweep = DeliverySweep::new();
        sweep.reset(grid.geometry().n_cells(), ms.len());
        let mut rng = SmallRng::seed_from_u64(77);
        let mut t = 0.0;
        for step in 0..120 {
            t += 0.31;
            // advance mobility, mirroring the simulator's maintenance
            for (i, m) in ms.iter_mut().enumerate() {
                while m.next_change() <= t {
                    m.advance(&mut rng);
                    snap.set(i, m.segment());
                    // segment changed: invalidate the node's (possibly
                    // new) cell, as the simulator's re-anchor path does
                    grid.update_node(i, m.position(t));
                    sweep.invalidate_cell(grid.node_cell(i));
                }
            }
            let center = Vec2::new(
                rng.gen_range(0.0..field().width),
                rng.gen_range(0.0..field().height),
            );
            let radius = rng.gen_range(10.0..150.0);
            let want = scalar_filter(&grid, &snap, center, t, radius, 0.1);
            let mut got = Vec::new();
            sweep.filter_into(&grid, &snap, center, t, radius, 0.1, &mut got);
            assert_eq!(got, want, "step {step} t {t} r {radius}");
        }
        let s = sweep.stats();
        assert!(
            s.scalar_candidates > 0,
            "mixed chunks / tails must have run"
        );
    }

    #[test]
    fn homogeneous_walk_world_runs_chunk_kernels() {
        let mut rng = SmallRng::seed_from_u64(21);
        let ms: Vec<AnyMobility> = (0..300)
            .map(|_| {
                let start = Vec2::new(
                    rng.gen_range(0.0..field().width),
                    rng.gen_range(0.0..field().height),
                );
                AnyMobility::Walk(RandomWalk::new(
                    field(),
                    start,
                    (0.0, 2.0),
                    20.0,
                    0.0,
                    &mut rng,
                ))
            })
            .collect();
        let mut snap = KinematicSnapshot::new(field());
        snap.rebuild(field(), ms.iter().map(|m| m.segment()));
        let mut grid = SpatialGrid::new(field(), 70.0);
        grid.rebuild(ms.len(), 0.0, |i| ms[i].position(0.0));
        let mut sweep = DeliverySweep::new();
        sweep.reset(grid.geometry().n_cells(), ms.len());
        for q in 0..40 {
            let center = Vec2::new(
                rng.gen_range(0.0..field().width),
                rng.gen_range(0.0..field().height),
            );
            let t = q as f64 * 0.25;
            let want = scalar_filter(&grid, &snap, center, t, 120.0, 0.1);
            let mut got = Vec::new();
            sweep.filter_into(&grid, &snap, center, t, 120.0, 0.1, &mut got);
            assert_eq!(got, want, "query {q}");
        }
        let s = sweep.stats();
        assert!(
            s.batched_candidates > 0,
            "chunk kernels must have run: {s:?}"
        );
    }

    #[test]
    fn culling_fires_and_stays_exact_for_still_clusters() {
        // Stationary nodes clustered in far cell corners: once a bound is
        // cached, queries whose decode disc only clips the cell must skip
        // it — and still return exactly the scalar answer.
        let f = Field::new(300.0, 300.0);
        let cell = 100.0;
        let mut positions = Vec::new();
        for cx in 0..3 {
            for cy in 0..3 {
                // members hug the far corner of each cell
                positions.push(Vec2::new(cx as f64 * cell + 95.0, cy as f64 * cell + 95.0));
                positions.push(Vec2::new(cx as f64 * cell + 92.0, cy as f64 * cell + 97.0));
            }
        }
        let ms: Vec<AnyMobility> = positions
            .iter()
            .map(|&pos| AnyMobility::Still(Stationary { pos }))
            .collect();
        let mut snap = KinematicSnapshot::new(f);
        snap.rebuild(f, ms.iter().map(|m| m.segment()));
        let mut grid = SpatialGrid::new(f, cell);
        grid.rebuild(ms.len(), 0.0, |i| ms[i].position(0.0));
        let mut sweep = DeliverySweep::new();
        sweep.reset(grid.geometry().n_cells(), ms.len());
        // query from a cell's near corner: the disc clips neighbour cells
        // whose members (far corners) are all out of reach
        let center = Vec2::new(105.0, 105.0);
        let radius = 60.0;
        for t in [0.0, 1.0, 2.0] {
            let want = scalar_filter(&grid, &snap, center, t, radius, 0.1);
            let mut got = Vec::new();
            sweep.filter_into(&grid, &snap, center, t, radius, 0.1, &mut got);
            assert_eq!(got, want, "t {t}");
        }
        assert!(
            sweep.stats().cells_culled > 0,
            "corner clusters must be culled after their bounds are cached: {:?}",
            sweep.stats()
        );
    }

    #[test]
    fn invalidation_keeps_cull_conservative_when_members_arrive() {
        // A node walking into a previously-culled cell must invalidate its
        // bound, or the cull would skip a now-decodable receiver.
        let f = Field::new(200.0, 100.0);
        let cell = 100.0;
        // one still node in the far corner of the right cell
        let ms = [
            AnyMobility::Still(Stationary {
                pos: Vec2::new(195.0, 95.0),
            }),
            AnyMobility::Still(Stationary {
                pos: Vec2::new(10.0, 10.0),
            }),
        ];
        let mut snap = KinematicSnapshot::new(f);
        snap.rebuild(f, ms.iter().map(|m| m.segment()));
        let mut grid = SpatialGrid::new(f, cell);
        grid.rebuild(ms.len(), 0.0, |i| ms[i].position(0.0));
        let mut sweep = DeliverySweep::new();
        sweep.reset(grid.geometry().n_cells(), ms.len());
        let center = Vec2::new(95.0, 50.0);
        let radius = 40.0;
        // prime + cull the right cell (its only member is ~112 m away)
        for _ in 0..2 {
            let mut got = Vec::new();
            sweep.filter_into(&grid, &snap, center, 0.0, radius, 0.1, &mut got);
            assert!(got.iter().all(|&(i, _, _)| i == 1));
        }
        assert!(sweep.stats().cells_culled > 0);
        // teleport node 1 into the right cell, inside the decode disc
        let new_pos = Vec2::new(120.0, 50.0);
        let moved_snap = crate::mobility::KinematicSegment {
            kind: SegmentKind::Still,
            origin: new_pos,
            velocity: Vec2::ZERO,
            t0: 1.0,
            arrival: f64::INFINITY,
            dest: new_pos,
        };
        snap.set(1, moved_snap);
        assert!(grid.update_node(1, new_pos));
        sweep.invalidate_cell(grid.node_cell(1));
        let want = scalar_filter(&grid, &snap, center, 1.0, radius, 0.1);
        assert!(want.iter().any(|&(i, _, _)| i == 1), "node 1 is in range");
        let mut got = Vec::new();
        sweep.filter_into(&grid, &snap, center, 1.0, radius, 0.1, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn chunk_boundaries_cover_all_residues() {
        // candidate counts hitting every residue mod SWEEP_WIDTH, so both
        // the full-chunk kernels and the scalar tail are exercised
        for n in [1, 7, 8, 9, 15, 16, 17, 64, 65] {
            let (_, snap, grid) = mixed_world(n, 1000 + n as u64);
            let mut sweep = DeliverySweep::new();
            sweep.reset(grid.geometry().n_cells(), n);
            let center = Vec2::new(300.0, 200.0);
            let want = scalar_filter(&grid, &snap, center, 0.0, 1e4, 0.1);
            assert_eq!(want.len(), n, "disc larger than field sees everyone");
            let mut got = Vec::new();
            sweep.filter_into(&grid, &snap, center, 0.0, 1e4, 0.1, &mut got);
            assert_eq!(got, want, "n {n}");
        }
    }
}
