//! # manet — a discrete-event mobile ad-hoc network simulator
//!
//! This crate replaces the ns-3 substrate of the paper *"A Parallel
//! Multi-objective Local Search for AEDB Protocol Tuning"*. It simulates a
//! MANET of mobile devices in a rectangular field and exposes exactly the
//! machinery the AEDB broadcast protocol needs:
//!
//! * [`geometry`] — 2-D vectors and field geometry,
//! * [`mobility`] — the random-walk mobility model of the paper (speed and
//!   direction re-drawn every 20 s, reflecting walls) plus random-waypoint
//!   and static models for extensions,
//! * [`radio`] — dBm/mW arithmetic and path-loss models (log-distance with
//!   ns-3's default parameters, plus Friis and two-ray ground),
//! * [`events`] — a binary-heap event scheduler with stable ordering,
//! * [`neighbor`] — beacon-maintained one-hop neighbour tables carrying
//!   received signal strength,
//! * [`protocol`] — the [`Protocol`](protocol::Protocol) trait broadcast
//!   algorithms implement (AEDB lives in the `aedb` crate; a flooding
//!   baseline ships here),
//! * [`snapshot`] — flat structure-of-arrays kinematic snapshots of every
//!   node's current mobility segment, the cache-friendly data the delivery
//!   query filters candidates against,
//! * [`sweep`] — the batched candidate filter: fixed-width lane sweeps
//!   over the snapshot (SIMD-friendly, bit-identical to the scalar
//!   filter) plus per-cell event-horizon culling,
//! * [`sim`] — the simulator proper: beaconing, half-duplex radios,
//!   collision/capture modelling, timers and metric collection,
//! * [`world`] — the declarative scenario API: a validated
//!   [`WorldSpec`](world::WorldSpec) of heterogeneous node groups (per-group
//!   mobility, placement and transmit-power class) that compiles into the
//!   simulator through [`Simulator::from_world`](sim::Simulator::from_world),
//!   plus the shared scenario text grammar,
//! * [`metrics`] — per-broadcast metrics (coverage, energy, forwardings,
//!   broadcast time) that form the objectives of the tuning problem.
//!
//! The simulator is deterministic: the same [`sim::SimConfig`] and seed
//! always produce the same trajectory, which the paper relies on ("these 10
//! networks are always the same for evaluating every solution").

pub mod analysis;
pub mod events;
pub mod geometry;
pub mod grid;
pub mod metrics;
pub mod mobility;
pub mod neighbor;
pub mod protocol;
pub mod radio;
pub mod shard;
pub mod sim;
pub mod snapshot;
pub mod sweep;
pub mod trace;
pub mod world;

pub use geometry::Vec2;
pub use grid::GridStats;
pub use metrics::BroadcastMetrics;
pub use protocol::{Protocol, ProtocolApi};
pub use radio::{dbm_to_mw, mw_to_dbm, PathLoss, RadioConfig, SHADOW_TAIL_SIGMAS};
pub use shard::ShardPool;
pub use sim::{DeliveryMode, NodeId, SimConfig, Simulator, GRID_BUCKET_SLACK_M};
pub use sweep::{DeliverySweep, SweepStats, SWEEP_WIDTH};
pub use world::{DenseScenario, GroupPlacement, NodeGroup, WorldSpec};
