//! Radio propagation: dBm arithmetic and path-loss models.
//!
//! The paper evaluates AEDB with ns-3; we reproduce ns-3's default
//! wide-area propagation setup: **log-distance path loss** with exponent
//! 3.0 and reference loss 46.6777 dB at 1 m (the `LogDistancePropagation-
//! LossModel` defaults), a default transmit power of 16.02 dBm (Table II)
//! and an energy-detection threshold of −96 dBm. With those numbers the
//! default-power radio range is ≈ 139 m — a sensible one-hop radius inside
//! the 500 m field.

use serde::{Deserialize, Serialize};

/// Converts a power in dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts a power in milliwatts to dBm. `mw` must be positive.
pub fn mw_to_dbm(mw: f64) -> f64 {
    debug_assert!(mw > 0.0, "mw_to_dbm needs positive power, got {mw}");
    10.0 * mw.log10()
}

/// A distance-dependent path-loss model (loss in dB, distance in metres).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PathLoss {
    /// `PL(d) = PL₀ + 10·n·log₁₀(d/d₀)` — ns-3's default model.
    LogDistance {
        /// Path-loss exponent `n` (ns-3 default 3.0).
        exponent: f64,
        /// Loss at the reference distance (dB; ns-3 default 46.6777).
        reference_loss_db: f64,
        /// Reference distance `d₀` (m; ns-3 default 1.0).
        reference_distance: f64,
    },
    /// Free-space Friis loss at the given frequency.
    Friis {
        /// Carrier frequency in Hz (e.g. 2.4e9).
        frequency_hz: f64,
    },
    /// Two-ray ground-reflection model with antenna heights `h` (m);
    /// falls back to Friis below the crossover distance.
    TwoRayGround {
        /// Carrier frequency in Hz.
        frequency_hz: f64,
        /// Antenna height above ground (m), both ends.
        antenna_height: f64,
    },
}

impl PathLoss {
    /// ns-3 default log-distance model (exponent 3, 46.6777 dB @ 1 m).
    pub fn ns3_default() -> Self {
        PathLoss::LogDistance {
            exponent: 3.0,
            reference_loss_db: 46.6777,
            reference_distance: 1.0,
        }
    }

    /// Path loss in dB at distance `d` metres. Distances below 1 mm are
    /// clamped (colocated nodes would otherwise yield −∞).
    pub fn loss_db(self, d: f64) -> f64 {
        let d = d.max(1e-3);
        match self {
            PathLoss::LogDistance {
                exponent,
                reference_loss_db,
                reference_distance,
            } => {
                if d <= reference_distance {
                    reference_loss_db
                } else {
                    reference_loss_db + 10.0 * exponent * (d / reference_distance).log10()
                }
            }
            PathLoss::Friis { frequency_hz } => {
                let lambda = 299_792_458.0 / frequency_hz;
                let ratio = 4.0 * std::f64::consts::PI * d / lambda;
                20.0 * ratio.log10()
            }
            PathLoss::TwoRayGround {
                frequency_hz,
                antenna_height,
            } => {
                let lambda = 299_792_458.0 / frequency_hz;
                let crossover =
                    4.0 * std::f64::consts::PI * antenna_height * antenna_height / lambda;
                if d < crossover {
                    PathLoss::Friis { frequency_hz }.loss_db(d)
                } else {
                    // PL = 40 log d − 20 log(h_t h_r)
                    40.0 * d.log10() - 20.0 * (antenna_height * antenna_height).log10()
                }
            }
        }
    }

    /// Received power (dBm) for a transmission at `tx_dbm` over `d` metres.
    pub fn rx_dbm(self, tx_dbm: f64, d: f64) -> f64 {
        tx_dbm - self.loss_db(d)
    }

    /// The distance at which a transmission at `tx_dbm` is received at
    /// exactly `rx_dbm` (the radio range for that threshold). Inverse of
    /// [`rx_dbm`](PathLoss::rx_dbm); only exact for monotone models
    /// (all provided models are monotone).
    pub fn range_for(self, tx_dbm: f64, rx_dbm: f64) -> f64 {
        let loss = tx_dbm - rx_dbm;
        match self {
            PathLoss::LogDistance {
                exponent,
                reference_loss_db,
                reference_distance,
            } => {
                if loss <= reference_loss_db {
                    reference_distance
                } else {
                    reference_distance * 10f64.powf((loss - reference_loss_db) / (10.0 * exponent))
                }
            }
            PathLoss::Friis { frequency_hz } => {
                let lambda = 299_792_458.0 / frequency_hz;
                lambda / (4.0 * std::f64::consts::PI) * 10f64.powf(loss / 20.0)
            }
            PathLoss::TwoRayGround { .. } => {
                // invert numerically by bisection (model is monotone)
                let (mut lo, mut hi) = (1e-3, 1e7);
                for _ in 0..200 {
                    let mid = 0.5 * (lo + hi);
                    if self.loss_db(mid) < loss {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                0.5 * (lo + hi)
            }
        }
    }

    /// The transmit power (dBm) needed for the receiver at distance `d` to
    /// see `rx_dbm`.
    pub fn tx_for(self, rx_dbm: f64, d: f64) -> f64 {
        rx_dbm + self.loss_db(d)
    }

    /// Squared-distance bounds `(lo², hi²)` for the **log-free** receive
    /// test of a transmission at `tx_dbm` against `threshold_dbm`:
    ///
    /// * `d² ≤ lo²` ⟹ `rx_dbm(tx_dbm, d) ≥ threshold_dbm` (certainly
    ///   above threshold),
    /// * `d² > hi²` ⟹ `rx_dbm(tx_dbm, d) < threshold_dbm` (certainly
    ///   below),
    /// * `lo² < d² ≤ hi²` ⟹ undetermined: evaluate the exact dB-domain
    ///   comparison (the band is [`THRESHOLD_BAND`]-thin, so this is
    ///   essentially never taken).
    ///
    /// When no distance satisfies the threshold (the link budget is below
    /// the model's close-in plateau) both bounds are negative, so every
    /// `d² ≥ 0` takes the certainly-below branch. Precomputing this once
    /// per transmission replaces the per-candidate `log10` of the receive
    /// test with a squared-distance compare whose classification is
    /// identical to the dB-domain test.
    pub fn threshold_band_sq(self, tx_dbm: f64, threshold_dbm: f64) -> (f64, f64) {
        // The dB test at d = 0 decides the degenerate cases: models clamp
        // the close-in loss (log-distance plateaus below the reference
        // distance, everything clamps below 1 mm), so a budget below the
        // plateau loss decodes nowhere even though `range_for` still
        // returns its reference distance.
        if self.rx_dbm(tx_dbm, 0.0) < threshold_dbm {
            return (-1.0, -1.0);
        }
        let d = self.range_for(tx_dbm, threshold_dbm);
        let lo = (d * (1.0 - THRESHOLD_BAND) - THRESHOLD_BAND).max(0.0);
        let hi = d * (1.0 + THRESHOLD_BAND) + THRESHOLD_BAND;
        (lo * lo, hi * hi)
    }
}

/// Physical-layer configuration shared by all nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioConfig {
    /// Path-loss model.
    pub path_loss: PathLoss,
    /// Default transmit power (Table II: 16.02 dBm).
    pub default_tx_dbm: f64,
    /// Minimum received power for successful decoding (−96 dBm, the ns-3
    /// Wi-Fi energy-detection default).
    pub rx_sensitivity_dbm: f64,
    /// Capture threshold: a frame survives interference when it is at
    /// least this many dB above the sum of interfering frames.
    pub capture_db: f64,
    /// On-air duration of a beacon frame (s).
    pub beacon_duration: f64,
    /// On-air duration of a broadcast data frame (s).
    pub data_duration: f64,
    /// Standard deviation of static per-link log-normal shadowing (dB);
    /// `0` disables it (the paper's setup — ns-3's default log-distance
    /// model has no shadowing — but real deployments see 4–8 dB).
    pub shadowing_sigma_db: f64,
}

/// Upper truncation point of the shadowing distribution, in standard
/// deviations — the **bounded tail** that gives shadowed radio links a
/// finite maximum range.
///
/// # The bounded-tail error budget
///
/// An untruncated log-normal shadowing term makes the radio range
/// unbounded: any receiver, however far, could in principle see a large
/// enough shadowing *gain* to decode the frame, so a spatial index has no
/// finite disc to query and the simulator used to fall back to the naive
/// all-nodes scan whenever `shadowing_sigma_db > 0`.
///
/// Truncating the per-link gain at `+SHADOW_TAIL_SIGMAS · σ` restores a
/// hard range bound: a frame sent at `tx_dbm` is decodable only within
/// `range_for(tx_dbm + SHADOW_TAIL_SIGMAS·σ, sensitivity)`. The modelling
/// error is the clipped upper tail of the Gaussian, whose mass is
/// `P(Z > 4) ≈ 3.17 × 10⁻⁵` (see [`shadow_tail_error_budget`] for the
/// asserted analytic bound): about one link in 30 000 has its shadowing
/// gain reduced, and only links that additionally sit in the narrow
/// distance band where that extra gain decides decodability behave
/// differently from the untruncated model. Losses (negative shadowing) are
/// untouched — only the gain tail needs bounding, and a one-sided clip
/// keeps the deep-fade behaviour of the model intact.
///
/// Because the clip is applied inside [`link_shadowing_db`] itself, every
/// delivery path — incremental grid, horizon-rebuild grid and naive scan —
/// sees the *same* bounded-tail propagation model and remains bit-identical
/// to the others, shadowed or not.
pub const SHADOW_TAIL_SIGMAS: f64 = 4.0;

/// Interference is only accumulated from frames arriving within this many
/// dB *below* the receiver sensitivity — energy fainter than that cannot
/// tip the capture comparison at simulation precision (the historical
/// `o_rx >= sensitivity − 10` test in the delivery loop). The optimised
/// delivery path turns the same floor into a per-transmission *gating
/// radius* ([`RadioConfig::interference_floor_range`]) so provably
/// irrelevant interferers are skipped by a squared-distance compare
/// instead of a `log10`.
pub const INTERFERENCE_FLOOR_DB: f64 = 10.0;

/// Relative half-width of the uncertainty band around a precomputed
/// decode-threshold distance (see [`PathLoss::threshold_band_sq`]).
///
/// The log-free receive test classifies a candidate by comparing its
/// squared distance against a precomputed threshold instead of evaluating
/// the dB-domain `rx_dbm ≥ sensitivity` comparison (a `log10`) per
/// candidate. Floating-point `log10`/`powf` round, so the distance-domain
/// and dB-domain comparisons could in principle disagree within a few ulps
/// of the exact threshold. The band makes that impossible by construction:
/// distances within `±BAND` (relative, plus `BAND` absolute for
/// threshold-at-zero cases) of the inverted threshold fall back to the
/// exact dB comparison, and only distances *outside* the band use the fast
/// compare. `1e-9` relative is ~10⁷ ulps — astronomically wider than the
/// ≤ few-ulp wobble of `log10`/`powf` — while still vanishingly thin
/// physically (nanometres at radio ranges), so the fallback is essentially
/// never taken. Boundary proptests in the property suite pin the
/// classification equivalence at randomly sampled near-threshold
/// distances.
pub const THRESHOLD_BAND: f64 = 1e-9;

/// Analytic upper bound on the probability mass clipped by the
/// [`SHADOW_TAIL_SIGMAS`] truncation: the Mills-ratio bound
/// `P(Z > t) ≤ φ(t)/t` with `t = SHADOW_TAIL_SIGMAS`.
///
/// With `t = 4` this evaluates to ≈ 3.35 × 10⁻⁵ (the exact tail mass is
/// ≈ 3.17 × 10⁻⁵); tests assert the budget stays below `3.5 × 10⁻⁵` and
/// that the empirical clip rate of the link-shadowing hash matches it.
pub fn shadow_tail_error_budget() -> f64 {
    let t = SHADOW_TAIL_SIGMAS;
    let phi = (-0.5 * t * t).exp() / (2.0 * std::f64::consts::PI).sqrt();
    phi / t
}

/// Deterministic static shadowing of the link `{a, b}`: a zero-mean
/// Gaussian (Box–Muller over a hash of the unordered pair and the
/// simulation seed) scaled by `sigma_db`, with the gain tail truncated at
/// `+`[`SHADOW_TAIL_SIGMAS`]` · sigma_db` so shadowed links have a finite
/// maximum range (see the constant's docs for the error budget). Symmetric
/// and reproducible — the same link sees the same shadowing for the whole
/// simulation, which is the standard quasi-static model.
pub fn link_shadowing_db(sigma_db: f64, seed: u64, a: usize, b: usize) -> f64 {
    if sigma_db <= 0.0 {
        return 0.0;
    }
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15u64;
    for v in [lo as u64, hi as u64] {
        h ^= v
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(h << 6)
            .wrapping_add(h >> 2);
        h = splitmix64(h);
    }
    let u1 = (splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64;
    let u2 = (splitmix64(h ^ 0xDEAD_BEEF) >> 11) as f64 / (1u64 << 53) as f64;
    let g = (-2.0 * (u1.max(1e-300)).ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    sigma_db * g.min(SHADOW_TAIL_SIGMAS)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RadioConfig {
    /// Paper-faithful defaults: ns-3 log-distance propagation, 16.02 dBm
    /// default power, −96 dBm sensitivity, 10 dB capture, ~1 Mb/s frame
    /// timings (beacon 50 B, data 512 B).
    pub fn paper() -> Self {
        Self {
            path_loss: PathLoss::ns3_default(),
            default_tx_dbm: 16.02,
            rx_sensitivity_dbm: -96.0,
            capture_db: 10.0,
            beacon_duration: 50.0 * 8.0 / 1.0e6,
            data_duration: 512.0 * 8.0 / 1.0e6,
            shadowing_sigma_db: 0.0,
        }
    }

    /// Radio range (m) at the default transmit power.
    pub fn default_range(&self) -> f64 {
        self.path_loss
            .range_for(self.default_tx_dbm, self.rx_sensitivity_dbm)
    }

    /// The maximum possible shadowing *gain* (dB) under the bounded-tail
    /// model: [`SHADOW_TAIL_SIGMAS`]` · shadowing_sigma_db` (0 when
    /// shadowing is disabled).
    pub fn max_shadow_gain_db(&self) -> f64 {
        if self.shadowing_sigma_db > 0.0 {
            SHADOW_TAIL_SIGMAS * self.shadowing_sigma_db
        } else {
            0.0
        }
    }

    /// The hard upper bound on the distance at which a frame sent at
    /// `tx_dbm` can be decoded, **including** the bounded shadowing tail —
    /// the finite query radius that lets shadowed scenarios use the
    /// spatial grid instead of the naive all-nodes scan.
    pub fn max_decode_range(&self, tx_dbm: f64) -> f64 {
        self.path_loss
            .range_for(tx_dbm + self.max_shadow_gain_db(), self.rx_sensitivity_dbm)
    }

    /// The hard upper bound on the distance at which a frame sent at
    /// `tx_dbm` can still register above the interference floor
    /// (`sensitivity − `[`INTERFERENCE_FLOOR_DB`]), including the bounded
    /// shadowing tail. Beyond this distance a frame's received power is
    /// provably below the floor, so the delivery loop's interference sum
    /// is bit-identical whether the frame is evaluated or skipped.
    pub fn interference_floor_range(&self, tx_dbm: f64) -> f64 {
        self.path_loss.range_for(
            tx_dbm + self.max_shadow_gain_db(),
            self.rx_sensitivity_dbm - INTERFERENCE_FLOOR_DB,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_mw_round_trip() {
        for dbm in [-96.0, -30.0, 0.0, 16.02, 30.0] {
            let mw = dbm_to_mw(dbm);
            assert!((mw_to_dbm(mw) - dbm).abs() < 1e-9);
        }
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(10.0) - 10.0).abs() < 1e-12);
        assert!((dbm_to_mw(-10.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn log_distance_reference_point() {
        let m = PathLoss::ns3_default();
        assert!((m.loss_db(1.0) - 46.6777).abs() < 1e-9);
        // +30 dB per decade with exponent 3
        assert!((m.loss_db(10.0) - 76.6777).abs() < 1e-9);
        assert!((m.loss_db(100.0) - 106.6777).abs() < 1e-9);
    }

    #[test]
    fn log_distance_monotone() {
        let m = PathLoss::ns3_default();
        let mut prev = m.loss_db(0.5);
        for i in 1..200 {
            let d = i as f64;
            let l = m.loss_db(d);
            assert!(l >= prev - 1e-12);
            prev = l;
        }
    }

    #[test]
    fn paper_range_is_reasonable() {
        let r = RadioConfig::paper();
        let range = r.default_range();
        // 16.02 + 96 = 112.02 dB budget; 46.6777 + 30 log10(d) = 112.02
        // => d = 10^(65.34/30) ≈ 150 m
        assert!((130.0..170.0).contains(&range), "range = {range}");
    }

    #[test]
    fn range_for_inverts_rx_dbm() {
        let m = PathLoss::ns3_default();
        let d = m.range_for(16.02, -80.0);
        assert!((m.rx_dbm(16.02, d) - -80.0).abs() < 1e-9);
    }

    #[test]
    fn tx_for_inverts_rx() {
        let m = PathLoss::ns3_default();
        let tx = m.tx_for(-96.0, 75.0);
        assert!((m.rx_dbm(tx, 75.0) - -96.0).abs() < 1e-9);
    }

    #[test]
    fn friis_known_value() {
        // 2.4 GHz, 100 m: FSPL ≈ 80.1 dB
        let m = PathLoss::Friis {
            frequency_hz: 2.4e9,
        };
        assert!(
            (m.loss_db(100.0) - 80.1).abs() < 0.2,
            "{}",
            m.loss_db(100.0)
        );
        let d = m.range_for(0.0, -80.1);
        assert!((d - 100.0).abs() < 2.0);
    }

    #[test]
    fn two_ray_reduces_to_friis_close_in() {
        let tr = PathLoss::TwoRayGround {
            frequency_hz: 2.4e9,
            antenna_height: 1.5,
        };
        let fr = PathLoss::Friis {
            frequency_hz: 2.4e9,
        };
        assert_eq!(tr.loss_db(10.0), fr.loss_db(10.0));
        // far away: 40 dB/decade slope
        let l1 = tr.loss_db(1000.0);
        let l2 = tr.loss_db(10_000.0);
        assert!((l2 - l1 - 40.0).abs() < 1e-9);
    }

    #[test]
    fn two_ray_range_inversion() {
        let tr = PathLoss::TwoRayGround {
            frequency_hz: 2.4e9,
            antenna_height: 1.5,
        };
        let d = tr.range_for(16.0, -90.0);
        assert!((tr.rx_dbm(16.0, d) - -90.0).abs() < 1e-6);
    }

    #[test]
    fn threshold_band_classifies_like_the_db_test() {
        // The log-free receive test's contract: outside the band, the
        // squared-distance compare and the dB-domain compare must agree.
        for model in [
            PathLoss::ns3_default(),
            PathLoss::Friis {
                frequency_hz: 2.4e9,
            },
            PathLoss::TwoRayGround {
                frequency_hz: 2.4e9,
                antenna_height: 1.5,
            },
        ] {
            for (tx, thr) in [(16.02, -96.0), (0.0, -80.0), (10.0, -106.0)] {
                let (lo2, hi2) = model.threshold_band_sq(tx, thr);
                let d_star = model.range_for(tx, thr);
                for k in 1..200 {
                    let d = d_star * (k as f64 / 100.0);
                    let d2 = d * d;
                    let db_says = model.rx_dbm(tx, d) >= thr;
                    if d2 <= lo2 {
                        assert!(db_says, "lo bound unsound at d={d} ({model:?})");
                    } else if d2 > hi2 {
                        assert!(!db_says, "hi bound unsound at d={d} ({model:?})");
                    }
                }
                // exactly at the inverted threshold we must be in-band or
                // classified consistently
                let d2 = d_star * d_star;
                if d2 > hi2 {
                    assert!(model.rx_dbm(tx, d_star) < thr);
                } else if d2 <= lo2 {
                    assert!(model.rx_dbm(tx, d_star) >= thr);
                }
            }
        }
    }

    #[test]
    fn threshold_band_handles_undecodable_budget() {
        // Link budget below the close-in plateau: nothing decodes, both
        // bounds are negative so every distance takes the fast "below"
        // branch — matching the dB test at any d, including 0.
        let m = PathLoss::ns3_default();
        // 46.6777 dB reference loss: a -50 dB budget decodes nowhere
        let (lo2, hi2) = m.threshold_band_sq(-10.0, -50.0);
        assert!(lo2 < 0.0 && hi2 < 0.0);
        assert!(m.rx_dbm(-10.0, 0.0) < -50.0);
        assert!(m.rx_dbm(-10.0, 1e-6) < -50.0);
        // budget exactly at the plateau: the plateau distances decode
        let thr = 16.02 - 46.6777;
        let (lo2, _) = m.threshold_band_sq(16.02, thr);
        assert!(lo2 > 0.0, "plateau-exact budget must decode close in");
        assert!(m.rx_dbm(16.02, 0.5) >= thr);
    }

    #[test]
    fn shadowing_zero_sigma_is_zero() {
        assert_eq!(link_shadowing_db(0.0, 42, 1, 2), 0.0);
    }

    #[test]
    fn shadowing_symmetric_and_deterministic() {
        let a = link_shadowing_db(6.0, 42, 3, 9);
        let b = link_shadowing_db(6.0, 42, 9, 3);
        assert_eq!(a, b);
        assert_eq!(a, link_shadowing_db(6.0, 42, 3, 9));
        // different seed or link gives (almost surely) a different value
        assert_ne!(a, link_shadowing_db(6.0, 43, 3, 9));
        assert_ne!(a, link_shadowing_db(6.0, 42, 3, 10));
    }

    #[test]
    fn shadowing_distribution_plausible() {
        let sigma = 6.0;
        let n = 2000;
        let samples: Vec<f64> = (0..n)
            .map(|i| link_shadowing_db(sigma, 7, i, i + 1))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.5, "mean = {mean}");
        assert!((var.sqrt() - sigma).abs() < 0.5, "std = {}", var.sqrt());
    }

    #[test]
    fn shadow_tail_budget_is_asserted() {
        // The documented bounded-tail error budget: the Mills-ratio bound
        // on the clipped Gaussian mass must stay below 3.5e-5, and the
        // empirical clip rate of the link-shadowing hash must respect it
        // (sampling slack: 3x the bound over 2e6 links).
        let budget = shadow_tail_error_budget();
        assert!(budget < 3.5e-5, "budget = {budget}");
        assert!(budget > 3.0e-5, "Mills bound should be tight: {budget}");
        let sigma = 6.0;
        let n: usize = 2_000_000;
        let max = SHADOW_TAIL_SIGMAS * sigma;
        let mut clipped = 0u64;
        for i in 0..n {
            let s = link_shadowing_db(sigma, 11, i, i + n);
            assert!(s <= max + 1e-12, "gain {s} exceeds bounded tail {max}");
            if s >= max - 1e-12 {
                clipped += 1;
            }
        }
        let rate = clipped as f64 / n as f64;
        assert!(rate <= 3.0 * budget, "clip rate {rate} vs budget {budget}");
        assert!(clipped > 0, "a 2e6-link sample should clip a few links");
    }

    #[test]
    fn max_decode_range_bounds_shadowed_links() {
        let mut r = RadioConfig::paper();
        assert_eq!(r.max_shadow_gain_db(), 0.0);
        assert_eq!(r.max_decode_range(r.default_tx_dbm), r.default_range());
        r.shadowing_sigma_db = 4.0;
        assert_eq!(r.max_shadow_gain_db(), 16.0);
        let bound = r.max_decode_range(r.default_tx_dbm);
        assert!(bound > r.default_range());
        // No link can decode beyond the bound: even the maximum clipped
        // gain leaves the received power exactly at sensitivity there.
        let rx_at_bound = r.path_loss.rx_dbm(r.default_tx_dbm, bound) + r.max_shadow_gain_db();
        assert!((rx_at_bound - r.rx_sensitivity_dbm).abs() < 1e-9);
    }

    #[test]
    fn colocated_nodes_do_not_blow_up() {
        let m = PathLoss::ns3_default();
        assert!(m.loss_db(0.0).is_finite());
        assert!(m.rx_dbm(16.0, 0.0).is_finite());
    }
}
