//! A uniform spatial grid over the simulation [`Field`] used to answer
//! "which nodes can possibly hear this transmission?" without scanning all
//! `n` nodes.
//!
//! The grid buckets node positions into square cells whose edge is the
//! **maximum radio range** (the distance at which a frame sent at the
//! default/maximum power fades to the receiver sensitivity). A delivery
//! query for a transmission at power `tx_dbm` then only has to visit the
//! cells overlapping a disc of radius `range(tx_dbm) ≤ cell` around the
//! sender — at most a 3 × 3 block — instead of the whole field.
//!
//! Two design points keep the index *exact* (bit-identical to a full
//! scan, which `tests/determinism.rs` asserts):
//!
//! 1. The grid is a **conservative pre-filter**: candidates still undergo
//!    the precise received-power test, so a few extra candidates cost a
//!    little time but can never change the outcome. The query radius is
//!    inflated by a small epsilon so floating-point rounding at the range
//!    boundary cannot exclude a node the exact test would accept.
//! 2. Node positions move between rebuilds, so queries add a **staleness
//!    margin** `v_max · (t_query − t_build)`: a node's true position can
//!    drift at most that far from its bucketed position. This lets the
//!    simulator rebuild the grid on a coarse time horizon (amortising the
//!    O(n) rebuild over many queries) while staying exact.

use crate::geometry::{Field, Vec2};

/// Bucketed node positions with linked-list cells (no per-query
/// allocation; rebuilds reuse every buffer).
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    /// Cell edge length (m).
    cell: f64,
    /// Number of cell columns.
    cols: usize,
    /// Number of cell rows.
    rows: usize,
    /// Head node index per cell (`usize::MAX` = empty).
    heads: Vec<usize>,
    /// Next node index in the same cell (`usize::MAX` = end).
    next: Vec<usize>,
    /// Node positions captured at the last rebuild.
    pos: Vec<Vec2>,
    /// Simulation time of the last rebuild.
    built_at: f64,
}

const NONE: usize = usize::MAX;

impl SpatialGrid {
    /// Creates a grid for `field` with the given cell edge (m), typically
    /// the maximum radio range. Buffers start empty; call
    /// [`rebuild`](Self::rebuild) before querying.
    pub fn new(field: Field, cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell edge must be positive");
        let cols = (field.width / cell).ceil().max(1.0) as usize;
        let rows = (field.height / cell).ceil().max(1.0) as usize;
        Self {
            cell,
            cols,
            rows,
            heads: vec![NONE; cols * rows],
            next: Vec::new(),
            pos: Vec::new(),
            built_at: f64::NEG_INFINITY,
        }
    }

    /// Cell edge length (m).
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Simulation time of the last rebuild (`-inf` before the first).
    pub fn built_at(&self) -> f64 {
        self.built_at
    }

    fn cell_of(&self, p: Vec2) -> usize {
        // Positions are inside the field; clamp anyway so a boundary value
        // (x == width) maps to the last column.
        let cx = ((p.x / self.cell) as usize).min(self.cols - 1);
        let cy = ((p.y / self.cell) as usize).min(self.rows - 1);
        cy * self.cols + cx
    }

    /// Re-buckets all `n` nodes using `position(i)` sampled at time `t`.
    /// Reuses every internal buffer; O(cells + n).
    pub fn rebuild<F: FnMut(usize) -> Vec2>(&mut self, n: usize, t: f64, mut position: F) {
        self.heads.fill(NONE);
        self.next.clear();
        self.next.resize(n, NONE);
        self.pos.clear();
        for i in 0..n {
            let p = position(i);
            self.pos.push(p);
            let c = self.cell_of(p);
            self.next[i] = self.heads[c];
            self.heads[c] = i;
        }
        self.built_at = t;
    }

    /// Pushes into `out` every node whose **bucketed** position lies within
    /// `radius` of `center` (conservative: callers must re-check candidates
    /// against exact, current positions). `out` is appended to, unsorted.
    pub fn candidates_within(&self, center: Vec2, radius: f64, out: &mut Vec<usize>) {
        let r2 = radius * radius;
        let inv = 1.0 / self.cell;
        let cx0 = (((center.x - radius) * inv).floor().max(0.0)) as usize;
        let cy0 = (((center.y - radius) * inv).floor().max(0.0)) as usize;
        let cx1 = (((center.x + radius) * inv).floor())
            .min(self.cols as f64 - 1.0)
            .max(0.0) as usize;
        let cy1 = (((center.y + radius) * inv).floor())
            .min(self.rows as f64 - 1.0)
            .max(0.0) as usize;
        for cy in cy0..=cy1 {
            // Closest approach of this cell row to the centre.
            let row_lo = cy as f64 * self.cell;
            let dy = (center.y - (center.y.clamp(row_lo, row_lo + self.cell))).abs();
            for cx in cx0..=cx1 {
                let col_lo = cx as f64 * self.cell;
                let dx = (center.x - (center.x.clamp(col_lo, col_lo + self.cell))).abs();
                if dx * dx + dy * dy > r2 {
                    continue; // cell entirely outside the disc
                }
                let mut i = self.heads[cy * self.cols + cx];
                while i != NONE {
                    if self.pos[i].distance_sq(center) <= r2 {
                        out.push(i);
                    }
                    i = self.next[i];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(pts: &[Vec2], center: Vec2, radius: f64) -> Vec<usize> {
        let mut v: Vec<usize> = (0..pts.len())
            .filter(|&i| pts[i].distance_sq(center) <= radius * radius)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_brute_force_scan() {
        let field = Field::new(500.0, 500.0);
        let mut grid = SpatialGrid::new(field, 140.0);
        // Deterministic pseudo-random points.
        let mut x: u64 = 0x1234_5678_9ABC_DEF0;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Vec2> = (0..200)
            .map(|_| Vec2::new(step() * 500.0, step() * 500.0))
            .collect();
        grid.rebuild(pts.len(), 0.0, |i| pts[i]);
        for &(cx, cy, r) in &[
            (250.0, 250.0, 139.0),
            (0.0, 0.0, 100.0),
            (499.0, 10.0, 139.9),
            (250.0, 0.0, 50.0),
        ] {
            let center = Vec2::new(cx, cy);
            let mut got = Vec::new();
            grid.candidates_within(center, r, &mut got);
            got.sort_unstable();
            assert_eq!(got, brute_force(&pts, center, r), "query ({cx},{cy}) r={r}");
        }
    }

    #[test]
    fn rebuild_reuses_buffers_and_updates_positions() {
        let field = Field::new(100.0, 100.0);
        let mut grid = SpatialGrid::new(field, 50.0);
        grid.rebuild(2, 0.0, |i| Vec2::new(10.0 + i as f64, 10.0));
        let mut out = Vec::new();
        grid.candidates_within(Vec2::new(10.0, 10.0), 5.0, &mut out);
        assert_eq!(out.len(), 2);
        // Move both nodes far away; the grid must reflect the new state.
        grid.rebuild(2, 1.0, |_| Vec2::new(90.0, 90.0));
        out.clear();
        grid.candidates_within(Vec2::new(10.0, 10.0), 5.0, &mut out);
        assert!(out.is_empty());
        assert_eq!(grid.built_at(), 1.0);
        out.clear();
        grid.candidates_within(Vec2::new(90.0, 90.0), 5.0, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn boundary_positions_bucket_into_last_cells() {
        let field = Field::new(100.0, 100.0);
        let mut grid = SpatialGrid::new(field, 30.0); // 4x4 cells, ragged edge
        grid.rebuild(1, 0.0, |_| Vec2::new(100.0, 100.0));
        let mut out = Vec::new();
        grid.candidates_within(Vec2::new(99.0, 99.0), 2.0, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn query_disc_larger_than_field_sees_everyone() {
        let field = Field::new(50.0, 50.0);
        let mut grid = SpatialGrid::new(field, 60.0); // single cell
        grid.rebuild(5, 0.0, |i| Vec2::new(i as f64 * 10.0, 25.0));
        let mut out = Vec::new();
        grid.candidates_within(Vec2::new(25.0, 25.0), 1_000.0, &mut out);
        assert_eq!(out.len(), 5);
    }
}
