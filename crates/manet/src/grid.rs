//! A uniform spatial grid over the simulation [`Field`] used to answer
//! "which nodes can possibly hear this transmission?" without scanning all
//! `n` nodes.
//!
//! The grid buckets node positions into square cells whose edge is the
//! **maximum radio range** (the distance at which a frame sent at the
//! default/maximum power fades to the receiver sensitivity). A delivery
//! query for a transmission at power `tx_dbm` then only has to visit the
//! cells overlapping a disc of radius `range(tx_dbm) ≤ cell` around the
//! sender — at most a 3 × 3 block — instead of the whole field. Shadowed
//! scenarios query a larger disc (the bounded-tail decode range, see
//! [`crate::radio::SHADOW_TAIL_SIGMAS`]) spanning more cells, but still a
//! constant-area neighbourhood instead of the whole field.
//!
//! # Two maintenance disciplines
//!
//! The grid supports both of the simulator's delivery paths (see
//! [`crate::sim::DeliveryMode`]):
//!
//! 1. **Horizon rebuild** (the historical scheme): [`rebuild`] re-buckets
//!    all `n` nodes on a coarse time horizon, and queries add a *staleness
//!    margin* `v_max · (t_query − t_build)` to the radius because node
//!    positions drift between rebuilds. O(n) per horizon lapse regardless
//!    of how little anything moved.
//! 2. **Incremental** (event-driven): each cell is a compact array of
//!    member ids (push to insert, swap-remove to delete) so
//!    [`update_node`] moves one node between cells in O(1). The simulator
//!    drives these updates from per-node *cell-crossing events*: a node at
//!    distance `d` from its cell boundary moving at speed `s` cannot change
//!    cell before `d / s`, so a refresh scheduled then keeps every bucket
//!    exact (up to a tiny Zeno floor, compensated in the query radius) at a
//!    total cost proportional to the number of actual cell crossings —
//!    O(active set), not O(n · horizons).
//!
//! Both disciplines are *conservative pre-filters*: candidates still
//! undergo the precise received-power test, so extra candidates cost a
//! little time but can never change the outcome, and the query radius is
//! inflated by a small epsilon so floating-point rounding at the range
//! boundary cannot exclude a node the exact test would accept. This is
//! what makes all delivery paths bit-identical (asserted by
//! `tests/determinism.rs` and the property suite).

use crate::geometry::{Field, Vec2};

/// The uniform cell decomposition of a [`Field`]: edge length plus the
/// column/row counts it induces. Shared by the node-position
/// [`SpatialGrid`] and the spatialised in-flight-frame window
/// ([`crate::events::SpatialActiveWindow`]), which bucket different things
/// (nodes vs transmissions) over the same kind of geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellGeometry {
    /// Cell edge length (m).
    cell: f64,
    /// Number of cell columns.
    cols: usize,
    /// Number of cell rows.
    rows: usize,
}

impl CellGeometry {
    /// Decomposes `field` into square cells of the given edge (m).
    pub fn new(field: Field, cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite(), "cell edge must be positive");
        Self {
            cell,
            cols: (field.width / cell).ceil().max(1.0) as usize,
            rows: (field.height / cell).ceil().max(1.0) as usize,
        }
    }

    /// Cell edge length (m).
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Total number of cells.
    pub fn n_cells(&self) -> usize {
        self.cols * self.rows
    }

    /// Index of the cell containing `p`. Positions are expected inside the
    /// field; boundary values (x == width) clamp to the last column/row.
    pub fn cell_of(&self, p: Vec2) -> usize {
        let cx = ((p.x / self.cell) as usize).min(self.cols - 1);
        let cy = ((p.y / self.cell) as usize).min(self.rows - 1);
        cy * self.cols + cx
    }

    /// Number of cell columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Which of `shards` contiguous column stripes owns the cell column
    /// containing `p`.
    ///
    /// Stripes partition the columns `0..cols` into `shards` contiguous,
    /// monotone ranges (`col * shards / cols`, clamped), so every position
    /// has exactly one owner and neighbouring columns land in the same or
    /// adjacent stripes. The sharded delivery path
    /// ([`crate::sim::Simulator::set_delivery_shards`]) assigns each queued
    /// transmission to the stripe of its *sender*; the query itself reads
    /// whatever cells its disc overlaps (the stripe's halo), so stripe
    /// boundaries never constrain which receivers a query can reach.
    pub fn stripe_of(&self, p: Vec2, shards: usize) -> usize {
        debug_assert!(shards >= 1, "stripe_of requires at least one shard");
        let cx = ((p.x / self.cell) as usize).min(self.cols - 1);
        (cx * shards / self.cols).min(shards - 1)
    }

    /// Distance (m) from `p` to the nearest boundary of the cell that
    /// contains it — the incremental refresh scheduler divides this by the
    /// node's speed bound to find the earliest possible cell crossing.
    pub fn boundary_distance(&self, p: Vec2) -> f64 {
        let cx = ((p.x / self.cell) as usize).min(self.cols - 1) as f64;
        let cy = ((p.y / self.cell) as usize).min(self.rows - 1) as f64;
        let dx = (p.x - cx * self.cell).min((cx + 1.0) * self.cell - p.x);
        let dy = (p.y - cy * self.cell).min((cy + 1.0) * self.cell - p.y);
        dx.min(dy).max(0.0)
    }

    /// Calls `visit(cell_index)` for every cell overlapping the disc of
    /// `radius` around `center` (cells whose closest point to `center`
    /// exceeds the radius are skipped).
    #[inline]
    pub fn for_each_cell_in_disc<F: FnMut(usize)>(&self, center: Vec2, radius: f64, mut visit: F) {
        let r2 = radius * radius;
        let inv = 1.0 / self.cell;
        let cx0 = (((center.x - radius) * inv).floor().max(0.0)) as usize;
        let cy0 = (((center.y - radius) * inv).floor().max(0.0)) as usize;
        let cx1 = (((center.x + radius) * inv).floor())
            .min(self.cols as f64 - 1.0)
            .max(0.0) as usize;
        let cy1 = (((center.y + radius) * inv).floor())
            .min(self.rows as f64 - 1.0)
            .max(0.0) as usize;
        for cy in cy0..=cy1 {
            // Closest approach of this cell row to the centre.
            let row_lo = cy as f64 * self.cell;
            let dy = (center.y - (center.y.clamp(row_lo, row_lo + self.cell))).abs();
            for cx in cx0..=cx1 {
                let col_lo = cx as f64 * self.cell;
                let dx = (center.x - (center.x.clamp(col_lo, col_lo + self.cell))).abs();
                if dx * dx + dy * dy > r2 {
                    continue; // cell entirely outside the disc
                }
                visit(cy * self.cols + cx);
            }
        }
    }
}

/// Maintenance-cost counters of a [`SpatialGrid`] — the measurable half of
/// the "incremental beats horizon-rebuild" claim. A bucket *op* is one
/// membership write: a rebuild costs `n` ops, an incremental node move
/// costs 2 (swap-remove from the old cell + push into the new one).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GridStats {
    /// Linked-list writes performed so far.
    pub bucket_ops: u64,
    /// Full [`SpatialGrid::rebuild`] passes performed so far.
    pub rebuilds: u64,
    /// Incremental cell transitions applied by [`SpatialGrid::update_node`].
    pub node_moves: u64,
}

/// Bucketed node positions with contiguous per-cell member arrays (no
/// per-query allocation; rebuilds reuse every buffer, incremental updates
/// are O(1) via swap-remove + push).
///
/// Earlier revisions threaded an intrusive doubly-linked list through
/// per-node `next`/`prev` arrays. That made `update_node` O(1) too, but a
/// *query* then chased one pointer per member (head + `next[]` walk), each
/// landing on an unrelated cache line — the dominant cost of the delivery
/// query's gather phase once the arithmetic was batched (see
/// [`crate::sweep`]). Compact buckets keep a cell's member ids adjacent
/// (4 bytes each), so walking a typical 2–3-member cell touches one line
/// after the bucket header instead of three or four.
///
/// Within-cell visit order is **unspecified** (swap-remove perturbs it):
/// every consumer either sorts the gathered candidates or — like the
/// batched sweep — produces output whose order is independent of gather
/// order, so this is not observable in any delivery outcome.
#[derive(Debug, Clone)]
pub struct SpatialGrid {
    /// Cell decomposition of the field.
    geom: CellGeometry,
    /// Member node ids per cell, contiguous, in unspecified order.
    buckets: Vec<Vec<u32>>,
    /// Index of each node within its cell's bucket.
    slot: Vec<u32>,
    /// Cell index each node is currently bucketed in.
    cell_idx: Vec<usize>,
    /// Node positions captured at the last rebuild/update.
    pos: Vec<Vec2>,
    /// Simulation time of the last rebuild.
    built_at: f64,
    /// Maintenance counters.
    stats: GridStats,
}

const NONE: usize = usize::MAX;

impl SpatialGrid {
    /// Creates a grid for `field` with the given cell edge (m), typically
    /// the maximum radio range. Buffers start empty; call
    /// [`rebuild`](Self::rebuild) before querying.
    pub fn new(field: Field, cell: f64) -> Self {
        let geom = CellGeometry::new(field, cell);
        Self {
            geom,
            buckets: vec![Vec::new(); geom.n_cells()],
            slot: Vec::new(),
            cell_idx: Vec::new(),
            pos: Vec::new(),
            built_at: f64::NEG_INFINITY,
            stats: GridStats::default(),
        }
    }

    /// Cell edge length (m).
    pub fn cell_size(&self) -> f64 {
        self.geom.cell_size()
    }

    /// The grid's cell decomposition of the field.
    pub fn geometry(&self) -> CellGeometry {
        self.geom
    }

    /// Simulation time of the last rebuild (`-inf` before the first).
    pub fn built_at(&self) -> f64 {
        self.built_at
    }

    /// Maintenance counters accumulated since the last
    /// [`reset_stats`](Self::reset_stats).
    pub fn stats(&self) -> GridStats {
        self.stats
    }

    /// Zeroes the maintenance counters.
    pub fn reset_stats(&mut self) {
        self.stats = GridStats::default();
    }

    fn cell_of(&self, p: Vec2) -> usize {
        self.geom.cell_of(p)
    }

    /// Distance (m) from `p` to the nearest boundary of the cell that
    /// contains it (see [`CellGeometry::boundary_distance`]).
    pub fn boundary_distance(&self, p: Vec2) -> f64 {
        self.geom.boundary_distance(p)
    }

    fn link(&mut self, i: usize, c: usize) {
        let bucket = &mut self.buckets[c];
        self.slot[i] = bucket.len() as u32;
        bucket.push(i as u32);
        self.cell_idx[i] = c;
        self.stats.bucket_ops += 1;
    }

    fn unlink(&mut self, i: usize) {
        let s = self.slot[i] as usize;
        let bucket = &mut self.buckets[self.cell_idx[i]];
        bucket.swap_remove(s);
        // The former last member now occupies slot `s` (if any remained).
        if let Some(&moved) = bucket.get(s) {
            self.slot[moved as usize] = s as u32;
        }
        self.stats.bucket_ops += 1;
    }

    /// Re-buckets all `n` nodes using `position(i)` sampled at time `t`.
    /// Reuses every internal buffer; O(cells + n).
    pub fn rebuild<F: FnMut(usize) -> Vec2>(&mut self, n: usize, t: f64, mut position: F) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.slot.clear();
        self.slot.resize(n, u32::MAX);
        self.cell_idx.clear();
        self.cell_idx.resize(n, NONE);
        self.pos.clear();
        for i in 0..n {
            let p = position(i);
            self.pos.push(p);
            let c = self.cell_of(p);
            self.link(i, c);
        }
        self.built_at = t;
        self.stats.rebuilds += 1;
    }

    /// Moves node `i` (already bucketed by a previous
    /// [`rebuild`](Self::rebuild)) to the cell containing `p` in O(1) and
    /// records `p` as its latest known position. Returns whether the node
    /// actually changed cell.
    pub fn update_node(&mut self, i: usize, p: Vec2) -> bool {
        self.pos[i] = p;
        let c = self.cell_of(p);
        if c == self.cell_idx[i] {
            return false;
        }
        self.unlink(i);
        self.link(i, c);
        self.stats.node_moves += 1;
        true
    }

    /// Pushes into `out` every node whose **bucketed** position lies within
    /// `radius` of `center` (conservative: callers must re-check candidates
    /// against exact, current positions). `out` is appended to, unsorted.
    pub fn candidates_within(&self, center: Vec2, radius: f64, out: &mut Vec<usize>) {
        self.visit_cells(center, radius, |grid, cell| {
            let r2 = radius * radius;
            for &i in &grid.buckets[cell] {
                let i = i as usize;
                if grid.pos[i].distance_sq(center) <= r2 {
                    out.push(i);
                }
            }
        });
    }

    /// Pushes into `out` every node bucketed in a cell overlapping the disc
    /// of `radius` around `center`, with **no** per-node distance filter —
    /// the query used by the incremental discipline, where buckets are
    /// exact but stored positions may be older than the bucket (a node is
    /// re-bucketed when it crosses a cell boundary, not when it moves
    /// within its cell). `out` is appended to, unsorted.
    pub fn cells_within(&self, center: Vec2, radius: f64, out: &mut Vec<usize>) {
        self.for_each_in_cells(center, radius, |i| out.push(i));
    }

    /// Calls `f(node)` for every node bucketed in a cell overlapping the
    /// disc of `radius` around `center` — [`cells_within`](Self::cells_within)
    /// without the intermediate id list, so the delivery query can filter
    /// candidates as it walks the cell buckets instead of materialising and
    /// re-traversing them. Visit order (cell-major, bucket order within a
    /// cell) is identical to `cells_within`.
    #[inline]
    pub fn for_each_in_cells<F: FnMut(usize)>(&self, center: Vec2, radius: f64, mut f: F) {
        self.visit_cells(center, radius, |grid, cell| {
            for &i in &grid.buckets[cell] {
                f(i as usize);
            }
        });
    }

    /// Whether `cell` currently buckets no nodes — lets the batched sweep
    /// skip empty cells before touching any bound or bucket state.
    #[inline]
    pub fn cell_is_empty(&self, cell: usize) -> bool {
        self.buckets[cell].is_empty()
    }

    /// The member ids bucketed in `cell`, contiguous, in unspecified
    /// order — the same order [`for_each_in_cells`](Self::for_each_in_cells)
    /// walks the cell, so a caller enumerating cells via
    /// [`CellGeometry::for_each_cell_in_disc`] and members via this slice
    /// reproduces the disc query's exact visit order. Exposing the slice
    /// (rather than only a callback walk) lets the batched sweep prefetch
    /// a bucket's data line before it needs the members.
    #[inline]
    pub fn bucket(&self, cell: usize) -> &[u32] {
        &self.buckets[cell]
    }

    /// Hints the CPU to start loading `cell`'s bucket *header* (length +
    /// data pointer) without reading it. A delivery query touches a couple
    /// of dozen cells whose headers scatter across a multi-hundred-KiB
    /// array; issuing these hints one pass ahead of the
    /// [`bucket`](Self::bucket) calls takes the header loads off the
    /// gather's critical path. No observable effect beyond cache state.
    #[inline]
    pub fn prefetch_bucket(&self, cell: usize) {
        let p: *const Vec<u32> = &self.buckets[cell];
        #[cfg(target_arch = "x86_64")]
        // SAFETY: prefetch is side-effect-free and architecturally valid
        // for any address.
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(p.cast::<i8>(), _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = p;
    }

    /// Calls `f(node)` for every node bucketed in `cell`, in
    /// [`bucket`](Self::bucket) order.
    #[inline]
    pub fn for_each_in_cell<F: FnMut(usize)>(&self, cell: usize, mut f: F) {
        for &i in &self.buckets[cell] {
            f(i as usize);
        }
    }

    /// The cell node `i` is currently bucketed in (the invalidation hook
    /// of the sweep's event-horizon cache needs the *destination* cell of
    /// a node move).
    #[inline]
    pub fn node_cell(&self, i: usize) -> usize {
        self.cell_idx[i]
    }

    /// Number of nodes bucketed by the last [`rebuild`](Self::rebuild) —
    /// every id in every [`bucket`](Self::bucket) is below this.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.pos.len()
    }

    /// Visits every cell overlapping the disc (`center`, `radius`).
    fn visit_cells<F: FnMut(&Self, usize)>(&self, center: Vec2, radius: f64, mut visit: F) {
        let geom = self.geom;
        geom.for_each_cell_in_disc(center, radius, |cell| visit(self, cell));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripes_partition_columns_contiguously() {
        let geom = CellGeometry::new(Field::new(2300.0, 900.0), 100.0);
        for shards in [1usize, 2, 3, 7, 23, 64] {
            let mut last = 0usize;
            let mut seen_cols = 0usize;
            for cx in 0..geom.cols() {
                let p = Vec2::new((cx as f64 + 0.5) * geom.cell_size(), 10.0);
                let s = geom.stripe_of(p, shards);
                assert!(s < shards, "stripe index within range");
                assert!(s >= last, "stripes are monotone in the column index");
                if shards <= geom.cols() {
                    // With at most one shard per column, owned stripes
                    // are contiguous; more shards than columns leaves
                    // some shards column-less (indices may skip).
                    assert!(s - last <= 1, "stripes are contiguous (no gaps)");
                }
                last = s;
                seen_cols += 1;
            }
            assert_eq!(seen_cols, geom.cols());
            // More shards than columns still covers every column with a
            // single unambiguous owner.
            if shards <= geom.cols() {
                assert_eq!(last, shards - 1, "every stripe owns at least a column");
            }
        }
        // Boundary clamp: x == width lands in the last column's stripe.
        let p = Vec2::new(2300.0, 0.0);
        assert_eq!(geom.stripe_of(p, 4), 3);
    }

    fn brute_force(pts: &[Vec2], center: Vec2, radius: f64) -> Vec<usize> {
        let mut v: Vec<usize> = (0..pts.len())
            .filter(|&i| pts[i].distance_sq(center) <= radius * radius)
            .collect();
        v.sort_unstable();
        v
    }

    fn pseudo_points(n: usize, side: f64) -> Vec<Vec2> {
        let mut x: u64 = 0x1234_5678_9ABC_DEF0;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| Vec2::new(step() * side, step() * side))
            .collect()
    }

    #[test]
    fn matches_brute_force_scan() {
        let field = Field::new(500.0, 500.0);
        let mut grid = SpatialGrid::new(field, 140.0);
        let pts = pseudo_points(200, 500.0);
        grid.rebuild(pts.len(), 0.0, |i| pts[i]);
        for &(cx, cy, r) in &[
            (250.0, 250.0, 139.0),
            (0.0, 0.0, 100.0),
            (499.0, 10.0, 139.9),
            (250.0, 0.0, 50.0),
        ] {
            let center = Vec2::new(cx, cy);
            let mut got = Vec::new();
            grid.candidates_within(center, r, &mut got);
            got.sort_unstable();
            assert_eq!(got, brute_force(&pts, center, r), "query ({cx},{cy}) r={r}");
            // the unfiltered cell query must be a superset
            let mut cells = Vec::new();
            grid.cells_within(center, r, &mut cells);
            for hit in brute_force(&pts, center, r) {
                assert!(cells.contains(&hit), "cells_within missed {hit}");
            }
        }
    }

    #[test]
    fn rebuild_reuses_buffers_and_updates_positions() {
        let field = Field::new(100.0, 100.0);
        let mut grid = SpatialGrid::new(field, 50.0);
        grid.rebuild(2, 0.0, |i| Vec2::new(10.0 + i as f64, 10.0));
        let mut out = Vec::new();
        grid.candidates_within(Vec2::new(10.0, 10.0), 5.0, &mut out);
        assert_eq!(out.len(), 2);
        // Move both nodes far away; the grid must reflect the new state.
        grid.rebuild(2, 1.0, |_| Vec2::new(90.0, 90.0));
        out.clear();
        grid.candidates_within(Vec2::new(10.0, 10.0), 5.0, &mut out);
        assert!(out.is_empty());
        assert_eq!(grid.built_at(), 1.0);
        out.clear();
        grid.candidates_within(Vec2::new(90.0, 90.0), 5.0, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn incremental_updates_match_rebuild() {
        // Random walks applied via update_node must leave the grid in the
        // same queryable state as a from-scratch rebuild at every step.
        let field = Field::new(300.0, 300.0);
        let mut inc = SpatialGrid::new(field, 70.0);
        let mut pts = pseudo_points(120, 300.0);
        inc.rebuild(pts.len(), 0.0, |i| pts[i]);
        let mut x: u64 = 0xDEAD_BEEF_1234_5678;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for round in 0..20 {
            for (i, p) in pts.iter_mut().enumerate() {
                p.x = (p.x + step() * 120.0).clamp(0.0, 300.0);
                p.y = (p.y + step() * 120.0).clamp(0.0, 300.0);
                inc.update_node(i, *p);
            }
            let mut reference = SpatialGrid::new(field, 70.0);
            reference.rebuild(pts.len(), 0.0, |i| pts[i]);
            for &(cx, cy, r) in &[(150.0, 150.0, 69.0), (10.0, 290.0, 50.0)] {
                let center = Vec2::new(cx, cy);
                let (mut a, mut b) = (Vec::new(), Vec::new());
                inc.candidates_within(center, r, &mut a);
                reference.candidates_within(center, r, &mut b);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "round {round} query ({cx},{cy})");
            }
        }
        let stats = inc.stats();
        assert!(stats.node_moves > 0, "walks this large must cross cells");
        assert_eq!(stats.rebuilds, 1, "only the initial placement rebuilds");
    }

    #[test]
    fn update_node_within_cell_is_free() {
        let field = Field::new(100.0, 100.0);
        let mut grid = SpatialGrid::new(field, 50.0);
        grid.rebuild(1, 0.0, |_| Vec2::new(10.0, 10.0));
        let ops0 = grid.stats().bucket_ops;
        assert!(!grid.update_node(0, Vec2::new(12.0, 11.0)));
        assert_eq!(grid.stats().bucket_ops, ops0, "same-cell move costs 0 ops");
        assert!(grid.update_node(0, Vec2::new(80.0, 10.0)));
        assert_eq!(grid.stats().bucket_ops, ops0 + 2, "move = unlink + link");
        assert_eq!(grid.stats().node_moves, 1);
    }

    #[test]
    fn boundary_distance_is_a_crossing_lower_bound() {
        let field = Field::new(100.0, 100.0);
        let grid = SpatialGrid::new(field, 30.0);
        // interior of cell (1,1): 15 m from the nearest edge at (45,45)
        assert!((grid.boundary_distance(Vec2::new(45.0, 45.0)) - 15.0).abs() < 1e-9);
        // right on an edge
        assert_eq!(grid.boundary_distance(Vec2::new(60.0, 45.0)), 0.0);
        // clamped last cell (ragged edge): still non-negative
        assert!(grid.boundary_distance(Vec2::new(99.9, 99.9)) >= 0.0);
    }

    #[test]
    fn boundary_positions_bucket_into_last_cells() {
        let field = Field::new(100.0, 100.0);
        let mut grid = SpatialGrid::new(field, 30.0); // 4x4 cells, ragged edge
        grid.rebuild(1, 0.0, |_| Vec2::new(100.0, 100.0));
        let mut out = Vec::new();
        grid.candidates_within(Vec2::new(99.0, 99.0), 2.0, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn cell_geometry_disc_visits_match_grid_queries() {
        // The extracted CellGeometry must enumerate exactly the cells the
        // grid's own disc walk visits (the frame window reuses it).
        let field = Field::new(500.0, 300.0);
        let geom = CellGeometry::new(field, 70.0);
        assert_eq!(geom.n_cells(), 8 * 5);
        // every point maps into a valid cell, boundary included
        for p in [
            Vec2::new(0.0, 0.0),
            Vec2::new(500.0, 300.0),
            Vec2::new(69.999, 70.001),
            Vec2::new(499.0, 0.0),
        ] {
            assert!(geom.cell_of(p) < geom.n_cells());
        }
        // disc visits: brute-force over all cells via their corner boxes
        for &(cx, cy, r) in &[
            (250.0, 150.0, 69.0),
            (0.0, 0.0, 150.0),
            (499.0, 299.0, 40.0),
        ] {
            let center = Vec2::new(cx, cy);
            let mut got = Vec::new();
            geom.for_each_cell_in_disc(center, r, |c| got.push(c));
            // any cell containing a point within r must be visited
            for gx in 0..100 {
                for gy in 0..60 {
                    let p = Vec2::new(gx as f64 * 5.0, gy as f64 * 5.0);
                    if field.contains(p) && p.distance(center) <= r {
                        assert!(
                            got.contains(&geom.cell_of(p)),
                            "cell of {p:?} missed for disc ({cx},{cy},{r})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn query_disc_larger_than_field_sees_everyone() {
        let field = Field::new(50.0, 50.0);
        let mut grid = SpatialGrid::new(field, 60.0); // single cell
        grid.rebuild(5, 0.0, |i| Vec2::new(i as f64 * 10.0, 25.0));
        let mut out = Vec::new();
        grid.candidates_within(Vec2::new(25.0, 25.0), 1_000.0, &mut out);
        assert_eq!(out.len(), 5);
    }
}
