//! The discrete-event simulator: beaconing, mobility, half-duplex radios
//! with a capture-based collision model, protocol timers and metric
//! collection.
//!
//! One [`Simulator`] run reproduces the paper's evaluation protocol
//! (Table II): nodes are placed uniformly in the field, move under random
//! walk and exchange beacons from `t = 0`; the broadcast starts at
//! `t = 30 s` and the simulation ends at `t = 40 s`.
//!
//! Scenarios are described declaratively by a
//! [`WorldSpec`](crate::world::WorldSpec) — possibly **heterogeneous**:
//! several node groups with their own mobility model, placement, speed
//! range and transmit-power class — and compile into the engine through
//! [`Simulator::from_world`]; the flat [`SimConfig`] is a single-group
//! adapter kept for the paper's homogeneous setups.
//!
//! ## Performance architecture — the incremental simulation core
//!
//! Delivery resolution — "who hears this frame?" — is the inner loop of
//! the whole reproduction (every candidate evaluation simulates 10
//! networks). The mechanisms that keep it fast:
//!
//! * a [`SpatialGrid`] over the field (cell = half the maximum radio
//!   range, see [`GRID_CELL_DIVISOR`]) limits each query to the cells
//!   overlapping the transmission's range disc. The default
//!   [`DeliveryMode::Incremental`] discipline keeps the grid exact
//!   through **event-driven cell transitions**: every node schedules a
//!   refresh at the earliest time it could cross its current cell
//!   boundary (`distance-to-edge / segment-speed`), and each refresh
//!   moves the node between cell lists in O(1). Total maintenance is
//!   proportional to actual cell crossings — orders of magnitude less
//!   work than the [`DeliveryMode::HorizonRebuild`] baseline, which
//!   re-buckets all `n` nodes every [`GRID_REBUILD_HORIZON`] seconds.
//! * the **SoA kinematic snapshot** ([`crate::snapshot`]): flat per-node
//!   lanes of every mobility segment (origin, velocity/displacement,
//!   start, arrival), refreshed in O(1) from the same mobility-change
//!   events that re-anchor the grid schedule. The incremental delivery
//!   query walks grid cells *directly* into a filter over these lanes
//!   (no intermediate id list, no per-candidate `dyn Mobility` dispatch)
//!   and hands each survivor's exact position and squared distance
//!   straight to the outcome test, whose arithmetic is bit-identical to
//!   the historical per-receiver path.
//! * a **log-free receive test**: each transmission precomputes
//!   squared-distance decode thresholds (the dB-domain `rx ≥ sensitivity`
//!   comparison reproduced exactly at precompute time, see
//!   [`crate::radio::PathLoss::threshold_band_sq`]), so the unshadowed
//!   decode test is a `d²` compare against the snapshot lanes with no
//!   `log10` per candidate; the received power of a decodable candidate
//!   is deferred until a delivery or capture comparison needs its value.
//!   Interferers likewise carry precomputed floor/gating radii
//!   ([`crate::radio::INTERFERENCE_FLOOR_DB`], shadowing tail included),
//!   so provably irrelevant terms are skipped by a squared-distance
//!   compare — the sums are unchanged because skipped terms contribute
//!   exactly zero. Shadowed links keep the dB-domain test but share one
//!   shadowing draw per (transmitter, receiver) pair across a frame's
//!   outcome evaluations.
//! * the `recent`-transmission log became an O(active-set)
//!   [`ActiveWindow`] (per-duration lanes pruned as transmissions expire),
//!   **spatialised** for the incremental query as a
//!   [`crate::events::SpatialActiveWindow`]: in-flight frames are
//!   bucketed by grid cell, a query gathers only the frames near its
//!   receivers (O(nearby), not O(active set) per receiver) and replays
//!   them in insertion order, so interference sums stay bit-identical to
//!   the historical flat scan.
//! * shadowed scenarios (`shadowing_sigma_db > 0`) no longer fall back to
//!   the naive O(n) receiver scan: the per-link shadowing gain is
//!   truncated at `+4σ` ([`crate::radio::SHADOW_TAIL_SIGMAS`], with an
//!   asserted error budget), which gives every transmission the finite
//!   decode range [`crate::radio::RadioConfig::max_decode_range`] the grid
//!   needs.
//! * **space-sharded delivery resolution**
//!   ([`Simulator::set_delivery_shards`]): the grid's columns are split
//!   into contiguous stripes, beacon-delivery queries are batched and
//!   each stripe's worker runs the full filter → decode →
//!   interference/capture pipeline for the queries whose transmitter it
//!   owns, reading the grid/snapshot/active-window shared and read-only;
//!   outcomes are merged back in original event order, so reports stay
//!   **bit-identical at every shard count** (asserted against the naive
//!   oracle by `tests/determinism.rs` and the property suite).
//!
//! Every mode is a conservative pre-filter followed by the exact
//! received-power test, so all three produce **bit-identical**
//! [`SimReport`]s (asserted by `tests/determinism.rs` and the property
//! suite); [`Simulator::set_delivery_mode`] keeps the non-default paths
//! reachable for parity tests and benchmarks — [`DeliveryMode::Naive`]
//! and [`DeliveryMode::HorizonRebuild`] deliberately keep their
//! *historical* code paths (virtual mobility dispatch, ungated
//! interference loop) so they stay honest baselines for the measured
//! speedups. [`Simulator::set_query_profiling`] splits query wall time
//! into candidate-filter vs receive-outcome phases
//! ([`QueryProfile`]), the breakdown `exp_scale` records per
//! `BENCH_scale.json` row.
//!
//! The simulator is also **reusable**: [`Simulator::reset`] re-arms every
//! pre-allocated structure (event queue, active window, neighbour tables,
//! mobility states, delivery scratch buffers) for a new configuration
//! without per-run heap churn — batched evaluation runs thousands of
//! simulations per optimizer generation.

use crate::events::{ActiveWindow, EventQueue, SpatialActiveWindow};
use crate::geometry::{Field, Vec2};
use crate::grid::{CellGeometry, GridStats, SpatialGrid};
use crate::metrics::{BroadcastMetrics, SimCounters};
use crate::mobility::{
    AnyMobility, Mobility, MobilityModel, RandomWalk, RandomWaypoint, Stationary,
};
use crate::neighbor::{NeighborEntry, NeighborTable};
use crate::protocol::{Protocol, ProtocolApi};
use crate::radio::{dbm_to_mw, RadioConfig, INTERFERENCE_FLOOR_DB};
use crate::shard::ShardPool;
use crate::snapshot::KinematicSnapshot;
use crate::sweep::{DeliverySweep, SweepStats};
use crate::world::{GroupPlacement, WorldSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Node identifier: an index in `0..n_nodes`.
pub type NodeId = usize;

/// Seconds between spatial-grid rebuilds in
/// [`DeliveryMode::HorizonRebuild`]: node positions bucketed up to this
/// long ago are still usable because queries inflate their radius by
/// `v_max · staleness` (≤ 2 m at the paper's 2 m/s).
const GRID_REBUILD_HORIZON: f64 = 1.0;

/// Relative + absolute inflation of the query radius guarding against
/// floating-point rounding at the exact range boundary.
const RANGE_EPSILON: f64 = 1e-6;

/// Scheduling floor of the incremental grid refresh (metres): a node's
/// next refresh fires after `max(distance-to-cell-edge, SLACK) / speed`
/// seconds. The floor prevents a Zeno cascade of refreshes while a node
/// rides a cell boundary; in exchange a bucket may lag the node's true
/// cell by up to `SLACK` metres, which every incremental query compensates
/// by inflating its radius by the same constant. 0.1 m against ~139 m
/// cells costs nothing and keeps worst-case refresh rates at
/// `speed / SLACK` ≈ 20 events/s only while a node hugs an edge.
///
/// Public so external harnesses modelling the incremental query (the
/// criterion filter benches) inflate their radius by the *same* constant
/// instead of a hard-coded copy that could drift.
pub const GRID_BUCKET_SLACK_M: f64 = 0.1;

/// How node buckets in the spatial grid are maintained and queried when
/// resolving deliveries. All modes are bit-identical in their results (the
/// grid is a conservative pre-filter before the exact received-power
/// test); they differ only in maintenance cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeliveryMode {
    /// Event-driven incremental maintenance (the default): per-node
    /// cell-crossing refreshes applied in O(1), maintenance proportional
    /// to actual cell transitions.
    #[default]
    Incremental,
    /// The historical scheme: full O(n) re-bucketing every
    /// [`GRID_REBUILD_HORIZON`] seconds, queries inflated by a staleness
    /// margin. Kept as the baseline the incremental path is measured
    /// against.
    HorizonRebuild,
    /// Exact O(n) scan of every node per transmission — the reference
    /// implementation for parity tests and benchmarks.
    Naive,
}

/// Complete flat configuration of one *homogeneous* simulation run — the
/// paper's shape: one mobility model, one speed range, one power class.
///
/// Internally the engine speaks the declarative
/// [`WorldSpec`](crate::world::WorldSpec); `SimConfig` is a thin adapter
/// over it ([`SimConfig::to_world`] lifts it into a single-group spec with
/// identical RNG draw order, so the conversion is bit-exact).
/// Heterogeneous scenarios — several node groups with their own mobility,
/// placement and transmit-power class — are built with
/// [`WorldSpec::builder`](crate::world::WorldSpec::builder) and run through
/// [`Simulator::from_world`].
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The simulation field.
    pub field: Field,
    /// Number of devices.
    pub n_nodes: usize,
    /// Node speed range (m/s); Table II: `[0, 2]`.
    pub speed_range: (f64, f64),
    /// Mobility model; Table II: random walk, re-draw every 20 s.
    pub mobility: MobilityModel,
    /// Physical layer.
    pub radio: RadioConfig,
    /// Beacon (hello) period in seconds; the paper's AEDB uses 1 s.
    pub beacon_interval: f64,
    /// Neighbour entries older than this many seconds are considered gone.
    pub neighbor_expiry: f64,
    /// Time the broadcast starts (warm-up before it); Table II: 30 s.
    pub broadcast_time: f64,
    /// End of the simulation; Table II: 40 s.
    pub end_time: f64,
    /// The broadcasting source node.
    pub source: NodeId,
    /// RNG seed — fixing it fixes the *network*: placement, mobility and
    /// beacon phases are all derived from it.
    pub seed: u64,
    /// How initial node positions are chosen.
    pub placement: Placement,
}

/// Initial node placement.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// Uniformly random in the field (the paper's setup).
    UniformRandom,
    /// Explicit positions (deterministic topologies for tests/examples);
    /// must provide exactly `n_nodes` points inside the field.
    Explicit(Vec<Vec2>),
}

impl SimConfig {
    /// The paper's scenario (Table II) for a given node count and seed.
    /// Node counts for the three densities on the 500 m × 500 m field:
    /// 25 (100 dev/km²), 50 (200 dev/km²), 75 (300 dev/km²).
    pub fn paper(n_nodes: usize, seed: u64) -> Self {
        Self {
            field: Field::paper(),
            n_nodes,
            speed_range: (0.0, 2.0),
            mobility: MobilityModel::RandomWalk {
                change_interval: 20.0,
            },
            radio: RadioConfig::paper(),
            beacon_interval: 1.0,
            neighbor_expiry: 2.5,
            broadcast_time: 30.0,
            end_time: 40.0,
            source: 0,
            seed,
            placement: Placement::UniformRandom,
        }
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Metrics of the broadcast dissemination.
    pub broadcast: BroadcastMetrics,
    /// Network-wide counters.
    pub counters: SimCounters,
    /// Number of nodes simulated.
    pub n_nodes: usize,
}

/// What kind of frame a transmission carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameKind {
    Beacon,
    Data,
}

/// An on-air transmission (positions frozen at its start).
#[derive(Debug, Clone, Copy)]
struct Transmission {
    sender: NodeId,
    pos: Vec2,
    tx_dbm: f64,
    start: f64,
    end: f64,
    kind: FrameKind,
    /// Squared interference gating radius: beyond this distance from
    /// `pos`, this frame's received power is provably below the
    /// interference floor (`sensitivity − `[`INTERFERENCE_FLOOR_DB`], with
    /// the bounded shadowing tail and an epsilon inflation against
    /// floating-point rounding), so the optimised delivery path skips the
    /// `log10` for it without changing any interference sum. Precomputed
    /// once per transmission.
    gate_r2: f64,
    /// Log-free decode band (`lo²`, `hi²`) of this frame's power against
    /// the receiver sensitivity ([`PathLoss::threshold_band_sq`]): in the
    /// unshadowed case the receive test becomes a squared-distance compare
    /// against these bounds, with only the hair-thin in-band sliver
    /// falling back to the exact dB comparison. Meaningless under
    /// shadowing (the per-link draw shifts the threshold), where the fused
    /// path keeps the dB-domain test.
    ///
    /// [`PathLoss::threshold_band_sq`]: crate::radio::PathLoss::threshold_band_sq
    decode_lo_r2: f64,
    decode_hi_r2: f64,
    /// Upper bound of the log-free *interference-floor* band: beyond this
    /// squared distance this frame's unshadowed received power is provably
    /// below `sensitivity − `[`INTERFERENCE_FLOOR_DB`], so the fused
    /// interference loop skips its `log10` — exactly the terms the
    /// historical loop evaluates and then discards.
    floor_hi_r2: f64,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Beacon(NodeId),
    MobilityChange(NodeId),
    TxEnd(Transmission),
    Timer {
        node: NodeId,
        tag: u64,
    },
    StartBroadcast(NodeId),
    /// Earliest possible cell crossing of `node`; stale when `gen` no
    /// longer matches (the node's mobility segment changed since).
    GridRefresh {
        node: NodeId,
        gen: u32,
    },
}

impl FrameKind {
    /// [`ActiveWindow`] lane of this duration class.
    fn lane(self) -> usize {
        match self {
            FrameKind::Beacon => 0,
            FrameKind::Data => 1,
        }
    }
}

/// Wall-time split of the delivery query, accumulated per
/// [`compute_deliveries`](World::compute_deliveries) call when profiling
/// is enabled ([`Simulator::set_query_profiling`]). The two phases are the
/// ones the query-side perf work optimises independently: candidate
/// *filtering* (grid walk + position filter + ordering) and the exact
/// per-receiver *outcome* tests (propagation, half-duplex, capture).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryProfile {
    /// Seconds spent gathering, filtering and ordering candidates.
    pub filter_s: f64,
    /// Seconds spent in exact receive-outcome tests (incl. interference).
    pub outcome_s: f64,
    /// Seconds of `outcome_s` spent resolving interference and capture
    /// (the per-decodable-receiver frame loop) — the phase the spatialised
    /// active window optimises. Only the incremental path is instrumented
    /// at this granularity; the historical baselines keep their verbatim
    /// single-loop shape, so their split stays filter/outcome only.
    pub interference_s: f64,
}

impl std::ops::AddAssign for QueryProfile {
    /// Component-wise sum — the deterministic reduction
    /// [`Simulator::query_profile`] applies over per-shard profiles.
    fn add_assign(&mut self, other: QueryProfile) {
        self.filter_s += other.filter_s;
        self.outcome_s += other.outcome_s;
        self.interference_s += other.interference_s;
    }
}

/// Simulator state visible to protocols through [`ProtocolApi`].
struct World {
    /// The compiled scenario — the engine speaks [`WorldSpec`] natively;
    /// [`SimConfig`] is a single-group adapter over it
    /// ([`SimConfig::to_world`]).
    spec: WorldSpec,
    /// Total node count (cached sum over the spec's groups).
    n_nodes: usize,
    /// Per-node transmit-power class (dBm): the group's override or the
    /// radio default — what beacons (and default-power data frames) are
    /// sent at.
    node_tx: Vec<f64>,
    /// Worst-case node speed across all groups (cached), the bound behind
    /// the horizon-rebuild staleness margin and the half-duplex reach.
    max_speed: f64,
    queue: EventQueue<Event>,
    mobility: Vec<AnyMobility>,
    tables: Vec<NeighborTable>,
    rng: SmallRng,
    /// Transmissions that can still interfere with an in-flight frame —
    /// one lane per duration class, pruned as transmissions expire. The
    /// historical delivery paths iterate this flat window verbatim.
    active: ActiveWindow<Transmission>,
    /// The same live transmissions bucketed by grid cell
    /// ([`SpatialActiveWindow`]): the incremental path gathers only the
    /// frames *near* a query's receivers, in O(nearby) instead of
    /// O(active set), then replays them in insertion order so every
    /// interference sum stays bit-identical to the flat scan. Maintained
    /// in lockstep with `active` (same insertions, same prunes, same
    /// sequence numbers).
    frames: SpatialActiveWindow<Transmission>,
    metrics: BroadcastMetrics,
    counters: SimCounters,
    broadcast_started: bool,
    /// Spatial index over node positions (see module docs).
    grid: SpatialGrid,
    /// Flat SoA copy of every node's current mobility segment — the
    /// cache-friendly lanes the incremental delivery query evaluates
    /// exact positions from (bit-identical to the `mobility` structs).
    snapshot: KinematicSnapshot,
    /// Per-node refresh generation; bumped whenever a node's mobility
    /// segment changes so in-flight [`Event::GridRefresh`]s go stale.
    refresh_gen: Vec<u32>,
    /// Live (non-stale) grid-refresh events handled so far.
    refresh_events: u64,
    /// Scratch: candidate receiver ids from a grid query (historical
    /// delivery modes).
    candidate_scratch: Vec<usize>,
    /// The sequential delivery pipeline's mutable state — sweep, scratch
    /// buffers, shadow cache and profile, bundled so the sharded path can
    /// give every worker an identical private copy (see [`QueryScratch`]).
    scratch: QueryScratch,
    /// Space-sharded delivery resolution, when enabled
    /// ([`Simulator::set_delivery_shards`]); `None` keeps the sequential
    /// path byte-for-byte.
    shard: Option<Box<ShardedDelivery>>,
    /// Scratch: successful deliveries of the current frame.
    delivery_scratch: Vec<(NodeId, f64)>,
    /// Largest (ε-inflated) interference gating radius of any transmission
    /// since reset — a monotone bound on how far any live frame can
    /// matter, used to size the per-query frame gather.
    max_gate_r: f64,
    /// How far a receiver can drift from one of its *own* frames during
    /// the longest possible frame overlap — the gather disc is widened by
    /// this so half-duplex detection can never miss a receiver's own
    /// transmission.
    hd_reach: f64,
    /// `dbm_to_mw(capture_db)`, hoisted out of the per-candidate outcome
    /// test (bit-identical: same input, same `powf`).
    capture_ratio_mw: f64,
    /// Which delivery path resolves receivers (see [`DeliveryMode`]).
    mode: DeliveryMode,
    /// Whether delivery queries sample wall time into the profile.
    profile_on: bool,
}

/// The mutable per-worker state of the snapshot delivery pipeline: the
/// batched candidate sweep, the query scratch buffers, the per-receiver
/// shadowing cache and the accumulated [`QueryProfile`].
///
/// The sequential path owns one instance (`World::scratch`); the sharded
/// path gives each stripe worker its own, so the *identical* kernel
/// ([`resolve_query`]) runs with zero shared mutable state. Every field is
/// either a pure cache of a deterministic function (shadow draws, the
/// decode-radius memo) or query-local scratch, so worker-private copies
/// cannot change any outcome.
#[derive(Debug)]
struct QueryScratch {
    /// The batched candidate filter (fixed-width lane sweeps over the
    /// snapshot plus the per-cell event-horizon cache) driving the
    /// incremental delivery query — see [`crate::sweep`].
    sweep: DeliverySweep,
    /// Scratch: `(id, exact position, squared distance)` of candidates
    /// surviving the snapshot filter — the position and distance feed
    /// straight into the outcome test.
    filtered: Vec<(NodeId, Vec2, f64)>,
    /// One-entry memo of [`decode_radius`](QueryScratch::decode_radius)
    /// keyed by the transmit power's bit pattern: the radius costs a
    /// `powf` per call, every delivery query needs it, and in practice
    /// transmissions cycle through a handful of power classes.
    decode_radius_memo: (u64, f64),
    /// Scratch: candidates that passed the (log-free) decode test, with
    /// their received power (NaN = deferred: computed only if the capture
    /// comparison or a delivery actually needs it).
    decodable: Vec<(NodeId, Vec2, f64, f64)>,
    /// Scratch: `(seq, frame)` gathered from the spatial window for the
    /// current query, sorted by `seq` to replay insertion order.
    frames: Vec<(u64, Transmission)>,
    /// Per-node cache of `link_shadowing_db(·, sender, receiver)` draws
    /// for the receiver currently under evaluation: one draw per
    /// (transmitter, receiver) pair is shared across all of that
    /// transmitter's overlapping frames in the query. Keyed by a
    /// monotonically bumped epoch so invalidation is O(1). The draw is a
    /// pure hash of (σ, seed, sender, receiver), so per-worker caches are
    /// exact regardless of which worker evaluates which query.
    shadow_val: Vec<f64>,
    shadow_stamp: Vec<u64>,
    shadow_epoch: u64,
    /// Accumulated query-phase timings (zeroed on reset).
    profile: QueryProfile,
}

impl Default for QueryScratch {
    fn default() -> Self {
        QueryScratch {
            sweep: DeliverySweep::new(),
            filtered: Vec::new(),
            // `u64::MAX` is a NaN bit pattern, so a real power never
            // collides with the initial sentinel.
            decode_radius_memo: (u64::MAX, 0.0),
            decodable: Vec::new(),
            frames: Vec::new(),
            shadow_val: Vec::new(),
            shadow_stamp: Vec::new(),
            shadow_epoch: 0,
            profile: QueryProfile::default(),
        }
    }
}

impl QueryScratch {
    /// Re-arms the scratch for a world of `n_cells` grid cells and
    /// `n_nodes` nodes, keeping allocations.
    fn reset(&mut self, n_cells: usize, n_nodes: usize) {
        self.sweep.reset(n_cells, n_nodes);
        self.filtered.clear();
        self.decodable.clear();
        self.frames.clear();
        self.shadow_val.clear();
        self.shadow_val.resize(n_nodes, 0.0);
        self.shadow_stamp.clear();
        self.shadow_stamp.resize(n_nodes, 0);
        self.shadow_epoch = 0;
        self.decode_radius_memo = (u64::MAX, 0.0);
        self.profile = QueryProfile::default();
    }

    /// The finite radius within which `tx` can possibly be decoded:
    /// the bounded-tail decode range (shadowing gain truncated at `+4σ`)
    /// inflated against floating-point rounding at the exact boundary.
    fn decode_radius(&mut self, radio: &RadioConfig, tx: &Transmission) -> f64 {
        let bits = tx.tx_dbm.to_bits();
        if self.decode_radius_memo.0 == bits {
            return self.decode_radius_memo.1;
        }
        let r = radio.max_decode_range(tx.tx_dbm) * (1.0 + RANGE_EPSILON) + RANGE_EPSILON;
        self.decode_radius_memo = (bits, r);
        r
    }
}

/// The read-only inputs of a delivery query, shared by the sequential
/// path and (frozen for the duration of a flush) by every shard worker.
/// All references point into `World` state that only mutates on flush
/// boundaries: grid updates, snapshot re-anchors and frame-window
/// insertions come from events that force a flush before they dispatch
/// (beacon *starts* are the one exception, argued safe in
/// [`World::flush_sharded`]).
struct QueryCtx<'a> {
    grid: &'a SpatialGrid,
    snapshot: &'a KinematicSnapshot,
    frames: &'a SpatialActiveWindow<Transmission>,
    radio: &'a RadioConfig,
    seed: u64,
    capture_ratio_mw: f64,
    /// `max_gate_r.max(hd_reach)` — how far beyond the decode disc the
    /// frame gather must reach. Growing it between a query's event time
    /// and its deferred resolution only gathers a superset of frames,
    /// every extra one skipped by its own gate/overlap test.
    extra_reach: f64,
}

/// One worker of the sharded delivery path: a private pipeline scratch
/// plus the per-query outcome storage the merge step replays.
#[derive(Debug, Default)]
struct ShardWorker {
    scratch: QueryScratch,
    /// `(query index, first delivery, delivery count)` per owned query of
    /// the current flush, in ascending query order (each worker scans the
    /// batch in order, so its results are naturally sorted).
    results: Vec<(u32, u32, u32)>,
    /// Flat `(receiver, rx_dbm)` deliveries the `results` ranges index.
    deliveries: Vec<(NodeId, f64)>,
    /// Loss tallies of the current flush — order-free u64 sums, folded
    /// into the world counters at merge time.
    half_duplex_losses: u64,
    collision_losses: u64,
}

/// State of space-sharded delivery resolution (see
/// [`Simulator::set_delivery_shards`]): queued beacon queries, one
/// [`ShardWorker`] per stripe and the persistent thread pool.
struct ShardedDelivery {
    shards: usize,
    pool: ShardPool,
    workers: Vec<ShardWorker>,
    /// Beacon TxEnds queued since the last flush, in event order.
    pending: Vec<Transmission>,
    /// Per-worker result cursors of the merge step (reused scratch).
    cursors: Vec<usize>,
}

/// Raw base pointer to the worker array, shareable with the pool's
/// threads. Safety contract: each worker index is touched by exactly one
/// thread of a dispatch.
struct WorkerPtr(*mut ShardWorker);
unsafe impl Send for WorkerPtr {}
unsafe impl Sync for WorkerPtr {}

impl WorkerPtr {
    /// Pointer to worker `k`. A method (rather than direct field access
    /// in the dispatch closure) so the closure captures the whole `Sync`
    /// wrapper instead of the bare raw pointer field.
    fn slot(&self, k: usize) -> *mut ShardWorker {
        unsafe { self.0.add(k) }
    }
}

/// Queued sharded queries are flushed at this batch size even without a
/// boundary event: stationary worlds can go many simulated seconds
/// without one, and the batch must not grow with the run length. Flushing
/// early is always safe — a flush point merely resolves the queued
/// queries exactly as the sequential path already would have.
const SHARD_BATCH_CAP: usize = 1024;

/// Outcome of the exact per-receiver delivery test.
enum Reception {
    OutOfRange,
    HalfDuplex,
    Collided,
    Delivered(f64),
}

impl World {
    fn empty(spec: WorldSpec) -> Self {
        let max_tx = spec.max_tx_dbm();
        let grid = SpatialGrid::new(spec.field, grid_cell(&spec.radio, spec.field, max_tx));
        let frames = SpatialActiveWindow::new(
            CellGeometry::new(spec.field, frame_cell(&spec.radio, spec.field, max_tx)),
            2,
        );
        let snapshot = KinematicSnapshot::new(spec.field);
        let metrics = BroadcastMetrics::new(spec.source, spec.broadcast_time);
        let mut world = World {
            spec,
            n_nodes: 0,
            node_tx: Vec::new(),
            max_speed: 0.0,
            queue: EventQueue::new(),
            mobility: Vec::new(),
            tables: Vec::new(),
            rng: SmallRng::seed_from_u64(0),
            active: ActiveWindow::new(2),
            frames,
            metrics,
            counters: SimCounters::default(),
            broadcast_started: false,
            grid,
            snapshot,
            refresh_gen: Vec::new(),
            refresh_events: 0,
            candidate_scratch: Vec::new(),
            scratch: QueryScratch::default(),
            shard: None,
            delivery_scratch: Vec::new(),
            max_gate_r: 0.0,
            hd_reach: 0.0,
            capture_ratio_mw: 0.0,
            mode: DeliveryMode::default(),
            profile_on: false,
        };
        let spec = world.spec.clone();
        world.reset(spec);
        world
    }

    /// Re-arms the world for `spec`, reusing every allocation: the event
    /// queue, mobility states, neighbour tables, the `recent` ring, the
    /// spatial grid and the scratch buffers all keep their capacity.
    fn reset(&mut self, spec: WorldSpec) {
        if let Err(e) = spec.validate() {
            panic!("{e}");
        }
        let n_nodes = spec.n_nodes();
        let max_tx = spec.max_tx_dbm();

        let cell = grid_cell(&spec.radio, spec.field, max_tx);
        if spec.field != self.spec.field || (cell - self.grid.cell_size()).abs() > 1e-12 {
            self.grid = SpatialGrid::new(spec.field, cell);
        }
        self.grid.reset_stats();
        let fcell = frame_cell(&spec.radio, spec.field, max_tx);
        let fgeom = CellGeometry::new(spec.field, fcell);
        if fgeom != self.frames.geometry() {
            // No frames are in flight at reset, so this is a pure
            // re-decomposition (the migration path is still exercised by
            // the events-module tests).
            self.frames.reset_geometry(fgeom);
        }
        self.refresh_events = 0;

        self.queue.clear();
        self.rng = SmallRng::seed_from_u64(spec.seed);
        self.mobility.clear();
        self.node_tx.clear();
        let mut node = 0usize;
        for group in &spec.groups {
            let tx = group.tx_power_dbm.unwrap_or(spec.radio.default_tx_dbm);
            for member in 0..group.n {
                let start = match &group.placement {
                    GroupPlacement::Uniform => Vec2::new(
                        self.rng.gen_range(0.0..spec.field.width),
                        self.rng.gen_range(0.0..spec.field.height),
                    ),
                    GroupPlacement::Rect { min, max } => Vec2::new(
                        self.rng.gen_range(min.x..max.x),
                        self.rng.gen_range(min.y..max.y),
                    ),
                    GroupPlacement::Explicit(pts) => pts[member],
                };
                let m = match group.mobility {
                    MobilityModel::RandomWalk { change_interval } => {
                        AnyMobility::Walk(RandomWalk::new(
                            spec.field,
                            start,
                            group.speed_range,
                            change_interval,
                            0.0,
                            &mut self.rng,
                        ))
                    }
                    MobilityModel::RandomWaypoint { pause } => {
                        AnyMobility::Waypoint(RandomWaypoint::new(
                            spec.field,
                            start,
                            (group.speed_range.0.max(0.1), group.speed_range.1.max(0.2)),
                            pause,
                            0.0,
                            &mut self.rng,
                        ))
                    }
                    MobilityModel::Stationary => AnyMobility::Still(Stationary { pos: start }),
                };
                if m.next_change().is_finite() {
                    self.queue
                        .schedule(m.next_change(), Event::MobilityChange(node));
                }
                self.mobility.push(m);
                self.node_tx.push(tx);
                // Desynchronised beacon phases.
                let offset = self.rng.gen_range(0.0..spec.beacon_interval);
                self.queue.schedule(offset, Event::Beacon(node));
                node += 1;
            }
        }
        self.queue
            .schedule(spec.broadcast_time, Event::StartBroadcast(spec.source));

        if self.tables.len() > n_nodes {
            self.tables.truncate(n_nodes);
        }
        for t in &mut self.tables {
            t.clear();
        }
        self.tables.resize_with(n_nodes, NeighborTable::new);

        self.active.clear();
        self.frames.clear();
        self.metrics.reset(spec.source, spec.broadcast_time);
        self.counters = SimCounters::default();
        self.broadcast_started = false;
        self.candidate_scratch.clear();
        self.delivery_scratch.clear();
        self.max_gate_r = 0.0;
        // Worst-case drift between a receiver and its own frozen frame
        // position over any possible frame overlap (two full on-air
        // durations), plus a metre of slack — see `hd_reach`'s field docs.
        let max_duration = spec.radio.beacon_duration.max(spec.radio.data_duration);
        self.capture_ratio_mw = dbm_to_mw(spec.radio.capture_db);
        self.max_speed = spec.max_speed();
        self.n_nodes = n_nodes;
        self.spec = spec;
        self.hd_reach = self.max_speed * 2.0 * max_duration + 1.0;

        // Initial placement of the spatial index (the first "rebuild" of
        // either grid discipline) and of the SoA kinematic snapshot, then
        // one cell-crossing refresh per node. Refresh *scheduling* is
        // mode-independent — it depends only on mobility and cell
        // geometry — so every DeliveryMode processes an identical event
        // stream and parity comparisons are exact.
        let n = self.n_nodes;
        let mobility = &self.mobility;
        self.grid.rebuild(n, 0.0, |i| mobility[i].position(0.0));
        self.snapshot
            .rebuild(self.spec.field, mobility.iter().map(|m| m.segment()));
        let n_cells = self.grid.geometry().n_cells();
        self.scratch.reset(n_cells, n);
        if let Some(sd) = &mut self.shard {
            sd.pending.clear();
            for w in &mut sd.workers {
                w.scratch.reset(n_cells, n);
                w.results.clear();
                w.deliveries.clear();
                w.half_duplex_losses = 0;
                w.collision_losses = 0;
            }
        }
        self.refresh_gen.clear();
        self.refresh_gen.resize(n, 0);
        for node in 0..n {
            self.schedule_grid_refresh(node);
        }
    }

    /// Schedules `node`'s next grid refresh at the earliest time it could
    /// leave its current cell: `max(distance-to-edge, slack) / speed`.
    /// Over-reporting speed or under-reporting distance only fires the
    /// refresh early, so the bucket can never lag its node by more than
    /// [`GRID_BUCKET_SLACK_M`] metres.
    fn schedule_grid_refresh(&mut self, node: NodeId) {
        let now = self.queue.now();
        let speed = self.mobility[node].speed(now);
        if speed <= 0.0 {
            return; // parked until the next mobility change re-anchors it
        }
        let p = self.mobility[node].position(now);
        let dt = self.grid.boundary_distance(p).max(GRID_BUCKET_SLACK_M) / speed;
        if !dt.is_finite() {
            return;
        }
        let gen = self.refresh_gen[node];
        self.queue
            .schedule(now + dt, Event::GridRefresh { node, gen });
    }

    /// Handles a [`Event::GridRefresh`]: ignores it when stale, otherwise
    /// applies the O(1) bucket move (incremental mode only — the other
    /// modes keep their own maintenance discipline but see the same event
    /// stream) and schedules the next refresh.
    fn handle_grid_refresh(&mut self, node: NodeId, gen: u32) {
        if self.refresh_gen[node] != gen {
            return;
        }
        self.refresh_events += 1;
        if self.mode == DeliveryMode::Incremental {
            let p = self.mobility[node].position(self.queue.now());
            if self.grid.update_node(node, p) {
                // the node entered a new cell: its event-horizon bound no
                // longer covers every member
                let cell = self.grid.node_cell(node);
                self.invalidate_sweep_cell(cell);
            }
        }
        self.schedule_grid_refresh(node);
    }

    /// Re-anchors `node`'s refresh schedule after its mobility segment
    /// changed: refreshes the node's SoA snapshot lanes in O(1) (every
    /// mode — the snapshot must always mirror the mobility structs),
    /// stale-marks any in-flight refresh, re-buckets the node at its
    /// current (exact) position and schedules against the new speed.
    fn reanchor_grid_refresh(&mut self, node: NodeId) {
        self.snapshot.set(node, self.mobility[node].segment());
        self.refresh_gen[node] = self.refresh_gen[node].wrapping_add(1);
        if self.mode == DeliveryMode::Incremental {
            let p = self.mobility[node].position(self.queue.now());
            self.grid.update_node(node, p);
            // the node's speed/heading (and possibly cell) changed: the
            // cached event horizon of the cell it now occupies is stale
            let cell = self.grid.node_cell(node);
            self.invalidate_sweep_cell(cell);
        }
        self.schedule_grid_refresh(node);
    }

    /// Invalidates one cell's cached event horizon in *every* sweep: the
    /// sequential scratch plus, when sharding is active, each worker's
    /// private sweep. The callers all run on flush boundaries
    /// (mobility/refresh events force a flush first), so no batch is in
    /// flight while a bound goes stale.
    fn invalidate_sweep_cell(&mut self, cell: usize) {
        self.scratch.sweep.invalidate_cell(cell);
        if let Some(sd) = &mut self.shard {
            for w in &mut sd.workers {
                w.scratch.sweep.invalidate_cell(cell);
            }
        }
    }

    /// Invalidates every cached event horizon in every sweep (see
    /// [`invalidate_sweep_cell`](Self::invalidate_sweep_cell)).
    fn invalidate_sweep_all(&mut self) {
        self.scratch.sweep.invalidate_all();
        if let Some(sd) = &mut self.shard {
            for w in &mut sd.workers {
                w.scratch.sweep.invalidate_all();
            }
        }
    }

    fn position(&self, node: NodeId, t: f64) -> Vec2 {
        self.mobility[node].position(t)
    }

    fn start_transmission(&mut self, node: NodeId, tx_dbm: f64, kind: FrameKind) {
        let now = self.queue.now();
        let duration = match kind {
            FrameKind::Beacon => self.spec.radio.beacon_duration,
            FrameKind::Data => self.spec.radio.data_duration,
        };
        // Amortise the interference gate over every query this frame will
        // ever appear in: one `range_for` here instead of a `log10` per
        // (candidate × active frame) in the delivery loop.
        let radio = &self.spec.radio;
        let gate = radio.interference_floor_range(tx_dbm) * (1.0 + RANGE_EPSILON) + RANGE_EPSILON;
        // Log-free decode/floor bands (exact-threshold distances with the
        // dB-domain comparison reproduced at precompute time): three
        // `powf`s here buy away a `log10` per candidate×frame pair in the
        // unshadowed receive tests below.
        let (decode_lo_r2, decode_hi_r2) = radio
            .path_loss
            .threshold_band_sq(tx_dbm, radio.rx_sensitivity_dbm);
        let (_, floor_hi_r2) = radio
            .path_loss
            .threshold_band_sq(tx_dbm, radio.rx_sensitivity_dbm - INTERFERENCE_FLOOR_DB);
        let tx = Transmission {
            sender: node,
            pos: self.snapshot.position(node, now),
            tx_dbm,
            start: now,
            end: now + duration,
            kind,
            gate_r2: gate * gate,
            decode_lo_r2,
            decode_hi_r2,
            floor_hi_r2,
        };
        match kind {
            FrameKind::Beacon => self.counters.beacons_sent += 1,
            FrameKind::Data => {
                self.counters.data_sent += 1;
                self.metrics.record_transmission(node, tx_dbm);
            }
        }
        self.max_gate_r = self.max_gate_r.max(gate);
        self.active.insert(kind.lane(), tx.end, tx);
        self.frames.insert(kind.lane(), tx.end, tx.pos, tx);
        self.queue.schedule(tx.end, Event::TxEnd(tx));
    }

    /// Exact delivery test for receiver `r` under propagation, half-duplex
    /// and capture rules — shared verbatim by the grid-indexed and naive
    /// paths, which therefore cannot diverge.
    fn receive_outcome(&self, tx: &Transmission, r: NodeId) -> Reception {
        let pl = self.spec.radio.path_loss;
        let sens = self.spec.radio.rx_sensitivity_dbm;
        let capture_ratio = dbm_to_mw(self.spec.radio.capture_db);
        let sigma = self.spec.radio.shadowing_sigma_db;
        let seed = self.spec.seed;
        // Receiver position sampled at frame end (= now): frames last
        // milliseconds while nodes move at ≤ 2 m/s, so start-vs-end
        // sampling differs by millimetres — but `now` is always ahead
        // of any mobility-segment origin, keeping queries monotone.
        let rpos = self.position(r, tx.end);
        let rx_dbm = pl.rx_dbm(tx.tx_dbm, tx.pos.distance(rpos))
            + crate::radio::link_shadowing_db(sigma, seed, tx.sender, r);
        if rx_dbm < sens {
            return Reception::OutOfRange;
        }
        // Half duplex: a node that transmitted during the frame loses it.
        let mut interference_mw = 0.0;
        for o in self.active.iter() {
            if o.start >= tx.end || o.end <= tx.start {
                continue; // no overlap
            }
            if o.sender == tx.sender && o.start == tx.start && o.end == tx.end {
                continue; // the frame itself (copy in the log)
            }
            if o.sender == r {
                return Reception::HalfDuplex;
            }
            let o_rx = pl.rx_dbm(o.tx_dbm, o.pos.distance(rpos))
                + crate::radio::link_shadowing_db(sigma, seed, o.sender, r);
            if o_rx >= sens - INTERFERENCE_FLOOR_DB {
                // Only energy near the sensitivity floor matters.
                interference_mw += dbm_to_mw(o_rx);
            }
        }
        if interference_mw > 0.0 && dbm_to_mw(rx_dbm) < capture_ratio * interference_mw {
            return Reception::Collided;
        }
        Reception::Delivered(rx_dbm)
    }

    fn record_loss(&mut self, tx: &Transmission, outcome: &Reception) {
        match outcome {
            Reception::HalfDuplex => {
                self.counters.half_duplex_losses += 1;
                if tx.kind == FrameKind::Data {
                    self.metrics.collisions += 1;
                }
            }
            Reception::Collided => {
                self.counters.collision_losses += 1;
                if tx.kind == FrameKind::Data {
                    self.metrics.collisions += 1;
                }
            }
            Reception::OutOfRange | Reception::Delivered(_) => {}
        }
    }

    /// Folds a query's loss tallies (from [`resolve_query`]) into the
    /// world counters — the counting equivalent of per-receiver
    /// [`record_loss`](World::record_loss) calls: u64 sums, so applying
    /// them per receiver or in bulk is identical.
    fn apply_losses(&mut self, tx: &Transmission, half_duplex: u64, collided: u64) {
        self.counters.half_duplex_losses += half_duplex;
        self.counters.collision_losses += collided;
        if tx.kind == FrameKind::Data {
            self.metrics.collisions += (half_duplex + collided) as usize;
        }
    }

    /// Successful receivers of `tx` under propagation, half-duplex and
    /// capture rules, appended to `out` as `(node, rx_dbm)` in ascending
    /// node order. The candidate pre-filter depends on the
    /// [`DeliveryMode`]; the exact per-receiver test is shared arithmetic
    /// (see [`compute_deliveries_snapshot`]), so every mode produces
    /// identical results.
    ///
    /// [`compute_deliveries_snapshot`]: World::compute_deliveries_snapshot
    fn compute_deliveries(&mut self, tx: &Transmission, out: &mut Vec<(NodeId, f64)>) {
        let t_start = self.profile_on.then(Instant::now);
        // Transmissions that ended at or before this frame's start can no
        // longer overlap it — nor any future frame, since simulation time
        // is monotone. O(expired), so total prune work is bounded by the
        // number of transmissions. Both views of the active set are pruned
        // in lockstep.
        self.active.prune(tx.start);
        self.frames.prune(tx.start);
        if self.mode == DeliveryMode::Incremental {
            self.compute_deliveries_snapshot(tx, out, t_start);
        } else {
            self.compute_deliveries_historical(tx, out, t_start);
        }
    }

    /// The optimised delivery query (the default [`DeliveryMode`]):
    /// iterates the grid cells overlapping the decode disc directly into a
    /// filter over the SoA kinematic snapshot — no intermediate id list,
    /// no per-candidate `dyn Mobility` dispatch — then resolves outcomes
    /// in two passes whose arithmetic is bit-identical to the historical
    /// per-receiver test ([`receive_outcome`](World::receive_outcome)):
    ///
    /// 1. **decode**: unshadowed, the `rx ≥ sensitivity` comparison is a
    ///    squared-distance compare against the frame's precomputed
    ///    [`threshold band`](crate::radio::PathLoss::threshold_band_sq) —
    ///    no `log10`; the received power of a decodable candidate is
    ///    deferred until a delivery (or capture comparison) actually needs
    ///    it. Shadowed, the dB-domain test runs as before with the
    ///    per-link draw.
    /// 2. **interference**: live frames near this query are gathered
    ///    *once* from the [`SpatialActiveWindow`] (O(nearby), not
    ///    O(active set)) and replayed per decodable receiver in insertion
    ///    order, so every interference sum accumulates in exactly the
    ///    historical order. Frames beyond their own floor/gating radius
    ///    are skipped by a squared-distance compare — terms the historical
    ///    loop evaluates and then discards, so the sums cannot differ.
    ///
    /// Dropping candidates beyond the decode radius cannot change any
    /// outcome (they can neither decode nor register a loss); the filter
    /// predicate is bit-identical to the historical
    /// `position(t).distance_sq(pos) <= r²` retain. The gather disc covers
    /// every frame that could matter to any candidate: the decode radius
    /// (bounding candidate positions) plus the largest live gating radius
    /// (bounding interference reach) and the half-duplex drift bound
    /// (bounding how far a receiver's own frozen frame can sit from its
    /// current position).
    fn compute_deliveries_snapshot(
        &mut self,
        tx: &Transmission,
        out: &mut Vec<(NodeId, f64)>,
        t_start: Option<Instant>,
    ) {
        let ctx = QueryCtx {
            grid: &self.grid,
            snapshot: &self.snapshot,
            frames: &self.frames,
            radio: &self.spec.radio,
            seed: self.spec.seed,
            capture_ratio_mw: self.capture_ratio_mw,
            extra_reach: self.max_gate_r.max(self.hd_reach),
        };
        let (half_duplex, collided) = resolve_query(&ctx, &mut self.scratch, tx, t_start, out);
        self.apply_losses(tx, half_duplex, collided);
    }

    /// The historical delivery queries, kept verbatim as measured
    /// baselines: the naive all-nodes scan and the horizon-rebuild grid
    /// with its staleness margin, both resolving every candidate through
    /// the original [`receive_outcome`](World::receive_outcome) (virtual
    /// mobility dispatch, ungated interference loop).
    fn compute_deliveries_historical(
        &mut self,
        tx: &Transmission,
        out: &mut Vec<(NodeId, f64)>,
        t_start: Option<Instant>,
    ) {
        let mut candidates = std::mem::take(&mut self.candidate_scratch);
        candidates.clear();
        match self.mode {
            DeliveryMode::Naive => candidates.extend(0..self.n_nodes),
            DeliveryMode::HorizonRebuild => {
                let t = tx.end;
                if t - self.grid.built_at() > GRID_REBUILD_HORIZON {
                    let mobility = &self.mobility;
                    self.grid
                        .rebuild(self.n_nodes, t, |i| mobility[i].position(t));
                }
                // A node bucketed at the last rebuild can have drifted at
                // most v_max · staleness from its stored position.
                let staleness = (t - self.grid.built_at()).max(0.0);
                let radius =
                    self.scratch.decode_radius(&self.spec.radio, tx) + self.max_speed * staleness;
                self.grid.candidates_within(tx.pos, radius, &mut candidates);
            }
            DeliveryMode::Incremental => unreachable!("handled by the snapshot path"),
        }
        // Ascending node order: delivery order feeds protocol callbacks
        // (and their RNG draws), so every mode must match the naive scan.
        if self.mode != DeliveryMode::Naive {
            candidates.sort_unstable();
        }
        let t_mid = self.profile_on.then(Instant::now);
        for &r in &candidates {
            if r == tx.sender {
                continue;
            }
            let outcome = self.receive_outcome(tx, r);
            self.record_loss(tx, &outcome);
            if let Reception::Delivered(rx_dbm) = outcome {
                out.push((r, rx_dbm));
            }
        }
        self.candidate_scratch = candidates;
        self.record_profile(t_start, t_mid);
    }

    /// Folds one query's phase timings into the accumulated profile.
    fn record_profile(&mut self, t_start: Option<Instant>, t_mid: Option<Instant>) {
        if let (Some(start), Some(mid)) = (t_start, t_mid) {
            self.scratch.profile.filter_s += (mid - start).as_secs_f64();
            self.scratch.profile.outcome_s += mid.elapsed().as_secs_f64();
        }
    }

    /// (Re)configures space-sharded delivery resolution: `shards ≤ 1`
    /// restores the sequential path, anything larger builds (or resizes)
    /// the worker pool. Any queued batch is flushed first, so the switch
    /// is transparent to results.
    fn set_delivery_shards(&mut self, shards: usize) {
        let shards = shards.max(1);
        self.flush_sharded();
        if shards == 1 {
            self.shard = None;
            return;
        }
        if let Some(sd) = &self.shard {
            if sd.shards == shards {
                return;
            }
        }
        let n_cells = self.grid.geometry().n_cells();
        let n = self.n_nodes;
        let workers = (0..shards)
            .map(|_| {
                let mut w = ShardWorker::default();
                w.scratch.reset(n_cells, n);
                w
            })
            .collect();
        self.shard = Some(Box::new(ShardedDelivery {
            shards,
            pool: ShardPool::new(shards - 1),
            workers,
            pending: Vec::new(),
            cursors: Vec::new(),
        }));
    }

    /// Queues a beacon TxEnd for the next sharded flush instead of
    /// resolving it inline; returns whether the caller must flush now
    /// (batch cap reached). Only called when sharding is active on the
    /// incremental path.
    fn defer_beacon_txend(&mut self, tx: &Transmission) -> bool {
        let sd = self.shard.as_mut().expect("sharding checked by caller");
        sd.pending.push(*tx);
        sd.pending.len() >= SHARD_BATCH_CAP
    }

    /// Resolves every queued beacon query shard-parallel and merges the
    /// outcomes in original event order — bit-identically to dispatching
    /// each TxEnd sequentially. The correctness argument:
    ///
    /// * **Ownership**: each query is owned by the stripe of its sender's
    ///   cell column ([`CellGeometry::stripe_of`]) — a pure function of
    ///   frozen state, so the assignment is deterministic. Workers scan
    ///   the batch in order, so each worker resolves its owned queries in
    ///   ascending event order against its private [`QueryScratch`].
    /// * **Frozen inputs**: grid, snapshot and mobility only mutate on
    ///   events that force a flush before dispatching, so every worker
    ///   reads exactly the state the sequential path would have seen. The
    ///   one event processed *inside* a batch is a beacon **start**; the
    ///   frame it inserts begins at (or after) every queued query's end,
    ///   so the interference loop's overlap test skips it — and the
    ///   `max_gate_r` it may grow only widens the frame gather to a
    ///   superset whose extra frames are skipped the same way.
    /// * **Pruning**: the sequential path prunes the windows at *every*
    ///   query's start as queries are processed in end-time order, and
    ///   that progressive prune is semantics-bearing: a long data frame's
    ///   start reaches back before previously-processed beacon queries'
    ///   starts, so frames overlapping its early portion may already have
    ///   been dropped by those queries' prunes (the naive path shares the
    ///   artifact bit-for-bit — `compute_deliveries` prunes before mode
    ///   dispatch). The flush reproduces the cumulative effect exactly:
    ///   prune to the *earliest* queued start before resolving (in-batch
    ///   queries then see a superset whose expired extras their overlap
    ///   test drops — batch starts are monotone, so nothing a sequential
    ///   prune would have hidden from them survives it), and prune to the
    ///   *latest* queued start after the merge, which is the running
    ///   maximum threshold the sequential path would have left for
    ///   whatever query comes next.
    /// * **Half-duplex reach**: the gather disc includes `hd_reach`, which
    ///   bounds how far a receiver's own overlapping frame can sit from
    ///   its current position — so the set of own-frames a query can see
    ///   is identical at any gather radius at or beyond it.
    /// * **Merge**: deliveries are applied (neighbour-table observes,
    ///   counters) by replaying the batch in event order, each query
    ///   stamped with its own `tx.end` — exactly the clock the sequential
    ///   dispatch would have observed. Loss tallies are u64 sums, so
    ///   per-worker accumulation cannot reorder anything observable.
    ///
    /// Queries never touch the RNG, and shadowing draws are pure hashes,
    /// so no stochastic state is involved at all.
    fn flush_sharded(&mut self) {
        let Some(sd) = &self.shard else { return };
        let Some(first) = sd.pending.first() else {
            return;
        };
        // Prune both views of the active set to the earliest queued
        // query's start (see the doc comment above).
        let t0 = first.start;
        self.active.prune(t0);
        self.frames.prune(t0);
        let mut sd = self.shard.take().expect("checked above");
        let shards = sd.shards;
        let geom = self.grid.geometry();
        {
            let ctx = QueryCtx {
                grid: &self.grid,
                snapshot: &self.snapshot,
                frames: &self.frames,
                radio: &self.spec.radio,
                seed: self.spec.seed,
                capture_ratio_mw: self.capture_ratio_mw,
                extra_reach: self.max_gate_r.max(self.hd_reach),
            };
            let profile_on = self.profile_on;
            for w in &mut sd.workers {
                w.results.clear();
                w.deliveries.clear();
            }
            let pending = &sd.pending[..];
            let workers = WorkerPtr(sd.workers.as_mut_ptr());
            sd.pool.run(|k| {
                // SAFETY: each worker index runs on exactly one thread of
                // this dispatch, so the slot is exclusively borrowed.
                let w = unsafe { &mut *workers.slot(k) };
                for (qi, tx) in pending.iter().enumerate() {
                    if geom.stripe_of(tx.pos, shards) != k {
                        continue;
                    }
                    let t_start = profile_on.then(Instant::now);
                    let start = w.deliveries.len() as u32;
                    let (hd, col) =
                        resolve_query(&ctx, &mut w.scratch, tx, t_start, &mut w.deliveries);
                    w.half_duplex_losses += hd;
                    w.collision_losses += col;
                    let len = w.deliveries.len() as u32 - start;
                    w.results.push((qi as u32, start, len));
                }
            });
        }
        // Merge: replay the batch in event order, advancing one cursor
        // per worker (each worker's results are already in that order).
        sd.cursors.clear();
        sd.cursors.resize(shards, 0);
        for (qi, tx) in sd.pending.iter().enumerate() {
            let k = geom.stripe_of(tx.pos, shards);
            let cursor = sd.cursors[k];
            sd.cursors[k] += 1;
            let (rqi, start, len) = sd.workers[k].results[cursor];
            debug_assert_eq!(rqi as usize, qi, "owner replays queries in order");
            // Beacon effects, stamped with the query's own end time — the
            // clock the sequential dispatch observes at this TxEnd.
            self.counters.beacons_received += len as u64;
            for &(r, rx_dbm) in &sd.workers[k].deliveries[start as usize..(start + len) as usize] {
                self.tables[r].observe(tx.sender, rx_dbm, tx.tx_dbm, tx.end);
            }
        }
        for w in &mut sd.workers {
            self.counters.half_duplex_losses += w.half_duplex_losses;
            self.counters.collision_losses += w.collision_losses;
            w.half_duplex_losses = 0;
            w.collision_losses = 0;
        }
        // Re-apply the cumulative prune the sequential per-query prunes
        // would have left behind (see the doc comment): the latest queued
        // start is the running-maximum threshold for whatever follows.
        let t_last = sd.pending.iter().fold(t0, |m, tx| m.max(tx.start));
        self.active.prune(t_last);
        self.frames.prune(t_last);
        sd.pending.clear();
        self.shard = Some(sd);
    }
}

/// Cell-size divisor of the spatial grid: cell edge = maximum radio range
/// / this. Cells of a full radio range (divisor 1, the historical sizing)
/// overfetch ~2.25× the decode disc's area per query; halving the edge
/// cuts that to ~1.55× — measurably fewer per-candidate position
/// evaluations in the snapshot filter — while cell-crossing maintenance
/// stays negligible (it scales only linearly with the divisor). Measured
/// on `exp_scale`, 2 is the knee: 3 shaves little more off the filter but
/// grows the cell walk and the refresh stream.
const GRID_CELL_DIVISOR: f64 = 2.0;

/// The snapshot delivery pipeline for one transmission — the single
/// kernel behind **both** the sequential incremental path
/// ([`World::compute_deliveries_snapshot`]) and every sharded worker
/// ([`World::flush_sharded`]), so the two cannot drift: filter (batched
/// sweep over the SoA lanes) → log-free decode → interference/capture per
/// decodable receiver, exactly as documented on
/// [`World::compute_deliveries_snapshot`].
///
/// Reads only the frozen [`QueryCtx`], mutates only the caller's
/// [`QueryScratch`], and appends successful deliveries to `out` in
/// ascending node order. Loss outcomes are returned as `(half_duplex,
/// collided)` counts instead of being recorded — order-free u64 tallies
/// the caller folds into the world counters
/// ([`World::apply_losses`]).
fn resolve_query(
    ctx: &QueryCtx<'_>,
    s: &mut QueryScratch,
    tx: &Transmission,
    t_start: Option<Instant>,
    out: &mut Vec<(NodeId, f64)>,
) -> (u64, u64) {
    let profile_on = t_start.is_some();
    let mut filtered = std::mem::take(&mut s.filtered);
    filtered.clear();
    // Buckets are exact up to the refresh slack; stored positions may
    // be older than the bucket, so walk whole cells (inflated by the
    // slack) and filter on *current* exact positions from the lanes —
    // batched into fixed-width chunk kernels by the sweep, which also
    // skips cells its event-horizon cache proves out of decode reach
    // (see `crate::sweep` for the bit-exactness argument).
    let r = s.decode_radius(ctx.radio, tx);
    let t = tx.end;
    s.sweep.filter_into(
        ctx.grid,
        ctx.snapshot,
        tx.pos,
        t,
        r,
        GRID_BUCKET_SLACK_M,
        &mut filtered,
    );
    // Ascending node order: delivery order feeds protocol callbacks
    // (and their RNG draws), so every mode must match the naive scan.
    // The sweep evaluates its gathered ids in sorted order, so the
    // survivors arrive exactly as the historical post-filter sort
    // left them.
    debug_assert!(filtered.windows(2).all(|w| w[0].0 < w[1].0));
    let t_mid = profile_on.then(Instant::now);

    // Frames that can matter to *any* candidate of this query, in
    // global insertion order (sequence numbers are shared with the
    // flat window, so sorting by them replays its exact iteration
    // order).
    let mut frames = std::mem::take(&mut s.frames);
    frames.clear();
    ctx.frames
        .gather_into(tx.pos, r + ctx.extra_reach, &mut frames);
    frames.sort_unstable_by_key(|&(seq, _)| seq);

    let pl = ctx.radio.path_loss;
    let sens = ctx.radio.rx_sensitivity_dbm;
    let sigma = ctx.radio.shadowing_sigma_db;
    let seed = ctx.seed;

    // Pass 1 — decode. `rx = NaN` marks a deferred received power (the
    // certain-decode fast path never evaluated the `log10`).
    let mut decodable = std::mem::take(&mut s.decodable);
    decodable.clear();
    if sigma <= 0.0 {
        for &(i, p, d2) in &filtered {
            if i == tx.sender {
                continue;
            }
            if d2 <= tx.decode_lo_r2 {
                decodable.push((i, p, d2, f64::NAN));
            } else if d2 > tx.decode_hi_r2 {
                // provably below sensitivity: the historical
                // OutOfRange branch, which records nothing
            } else {
                // in the hair-thin threshold band: exact dB test
                let rx = pl.rx_dbm(tx.tx_dbm, d2.sqrt());
                if rx >= sens {
                    decodable.push((i, p, d2, rx));
                }
            }
        }
    } else {
        for &(i, p, d2) in &filtered {
            if i == tx.sender {
                continue;
            }
            let rx = pl.rx_dbm(tx.tx_dbm, d2.sqrt())
                + crate::radio::link_shadowing_db(sigma, seed, tx.sender, i);
            if rx >= sens {
                decodable.push((i, p, d2, rx));
            }
        }
    }

    // Pass 2 — interference + capture per decodable receiver.
    let t_int = profile_on.then(Instant::now);
    let floor = sens - INTERFERENCE_FLOOR_DB;
    let capture_ratio = ctx.capture_ratio_mw;
    let mut half_duplex = 0u64;
    let mut collided = 0u64;
    for &(rid, rpos, d2, rx0) in &decodable {
        let interference = if sigma <= 0.0 {
            // Unshadowed: skip by the exact floor threshold, add no
            // shadow term (link_shadowing_db is identically 0 here,
            // so the accumulated terms match the historical loop
            // bit-for-bit).
            interference_sum(
                tx,
                rid,
                rpos,
                &frames,
                pl,
                floor,
                |o| o.floor_hi_r2,
                |_| 0.0,
            )
        } else {
            // One shadowing draw per (transmitter, receiver) pair,
            // shared across all of that transmitter's overlapping
            // frames in this query.
            s.shadow_epoch += 1;
            let epoch = s.shadow_epoch;
            let stamps = &mut s.shadow_stamp;
            let vals = &mut s.shadow_val;
            interference_sum(
                tx,
                rid,
                rpos,
                &frames,
                pl,
                floor,
                |o| o.gate_r2,
                |sender| {
                    if stamps[sender] == epoch {
                        vals[sender]
                    } else {
                        let v = crate::radio::link_shadowing_db(sigma, seed, sender, rid);
                        stamps[sender] = epoch;
                        vals[sender] = v;
                        v
                    }
                },
            )
        };
        if let Some(interference_mw) = interference {
            let rx = if rx0.is_nan() {
                pl.rx_dbm(tx.tx_dbm, d2.sqrt())
            } else {
                rx0
            };
            if interference_mw > 0.0 && dbm_to_mw(rx) < capture_ratio * interference_mw {
                collided += 1;
            } else {
                out.push((rid, rx));
            }
        } else {
            half_duplex += 1;
        }
    }

    s.filtered = filtered;
    s.frames = frames;
    s.decodable = decodable;
    if let (Some(start), Some(mid), Some(intf)) = (t_start, t_mid, t_int) {
        let done = Instant::now();
        s.profile.filter_s += (mid - start).as_secs_f64();
        s.profile.outcome_s += (done - mid).as_secs_f64();
        s.profile.interference_s += (done - intf).as_secs_f64();
    }
    (half_duplex, collided)
}

/// The shared interference/half-duplex frame loop of the fused delivery
/// query: replays the gathered `frames` (already sorted into global
/// insertion order) for one decodable receiver, accumulating interfering
/// power in exactly the historical iteration order. Returns `None` when
/// one of the receiver's own frames overlaps (half duplex), otherwise the
/// summed interference in mW.
///
/// `gate_r2` selects the per-frame squared skip radius (the exact floor
/// threshold when unshadowed, the conservative `+4σ` gate when shadowed)
/// and `shadow` the per-transmitter shadowing term; both are monomorphised
/// per call site, so the unshadowed instantiation keeps its branch-free
/// shape while the skip/overlap/self-frame logic exists exactly once.
#[allow(clippy::too_many_arguments)] // internal monomorphised kernel
#[inline(always)]
fn interference_sum<G, S>(
    tx: &Transmission,
    rid: NodeId,
    rpos: Vec2,
    frames: &[(u64, Transmission)],
    pl: crate::radio::PathLoss,
    floor: f64,
    gate_r2: G,
    mut shadow: S,
) -> Option<f64>
where
    G: Fn(&Transmission) -> f64,
    S: FnMut(NodeId) -> f64,
{
    let mut interference_mw = 0.0;
    for &(_, o) in frames {
        if o.start >= tx.end || o.end <= tx.start {
            continue; // no overlap
        }
        if o.sender == tx.sender && o.start == tx.start && o.end == tx.end {
            continue; // the frame itself (copy in the log)
        }
        if o.sender == rid {
            return None; // half duplex
        }
        let od2 = o.pos.distance_sq(rpos);
        if od2 > gate_r2(&o) {
            continue; // provably below the interference floor
        }
        let o_rx = pl.rx_dbm(o.tx_dbm, od2.sqrt()) + shadow(o.sender);
        if o_rx >= floor {
            // Only energy near the sensitivity floor matters.
            interference_mw += dbm_to_mw(o_rx);
        }
    }
    Some(interference_mw)
}

/// Cell edge for the spatialised active window: the interference gating
/// reach at the world's *largest* transmit-power class (shadowing tail
/// included), clamped to the field diagonal. Frames matter out to roughly
/// this distance, so one-reach cells keep a query's gather to a small
/// constant block of buckets while still pruning far-away bursts; sizing
/// by the largest class keeps that true for every group of a
/// heterogeneous world (cell size is a perf heuristic only — queries pass
/// their own exact radii).
fn frame_cell(radio: &RadioConfig, field: Field, max_tx_dbm: f64) -> f64 {
    let reach = radio.interference_floor_range(max_tx_dbm);
    let diag = (field.width * field.width + field.height * field.height).sqrt();
    if reach.is_finite() && reach > 1.0 {
        reach.min(diag)
    } else {
        diag
    }
}

/// Cell edge for the spatial grid: a [`GRID_CELL_DIVISOR`]-th of the
/// maximum radio range (the largest power class of the world at receiver
/// sensitivity — per-group powers only shrink individual query discs, see
/// [`frame_cell`]), clamped to the field diagonal so degenerate radio
/// configurations cannot create absurd cell counts.
fn grid_cell(radio: &RadioConfig, field: Field, max_tx_dbm: f64) -> f64 {
    let range = radio
        .path_loss
        .range_for(max_tx_dbm, radio.rx_sensitivity_dbm);
    let diag = (field.width * field.width + field.height * field.height).sqrt();
    if range.is_finite() && range > 1.0 {
        (range / GRID_CELL_DIVISOR).min(diag)
    } else {
        diag
    }
}

impl ProtocolApi for World {
    fn now(&self) -> f64 {
        self.queue.now()
    }

    fn set_timer(&mut self, node: NodeId, delay: f64, tag: u64) {
        self.queue.schedule_in(delay, Event::Timer { node, tag });
    }

    fn transmit(&mut self, node: NodeId, tx_dbm: f64) {
        self.start_transmission(node, tx_dbm, FrameKind::Data);
    }

    fn neighbors(&self, node: NodeId) -> Vec<NeighborEntry> {
        self.tables[node].live(self.queue.now(), self.spec.neighbor_expiry)
    }

    fn neighbors_into(&self, node: NodeId, out: &mut Vec<NeighborEntry>) {
        self.tables[node].live_into(self.queue.now(), self.spec.neighbor_expiry, out);
    }

    fn default_tx_dbm(&self) -> f64 {
        self.spec.radio.default_tx_dbm
    }

    fn node_tx_dbm(&self, node: NodeId) -> f64 {
        self.node_tx[node]
    }

    fn rx_sensitivity_dbm(&self) -> f64 {
        self.spec.radio.rx_sensitivity_dbm
    }

    fn rand(&mut self) -> f64 {
        self.rng.gen()
    }
}

/// A configured simulation run driving a protocol `P`.
///
/// Construction allocates; [`Simulator::reset`] re-arms the same instance
/// for another run (same or different configuration) without heap churn —
/// the batched evaluation pipeline keeps one simulator per worker thread
/// alive across thousands of runs.
pub struct Simulator<P: Protocol> {
    world: World,
    protocol: P,
}

impl<P: Protocol> Simulator<P> {
    /// Builds the simulator from a flat [`SimConfig`] — a thin adapter
    /// over [`from_world`](Self::from_world) through
    /// [`SimConfig::to_world`], kept for the homogeneous scenarios the
    /// paper evaluates.
    pub fn new(config: SimConfig, protocol: P) -> Self {
        let spec = config.to_world();
        Self {
            world: World::empty(spec),
            protocol,
        }
    }

    /// Builds the simulator from a declarative [`WorldSpec`]: places every
    /// group's nodes, seeds their mobility models, resolves per-group
    /// transmit-power classes and schedules the initial
    /// beacon/mobility/broadcast events. The single compilation path every
    /// scenario surface funnels through (`SimConfig`, dense scenarios, the
    /// text grammar).
    ///
    /// Panics with the spec's [`WorldError`](crate::world::WorldError)
    /// message when the spec is invalid; call
    /// [`WorldSpec::validate`] first to handle errors gracefully.
    pub fn from_world(spec: &WorldSpec, protocol: P) -> Self {
        let mut sim = Self {
            world: World::empty(spec.clone()),
            protocol,
        };
        sim.world.mode = spec.delivery_mode;
        sim
    }

    /// Re-arms the simulator for a new run, replacing the protocol state
    /// and reusing every internal allocation. The currently selected
    /// [`DeliveryMode`] is kept (the historical contract of the
    /// `SimConfig` surface); [`reset_world`](Self::reset_world) applies
    /// the spec's mode instead.
    pub fn reset(&mut self, config: SimConfig, protocol: P) {
        self.world.reset(config.to_world());
        self.protocol = protocol;
    }

    /// Like [`reset`](Self::reset), but re-arms the existing protocol in
    /// place through `rearm` instead of replacing it — protocols with
    /// per-node buffers (e.g. AEDB) avoid reallocating them every run.
    pub fn reset_with<F: FnOnce(&mut P)>(&mut self, config: SimConfig, rearm: F) {
        self.world.reset(config.to_world());
        rearm(&mut self.protocol);
    }

    /// Re-arms the simulator for a [`WorldSpec`], replacing the protocol
    /// and applying the spec's [`DeliveryMode`].
    pub fn reset_world(&mut self, spec: &WorldSpec, protocol: P) {
        self.world.reset(spec.clone());
        self.world.mode = spec.delivery_mode;
        self.protocol = protocol;
    }

    /// Like [`reset_world`](Self::reset_world), but re-arms the existing
    /// protocol in place through `rearm`.
    pub fn reset_world_with<F: FnOnce(&mut P)>(&mut self, spec: &WorldSpec, rearm: F) {
        self.world.reset(spec.clone());
        self.world.mode = spec.delivery_mode;
        rearm(&mut self.protocol);
    }

    /// Selects the delivery-resolution path (default:
    /// [`DeliveryMode::Incremental`]). All modes are bit-identical
    /// (asserted by the determinism test suite); the non-default modes
    /// exist for parity checks and as benchmark baselines.
    pub fn set_delivery_mode(&mut self, mode: DeliveryMode) {
        if self.world.mode != mode {
            // Resolve any queued sharded batch under the mode its queries
            // were deferred in, then drop the cached event horizons:
            // another discipline may re-bucket nodes without per-cell
            // notifications (horizon rebuilds), so no cached bound
            // survives a mode switch.
            self.world.flush_sharded();
            self.world.invalidate_sweep_all();
        }
        self.world.mode = mode;
    }

    /// Splits delivery resolution of the incremental path across
    /// `shards` space-sharded workers (`≤ 1` — the default — keeps the
    /// strictly sequential path). Results are **bit-identical at every
    /// shard count**: beacon deliveries are queued per event, resolved by
    /// stripe-owning workers running the exact sequential kernel against
    /// frozen state, and merged back in event order (see
    /// `World::flush_sharded` for the argument; asserted by the
    /// shard-count property suite).
    ///
    /// The pool persists across [`reset`](Self::reset) like the delivery
    /// mode does. Sharding only engages in [`DeliveryMode::Incremental`];
    /// the historical baselines stay sequential so their measured costs
    /// remain comparable across PRs. Useful shard counts are small (≈ the
    /// physical core count): each worker owns a contiguous stripe of grid
    /// columns, so at high counts stripes thin out and the per-flush
    /// dispatch overhead dominates.
    pub fn set_delivery_shards(&mut self, shards: usize) {
        self.world.set_delivery_shards(shards);
    }

    /// The configured delivery shard count (1 = sequential).
    pub fn delivery_shards(&self) -> usize {
        self.world.shard.as_ref().map_or(1, |sd| sd.shards)
    }

    /// The currently selected delivery-resolution path.
    pub fn delivery_mode(&self) -> DeliveryMode {
        self.world.mode
    }

    /// Convenience wrapper around [`set_delivery_mode`]
    /// (`true` → [`DeliveryMode::Naive`], `false` → the default
    /// incremental grid), kept for the existing parity tests and benches.
    ///
    /// [`set_delivery_mode`]: Self::set_delivery_mode
    pub fn set_naive_deliveries(&mut self, on: bool) {
        self.set_delivery_mode(if on {
            DeliveryMode::Naive
        } else {
            DeliveryMode::Incremental
        });
    }

    /// Spatial-grid maintenance counters accumulated since the last
    /// reset — the measurable cost the incremental discipline removes
    /// (a horizon rebuild costs `n` bucket ops; an incremental move
    /// costs 2).
    pub fn grid_stats(&self) -> GridStats {
        self.world.grid.stats()
    }

    /// Live (non-stale) grid-refresh events handled since the last reset.
    pub fn grid_refresh_events(&self) -> u64 {
        self.world.refresh_events
    }

    /// Work counters of the batched candidate sweep since the last reset:
    /// cells visited/culled and candidates evaluated by chunk kernels vs
    /// the scalar fallback (all zero outside
    /// [`DeliveryMode::Incremental`], which is the only path that
    /// sweeps). Exported per row of the scale artifact.
    ///
    /// **Aggregation under sharding**: each shard worker sweeps with its
    /// own private counters; this returns the component-wise sum of the
    /// sequential sweep's counters plus every worker's, folded in
    /// worker-index order. Because query ownership is deterministic and
    /// u64 addition is associative and commutative, the total is
    /// independent of thread interleaving — the same well-defined number
    /// at any shard count (though *not* necessarily equal across shard
    /// counts: each worker's event-horizon cache warms independently, so
    /// culling opportunities differ).
    pub fn sweep_stats(&self) -> SweepStats {
        let mut stats = self.world.scratch.sweep.stats();
        if let Some(sd) = &self.world.shard {
            for w in &sd.workers {
                stats += w.scratch.sweep.stats();
            }
        }
        stats
    }

    /// Cell edge (m) of the spatial delivery grid — exposed so tests can
    /// construct node placements exactly on cell boundaries.
    pub fn grid_cell_size(&self) -> f64 {
        self.world.grid.cell_size()
    }

    /// Enables/disables wall-time profiling of the delivery query (off by
    /// default — the two extra `Instant::now` samples per query are only
    /// taken when enabled, so unprofiled runs pay nothing). The setting
    /// survives [`reset`](Self::reset); the accumulators do not.
    pub fn set_query_profiling(&mut self, on: bool) {
        self.world.profile_on = on;
    }

    /// The accumulated candidate-filter / receive-outcome wall-time split
    /// since the last reset (all zeros unless
    /// [`set_query_profiling`](Self::set_query_profiling) is on).
    ///
    /// **Aggregation under sharding**: returns the component-wise sum of
    /// the sequential profile plus every shard worker's, folded in
    /// worker-index order — i.e. aggregate *shard-seconds* of query work,
    /// not wall time. With `n` shards busy the sum can exceed elapsed
    /// wall time by up to a factor of `n`; it remains the right
    /// denominator for per-query cost comparisons because the amount of
    /// work per query is shard-count-independent.
    pub fn query_profile(&self) -> QueryProfile {
        let mut profile = self.world.scratch.profile;
        if let Some(sd) = &self.world.shard {
            for w in &sd.workers {
                profile += w.scratch.profile;
            }
        }
        profile
    }

    /// Runs the simulation to `end_time` and returns the report.
    pub fn run(mut self) -> SimReport {
        self.run_to_end()
    }

    /// The scenario's configured end time in seconds — the horizon
    /// [`run_to_end`](Self::run_to_end) runs to. Exposed so drivers that
    /// advance the clock in chunks via [`run_until`](Self::run_until)
    /// (e.g. a service streaming progress) know where the run finishes.
    pub fn end_time(&self) -> f64 {
        self.world.spec.end_time
    }

    /// Runs to `end_time` and returns the report, keeping the simulator
    /// alive for a subsequent [`reset`](Self::reset).
    pub fn run_to_end(&mut self) -> SimReport {
        self.run_until(self.world.spec.end_time);
        SimReport {
            broadcast: self.world.metrics.clone(),
            counters: self.world.counters.clone(),
            n_nodes: self.world.n_nodes,
        }
    }

    /// Processes events up to (and including) time `t`, leaving the
    /// simulator inspectable — used for topology snapshots and debugging.
    ///
    /// With delivery sharding enabled
    /// ([`set_delivery_shards`](Self::set_delivery_shards)), beacon
    /// delivery queries are queued here and resolved in batches: any
    /// event that could change delivery inputs or observe delivery
    /// outputs (mobility, grid maintenance, data traffic, protocol
    /// timers) flushes the pending batch first, so every query still sees
    /// exactly the state the sequential path would have. The final flush
    /// below guarantees no query is left pending when the call returns.
    pub fn run_until(&mut self, t: f64) {
        while let Some(next) = self.world.queue.peek_time() {
            if next > t {
                break;
            }
            let (_, ev) = self.world.queue.pop().expect("peeked event vanished");
            if self.world.shard.is_some() && self.world.mode == DeliveryMode::Incremental {
                match &ev {
                    Event::TxEnd(tx) if tx.kind == FrameKind::Beacon => {
                        // Beacon deliveries have no same-event side
                        // effects beyond the neighbour-table observes and
                        // loss counters the flush replays in order, so
                        // they can be deferred into the shard batch.
                        if self.world.defer_beacon_txend(tx) {
                            self.world.flush_sharded();
                        }
                        continue;
                    }
                    // A beacon *start* only inserts a frame into the
                    // active window; every deferred query's own end time
                    // precedes this event's time, so the new frame cannot
                    // overlap any pending query and need not flush.
                    Event::Beacon(_) => {}
                    _ => self.world.flush_sharded(),
                }
            }
            self.dispatch(ev);
        }
        self.world.flush_sharded();
    }

    /// Node positions at time `t` (must be ≥ the last processed event).
    pub fn positions_at(&self, t: f64) -> Vec<Vec2> {
        self.world.mobility.iter().map(|m| m.position(t)).collect()
    }

    /// Current simulation time.
    pub fn now(&self) -> f64 {
        self.world.queue.now()
    }

    fn dispatch(&mut self, ev: Event) {
        match ev {
            Event::Beacon(node) => {
                // Beacons go out at the node's power *class* (per-group in
                // heterogeneous worlds; the radio default otherwise).
                self.world
                    .start_transmission(node, self.world.node_tx[node], FrameKind::Beacon);
                // Re-arm with ±5 % jitter so persistent phase collisions
                // cannot lock in (there is no CSMA in this model).
                let base = self.world.spec.beacon_interval;
                let jitter = base * (0.95 + 0.1 * self.world.rng.gen::<f64>());
                self.world.queue.schedule_in(jitter, Event::Beacon(node));
            }
            Event::MobilityChange(node) => {
                self.world.mobility[node].advance(&mut self.world.rng);
                let next = self.world.mobility[node].next_change();
                if next.is_finite() {
                    self.world.queue.schedule(next, Event::MobilityChange(node));
                }
                self.world.reanchor_grid_refresh(node);
            }
            Event::GridRefresh { node, gen } => {
                self.world.handle_grid_refresh(node, gen);
            }
            Event::TxEnd(tx) => {
                let mut deliveries = std::mem::take(&mut self.world.delivery_scratch);
                deliveries.clear();
                self.world.compute_deliveries(&tx, &mut deliveries);
                match tx.kind {
                    FrameKind::Beacon => {
                        let now = self.world.queue.now();
                        self.world.counters.beacons_received += deliveries.len() as u64;
                        for &(r, rx_dbm) in &deliveries {
                            self.world.tables[r].observe(tx.sender, rx_dbm, tx.tx_dbm, now);
                        }
                    }
                    FrameKind::Data => {
                        let now = self.world.queue.now();
                        self.world.counters.data_received += deliveries.len() as u64;
                        for &(r, rx_dbm) in &deliveries {
                            self.world.metrics.record_reception(r, now);
                            self.protocol
                                .on_receive(r, tx.sender, rx_dbm, &mut self.world);
                        }
                    }
                }
                self.world.delivery_scratch = deliveries;
            }
            Event::Timer { node, tag } => {
                self.world.counters.timers_fired += 1;
                self.protocol.on_timer(node, tag, &mut self.world);
            }
            Event::StartBroadcast(node) => {
                self.world.broadcast_started = true;
                self.protocol.on_start(node, &mut self.world);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Flooding, SourceOnly};

    fn dense_config(seed: u64) -> SimConfig {
        // 50 nodes in a small field: fully connected at default power.
        let mut c = SimConfig::paper(50, seed);
        c.field = Field::new(100.0, 100.0);
        c
    }

    #[test]
    fn source_only_reaches_one_hop_neighbors() {
        let c = dense_config(1);
        let report = Simulator::new(c, SourceOnly).run();
        // 100 m field, ~150 m range: everyone is one hop away.
        assert_eq!(
            report.broadcast.coverage(),
            49,
            "counters: {:?}",
            report.counters
        );
        assert_eq!(report.broadcast.forwardings, 0);
        assert_eq!(report.broadcast.energy_dbm_sum, 0.0);
        assert!(report.broadcast.broadcast_time() < 0.1);
    }

    #[test]
    fn flooding_covers_multihop_network() {
        let mut c = SimConfig::paper(60, 4);
        c.field = Field::new(400.0, 400.0); // multi-hop but well connected
        let n = c.n_nodes;
        let report = Simulator::new(c, Flooding::new(n, (0.0, 0.05))).run();
        assert!(
            report.broadcast.coverage() > 50,
            "coverage {} too small; counters {:?}",
            report.broadcast.coverage(),
            report.counters
        );
        assert!(report.broadcast.forwardings > 10);
        assert!(report.broadcast.broadcast_time() < 2.0);
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let run = |seed| {
            let c = SimConfig::paper(40, seed);
            let n = c.n_nodes;
            let r = Simulator::new(c, Flooding::new(n, (0.0, 0.1))).run();
            (
                r.broadcast.coverage(),
                r.broadcast.forwardings,
                r.broadcast.energy_dbm_sum,
                r.broadcast.broadcast_time(),
                r.counters.beacons_sent,
            )
        };
        assert_eq!(run(123), run(123));
        assert_ne!(
            run(123),
            run(124),
            "different seeds should differ somewhere"
        );
    }

    fn run_mode(mode: DeliveryMode, c: SimConfig) -> SimReport {
        let n = c.n_nodes;
        let mut sim = Simulator::new(c, Flooding::new(n, (0.0, 0.1)));
        sim.set_delivery_mode(mode);
        sim.run_to_end()
    }

    #[test]
    fn all_delivery_modes_are_identical() {
        // The tentpole parity guarantee, asserted across densities,
        // mobility models and protocols: full metric + counter equality
        // between the incremental grid, the horizon-rebuild grid and the
        // naive scan.
        for seed in [1u64, 7, 23, 99] {
            for mk in [
                SimConfig::paper(75, seed),
                SimConfig::paper(25, seed),
                dense_config(seed),
                {
                    let mut c = SimConfig::paper(30, seed);
                    c.mobility = MobilityModel::Stationary;
                    c
                },
                {
                    let mut c = SimConfig::paper(30, seed);
                    c.mobility = MobilityModel::RandomWaypoint { pause: 3.0 };
                    c
                },
            ] {
                let inc = run_mode(DeliveryMode::Incremental, mk.clone());
                let reb = run_mode(DeliveryMode::HorizonRebuild, mk.clone());
                let naive = run_mode(DeliveryMode::Naive, mk);
                assert_eq!(inc.broadcast, reb.broadcast, "inc vs rebuild, seed {seed}");
                assert_eq!(inc.counters, reb.counters, "inc vs rebuild, seed {seed}");
                assert_eq!(inc.broadcast, naive.broadcast, "inc vs naive, seed {seed}");
                assert_eq!(inc.counters, naive.counters, "inc vs naive, seed {seed}");
            }
        }
    }

    #[test]
    fn shadowed_scenarios_use_the_grid_and_stay_exact() {
        // Under the bounded-tail shadowing model the radio range is finite
        // (gain truncated at +4σ), so shadowed scenarios keep the spatial
        // grid — no naive fallback — and all delivery paths remain
        // bit-identical.
        for sigma in [4.0, 6.0] {
            let mut c = SimConfig::paper(40, 3);
            c.radio.shadowing_sigma_db = sigma;
            let inc = run_mode(DeliveryMode::Incremental, c.clone());
            let reb = run_mode(DeliveryMode::HorizonRebuild, c.clone());
            let naive = run_mode(DeliveryMode::Naive, c);
            assert_eq!(inc.broadcast, naive.broadcast, "sigma {sigma}");
            assert_eq!(inc.counters, naive.counters, "sigma {sigma}");
            assert_eq!(inc.broadcast, reb.broadcast, "sigma {sigma}");
            assert_eq!(inc.counters, reb.counters, "sigma {sigma}");
        }
    }

    #[test]
    fn incremental_grid_slashes_maintenance_vs_horizon_rebuild() {
        // The maintenance-cost half of the tentpole claim: over a full
        // 40 s run the horizon-rebuild discipline re-buckets all n nodes
        // every second, while the incremental discipline pays only for
        // actual cell crossings — at least 5x fewer bucket ops (the
        // acceptance floor; it is ~10x in practice), with identical
        // deliveries.
        let c = SimConfig::paper(100, 9);
        let n = c.n_nodes;
        let run = |mode: DeliveryMode| {
            let mut sim = Simulator::new(c.clone(), Flooding::new(n, (0.0, 0.1)));
            sim.set_delivery_mode(mode);
            let report = sim.run_to_end();
            (report, sim.grid_stats(), sim.grid_refresh_events())
        };
        let (r_inc, s_inc, refreshes) = run(DeliveryMode::Incremental);
        let (r_reb, s_reb, _) = run(DeliveryMode::HorizonRebuild);
        assert_eq!(r_inc.broadcast, r_reb.broadcast);
        assert_eq!(r_inc.counters, r_reb.counters);
        assert!(refreshes > 0, "mobile nodes must schedule refreshes");
        assert!(
            s_reb.rebuilds as usize >= 30,
            "rebuild baseline should rebuild ~every horizon: {s_reb:?}"
        );
        assert_eq!(s_inc.rebuilds, 1, "incremental only places once: {s_inc:?}");
        assert!(
            s_reb.bucket_ops >= 5 * s_inc.bucket_ops,
            "incremental maintenance must be >= 5x cheaper: rebuild {} ops \
             vs incremental {} ops",
            s_reb.bucket_ops,
            s_inc.bucket_ops
        );
    }

    #[test]
    fn reset_reuses_simulator_across_configs() {
        // A fresh simulator and a reset one must agree bit-for-bit, even
        // when the reset crosses node counts and field sizes.
        let c1 = SimConfig::paper(40, 11);
        let c2 = dense_config(5);
        let n1 = c1.n_nodes;
        let n2 = c2.n_nodes;
        let fresh1 = Simulator::new(c1.clone(), Flooding::new(n1, (0.0, 0.1))).run();
        let fresh2 = Simulator::new(c2.clone(), Flooding::new(n2, (0.0, 0.2))).run();

        let mut sim = Simulator::new(c1.clone(), Flooding::new(n1, (0.0, 0.1)));
        let r1 = sim.run_to_end();
        sim.reset(c2, Flooding::new(n2, (0.0, 0.2)));
        let r2 = sim.run_to_end();
        sim.reset(c1, Flooding::new(n1, (0.0, 0.1)));
        let r1_again = sim.run_to_end();

        assert_eq!(r1.broadcast, fresh1.broadcast);
        assert_eq!(r2.broadcast, fresh2.broadcast);
        assert_eq!(r1_again.broadcast, fresh1.broadcast);
        assert_eq!(r1_again.counters, fresh1.counters);
    }

    #[test]
    fn ten_thousand_node_scenario_end_to_end() {
        // The 10⁴-node acceptance scenario (the XL dense preset's
        // geometry: 400 dev/km² on a 5 km field), shortened to a 3 s
        // window so the debug-build test stays fast — `exp_scale` runs
        // the full 40 s protocol in release. Asserts the incremental grid
        // is bit-identical to a full horizon rebuild AND that its
        // post-placement maintenance is ≥ 5× cheaper.
        let mut c = SimConfig::paper(10_000, 7_410_000);
        c.field = Field::new(5000.0, 5000.0);
        c.broadcast_time = 1.0;
        c.end_time = 2.0;
        let n = c.n_nodes;
        let run = |mode: DeliveryMode| {
            let mut sim = Simulator::new(c.clone(), Flooding::new(n, (0.0, 0.1)));
            sim.set_delivery_mode(mode);
            let report = sim.run_to_end();
            (report, sim.grid_stats())
        };
        let (r_inc, s_inc) = run(DeliveryMode::Incremental);
        let (r_reb, s_reb) = run(DeliveryMode::HorizonRebuild);
        assert!(
            r_inc.broadcast.coverage() > 500,
            "a dense 10⁴-node broadcast should spread widely in 1 s, got {}",
            r_inc.broadcast.coverage()
        );
        assert_eq!(r_inc.broadcast, r_reb.broadcast, "10⁴-node parity");
        assert_eq!(r_inc.counters, r_reb.counters, "10⁴-node parity");
        // Both modes pay one n-op initial placement; the maintenance
        // *beyond* that is where the disciplines differ.
        let inc_ops = s_inc.bucket_ops - n as u64;
        let reb_ops = s_reb.bucket_ops - n as u64;
        assert!(
            reb_ops >= 5 * inc_ops.max(1),
            "incremental maintenance must be >= 5x cheaper at 10⁴ nodes: \
             rebuild {reb_ops} ops vs incremental {inc_ops} ops"
        );
    }

    #[test]
    fn snapshot_lanes_reanchor_when_advance_fires_mid_transmission() {
        // A mobility segment change lands strictly between a data frame's
        // start (30.0 s) and its end (31.0 s): the snapshot lanes must be
        // re-anchored by the MobilityChange event so the delivery query at
        // tx.end filters against the *new* segment — bit-identically to
        // the mobility structs — and all modes must stay in lockstep.
        let mut c = SimConfig::paper(40, 21);
        c.mobility = MobilityModel::RandomWalk {
            change_interval: 30.5, // fires once, mid-transmission
        };
        c.radio.data_duration = 1.0;
        let n = c.n_nodes;
        let mut sim = Simulator::new(c.clone(), Flooding::new(n, (0.0, 0.0)));
        sim.run_until(30.7); // past the change, before the frame ends
        let w = &sim.world;
        for i in 0..n {
            let seg = w.mobility[i].segment();
            assert_eq!(seg.t0, 30.5, "segment must have re-anchored");
            assert_eq!(
                w.snapshot.segment(i),
                seg,
                "snapshot lanes of node {i} must mirror the mobility struct"
            );
            let t = w.queue.now();
            assert_eq!(w.snapshot.position(i, t), w.mobility[i].position(t));
        }
        sim.run_until(c.end_time);
        let inc = SimReport {
            broadcast: sim.world.metrics.clone(),
            counters: sim.world.counters.clone(),
            n_nodes: n,
        };
        let reb = run_mode_jitterless(DeliveryMode::HorizonRebuild, c.clone());
        let naive = run_mode_jitterless(DeliveryMode::Naive, c);
        assert_eq!(inc.broadcast, reb.broadcast);
        assert_eq!(inc.counters, reb.counters);
        assert_eq!(inc.broadcast, naive.broadcast);
        assert_eq!(inc.counters, naive.counters);
    }

    /// Like [`run_mode`] but with zero forwarding jitter, so data-frame
    /// timings are fully determined by the radio constants (the exact
    /// alignment the segment-boundary tests need).
    fn run_mode_jitterless(mode: DeliveryMode, c: SimConfig) -> SimReport {
        let n = c.n_nodes;
        let mut sim = Simulator::new(c, Flooding::new(n, (0.0, 0.0)));
        sim.set_delivery_mode(mode);
        sim.run_to_end()
    }

    #[test]
    fn segment_change_exactly_at_query_time_stays_in_parity() {
        // data_duration == change_interval == 2.0 with zero forwarding
        // jitter makes every data frame end *exactly* on a mobility
        // re-draw instant (30.0 + k·2.0): the delivery query samples
        // receiver positions at the precise boundary between two
        // segments, in whatever event order the queue resolves the tie —
        // the sharpest case for the snapshot lanes. All modes must agree
        // bit-for-bit.
        for seed in [2u64, 13, 77] {
            let mut c = SimConfig::paper(50, seed);
            c.mobility = MobilityModel::RandomWalk {
                change_interval: 2.0,
            };
            c.radio.data_duration = 2.0;
            let inc = run_mode_jitterless(DeliveryMode::Incremental, c.clone());
            let reb = run_mode_jitterless(DeliveryMode::HorizonRebuild, c.clone());
            let naive = run_mode_jitterless(DeliveryMode::Naive, c);
            assert_eq!(inc.broadcast, reb.broadcast, "seed {seed}");
            assert_eq!(inc.counters, reb.counters, "seed {seed}");
            assert_eq!(inc.broadcast, naive.broadcast, "seed {seed}");
            assert_eq!(inc.counters, naive.counters, "seed {seed}");
        }
    }

    #[test]
    fn beacons_populate_neighbor_tables() {
        let c = dense_config(3);
        let sim = Simulator::new(c, SourceOnly);
        // run manually to just after a couple of beacon rounds
        let mut world = sim.world;
        let mut protocol = sim.protocol;
        let mut ds: Vec<(NodeId, f64)> = Vec::new();
        while let Some(t) = world.queue.peek_time() {
            if t > 3.0 {
                break;
            }
            let (_, ev) = world.queue.pop().unwrap();
            match ev {
                Event::Beacon(node) => {
                    world.start_transmission(node, world.node_tx[node], FrameKind::Beacon);
                    let base = world.spec.beacon_interval;
                    world.queue.schedule_in(base, Event::Beacon(node));
                }
                Event::TxEnd(tx) => {
                    ds.clear();
                    world.compute_deliveries(&tx, &mut ds);
                    let now = world.queue.now();
                    if tx.kind == FrameKind::Beacon {
                        for &(r, rx) in &ds {
                            world.tables[r].observe(tx.sender, rx, tx.tx_dbm, now);
                        }
                    }
                }
                Event::MobilityChange(n) => {
                    world.mobility[n].advance(&mut world.rng);
                    let next = world.mobility[n].next_change();
                    if next.is_finite() {
                        world.queue.schedule(next, Event::MobilityChange(n));
                    }
                    world.reanchor_grid_refresh(n);
                }
                Event::GridRefresh { node, gen } => world.handle_grid_refresh(node, gen),
                Event::StartBroadcast(n) => protocol.on_start(n, &mut world),
                Event::Timer { node, tag } => protocol.on_timer(node, tag, &mut world),
            }
        }
        // dense network: every node should know (almost) everyone
        let neigh = world.neighbors(0);
        assert!(neigh.len() >= 45, "only {} neighbors known", neigh.len());
        // received powers must be decodable and ordered fields sane
        for e in &neigh {
            assert!(e.rx_dbm >= world.spec.radio.rx_sensitivity_dbm);
            assert!(e.last_seen <= world.queue.now());
        }
    }

    #[test]
    fn sparse_network_partitions_limit_coverage() {
        // 5 nodes in a huge field: almost surely out of range of each other.
        let mut c = SimConfig::paper(5, 11);
        c.field = Field::new(5000.0, 5000.0);
        let n = c.n_nodes;
        let report = Simulator::new(c, Flooding::new(n, (0.0, 0.05))).run();
        assert!(report.broadcast.coverage() < 4);
    }

    #[test]
    fn no_self_delivery_and_energy_accounting() {
        let c = dense_config(5);
        let n = c.n_nodes;
        let report = Simulator::new(c, Flooding::new(n, (0.0, 0.2))).run();
        // flooding: everyone forwards once at default power
        let f = report.broadcast.forwardings as f64;
        assert!((report.broadcast.energy_dbm_sum - f * 16.02).abs() < 1e-6);
        assert!(
            !report.broadcast.covered.contains(&0),
            "source must not count as covered"
        );
    }

    #[test]
    fn broadcast_time_monotone_with_flooding_jitter() {
        // larger forwarding jitter stretches the dissemination in time
        let bt = |jitter: (f64, f64)| {
            let mut c = SimConfig::paper(60, 17);
            c.field = Field::new(400.0, 400.0);
            let n = c.n_nodes;
            Simulator::new(c, Flooding::new(n, jitter))
                .run()
                .broadcast
                .broadcast_time()
        };
        let fast = bt((0.0, 0.01));
        let slow = bt((1.0, 2.0));
        assert!(slow > fast, "slow {slow} <= fast {fast}");
    }

    #[test]
    fn explicit_placement_chain_topology() {
        // A 4-node chain spaced 120 m apart (range ≈ 150 m): flooding must
        // traverse hop by hop and reach the far end.
        let mut c = SimConfig::paper(4, 1);
        c.mobility = crate::mobility::MobilityModel::Stationary;
        c.placement = Placement::Explicit(vec![
            Vec2::new(10.0, 250.0),
            Vec2::new(130.0, 250.0),
            Vec2::new(250.0, 250.0),
            Vec2::new(370.0, 250.0),
        ]);
        let report = Simulator::new(c, Flooding::new(4, (0.01, 0.05))).run();
        assert_eq!(
            report.broadcast.coverage(),
            3,
            "counters {:?}",
            report.counters
        );
        // last hop needs at least 3 frames: source + 2 relays
        assert!(report.broadcast.forwardings >= 2);
    }

    #[test]
    #[should_panic(expected = "placement size mismatch")]
    fn explicit_placement_arity_checked() {
        let mut c = SimConfig::paper(3, 1);
        c.placement = Placement::Explicit(vec![Vec2::new(0.0, 0.0)]);
        let _ = Simulator::new(c, SourceOnly);
    }

    #[test]
    fn run_until_snapshots_positions() {
        let c = SimConfig::paper(10, 5);
        let field = c.field;
        let mut sim = Simulator::new(c, SourceOnly);
        sim.run_until(30.0);
        assert!(sim.now() <= 30.0);
        let pos = sim.positions_at(30.0);
        assert_eq!(pos.len(), 10);
        assert!(pos.iter().all(|p| field.contains(*p)));
        // continuing to the end still works
        sim.run_until(40.0);
        assert!(sim.now() > 30.0);
    }

    #[test]
    fn shard_count_can_change_mid_run_and_survives_reset() {
        // Re-sharding between run_until segments must not perturb the
        // trajectory: every transition flushes the pending batch under
        // the old configuration, so the event stream is identical to the
        // sequential run. The same simulator is then reset and re-run to
        // check the persistent worker pool starts each run clean.
        let mut c = SimConfig::paper(80, 9);
        c.field = Field::new(500.0, 500.0);
        let n = c.n_nodes;
        let baseline = Simulator::new(c.clone(), Flooding::new(n, (0.0, 0.1))).run();
        let mut sim = Simulator::new(c.clone(), Flooding::new(n, (0.0, 0.1)));
        sim.run_until(10.0);
        sim.set_delivery_shards(3);
        assert_eq!(sim.delivery_shards(), 3);
        sim.run_until(25.0);
        sim.set_delivery_shards(2);
        sim.run_until(33.0);
        sim.set_delivery_shards(1);
        assert_eq!(sim.delivery_shards(), 1);
        let toggled = sim.run_to_end();
        assert_eq!(baseline.broadcast, toggled.broadcast);
        assert_eq!(baseline.counters, toggled.counters);
        sim.set_delivery_shards(4);
        sim.reset(c, Flooding::new(n, (0.0, 0.1)));
        assert_eq!(sim.delivery_shards(), 4, "sharding survives reset");
        let again = sim.run_to_end();
        assert_eq!(baseline.broadcast, again.broadcast);
        assert_eq!(baseline.counters, again.counters);
    }

    #[test]
    fn simultaneous_transmissions_collide() {
        // Two forwarders with zero jitter transmit in the same instant;
        // their frames overlap at common receivers. With capture at 10 dB
        // equidistant receivers lose both.
        let mut c = dense_config(23);
        c.radio.capture_db = 10.0;
        let n = c.n_nodes;
        let report = Simulator::new(c, Flooding::new(n, (0.0, 0.0))).run();
        // all forwarders fire at exactly the same time => massive collisions
        assert!(
            report.counters.collision_losses + report.counters.half_duplex_losses > 0,
            "expected losses, got {:?}",
            report.counters
        );
    }
}
