//! The protocol trait broadcast algorithms implement, and a flooding
//! baseline.
//!
//! The simulator drives a [`Protocol`] through three callbacks: the start
//! of a dissemination at the source, every successful reception of the
//! broadcast frame (including duplicates — AEDB updates its `pmin` state
//! from them), and timer expirations (AEDB's random-delay wait). The
//! [`ProtocolApi`] passed to each callback exposes exactly the facilities a
//! real cross-layer implementation would have: the clock, one-shot timers,
//! transmission at a chosen power, the beacon-derived neighbour table and
//! the radio constants.

use crate::neighbor::NeighborEntry;
use crate::sim::NodeId;

/// Simulator services available to protocol callbacks.
pub trait ProtocolApi {
    /// Current simulation time (s).
    fn now(&self) -> f64;

    /// Schedules [`Protocol::on_timer`] for `node` after `delay` seconds
    /// with an opaque `tag`.
    fn set_timer(&mut self, node: NodeId, delay: f64, tag: u64);

    /// Transmits the broadcast message from `node` at `tx_dbm`. The frame
    /// is delivered (subject to propagation and collisions) to every node
    /// in range after the configured data-frame duration.
    fn transmit(&mut self, node: NodeId, tx_dbm: f64);

    /// The live one-hop neighbour table of `node` (beacon-derived,
    /// age-filtered), sorted by node id. Allocates per call; protocol hot
    /// paths should prefer [`neighbors_into`](Self::neighbors_into) with a
    /// reused scratch buffer.
    fn neighbors(&self, node: NodeId) -> Vec<NeighborEntry>;

    /// Fills `out` with the live one-hop neighbour table of `node` (same
    /// contents and id-sorted order as [`neighbors`](Self::neighbors)),
    /// clearing it first and reusing its capacity. The simulator overrides
    /// this to run allocation-free; the default delegates to `neighbors`
    /// so scripted test harnesses need not implement both.
    fn neighbors_into(&self, node: NodeId, out: &mut Vec<NeighborEntry>) {
        out.clear();
        out.extend(self.neighbors(node));
    }

    /// Default (maximum) transmit power in dBm — Table II: 16.02.
    fn default_tx_dbm(&self) -> f64;

    /// The transmit-power class of `node` in dBm: what its beacons go out
    /// at, and the natural full-power choice for its data frames. Equal to
    /// [`default_tx_dbm`](Self::default_tx_dbm) in homogeneous worlds; in
    /// heterogeneous [`WorldSpec`](crate::world::WorldSpec)s it is the
    /// node's group override. The default implementation returns the
    /// shared default so scripted test harnesses need not implement both.
    fn node_tx_dbm(&self, node: NodeId) -> f64 {
        let _ = node;
        self.default_tx_dbm()
    }

    /// Receiver sensitivity in dBm (minimum decodable power).
    fn rx_sensitivity_dbm(&self) -> f64;

    /// Uniform random number in `[0, 1)` from the simulation RNG.
    fn rand(&mut self) -> f64;
}

/// A broadcast dissemination protocol under test.
pub trait Protocol {
    /// The dissemination starts: `node` is the source and should transmit.
    fn on_start(&mut self, node: NodeId, api: &mut dyn ProtocolApi);

    /// `node` successfully received the broadcast frame from `from` at
    /// `rx_dbm` (called for duplicates too).
    fn on_receive(&mut self, node: NodeId, from: NodeId, rx_dbm: f64, api: &mut dyn ProtocolApi);

    /// A timer set through [`ProtocolApi::set_timer`] fired.
    fn on_timer(&mut self, node: NodeId, tag: u64, api: &mut dyn ProtocolApi);
}

/// Blind flooding: every node re-broadcasts the first copy it receives at
/// its full power class ([`ProtocolApi::node_tx_dbm`]). The classic
/// broadcast-storm baseline (Ni et al. 1999) — useful as a sanity
/// reference in examples and tests.
#[derive(Debug, Clone)]
pub struct Flooding {
    seen: Vec<bool>,
    /// Optional fixed forwarding jitter drawn uniformly from this interval
    /// (s); `(0.0, 0.0)` re-broadcasts immediately.
    pub jitter: (f64, f64),
}

impl Flooding {
    /// Creates a flooding protocol for `n` nodes with the given jitter
    /// interval.
    pub fn new(n: usize, jitter: (f64, f64)) -> Self {
        assert!(jitter.0 >= 0.0 && jitter.1 >= jitter.0);
        Self {
            seen: vec![false; n],
            jitter,
        }
    }
}

impl Protocol for Flooding {
    fn on_start(&mut self, node: NodeId, api: &mut dyn ProtocolApi) {
        self.seen[node] = true;
        let p = api.node_tx_dbm(node);
        api.transmit(node, p);
    }

    fn on_receive(&mut self, node: NodeId, _from: NodeId, _rx_dbm: f64, api: &mut dyn ProtocolApi) {
        if self.seen[node] {
            return;
        }
        self.seen[node] = true;
        let (lo, hi) = self.jitter;
        let delay = if hi > lo {
            lo + api.rand() * (hi - lo)
        } else {
            lo
        };
        if delay > 0.0 {
            api.set_timer(node, delay, 0);
        } else {
            let p = api.node_tx_dbm(node);
            api.transmit(node, p);
        }
    }

    fn on_timer(&mut self, node: NodeId, _tag: u64, api: &mut dyn ProtocolApi) {
        let p = api.node_tx_dbm(node);
        api.transmit(node, p);
    }
}

/// A protocol that does nothing after the source send — the "no forwarding"
/// lower bound on coverage; used by tests.
#[derive(Debug, Clone, Default)]
pub struct SourceOnly;

impl Protocol for SourceOnly {
    fn on_start(&mut self, node: NodeId, api: &mut dyn ProtocolApi) {
        let p = api.node_tx_dbm(node);
        api.transmit(node, p);
    }
    fn on_receive(&mut self, _: NodeId, _: NodeId, _: f64, _: &mut dyn ProtocolApi) {}
    fn on_timer(&mut self, _: NodeId, _: u64, _: &mut dyn ProtocolApi) {}
}
