//! # Declarative world specification — scenarios as data
//!
//! A [`WorldSpec`] describes a whole simulation scenario declaratively: a
//! field, a radio, the timing of the broadcast protocol, and a set of
//! **node groups**, each with its own mobility model, placement discipline,
//! speed range and transmit-power class. The spec compiles into the
//! simulator through a single entry point,
//! [`Simulator::from_world`](crate::sim::Simulator::from_world), so adding
//! a new workload is a builder call instead of a cross-crate surgery:
//!
//! ```
//! use manet::world::{NodeGroup, WorldSpec};
//! use manet::mobility::MobilityModel;
//! use manet::protocol::Flooding;
//! use manet::sim::Simulator;
//!
//! // A mixed population: 60 random-walk handsets at full power and a
//! // backbone of 5 stationary low-power sinks — two mobility models and
//! // two radio power classes in one world.
//! let spec = WorldSpec::builder()
//!     .area(400.0, 400.0)
//!     .seed(7)
//!     .group(NodeGroup::new(60)) // paper defaults: random walk, 16.02 dBm
//!     .group(
//!         NodeGroup::new(5)
//!             .mobility(MobilityModel::Stationary)
//!             .tx_power_dbm(10.0),
//!     )
//!     .build()
//!     .expect("valid spec");
//!
//! let n = spec.n_nodes();
//! let report = Simulator::from_world(&spec, Flooding::new(n, (0.0, 0.1))).run();
//! assert_eq!(report.n_nodes, 65);
//! ```
//!
//! ## Heterogeneity without losing bit-exact parity
//!
//! Groups only vary inputs the delivery core already treats per-entity:
//! mobility segments live in per-node lanes of the kinematic snapshot
//! (which carries a per-node [`SegmentKind`](crate::mobility::SegmentKind)
//! since this API landed), and transmit power was always a per-transmission
//! quantity — the log-free decode/floor threshold bands and the
//! interference gating radius are precomputed from each frame's own
//! `tx_dbm`, so a low-power group simply produces frames with smaller
//! decode discs. All three [`DeliveryMode`]s therefore stay bit-identical
//! on heterogeneous worlds, exactly as on homogeneous ones (pinned by the
//! property suite).
//!
//! ## The scenario text grammar
//!
//! Dense scenarios have a compact text form shared by every CLI that used
//! to hand-roll its own parser (`--dense` in the bench harness):
//!
//! ```text
//! spec   := head ( '+' group )*
//! head   := n '@' per_km2 [ '@' sigma ] modifier*
//! group  := n modifier*
//! modifier := ':' ( 'still' | 'walk' [interval] | 'rwp' [pause]
//!               | 'speed' lo '-' hi
//!               | 'rect' x 'x' y '-' x 'x' y
//!               | 'at' x 'x' y ( '-' x 'x' y )*
//!               | power 'dbm' )
//! ```
//!
//! `2000@200@4` is 2000 random-walk nodes at 200 devices/km² under 4 dB
//! shadowing; `500@200+50:still:10dbm` adds a group of 50 stationary
//! 10 dBm sinks to a 500-node walking population (the field is sized so
//! the *total* population sits at the requested density).
//! [`DenseScenario::parse_spec`] and [`DenseScenario::spec_string`]
//! round-trip the grammar (`parse(format(s)) == s`, a pinned property).
//!
//! The grammar covers the **whole group surface of the builder**: mobility
//! kind (`still`/`walk`/`rwp`), the speed range the model draws from
//! (`:speed0.5-1.5`), the placement discipline — `:rect10x20-100x200` for
//! a [`GroupPlacement::Rect`] sub-rectangle (min corner – max corner),
//! `:at50x50-150x50` for [`GroupPlacement::Explicit`] positions, one
//! `x`-pair per node — and transmit power. Coordinates are field
//! coordinates and therefore non-negative, which is what lets `-`
//! separate corners and points unambiguously; none of the payloads may
//! contain `+`, `:` or `,` (those delimit groups, modifiers and the
//! `--dense` CLI list). The canonical form emitted by
//! [`DenseScenario::spec_string`] omits every default (walk 20 s, speeds
//! `[0, 2]`, uniform placement, default power) — in modifier order
//! mobility, speed, placement, power.
//!
//! The historical entry points — [`SimConfig`], `Scenario::dense`, the
//! bench `--dense` flag — are thin adapters over this module:
//! [`SimConfig::to_world`] lifts a flat config into a single-group spec,
//! and [`DenseScenario::world_spec`] compiles a density-scaled scenario
//! (heterogeneous groups included) into a [`WorldSpec`].

use crate::geometry::{Field, Vec2};
use crate::mobility::MobilityModel;
use crate::radio::RadioConfig;
use crate::sim::{DeliveryMode, NodeId, Placement, SimConfig};
use serde::{Deserialize, Serialize};

/// How one group's initial positions are chosen. Every variant draws (or
/// takes) positions in node order, so a spec is fully determined by the
/// seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GroupPlacement {
    /// Uniformly random anywhere in the field (the paper's setup).
    Uniform,
    /// Uniformly random within a sub-rectangle of the field — clustered
    /// populations (a campus, a convoy staging area) without explicit
    /// coordinates.
    Rect {
        /// Lower-left corner.
        min: Vec2,
        /// Upper-right corner (exclusive for the RNG draw).
        max: Vec2,
    },
    /// Explicit positions, one per node of the group (deterministic
    /// topologies: sinks, gateways, test chains).
    Explicit(Vec<Vec2>),
}

/// One population of identically-configured nodes inside a [`WorldSpec`]:
/// a count plus the mobility model, speed range, placement discipline and
/// transmit-power class shared by its members.
///
/// Constructed builder-style; unset knobs keep the paper's Table II
/// defaults (random walk re-drawn every 20 s, speeds in [0, 2] m/s,
/// uniform placement, the radio's default power).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeGroup {
    /// Number of nodes in this group.
    pub n: usize,
    /// Mobility model instantiated per node.
    pub mobility: MobilityModel,
    /// Speed range (m/s) the mobility model draws from.
    pub speed_range: (f64, f64),
    /// Transmit power (dBm) for this group's beacons and its default data
    /// power; `None` uses [`RadioConfig::default_tx_dbm`].
    pub tx_power_dbm: Option<f64>,
    /// Initial placement of the group's nodes.
    pub placement: GroupPlacement,
}

impl NodeGroup {
    /// A group of `n` nodes with the paper's defaults.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            mobility: MobilityModel::RandomWalk {
                change_interval: 20.0,
            },
            speed_range: (0.0, 2.0),
            tx_power_dbm: None,
            placement: GroupPlacement::Uniform,
        }
    }

    /// Sets the mobility model.
    pub fn mobility(mut self, m: MobilityModel) -> Self {
        self.mobility = m;
        self
    }

    /// Sets the speed range (m/s) drawn by the mobility model.
    pub fn speed_range(mut self, lo: f64, hi: f64) -> Self {
        self.speed_range = (lo, hi);
        self
    }

    /// Sets the group's transmit-power class (dBm).
    pub fn tx_power_dbm(mut self, dbm: f64) -> Self {
        self.tx_power_dbm = Some(dbm);
        self
    }

    /// Sets the placement discipline.
    pub fn placement(mut self, p: GroupPlacement) -> Self {
        self.placement = p;
        self
    }

    /// Whether every knob still has its default value (the implicit head
    /// group of the text grammar).
    fn is_default(&self) -> bool {
        self.mobility
            == MobilityModel::RandomWalk {
                change_interval: 20.0,
            }
            && self.speed_range == (0.0, 2.0)
            && self.tx_power_dbm.is_none()
            && self.placement == GroupPlacement::Uniform
    }

    /// The worst-case speed bound of this group (the grid staleness /
    /// refresh bound). Random waypoint clamps its draw range up to at
    /// least 0.2 m/s, mirroring the simulator's constructor.
    pub fn max_speed(&self) -> f64 {
        match self.mobility {
            MobilityModel::RandomWaypoint { .. } => self.speed_range.1.max(0.2),
            MobilityModel::Stationary => 0.0,
            MobilityModel::RandomWalk { .. } => self.speed_range.1,
        }
    }
}

/// Why a [`WorldSpec`] failed validation. The `Display` text of each
/// variant is the message [`Simulator::from_world`] panics with when handed
/// an unvalidated spec, and the error [`WorldSpecBuilder::build`] returns.
///
/// [`Simulator::from_world`]: crate::sim::Simulator::from_world
#[derive(Debug, Clone, PartialEq)]
pub enum WorldError {
    /// The spec contains no nodes at all.
    NoNodes,
    /// A group has `n == 0`.
    EmptyGroup(usize),
    /// `source` is not a valid node index.
    SourceOutOfRange {
        /// The offending source id.
        source: NodeId,
        /// Total nodes in the spec.
        n_nodes: usize,
    },
    /// An explicit placement's point count differs from the group size.
    PlacementArity {
        /// Index of the offending group.
        group: usize,
        /// Points provided.
        points: usize,
        /// Nodes in the group.
        n: usize,
    },
    /// A placement point (or rectangle) lies outside the field.
    PlacementOutsideField(usize),
    /// A placement rectangle is inverted or degenerate.
    EmptyPlacementRect(usize),
    /// A group's speed range is negative, inverted or non-finite.
    BadSpeedRange(usize),
    /// `end_time < broadcast_time`.
    BadTimes,
    /// `beacon_interval <= 0`.
    BadBeaconInterval,
}

impl std::fmt::Display for WorldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorldError::NoNodes => write!(f, "need at least one node"),
            WorldError::EmptyGroup(g) => write!(f, "group {g} is empty"),
            WorldError::SourceOutOfRange { source, n_nodes } => {
                write!(f, "source out of range: {source} >= {n_nodes}")
            }
            WorldError::PlacementArity { group, points, n } => write!(
                f,
                "placement size mismatch in group {group}: {points} points for {n} nodes"
            ),
            WorldError::PlacementOutsideField(g) => {
                write!(f, "placement outside field in group {g}")
            }
            WorldError::EmptyPlacementRect(g) => {
                write!(f, "empty placement rect in group {g}")
            }
            WorldError::BadSpeedRange(g) => write!(f, "bad speed range in group {g}"),
            WorldError::BadTimes => write!(f, "end_time must be >= broadcast_time"),
            WorldError::BadBeaconInterval => write!(f, "beacon interval must be positive"),
        }
    }
}

impl std::error::Error for WorldError {}

/// A validated, declarative description of one simulation scenario: field,
/// radio, protocol timing and a set of [`NodeGroup`]s. See the
/// [module docs](self) for the design and a worked heterogeneous example.
///
/// Build one with [`WorldSpec::builder`] (validates on
/// [`build`](WorldSpecBuilder::build)) or lift a flat [`SimConfig`] with
/// [`SimConfig::to_world`]; run it with
/// [`Simulator::from_world`](crate::sim::Simulator::from_world).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldSpec {
    /// The simulation field.
    pub field: Field,
    /// Physical layer shared by all nodes (per-group `tx_power_dbm`
    /// overrides only the transmit power class).
    pub radio: RadioConfig,
    /// The node populations, concatenated in order: group 0 holds node ids
    /// `0..groups[0].n`, group 1 the next block, and so on.
    pub groups: Vec<NodeGroup>,
    /// Beacon (hello) period in seconds.
    pub beacon_interval: f64,
    /// Neighbour entries older than this many seconds are considered gone.
    pub neighbor_expiry: f64,
    /// Time the broadcast starts (warm-up before it).
    pub broadcast_time: f64,
    /// End of the simulation.
    pub end_time: f64,
    /// The broadcasting source node (a global node id).
    pub source: NodeId,
    /// RNG seed — fixing it fixes the network: placement, mobility and
    /// beacon phases all derive from it.
    pub seed: u64,
    /// The delivery-resolution path
    /// [`Simulator::from_world`](crate::sim::Simulator::from_world)
    /// selects.
    pub delivery_mode: DeliveryMode,
}

impl WorldSpec {
    /// A builder seeded with the paper's Table II defaults (500 m field,
    /// ns-3 radio, broadcast at 30 s, end at 40 s, source 0, seed 0).
    pub fn builder() -> WorldSpecBuilder {
        WorldSpecBuilder {
            spec: WorldSpec {
                field: Field::paper(),
                radio: RadioConfig::paper(),
                groups: Vec::new(),
                beacon_interval: 1.0,
                neighbor_expiry: 2.5,
                broadcast_time: 30.0,
                end_time: 40.0,
                source: 0,
                seed: 0,
                delivery_mode: DeliveryMode::default(),
            },
        }
    }

    /// Total node count across all groups.
    pub fn n_nodes(&self) -> usize {
        self.groups.iter().map(|g| g.n).sum()
    }

    /// The largest transmit power (dBm) any node of this world beacons at
    /// — what the spatial index sizes its cells against.
    pub fn max_tx_dbm(&self) -> f64 {
        self.groups
            .iter()
            .map(|g| g.tx_power_dbm.unwrap_or(self.radio.default_tx_dbm))
            .fold(self.radio.default_tx_dbm, f64::max)
    }

    /// Worst-case node speed (m/s) across all groups — the bound the
    /// horizon-rebuild staleness margin and the half-duplex drift reach
    /// are derived from.
    pub fn max_speed(&self) -> f64 {
        self.groups
            .iter()
            .map(|g| g.max_speed())
            .fold(0.0, f64::max)
    }

    /// Checks every structural invariant the simulator will otherwise
    /// panic on; [`WorldSpecBuilder::build`] calls this for you.
    pub fn validate(&self) -> Result<(), WorldError> {
        if self.n_nodes() == 0 {
            return Err(WorldError::NoNodes);
        }
        for (gi, g) in self.groups.iter().enumerate() {
            if g.n == 0 {
                return Err(WorldError::EmptyGroup(gi));
            }
            let (lo, hi) = g.speed_range;
            if !(lo >= 0.0 && hi >= lo && hi.is_finite()) {
                return Err(WorldError::BadSpeedRange(gi));
            }
            match &g.placement {
                GroupPlacement::Uniform => {}
                GroupPlacement::Rect { min, max } => {
                    if !(min.x < max.x && min.y < max.y) {
                        return Err(WorldError::EmptyPlacementRect(gi));
                    }
                    if !(self.field.contains(*min) && self.field.contains(*max)) {
                        return Err(WorldError::PlacementOutsideField(gi));
                    }
                }
                GroupPlacement::Explicit(pts) => {
                    if pts.len() != g.n {
                        return Err(WorldError::PlacementArity {
                            group: gi,
                            points: pts.len(),
                            n: g.n,
                        });
                    }
                    if !pts.iter().all(|p| self.field.contains(*p)) {
                        return Err(WorldError::PlacementOutsideField(gi));
                    }
                }
            }
        }
        if self.source >= self.n_nodes() {
            return Err(WorldError::SourceOutOfRange {
                source: self.source,
                n_nodes: self.n_nodes(),
            });
        }
        if self.end_time < self.broadcast_time {
            return Err(WorldError::BadTimes);
        }
        let beacon_ok = self.beacon_interval.is_finite() && self.beacon_interval > 0.0;
        if !beacon_ok {
            return Err(WorldError::BadBeaconInterval);
        }
        Ok(())
    }
}

/// Chainable constructor for [`WorldSpec`]; see [`WorldSpec::builder`].
#[derive(Debug, Clone)]
pub struct WorldSpecBuilder {
    spec: WorldSpec,
}

impl WorldSpecBuilder {
    /// Sets a `width × height` metre field.
    pub fn area(mut self, width: f64, height: f64) -> Self {
        self.spec.field = Field::new(width, height);
        self
    }

    /// Sets the field directly.
    pub fn field(mut self, field: Field) -> Self {
        self.spec.field = field;
        self
    }

    /// Sets the shared physical layer.
    pub fn radio(mut self, radio: RadioConfig) -> Self {
        self.spec.radio = radio;
        self
    }

    /// Appends a node group (node ids continue from the previous group).
    pub fn group(mut self, group: NodeGroup) -> Self {
        self.spec.groups.push(group);
        self
    }

    /// Sets the beacon (hello) period in seconds.
    pub fn beacon_interval(mut self, seconds: f64) -> Self {
        self.spec.beacon_interval = seconds;
        self
    }

    /// Sets the neighbour-table expiry in seconds.
    pub fn neighbor_expiry(mut self, seconds: f64) -> Self {
        self.spec.neighbor_expiry = seconds;
        self
    }

    /// Sets the traffic pattern: broadcast start and simulation end (s).
    pub fn broadcast_window(mut self, broadcast_time: f64, end_time: f64) -> Self {
        self.spec.broadcast_time = broadcast_time;
        self.spec.end_time = end_time;
        self
    }

    /// Sets the broadcasting source node (global id).
    pub fn source(mut self, source: NodeId) -> Self {
        self.spec.source = source;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Sets the delivery-resolution path
    /// ([`DeliveryMode::Incremental`] unless overridden).
    pub fn delivery_mode(mut self, mode: DeliveryMode) -> Self {
        self.spec.delivery_mode = mode;
        self
    }

    /// Validates and returns the spec.
    pub fn build(self) -> Result<WorldSpec, WorldError> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

impl SimConfig {
    /// Lifts this flat configuration into a single-group [`WorldSpec`] —
    /// the adapter that keeps the historical `SimConfig` construction
    /// working while the engine itself speaks [`WorldSpec`]. The
    /// conversion is exact: compiling the result reproduces the historical
    /// simulation bit-for-bit (same RNG draw order, same thresholds).
    pub fn to_world(&self) -> WorldSpec {
        let placement = match &self.placement {
            Placement::UniformRandom => GroupPlacement::Uniform,
            Placement::Explicit(pts) => GroupPlacement::Explicit(pts.clone()),
        };
        WorldSpec {
            field: self.field,
            radio: self.radio,
            groups: vec![NodeGroup {
                n: self.n_nodes,
                mobility: self.mobility,
                speed_range: self.speed_range,
                tx_power_dbm: None,
                placement,
            }],
            beacon_interval: self.beacon_interval,
            neighbor_expiry: self.neighbor_expiry,
            broadcast_time: self.broadcast_time,
            end_time: self.end_time,
            source: self.source,
            seed: self.seed,
            delivery_mode: DeliveryMode::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Dense scenarios and the shared text grammar
// ---------------------------------------------------------------------------

/// A beyond-paper dense evaluation scenario: an areal density plus an
/// explicit node count (and optionally heterogeneous [`NodeGroup`]s). The
/// field grows so that `area = n_nodes / per_km2`, holding the density
/// (and therefore the local connectivity structure) fixed while the
/// network scales — the regime where the simulator's incremental spatial
/// grid turns an O(n²) beacon interval into a near-O(n) one. Optional
/// log-normal shadowing exercises the bounded-tail grid query
/// ([`crate::radio::SHADOW_TAIL_SIGMAS`]).
///
/// `groups` empty means one homogeneous paper-default population of
/// `n_nodes` (the historical behaviour); non-empty groups partition
/// `n_nodes` exactly. The text grammar (see the [module docs](self))
/// round-trips through [`parse_spec`](Self::parse_spec) /
/// [`spec_string`](Self::spec_string).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseScenario {
    /// Devices per square kilometre (of the *total* population).
    pub per_km2: u32,
    /// Total devices across all groups.
    pub n_nodes: usize,
    /// Base seed; network `k` uses `base_seed + k`.
    pub base_seed: u64,
    /// Log-normal shadowing σ (dB); `0` disables it.
    pub shadowing_sigma_db: f64,
    /// Heterogeneous node groups; empty = one homogeneous default group.
    pub groups: Vec<NodeGroup>,
}

impl DenseScenario {
    /// Scale-up presets: paper densities, 10–20× the paper's node counts.
    pub const PRESETS: [DenseScenario; 3] = [
        DenseScenario {
            per_km2: 200,
            n_nodes: 500,
            base_seed: 7_200_500,
            shadowing_sigma_db: 0.0,
            groups: Vec::new(),
        },
        DenseScenario {
            per_km2: 300,
            n_nodes: 750,
            base_seed: 7_300_750,
            shadowing_sigma_db: 0.0,
            groups: Vec::new(),
        },
        DenseScenario {
            per_km2: 400,
            n_nodes: 1000,
            base_seed: 7_401_000,
            shadowing_sigma_db: 0.0,
            groups: Vec::new(),
        },
    ];

    /// Extreme-scale presets (10⁴ nodes): the incremental-grid regime.
    pub const XL_PRESETS: [DenseScenario; 3] = [
        DenseScenario {
            per_km2: 300,
            n_nodes: 5_000,
            base_seed: 7_305_000,
            shadowing_sigma_db: 0.0,
            groups: Vec::new(),
        },
        DenseScenario {
            per_km2: 400,
            n_nodes: 10_000,
            base_seed: 7_410_000,
            shadowing_sigma_db: 0.0,
            groups: Vec::new(),
        },
        DenseScenario {
            per_km2: 400,
            n_nodes: 100_000,
            base_seed: 7_500_000,
            shadowing_sigma_db: 0.0,
            groups: Vec::new(),
        },
    ];

    /// Shadowed-dense presets: urban-like 4 dB log-normal shadowing at the
    /// paper's middle density — the workload the bounded-tail grid query
    /// exists for (it used to force the naive O(n²) scan).
    pub const SHADOWED_PRESETS: [DenseScenario; 2] = [
        DenseScenario {
            per_km2: 200,
            n_nodes: 1_000,
            base_seed: 7_201_000,
            shadowing_sigma_db: 4.0,
            groups: Vec::new(),
        },
        DenseScenario {
            per_km2: 200,
            n_nodes: 2_000,
            base_seed: 7_202_000,
            shadowing_sigma_db: 4.0,
            groups: Vec::new(),
        },
    ];

    /// The heterogeneous preset of the scale experiments: 1000 paper-default
    /// walkers plus a 500-node stationary mesh at 20 dBm, at the paper's
    /// middle density (`1000@200+500:still:20dbm` in the shared grammar).
    /// Mixed mobility and mixed power exercise the per-group code paths —
    /// max-gate-radius growth, stationary re-anchor elision — that the
    /// homogeneous presets cannot. A fn rather than a const because
    /// non-empty group vectors are not const-constructible.
    pub fn hetero_preset() -> Self {
        Self::parse_spec("1000@200+500:still:20dbm").expect("preset spec is valid")
    }

    /// A scenario with the given density and node count (no shadowing,
    /// homogeneous).
    pub fn new(per_km2: u32, n_nodes: usize) -> Self {
        assert!(per_km2 > 0 && n_nodes > 0);
        Self {
            per_km2,
            n_nodes,
            base_seed: 7_000_000 + per_km2 as u64 * 10_000 + n_nodes as u64,
            shadowing_sigma_db: 0.0,
            groups: Vec::new(),
        }
    }

    /// The same scenario with log-normal shadowing of `sigma_db` enabled.
    pub fn with_shadowing(mut self, sigma_db: f64) -> Self {
        assert!(sigma_db >= 0.0 && sigma_db.is_finite());
        self.shadowing_sigma_db = sigma_db;
        self
    }

    /// Appends a heterogeneous group, growing the total population (and
    /// therefore the field, which holds the density fixed). A homogeneous
    /// scenario first materialises its implicit default group so existing
    /// nodes keep their ids. A `base_seed` still at its derived default is
    /// re-derived from the new total (matching what
    /// [`parse_spec`](Self::parse_spec) produces for the same text);
    /// explicitly overridden seeds are left alone.
    pub fn with_group(mut self, group: NodeGroup) -> Self {
        assert!(group.n > 0, "group must not be empty");
        if self.groups.is_empty() {
            self.groups.push(NodeGroup::new(self.n_nodes));
        }
        let derived = |n: usize| 7_000_000 + self.per_km2 as u64 * 10_000 + n as u64;
        let seed_is_default = self.base_seed == derived(self.n_nodes);
        self.n_nodes += group.n;
        if seed_is_default {
            self.base_seed = derived(self.n_nodes);
        }
        self.groups.push(group);
        self
    }

    /// Whether the scenario is a single paper-default population — the
    /// subset [`sim_config`](Self::sim_config) can represent.
    pub fn is_homogeneous(&self) -> bool {
        self.groups.is_empty() || (self.groups.len() == 1 && self.groups[0].is_default())
    }

    /// The square field holding `n_nodes` at `per_km2` devices/km².
    pub fn field(&self) -> Field {
        let area_km2 = self.n_nodes as f64 / self.per_km2 as f64;
        let side_m = (area_km2 * 1e6).sqrt();
        Field::new(side_m, side_m)
    }

    /// The homogeneous base configuration of network `k`: Table II's
    /// physical setup on the scaled field with the scenario's shadowing.
    fn base_config(&self, k: usize) -> SimConfig {
        let mut c = SimConfig::paper(self.n_nodes, self.base_seed + k as u64);
        c.field = self.field();
        c.radio.shadowing_sigma_db = self.shadowing_sigma_db;
        c
    }

    /// Simulator configuration of network `k` — only valid for
    /// [homogeneous](Self::is_homogeneous) scenarios (a flat [`SimConfig`]
    /// cannot express groups); heterogeneous scenarios compile through
    /// [`world_spec`](Self::world_spec).
    pub fn sim_config(&self, k: usize) -> SimConfig {
        assert!(
            self.is_homogeneous(),
            "heterogeneous DenseScenario has no flat SimConfig; use world_spec()"
        );
        self.base_config(k)
    }

    /// Compiles network `k` into a [`WorldSpec`]: Table II's physical
    /// setup (inherited from [`SimConfig::paper`] so the scale experiments
    /// can never drift from the paper protocol) on the density-scaled
    /// field, with this scenario's groups applied.
    pub fn world_spec(&self, k: usize) -> WorldSpec {
        let mut w = self.base_config(k).to_world();
        if !self.groups.is_empty() {
            w.groups = self.groups.clone();
        }
        w
    }

    /// Parses the scenario text grammar (see the [module docs](self)):
    /// `n@density[@sigma]` optionally followed by `+n`-groups with
    /// `:still` / `:walk[interval]` / `:rwp[pause]` / `:speedLO-HI` /
    /// `:rectXxY-XxY` / `:atXxY[-XxY...]` / `:POWERdbm` modifiers.
    /// Strict: malformed component counts, empty or non-numeric fields,
    /// unknown modifiers, inverted speed ranges or rectangles, negative
    /// coordinates and explicit placements whose point count differs from
    /// the group size are errors, never silently part-parsed.
    pub fn parse_spec(spec: &str) -> Result<Self, SpecError> {
        let err = |detail: &str| SpecError {
            spec: spec.to_string(),
            detail: detail.to_string(),
        };
        let mut segments = spec.trim().split('+');
        let head = segments.next().expect("split yields at least one");
        let mut head_fields = head.trim().split(':');
        let density_part = head_fields.next().expect("split yields at least one");
        let parts: Vec<&str> = density_part.trim().split('@').collect();
        if !(2..=3).contains(&parts.len()) {
            return Err(err("expected 2 or 3 @-separated components"));
        }
        let head_n: usize = parts[0].trim().parse().map_err(|_| err("bad node count"))?;
        let per_km2: u32 = parts[1].trim().parse().map_err(|_| err("bad density"))?;
        if head_n == 0 {
            return Err(err("bad node count"));
        }
        if per_km2 == 0 {
            return Err(err("bad density"));
        }
        let sigma: f64 = match parts.get(2) {
            None => 0.0,
            Some(s) => {
                let v: f64 = s.trim().parse().map_err(|_| err("bad shadowing sigma"))?;
                if !(v >= 0.0 && v.is_finite()) {
                    return Err(err("bad shadowing sigma"));
                }
                v
            }
        };
        let mut groups = vec![parse_group_modifiers(
            NodeGroup::new(head_n),
            head_fields,
            &err,
        )?];
        for seg in segments {
            let mut fields = seg.trim().split(':');
            let n: usize = fields
                .next()
                .expect("split yields at least one")
                .trim()
                .parse()
                .map_err(|_| err("bad node count"))?;
            if n == 0 {
                return Err(err("bad node count"));
            }
            groups.push(parse_group_modifiers(NodeGroup::new(n), fields, &err)?);
        }
        let n_nodes: usize = groups.iter().map(|g| g.n).sum();
        let mut d = DenseScenario::new(per_km2, n_nodes);
        if sigma > 0.0 {
            d = d.with_shadowing(sigma);
        }
        // Canonical homogeneous form: a single all-default group is the
        // implicit head, so `parse(format(s)) == s` holds for specs built
        // with `DenseScenario::new`.
        if !(groups.len() == 1 && groups[0].is_default()) {
            d.groups = groups;
        }
        Ok(d)
    }

    /// The canonical text form of this scenario in the shared grammar —
    /// the inverse of [`parse_spec`](Self::parse_spec)
    /// (`parse_spec(spec_string(s)) == s` for every grammar-expressible
    /// scenario; builder-only knobs like explicit placements have no text
    /// form and are omitted).
    pub fn spec_string(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let head_n = self.groups.first().map_or(self.n_nodes, |g| g.n);
        write!(out, "{head_n}@{}", self.per_km2).expect("string write");
        if self.shadowing_sigma_db > 0.0 {
            write!(out, "@{}", self.shadowing_sigma_db).expect("string write");
        }
        if let Some(head) = self.groups.first() {
            format_group_modifiers(&mut out, head);
        }
        for g in self.groups.iter().skip(1) {
            write!(out, "+{}", g.n).expect("string write");
            format_group_modifiers(&mut out, g);
        }
        out
    }
}

/// Applies `:modifier` fields to a group being parsed from the grammar.
fn parse_group_modifiers<'a, I, F>(
    mut group: NodeGroup,
    fields: I,
    err: &F,
) -> Result<NodeGroup, SpecError>
where
    I: Iterator<Item = &'a str>,
    F: Fn(&str) -> SpecError,
{
    let (mut saw_mobility, mut saw_power) = (false, false);
    let (mut saw_speed, mut saw_placement) = (false, false);
    // A field coordinate: non-negative and finite, so `-` can separate
    // corners and points without colliding with a sign.
    let coord = |s: &str, detail: &'static str| -> Result<f64, SpecError> {
        let v: f64 = s.trim().parse().map_err(|_| err(detail))?;
        if !(v >= 0.0 && v.is_finite()) {
            return Err(err(detail));
        }
        Ok(v)
    };
    let point = |s: &str, detail: &'static str| -> Result<Vec2, SpecError> {
        let (x, y) = s.split_once('x').ok_or_else(|| err(detail))?;
        Ok(Vec2::new(coord(x, detail)?, coord(y, detail)?))
    };
    for field in fields {
        let m = field.trim();
        if let Some(power) = m.strip_suffix("dbm") {
            if saw_power {
                return Err(err("duplicate power modifier"));
            }
            saw_power = true;
            let dbm: f64 = power.trim().parse().map_err(|_| err("bad power"))?;
            if !dbm.is_finite() {
                return Err(err("bad power"));
            }
            group.tx_power_dbm = Some(dbm);
            continue;
        }
        if let Some(range) = m.strip_prefix("speed") {
            if saw_speed {
                return Err(err("duplicate speed modifier"));
            }
            saw_speed = true;
            let (lo, hi) = range
                .split_once('-')
                .ok_or_else(|| err("bad speed range"))?;
            let lo = coord(lo, "bad speed range")?;
            let hi = coord(hi, "bad speed range")?;
            if hi < lo {
                return Err(err("bad speed range"));
            }
            group.speed_range = (lo, hi);
            continue;
        }
        if let Some(corners) = m.strip_prefix("rect") {
            if saw_placement {
                return Err(err("duplicate placement modifier"));
            }
            saw_placement = true;
            let (min, max) = corners
                .split_once('-')
                .ok_or_else(|| err("bad placement rect"))?;
            let min = point(min, "bad placement rect")?;
            let max = point(max, "bad placement rect")?;
            if !(min.x < max.x && min.y < max.y) {
                return Err(err("bad placement rect"));
            }
            group.placement = GroupPlacement::Rect { min, max };
            continue;
        }
        if let Some(points) = m.strip_prefix("at") {
            if saw_placement {
                return Err(err("duplicate placement modifier"));
            }
            saw_placement = true;
            let pts = points
                .split('-')
                .map(|p| point(p, "bad placement point"))
                .collect::<Result<Vec<_>, _>>()?;
            if pts.len() != group.n {
                return Err(err("placement point count differs from group size"));
            }
            group.placement = GroupPlacement::Explicit(pts);
            continue;
        }
        if saw_mobility {
            return Err(err("duplicate mobility modifier"));
        }
        saw_mobility = true;
        group.mobility = if m == "still" {
            MobilityModel::Stationary
        } else if let Some(rest) = m.strip_prefix("walk") {
            let change_interval = if rest.is_empty() {
                20.0
            } else {
                let v: f64 = rest.parse().map_err(|_| err("bad walk interval"))?;
                if !(v > 0.0 && v.is_finite()) {
                    return Err(err("bad walk interval"));
                }
                v
            };
            MobilityModel::RandomWalk { change_interval }
        } else if let Some(rest) = m.strip_prefix("rwp") {
            let pause = if rest.is_empty() {
                0.0
            } else {
                let v: f64 = rest.parse().map_err(|_| err("bad waypoint pause"))?;
                if !(v >= 0.0 && v.is_finite()) {
                    return Err(err("bad waypoint pause"));
                }
                v
            };
            MobilityModel::RandomWaypoint { pause }
        } else {
            return Err(err("unknown group modifier"));
        };
    }
    Ok(group)
}

/// Writes a group's `:modifier` suffixes in canonical form.
fn format_group_modifiers(out: &mut String, g: &NodeGroup) {
    use std::fmt::Write;
    match g.mobility {
        MobilityModel::RandomWalk { change_interval } => {
            if change_interval != 20.0 {
                write!(out, ":walk{change_interval}").expect("string write");
            }
        }
        MobilityModel::RandomWaypoint { pause } => {
            if pause == 0.0 {
                out.push_str(":rwp");
            } else {
                write!(out, ":rwp{pause}").expect("string write");
            }
        }
        MobilityModel::Stationary => out.push_str(":still"),
    }
    if g.speed_range != (0.0, 2.0) {
        let (lo, hi) = g.speed_range;
        write!(out, ":speed{lo}-{hi}").expect("string write");
    }
    match &g.placement {
        GroupPlacement::Uniform => {}
        GroupPlacement::Rect { min, max } => {
            write!(out, ":rect{}x{}-{}x{}", min.x, min.y, max.x, max.y).expect("string write");
        }
        GroupPlacement::Explicit(pts) => {
            out.push_str(":at");
            for (i, p) in pts.iter().enumerate() {
                if i > 0 {
                    out.push('-');
                }
                write!(out, "{}x{}", p.x, p.y).expect("string write");
            }
        }
    }
    if let Some(dbm) = g.tx_power_dbm {
        write!(out, ":{dbm}dbm").expect("string write");
    }
}

impl std::fmt::Display for DenseScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} nodes @ {} dev/km²", self.n_nodes, self.per_km2)?;
        if self.shadowing_sigma_db > 0.0 {
            write!(f, " (σ={} dB)", self.shadowing_sigma_db)?;
        }
        if !self.groups.is_empty() {
            write!(f, " [{} groups]", self.groups.len())?;
        }
        Ok(())
    }
}

/// A scenario text that does not parse under the shared grammar; `detail`
/// keeps the historical `--dense` error wording (`"bad node count"`,
/// `"bad density"`, `"bad shadowing sigma"`, …) so CLI messages stay
/// stable.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError {
    /// The offending input.
    pub spec: String,
    /// What was wrong with it.
    pub detail: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad scenario spec {:?}: {}", self.spec, self.detail)
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper_config() {
        let spec = WorldSpec::builder()
            .group(NodeGroup::new(50))
            .seed(9)
            .build()
            .expect("valid");
        assert_eq!(spec, {
            let mut c = SimConfig::paper(50, 9).to_world();
            c.delivery_mode = DeliveryMode::Incremental;
            c
        });
        assert_eq!(spec.n_nodes(), 50);
        assert_eq!(spec.max_tx_dbm(), 16.02);
        assert_eq!(spec.max_speed(), 2.0);
    }

    #[test]
    fn builder_validates() {
        let b = || WorldSpec::builder().group(NodeGroup::new(10));
        assert_eq!(
            WorldSpec::builder().build().unwrap_err(),
            WorldError::NoNodes
        );
        assert_eq!(
            b().group(NodeGroup::new(0)).build().unwrap_err(),
            WorldError::EmptyGroup(1)
        );
        assert!(matches!(
            b().source(10).build().unwrap_err(),
            WorldError::SourceOutOfRange { .. }
        ));
        assert_eq!(
            b().broadcast_window(30.0, 20.0).build().unwrap_err(),
            WorldError::BadTimes
        );
        assert_eq!(
            b().beacon_interval(0.0).build().unwrap_err(),
            WorldError::BadBeaconInterval
        );
        assert_eq!(
            b().group(NodeGroup::new(3).speed_range(2.0, 1.0))
                .build()
                .unwrap_err(),
            WorldError::BadSpeedRange(1)
        );
        assert!(matches!(
            b().group(
                NodeGroup::new(2).placement(GroupPlacement::Explicit(vec![Vec2::new(1.0, 1.0)]))
            )
            .build()
            .unwrap_err(),
            WorldError::PlacementArity {
                group: 1,
                points: 1,
                n: 2
            }
        ));
        assert_eq!(
            b().group(
                NodeGroup::new(1).placement(GroupPlacement::Explicit(vec![Vec2::new(-1.0, 0.0)]))
            )
            .build()
            .unwrap_err(),
            WorldError::PlacementOutsideField(1)
        );
        assert_eq!(
            b().group(NodeGroup::new(4).placement(GroupPlacement::Rect {
                min: Vec2::new(9.0, 9.0),
                max: Vec2::new(3.0, 12.0),
            }))
            .build()
            .unwrap_err(),
            WorldError::EmptyPlacementRect(1)
        );
        // error text is what the simulator panics with
        assert!(WorldError::NoNodes.to_string().contains("at least one"));
        assert!(WorldError::PlacementArity {
            group: 0,
            points: 1,
            n: 2
        }
        .to_string()
        .contains("placement size mismatch"));
    }

    #[test]
    fn max_bounds_cover_all_groups() {
        let spec = WorldSpec::builder()
            .group(NodeGroup::new(10).tx_power_dbm(5.0))
            .group(
                NodeGroup::new(10)
                    .mobility(MobilityModel::RandomWaypoint { pause: 1.0 })
                    .speed_range(0.05, 0.1),
            )
            .group(NodeGroup::new(10).tx_power_dbm(20.0))
            .build()
            .expect("valid");
        assert_eq!(spec.max_tx_dbm(), 20.0);
        // RWP clamps its range up to 0.2 m/s; walk group caps at 2.0
        assert_eq!(spec.max_speed(), 2.0);
        let solo = WorldSpec::builder()
            .group(
                NodeGroup::new(5)
                    .mobility(MobilityModel::RandomWaypoint { pause: 1.0 })
                    .speed_range(0.05, 0.1),
            )
            .build()
            .expect("valid");
        assert_eq!(solo.max_speed(), 0.2);
    }

    #[test]
    fn sim_config_round_trips_to_world() {
        let mut c = SimConfig::paper(30, 5);
        c.placement =
            Placement::Explicit((0..30).map(|i| Vec2::new(10.0 + i as f64, 20.0)).collect());
        let w = c.to_world();
        assert_eq!(w.n_nodes(), 30);
        assert_eq!(w.groups.len(), 1);
        assert_eq!(w.seed, 5);
        assert!(matches!(
            &w.groups[0].placement,
            GroupPlacement::Explicit(pts) if pts.len() == 30
        ));
        w.validate().expect("paper config is valid");
    }

    #[test]
    fn grammar_parses_historical_specs() {
        let d = DenseScenario::parse_spec("2000@200").expect("valid");
        assert_eq!(d, DenseScenario::new(200, 2000));
        let d = DenseScenario::parse_spec(" 1000@200@4 ").expect("valid");
        assert_eq!(d, DenseScenario::new(200, 1000).with_shadowing(4.0));
        assert!(d.is_homogeneous());
    }

    #[test]
    fn grammar_parses_heterogeneous_groups() {
        let d = DenseScenario::parse_spec("500@200@4+50:still:10dbm+20:rwp2.5").expect("valid");
        assert_eq!(d.n_nodes, 570);
        assert_eq!(d.per_km2, 200);
        assert_eq!(d.shadowing_sigma_db, 4.0);
        assert_eq!(d.groups.len(), 3);
        assert_eq!(d.groups[0], NodeGroup::new(500));
        assert_eq!(
            d.groups[1],
            NodeGroup::new(50)
                .mobility(MobilityModel::Stationary)
                .tx_power_dbm(10.0)
        );
        assert_eq!(
            d.groups[2],
            NodeGroup::new(20).mobility(MobilityModel::RandomWaypoint { pause: 2.5 })
        );
        assert!(!d.is_homogeneous());
        // base seed follows the total population, like `new`
        assert_eq!(d.base_seed, 7_000_000 + 200 * 10_000 + 570);
    }

    #[test]
    fn grammar_parses_placement_and_speed() {
        let d = DenseScenario::parse_spec(
            "200@200+10:still:rect10x20-100x200:5dbm+2:at1x2-3.5x4:speed0.5-1.5",
        )
        .expect("valid");
        assert_eq!(d.n_nodes, 212);
        assert_eq!(d.groups.len(), 3);
        assert_eq!(
            d.groups[1],
            NodeGroup::new(10)
                .mobility(MobilityModel::Stationary)
                .placement(GroupPlacement::Rect {
                    min: Vec2::new(10.0, 20.0),
                    max: Vec2::new(100.0, 200.0),
                })
                .tx_power_dbm(5.0)
        );
        assert_eq!(
            d.groups[2],
            NodeGroup::new(2)
                .speed_range(0.5, 1.5)
                .placement(GroupPlacement::Explicit(vec![
                    Vec2::new(1.0, 2.0),
                    Vec2::new(3.5, 4.0),
                ]))
        );
        // modifier order in the text is free; the canonical form is fixed
        assert_eq!(
            d.spec_string(),
            "200@200+10:still:rect10x20-100x200:5dbm+2:speed0.5-1.5:at1x2-3.5x4"
        );
    }

    #[test]
    fn grammar_round_trips() {
        for text in [
            "2000@200",
            "1000@200@4",
            "500@200+50:still:10dbm",
            "500@300@6:walk5+50:rwp+20:rwp1.5:0.5dbm",
            "100@100:still",
            "500@200+50:speed0-3.5",
            "400@200@2+10:still:rect10x20-100x120:8dbm",
            "100@100+3:at1x2-3x4-5x6",
            "60@150:speed0.25-1:rect0x0-50x50",
        ] {
            let d = DenseScenario::parse_spec(text).expect("valid");
            assert_eq!(d.spec_string(), text, "canonical form");
            assert_eq!(
                DenseScenario::parse_spec(&d.spec_string()).expect("valid"),
                d,
                "round trip of {text}"
            );
        }
        // constructed scenarios round-trip too
        let d = DenseScenario::new(250, 800)
            .with_shadowing(2.5)
            .with_group(NodeGroup::new(40).mobility(MobilityModel::Stationary));
        assert_eq!(
            DenseScenario::parse_spec(&d.spec_string()).expect("valid"),
            d
        );
    }

    #[test]
    fn grammar_rejects_malformed_specs() {
        for (text, detail) in [
            ("2000@200@4@", "expected 2 or 3 @-separated components"),
            ("2000@200@4@9", "expected 2 or 3 @-separated components"),
            ("2000", "expected 2 or 3 @-separated components"),
            ("2000@", "bad density"),
            ("many@200", "bad node count"),
            ("0@200", "bad node count"),
            ("2000@0", "bad density"),
            ("2000@200@x", "bad shadowing sigma"),
            ("2000@200@-4", "bad shadowing sigma"),
            ("500@200+x", "bad node count"),
            ("500@200+0", "bad node count"),
            ("500@200+50:hover", "unknown group modifier"),
            ("500@200+50:walkx", "bad walk interval"),
            ("500@200+50:walk0", "bad walk interval"),
            ("500@200+50:rwp-1", "bad waypoint pause"),
            ("500@200+50:xdbm", "bad power"),
            ("500@200+50:still:walk", "duplicate mobility modifier"),
            ("500@200+50:1dbm:2dbm", "duplicate power modifier"),
            ("500@200+50:speed2", "bad speed range"),
            ("500@200+50:speed3-1", "bad speed range"),
            ("500@200+50:speedx-1", "bad speed range"),
            ("500@200+50:speed1-2:speed1-2", "duplicate speed modifier"),
            ("500@200+50:rect10x20", "bad placement rect"),
            ("500@200+50:rect10x20-5x30", "bad placement rect"),
            ("500@200+50:rect10,20,30,40", "bad placement rect"),
            ("500@200+2:at1x2-3xq", "bad placement point"),
            (
                "500@200+2:at1x2",
                "placement point count differs from group size",
            ),
            (
                "500@200+50:rect0x0-9x9:at1x2",
                "duplicate placement modifier",
            ),
        ] {
            let e = DenseScenario::parse_spec(text).expect_err(text);
            assert_eq!(e.detail, detail, "for {text}");
            assert!(e.to_string().contains(detail));
        }
    }

    #[test]
    fn heterogeneous_world_spec_partitions_population() {
        let d = DenseScenario::parse_spec("400@200+100:still:8dbm").expect("valid");
        let w = d.world_spec(3);
        assert_eq!(w.n_nodes(), 500);
        assert_eq!(w.seed, d.base_seed + 3);
        assert_eq!(w.groups.len(), 2);
        assert_eq!(w.groups[1].tx_power_dbm, Some(8.0));
        // the field holds the density for the *total* population
        assert!((w.field.area() - 2.5e6).abs() < 1.0);
        w.validate().expect("valid world");
        // homogeneous path stays the historical SimConfig conversion
        let h = DenseScenario::new(200, 500);
        assert_eq!(h.world_spec(1), h.sim_config(1).to_world());
    }

    #[test]
    #[should_panic(expected = "no flat SimConfig")]
    fn heterogeneous_sim_config_panics() {
        let d = DenseScenario::parse_spec("400@200+100:still").expect("valid");
        let _ = d.sim_config(0);
    }

    #[test]
    fn with_group_materialises_the_implicit_head() {
        let d = DenseScenario::new(200, 500)
            .with_group(NodeGroup::new(100).mobility(MobilityModel::Stationary));
        assert_eq!(d.n_nodes, 600);
        assert_eq!(d.groups.len(), 2);
        assert_eq!(d.groups[0].n, 500);
        assert_eq!(d.spec_string(), "500@200+100:still");
    }
}
