//! A tiny persistent worker pool for space-sharded delivery resolution.
//!
//! The sharded delivery path ([`Simulator::set_delivery_shards`]) flushes a
//! batch of queued beacon deliveries a few hundred thousand times per large
//! run, and each flush carries only tens of microseconds of work. Spawning
//! scoped threads per flush (or going through the vendored `rayon`'s
//! per-call `par_map_indexed`) costs more than the work itself, so the pool
//! keeps `shards - 1` helper threads alive for the lifetime of the
//! simulator and hands them *borrowed* closures:
//!
//! * [`ShardPool::run`] publishes a type-erased pointer to a caller-stack
//!   closure, bumps an epoch counter, runs shard 0 on the calling thread,
//!   and then waits until every helper has finished. Because the caller
//!   blocks inside `run`, the borrowed closure (and everything it
//!   references) outlives the helpers' use of it — the `unsafe` erasure is
//!   contained in this module.
//! * Helpers spin briefly on the epoch (the common case: flushes arrive
//!   back-to-back while a batch drains), yielding periodically so
//!   oversubscribed hosts still make progress, and park on a condvar when
//!   the simulator goes quiet between batches.
//!
//! The pool is deliberately *not* a general executor: one job at a time,
//! caller participates as shard 0, helpers are indexed `1..shards` so a
//! job can slice mutable per-shard state by worker index without locks.
//!
//! [`Simulator::set_delivery_shards`]: crate::sim::Simulator::set_delivery_shards

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Spin iterations a helper burns on the epoch before parking on the
/// condvar. Flushes inside a busy run arrive well within this window; the
/// periodic `yield_now` keeps single-core hosts live.
const SPIN_LIMIT: u32 = 4096;

/// A type-erased borrowed job: a pointer to a caller-stack closure plus
/// the monomorphised trampoline that invokes it with a worker index.
///
/// Safety: the pointer is only dereferenced while [`ShardPool::run`] is
/// blocked waiting for helpers, so the closure is always alive.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

// SAFETY: `data` points at a closure that is `Sync` (enforced by the
// bound on `run`) and outlives every use (the caller blocks in `run`).
unsafe impl Send for Job {}

struct Shared {
    /// Bumped once per published job; helpers watch it for work.
    epoch: AtomicU64,
    /// Helpers still running the current job; `run` waits for zero.
    active: AtomicUsize,
    /// Helpers currently parked on the condvar (fast-path notify guard).
    parked: AtomicUsize,
    shutdown: AtomicBool,
    /// The published job. Written under the mutex *before* the epoch bump
    /// so a woken helper always observes it.
    job: Mutex<Option<Job>>,
    cv: Condvar,
}

/// Persistent spin-then-park pool of `helpers` threads; the caller of
/// [`run`](ShardPool::run) acts as worker 0.
pub struct ShardPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("helpers", &self.handles.len())
            .finish()
    }
}

impl ShardPool {
    /// Spawn a pool with `helpers` background threads (worker indices
    /// `1..=helpers`; index 0 is the calling thread inside `run`).
    pub fn new(helpers: usize) -> Self {
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            parked: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            job: Mutex::new(None),
            cv: Condvar::new(),
        });
        let handles = (1..=helpers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("manet-shard-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawn shard worker")
            })
            .collect();
        ShardPool { shared, handles }
    }

    /// Number of background helper threads (total workers is one more).
    pub fn helpers(&self) -> usize {
        self.handles.len()
    }

    /// Run `f(worker_index)` once per worker — index 0 on the calling
    /// thread, indices `1..=helpers` on the pool — and return once every
    /// invocation has finished. The closure is borrowed for the duration
    /// of the call, so it may capture references to caller state; mutable
    /// per-worker state must be sliced by index (each index runs on
    /// exactly one thread).
    pub fn run<F: Fn(usize) + Sync>(&self, f: F) {
        let helpers = self.handles.len();
        if helpers == 0 {
            f(0);
            return;
        }
        unsafe fn call<F: Fn(usize) + Sync>(data: *const (), index: usize) {
            // SAFETY: `data` was erased from an `&F` that the publisher
            // keeps alive until every helper finished.
            unsafe { (*(data as *const F))(index) }
        }
        let job = Job {
            data: (&raw const f).cast(),
            call: call::<F>,
        };
        {
            // Publish under the mutex, then bump the epoch: a helper that
            // re-checks the epoch under this same mutex before waiting can
            // never miss the new job.
            let mut slot = self.shared.job.lock().expect("shard pool poisoned");
            *slot = Some(job);
            self.shared.active.store(helpers, Ordering::Relaxed);
            self.shared.epoch.fetch_add(1, Ordering::Release);
        }
        if self.shared.parked.load(Ordering::SeqCst) > 0 {
            self.shared.cv.notify_all();
        }
        f(0);
        // Wait for the helpers; yield while spinning so helpers actually
        // get scheduled on hosts with fewer cores than workers.
        let mut spins = 0u32;
        while self.shared.active.load(Ordering::Acquire) != 0 {
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Take the lock so a helper between its epoch re-check and its
        // `wait` cannot miss the wake-up.
        drop(self.shared.job.lock().expect("shard pool poisoned"));
        self.shared.cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut last_epoch = 0u64;
    loop {
        let mut spins = 0u32;
        let mut epoch = shared.epoch.load(Ordering::Acquire);
        while epoch == last_epoch && !shared.shutdown.load(Ordering::Relaxed) {
            if spins < SPIN_LIMIT {
                spins += 1;
                if spins.is_multiple_of(64) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            } else {
                shared.parked.fetch_add(1, Ordering::SeqCst);
                let mut guard = shared.job.lock().expect("shard pool poisoned");
                while shared.epoch.load(Ordering::Acquire) == last_epoch
                    && !shared.shutdown.load(Ordering::Relaxed)
                {
                    guard = shared.cv.wait(guard).expect("shard pool poisoned");
                }
                drop(guard);
                shared.parked.fetch_sub(1, Ordering::SeqCst);
                spins = 0;
            }
            epoch = shared.epoch.load(Ordering::Acquire);
        }
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        last_epoch = epoch;
        let job = shared
            .job
            .lock()
            .expect("shard pool poisoned")
            .expect("epoch advanced without a published job");
        // SAFETY: the publisher blocks until `active` reaches zero, so the
        // erased closure is alive for the duration of this call, and each
        // worker index runs on exactly one thread.
        unsafe { (job.call)(job.data, index) };
        shared.active.fetch_sub(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn runs_every_worker_exactly_once() {
        let pool = ShardPool::new(3);
        let hits = [
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
            AtomicU64::new(0),
        ];
        pool.run(|k| {
            hits[k].fetch_add(1, Ordering::SeqCst);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn zero_helpers_runs_inline() {
        let pool = ShardPool::new(0);
        let seen = std::sync::Mutex::new(Vec::new());
        pool.run(|k| seen.lock().unwrap().push(k));
        assert_eq!(seen.into_inner().unwrap(), vec![0]);
    }

    #[test]
    fn slices_mutable_state_by_worker_index() {
        struct SendPtr(*mut u64);
        unsafe impl Send for SendPtr {}
        unsafe impl Sync for SendPtr {}
        impl SendPtr {
            // A method so the closure captures the `Sync` wrapper, not
            // the bare raw-pointer field.
            fn slot(&self, k: usize) -> *mut u64 {
                unsafe { self.0.add(k) }
            }
        }

        let pool = ShardPool::new(2);
        let mut slots = [0u64; 3];
        for round in 1..=100u64 {
            let base = SendPtr(slots.as_mut_ptr());
            pool.run(|k| {
                // SAFETY: each index is touched by exactly one worker.
                unsafe { *base.slot(k) += round * (k as u64 + 1) };
            });
        }
        let sum: u64 = (1..=100u64).sum();
        assert_eq!(slots, [sum, 2 * sum, 3 * sum]);
    }

    #[test]
    fn reuses_workers_across_many_dispatches() {
        let pool = ShardPool::new(1);
        let total = AtomicU64::new(0);
        for _ in 0..10_000 {
            pool.run(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 20_000);
        assert_eq!(pool.helpers(), 1);
    }

    #[test]
    fn drop_joins_parked_workers() {
        let pool = ShardPool::new(2);
        pool.run(|_| {});
        // Give the helpers time to reach the parked state, then drop.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(pool);
    }
}
